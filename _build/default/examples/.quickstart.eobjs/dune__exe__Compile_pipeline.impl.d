examples/compile_pipeline.ml: Array Compile Float Knowledge List Nsc_arch Nsc_checker Nsc_diagram Nsc_lang Nsc_microcode Nsc_sim Printf String
