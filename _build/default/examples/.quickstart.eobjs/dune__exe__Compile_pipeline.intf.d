examples/compile_pipeline.mli:
