examples/editor_tour.mli:
