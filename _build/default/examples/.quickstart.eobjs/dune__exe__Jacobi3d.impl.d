examples/jacobi3d.ml: Array Checker Codegen Diagnostic Grid Jacobi Knowledge List Listing Nsc_apps Nsc_arch Nsc_checker Nsc_microcode Nsc_sim Poisson Printf Sequencer Stats Sys Unix
