examples/jacobi3d.mli:
