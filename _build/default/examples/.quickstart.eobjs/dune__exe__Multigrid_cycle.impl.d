examples/multigrid_cycle.ml: Array Knowledge List Multigrid Nsc_apps Nsc_arch Nsc_diagram Nsc_sim Printf Sys
