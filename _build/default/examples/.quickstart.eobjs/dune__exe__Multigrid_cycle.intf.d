examples/multigrid_cycle.mli:
