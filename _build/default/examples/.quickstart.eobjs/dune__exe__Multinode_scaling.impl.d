examples/multinode_scaling.ml: Array List Nsc_apps Nsc_arch Parallel Params Printf Sys
