examples/quickstart.mli:
