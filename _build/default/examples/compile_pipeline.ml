(* The compiler route (the paper's Section 6 "back end to a compiler"):
   a 1-D Jacobi solver written in the textual pipeline language, compiled
   to diagrams, checked, turned into microcode, and executed — then
   contrasted with the hand-drawn equivalent on authoring effort and
   machine utilisation. *)

open Nsc_arch
open Nsc_lang

let source =
  {|
# 1-D Poisson: u'' = f, zero boundaries, Jacobi iteration.
array u[62]    plane 0
array g[62]    plane 1   # h^2 * f, precomputed below
array mask[62] plane 2
array unew[62] plane 3
array f[62]    plane 4
scalar r

g = f * 0.000252518875785965        # h^2 for n = 63 intervals
while r > 0.000001 max_iters 4000 {
  unew = mask * ((u[-1] + u[+1] - g) * 0.5)
  r = maxreduce(abs(unew - u))
  u = unew + 0.0
}
|}

let () =
  let kb = Knowledge.default in
  print_endline "source:";
  print_endline source;
  match Compile.compile kb ~name:"jacobi1d-compiled" source with
  | Error e ->
      Printf.printf "compile error: %s\n" e.Compile.message;
      exit 1
  | Ok c -> (
      Printf.printf "compiled to %d pipeline instruction(s):\n"
        (Nsc_diagram.Program.pipeline_count c.Compile.program);
      List.iter
        (fun (idx, units) -> Printf.printf "  instruction %d engages %d unit(s)\n" idx units)
        c.Compile.units_per_pipeline;
      match Nsc_microcode.Codegen.compile kb c.Compile.program with
      | Error ds ->
          List.iter
            (fun d -> prerr_endline (Nsc_checker.Diagnostic.to_string d))
            ds;
          exit 1
      | Ok compiled -> (
          print_newline ();
          print_string (Nsc_microcode.Listing.compiled_to_string compiled);
          (* run it: f = -pi^2 sin(pi x) on the unit interval, 64 points *)
          let n = 62 (* interior points; boundaries live in the mask *) in
          let pi = 4.0 *. atan 1.0 in
          let node = Nsc_sim.Node.create (Knowledge.params kb) in
          let x i = float_of_int (i + 1) /. 63.0 in
          (* pad = 1: element 0 of each array sits at word 1 of its plane *)
          Nsc_sim.Node.load_array node ~plane:4 ~base:1
            (Array.init n (fun i -> -.(pi *. pi) *. sin (pi *. x i)));
          Nsc_sim.Node.load_array node ~plane:2 ~base:1 (Array.make n 1.0);
          match Nsc_sim.Sequencer.run node compiled with
          | Error e ->
              prerr_endline ("run error: " ^ e);
              exit 1
          | Ok o ->
              let u = Nsc_sim.Node.dump_array node ~plane:0 ~base:1 ~len:n in
              let err = ref 0.0 in
              Array.iteri
                (fun i v -> err := Float.max !err (Float.abs (v -. sin (pi *. x i))))
                u;
              let stats = o.Nsc_sim.Sequencer.stats in
              Printf.printf
                "\nrun: %d instructions executed, max error vs analytic solution %.3e\n"
                stats.Nsc_sim.Sequencer.instructions_executed !err;
              let s =
                Nsc_sim.Stats.summarize (Knowledge.params kb)
                  ~cycles:stats.Nsc_sim.Sequencer.total_cycles
                  ~flops:stats.Nsc_sim.Sequencer.total_flops
              in
              Printf.printf "performance: %s\n" (Nsc_sim.Stats.summary_to_string s);
              Printf.printf
                "\nauthoring comparison (same computation):\n\
                \  textual source: %d lines / %d characters\n\
                \  generated diagrams: %d icons, %d wires, %d configured units\n"
                (List.length (String.split_on_char '\n' source))
                (String.length source)
                (List.fold_left
                   (fun acc (pl : Nsc_diagram.Pipeline.t) ->
                     acc + List.length pl.Nsc_diagram.Pipeline.icons)
                   0 c.Compile.program.Nsc_diagram.Program.pipelines)
                (List.fold_left
                   (fun acc (pl : Nsc_diagram.Pipeline.t) ->
                     acc + List.length pl.Nsc_diagram.Pipeline.connections)
                   0 c.Compile.program.Nsc_diagram.Program.pipelines)
                (List.fold_left
                   (fun acc (pl : Nsc_diagram.Pipeline.t) ->
                     acc + Nsc_diagram.Pipeline.programmed_units pl)
                   0 c.Compile.program.Nsc_diagram.Program.pipelines)))
