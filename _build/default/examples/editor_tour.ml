(* The editor tour: reproduces the interactive session of the paper's
   Figures 5 through 11 — placing ALS icons, rubber-band wiring, the DMA
   and operation popups — ending with a checked, compiled pipeline.

   Every step goes through the editor's event interpreter (synthesised
   mouse/keyboard events); ASCII frames are printed at the moments the
   paper's figures capture, and SVG renderings are written to ./figures/
   when it exists or --figures DIR is given.

   The diagram drawn is the 1-D Jacobi relaxation step
       unew = mask * ((u[-1] + u[+1] - g) / 2)
   with a running-maximum residual — the same shape as the paper's 3-D
   example at a size that stays readable in a terminal. *)

open Nsc_arch
open Nsc_diagram
open Nsc_editor

let figures_dir =
  let rec find = function
    | [] -> if Sys.file_exists "figures" then Some "figures" else None
    | "--figures" :: dir :: _ -> Some dir
    | _ :: rest -> find rest
  in
  find (Array.to_list Sys.argv)

let emit_frame name st =
  Printf.printf "\n===== %s =====\n%s" name (Render_ascii.render st);
  match figures_dir with
  | Some dir ->
      let path = Filename.concat dir (name ^ ".txt") in
      let oc = open_out path in
      output_string oc (Render_ascii.render st);
      close_out oc
  | None -> ()

let emit_svg name st =
  match figures_dir with
  | Some dir ->
      let path = Filename.concat dir (name ^ ".svg") in
      let oc = open_out path in
      output_string oc
        (Render_svg.render_pipeline (Knowledge.params st.State.kb) (State.current_pipeline st));
      close_out oc;
      Printf.printf "wrote %s\n" path
  | None -> ()

let () =
  let kb = Knowledge.default in
  let st = State.create ~name:"jacobi1d" kb in

  (* declarations (the window's left region) *)
  let n = 64 in
  let prog =
    List.fold_left
      (fun prog (name, plane) ->
        Result.get_ok
          (Program.declare prog { Program.name; plane; base = 0; length = n + 2 }))
      st.State.program
      [ ("u", 0); ("g", 1); ("mask", 2); ("unew", 3) ]
  in
  let st = State.refresh { st with State.program = prog } in
  let st = Actions.press st Layout.B_vlen in
  let st = Actions.fill_and_submit st [ ("length", string_of_int n) ] in

  (* Figure 5: the empty display window *)
  emit_frame "fig05-window" st;

  (* Figure 6: selecting and positioning an icon — drag a triplet out of
     the control panel *)
  let st =
    Editor.run st
      [
        Event.Mouse_down (Actions.button_center Layout.B_triplet);
        Event.Mouse_move (Layout.of_drawing (Geometry.point 12 6));
      ]
  in
  emit_frame "fig06-dragging" st;
  let st = Editor.handle st (Event.Mouse_up (Layout.of_drawing (Geometry.point 12 6))) in
  let t0 = Option.get st.State.selected in

  (* Figure 7: all ALSs positioned *)
  let st, d0 = Actions.place st Layout.B_doublet ~x:34 ~y:6 in
  let d0 = Option.get d0 in
  let st, d1 = Actions.place st Layout.B_doublet ~x:56 ~y:6 in
  let d1 = Option.get d1 in
  emit_frame "fig07-icons-placed" st;

  (* program the units first (Figure 10's menu, shown open below) *)
  let st = Actions.set_op st ~icon:t0 ~slot:0 Opcode.Fadd in
  let st = Actions.set_op st ~icon:t0 ~slot:1 Opcode.Fsub in
  let st = Actions.set_op st ~icon:t0 ~slot:2 Opcode.Fmul in
  let st = Actions.bind_constant st ~icon:t0 ~slot:2 ~port:Resource.B 0.5 in
  let st = Actions.set_op st ~icon:d0 ~slot:0 Opcode.Fmul in
  let st = Actions.set_op st ~icon:d1 ~slot:0 Opcode.Fabs in
  let st = Actions.set_op st ~icon:d1 ~slot:1 Opcode.Max in
  let st = Actions.bind_feedback st ~icon:d1 ~slot:1 ~port:Resource.B 1 in

  (* Figure 8: establishing connections — rubber band between two units *)
  let st =
    Editor.run st
      [
        Event.Mouse_down (Option.get (Actions.pad_window_pos st t0 (Icon.Out_pad 2)));
        Event.Mouse_move (Option.get (Actions.pad_window_pos st d0 (Icon.In_pad (0, Resource.A))));
      ]
  in
  emit_frame "fig08-rubber-band" st;
  let st =
    Editor.handle st
      (Event.Mouse_up (Option.get (Actions.pad_window_pos st d0 (Icon.In_pad (0, Resource.A)))))
  in

  (* Figure 9: the memory-connection popup subwindow, captured open *)
  let st = Actions.click_pad st ~icon:t0 ~pad:(Icon.In_pad (0, Resource.A)) in
  let st = Actions.choose st ~label:"from memory plane" in
  let st =
    List.fold_left
      (fun st (f, v) -> Editor.handle st (Event.Form_set (f, v)))
      st
      [ ("plane", "0"); ("variable", "u"); ("offset", "0") ]
  in
  emit_frame "fig09-dma-popup" st;
  let st = Editor.handle st Event.Form_submit in

  (* remaining streams *)
  let st = Actions.wire_memory_to_pad st ~icon:t0 ~pad:(Icon.In_pad (0, Resource.B)) ~plane:0 ~variable:"u" ~offset:2 () in
  let st = Actions.wire_memory_to_pad st ~icon:t0 ~pad:(Icon.In_pad (1, Resource.B)) ~plane:1 ~variable:"g" ~offset:1 () in
  let st = Actions.wire_memory_to_pad st ~icon:d0 ~pad:(Icon.In_pad (0, Resource.B)) ~plane:2 ~variable:"mask" ~offset:1 () in
  let st = Actions.wire_pad_to_memory st ~icon:d0 ~pad:(Icon.Out_pad 0) ~plane:3 ~variable:"unew" ~offset:1 () in
  let st =
    Actions.rubber_connect st ~from_icon:d0 ~from_pad:(Icon.Out_pad 0) ~to_icon:d1
      ~to_pad:(Icon.In_pad (0, Resource.A))
  in

  (* Figure 10: the operation menu, captured open over a unit *)
  let st_menu = Actions.click_unit st ~icon:d1 ~slot:1 in
  emit_frame "fig10-op-menu" st_menu;
  let st = Editor.handle st_menu Event.Menu_cancel in

  (* residual wiring: |delta| against the running max *)
  let st =
    Actions.rubber_connect st ~from_icon:d1 ~from_pad:(Icon.Out_pad 0)
      ~to_icon:d1 ~to_pad:(Icon.In_pad (1, Resource.A))
  in
  (* d1.u1's A is chain-fed, so the wire above is refused; bind via chain *)
  Printf.printf "\n(message strip: %s)\n" (State.latest_message st);

  (* align the streams and run the complete check *)
  let st = Actions.press st Layout.B_balance in
  let st = Actions.press st Layout.B_check in

  (* Figure 11: the completed pipeline diagram *)
  emit_frame "fig11-completed" st;
  emit_svg "fig11-completed" st;

  Printf.printf "\nfinal message: %s\n" (State.latest_message st);
  let ds = st.State.diagnostics in
  Printf.printf "diagnostics: %d finding(s), %d error(s)\n" (List.length ds)
    (List.length (Nsc_checker.Diagnostic.errors ds));
  (* the residual chain input is hardwired: configure via op defaults *)
  match Nsc_microcode.Codegen.compile kb st.State.program with
  | Ok c ->
      Printf.printf "microcode generated: %d instruction(s) of %d bits\n"
        (List.length c.Nsc_microcode.Codegen.instructions)
        c.Nsc_microcode.Codegen.layout.Nsc_microcode.Fields.total_bits
  | Error ds ->
      Printf.printf "codegen blocked by %d finding(s):\n" (List.length ds);
      List.iter
        (fun d -> print_endline ("  " ^ Nsc_checker.Diagnostic.to_string d))
        (Nsc_checker.Diagnostic.errors ds)
