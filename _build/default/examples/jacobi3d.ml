(* The paper's programming example, end to end: the point Jacobi update for
   the 3-D Poisson equation on a uniform grid with a residual convergence
   check (Equation 1; the pipeline diagram of Figures 2 and 11).

   The visual program is built through the diagram API, checked, compiled
   to microcode, and executed on the simulated node; the computed solution
   is compared against a host reference implementation of the same
   iteration and against the manufactured analytic solution. *)

open Nsc_arch
open Nsc_checker
open Nsc_microcode
open Nsc_sim
open Nsc_apps

let () =
  let kb = Knowledge.default in
  let p = Knowledge.params kb in
  let n = try int_of_string Sys.argv.(1) with _ -> 17 in
  let tol = 1e-6 and max_iters = 2000 in
  let prob = Poisson.manufactured n in
  Printf.printf "problem: 3-D Poisson, %dx%dx%d grid, h = %g, tol = %g\n\n" n n n
    prob.Poisson.grid.Grid.h tol;

  (* host reference *)
  let t0 = Unix.gettimeofday () in
  let u_host, host_iters, history = Poisson.host_solve prob ~tol ~max_iters in
  let host_s = Unix.gettimeofday () -. t0 in
  Printf.printf "host reference: converged in %d sweeps (%.2f s)\n" host_iters host_s;
  (match Poisson.error_vs_exact prob u_host with
  | Some e -> Printf.printf "  max error vs manufactured solution: %.3e\n" e
  | None -> ());
  (match history with
  | c1 :: _ ->
      Printf.printf "  first/last sweep change: %.3e / %.3e\n" c1
        (List.nth history (List.length history - 1))
  | [] -> ());

  (* the NSC visual program *)
  let b = Jacobi.build kb prob.Poisson.grid ~tol ~max_iters in
  let ds = Checker.check_program kb b.Jacobi.program in
  Printf.printf "\nchecker: %d finding(s), %d error(s)\n" (List.length ds)
    (List.length (Diagnostic.errors ds));
  List.iter (fun d -> print_endline ("  " ^ Diagnostic.to_string d)) (Diagnostic.errors ds);
  let compiled =
    match Codegen.compile kb b.Jacobi.program with
    | Ok c -> c
    | Error ds ->
        List.iter (fun d -> prerr_endline (Diagnostic.to_string d)) ds;
        failwith "code generation failed"
  in
  print_newline ();
  print_string (Listing.compiled_to_string compiled);

  (* execute on the simulated node *)
  let t0 = Unix.gettimeofday () in
  let outcome =
    match Jacobi.solve kb prob ~tol ~max_iters with Ok o -> o | Error e -> failwith e
  in
  let sim_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\nNSC run: %d sweeps, final max change %.3e (%.2f s simulation)\n"
    outcome.Jacobi.sweeps outcome.Jacobi.final_change sim_s;
  let su = Stats.summarize p ~cycles:outcome.Jacobi.stats.Sequencer.total_cycles
      ~flops:outcome.Jacobi.stats.Sequencer.total_flops
  in
  Printf.printf "  %s\n" (Stats.summary_to_string su);

  (* the residual convergence series, recovered from the condition
     interrupts the sequencer logged (the machine's own view of eq. 1's
     convergence check) *)
  let series =
    List.filter_map
      (function
        | Nsc_arch.Interrupt.Condition_evaluated { value; _ } -> Some value
        | _ -> None)
      outcome.Jacobi.stats.Sequencer.events
  in
  Printf.printf "\nresidual series (from condition interrupts):\n  sweep:   ";
  List.iteri
    (fun i v ->
      if i < 5 || i >= List.length series - 2 then
        Printf.printf "%s%d:%.2e" (if i > 0 then "  " else "") (i + 1) v
      else if i = 5 then Printf.printf "  ...")
    series;
  print_newline ();

  (* agreement with the host reference *)
  let diff = Grid.max_diff prob.Poisson.grid outcome.Jacobi.u u_host in
  Printf.printf "\nmax |u_nsc - u_host| = %.3e  (%s)\n" diff
    (if diff < 1e-12 then "numerically identical iteration" else "DIVERGED");
  (match Poisson.error_vs_exact prob outcome.Jacobi.u with
  | Some e -> Printf.printf "max error vs manufactured solution: %.3e\n" e
  | None -> ());
  if diff > 1e-9 then exit 1
