(* Multigrid on the NSC (reference [6] of the paper): the two-grid
   correction scheme as a twelve-instruction visual program, reconfiguring
   the machine's pipelines phase by phase — smoothing, residual,
   restriction, coarse relaxation, prolongation, correction.

   Usage: multigrid_cycle [n] [cycles]  (n odd) *)

open Nsc_arch
open Nsc_apps

let () =
  let arg i d = try int_of_string Sys.argv.(i) with _ -> d in
  let n = arg 1 65 and cycles = arg 2 6 in
  let nu1 = 2 and nu2 = 2 and nu_coarse = 40 in
  let kb = Knowledge.default in
  let prob = Multigrid.manufactured n in
  Printf.printf "problem: 1-D Poisson, %d points; two-grid V(%d,%d) with %d coarse sweeps\n\n"
    n nu1 nu2 nu_coarse;

  (* the visual program *)
  let b = Multigrid.build kb prob.Multigrid.grid ~cycles ~nu1 ~nu2 ~nu_coarse in
  Printf.printf "visual program: %d pipeline instructions (one configuration per phase):\n"
    (Nsc_diagram.Program.pipeline_count b.Multigrid.program);
  List.iter
    (fun (pl : Nsc_diagram.Pipeline.t) ->
      Printf.printf "  %2d. %-36s %d unit(s), %d wire(s)\n" pl.Nsc_diagram.Pipeline.index
        pl.Nsc_diagram.Pipeline.label
        (Nsc_diagram.Pipeline.programmed_units pl)
        (List.length pl.Nsc_diagram.Pipeline.connections))
    b.Multigrid.program.Nsc_diagram.Program.pipelines;

  (* residual contraction, cycle by cycle, on host and NSC *)
  Printf.printf "\n%8s  %14s  %14s\n" "cycles" "host residual" "NSC residual";
  let r0 = Multigrid.host_residual_norm prob (Array.make (Multigrid.words1 prob.Multigrid.grid) 0.0) in
  Printf.printf "%8d  %14.4e  %14.4e\n" 0 r0 r0;
  for k = 1 to cycles do
    let host = Multigrid.host_solve prob ~cycles:k ~nu1 ~nu2 ~nu_coarse in
    match Multigrid.solve kb prob ~cycles:k ~nu1 ~nu2 ~nu_coarse with
    | Error e ->
        prerr_endline ("error: " ^ e);
        exit 1
    | Ok o ->
        Printf.printf "%8d  %14.4e  %14.4e\n" k
          (Multigrid.host_residual_norm prob host)
          (Multigrid.host_residual_norm prob o.Multigrid.u)
  done;

  (* machine cost of the full run *)
  match Multigrid.solve kb prob ~cycles ~nu1 ~nu2 ~nu_coarse with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok o ->
      let stats = o.Multigrid.stats in
      let s =
        Nsc_sim.Stats.summarize (Knowledge.params kb)
          ~cycles:stats.Nsc_sim.Sequencer.total_cycles
          ~flops:stats.Nsc_sim.Sequencer.total_flops
      in
      Printf.printf "\nNSC cost of %d cycle(s): %d instructions executed; %s\n" cycles
        stats.Nsc_sim.Sequencer.instructions_executed
        (Nsc_sim.Stats.summary_to_string s)
