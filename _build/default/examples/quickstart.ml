(* Quickstart: the full tool chain on the smallest useful program.

   We build a one-instruction visual program computing z[i] = x[i] + y[i]
   for 64-element vectors, exactly as a user of the graphical editor would:
   place an ALS icon, wire its operand pads to memory planes (filling in the
   DMA popup for each), wire its output to a third plane, and program the
   unit.  Then: check the diagram, generate microcode, disassemble it, and
   execute it on the simulated node. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker
open Nsc_microcode
open Nsc_sim

let () =
  let kb = Knowledge.default in
  let p = Knowledge.params kb in
  Printf.printf "machine: %s\n\n" (Knowledge.summary kb);

  (* -- declare variables: one per memory plane, as the planar organisation
        demands for contention-free streaming ----------------------------- *)
  let n = 64 in
  let prog = Program.empty "vecadd" in
  let declare prog (name, plane) =
    match Program.declare prog { Program.name; plane; base = 0; length = n } with
    | Ok prog -> prog
    | Error e -> failwith e
  in
  let prog = List.fold_left declare prog [ ("x", 0); ("y", 1); ("z", 2) ] in

  (* -- draw the pipeline diagram -------------------------------------- *)
  let prog, _ = Program.append_pipeline ~label:"z = x + y" prog in
  let pl = Option.get (Program.find_pipeline prog 1) in
  let pl = Pipeline.with_vector_length pl n in
  (* drag a singlet ALS into the drawing area *)
  let icon, pl =
    match Pipeline.place_als p pl ~kind:Als.Singlet ~pos:(Geometry.point 30 8) () with
    | Ok r -> r
    | Error e -> failwith e
  in
  (* wire memory planes to the operand pads; each wire carries the DMA
     popup-subwindow data *)
  let _, pl =
    Pipeline.add_connection pl
      ~src:(Connection.Direct_memory 0)
      ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
      ~spec:(Dma_spec.make ~variable:"x" (Dma_spec.To_plane 0))
      ()
  in
  let _, pl =
    Pipeline.add_connection pl
      ~src:(Connection.Direct_memory 1)
      ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.B) })
      ~spec:(Dma_spec.make ~variable:"y" (Dma_spec.To_plane 1))
      ()
  in
  let _, pl =
    Pipeline.add_connection pl
      ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
      ~dst:(Connection.Direct_memory 2)
      ~spec:(Dma_spec.make ~variable:"z" (Dma_spec.To_plane 2))
      ()
  in
  (* program the functional unit through the popup menu *)
  let pl =
    Pipeline.set_config pl ~id:icon ~slot:0
      (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd)
  in
  let prog = Program.update_pipeline prog pl in

  (* -- check ----------------------------------------------------------- *)
  let ds = Checker.check_program kb prog in
  List.iter (fun d -> print_endline ("  " ^ Diagnostic.to_string d)) ds;
  if Diagnostic.has_errors ds then failwith "checker rejected the program";
  Printf.printf "checker: program is valid (%d advisory finding(s))\n\n" (List.length ds);

  (* -- generate microcode ---------------------------------------------- *)
  let compiled =
    match Codegen.compile kb prog with
    | Ok c -> c
    | Error ds ->
        List.iter (fun d -> prerr_endline (Diagnostic.to_string d)) ds;
        failwith "code generation failed"
  in
  print_string (Listing.compiled_to_string compiled);
  Printf.printf "\nmicrocode: %d bits/instruction in %d fields (%d distinct kinds)\n\n"
    compiled.Codegen.layout.Fields.total_bits
    (Fields.field_count compiled.Codegen.layout)
    (Fields.kind_count compiled.Codegen.layout);

  (* -- execute on the simulated node ----------------------------------- *)
  let node = Node.create p in
  let x = Array.init n (fun i -> float_of_int i) in
  let y = Array.init n (fun i -> float_of_int (10 * i)) in
  Node.load_array node ~plane:0 ~base:0 x;
  Node.load_array node ~plane:1 ~base:0 y;
  let outcome =
    match Sequencer.run node compiled with Ok o -> o | Error e -> failwith e
  in
  let z = Node.dump_array node ~plane:2 ~base:0 ~len:n in
  let ok = ref true in
  Array.iteri (fun i v -> if v <> x.(i) +. y.(i) then ok := false) z;
  Printf.printf "result: z[0..3] = %g %g %g %g ... %s\n" z.(0) z.(1) z.(2) z.(3)
    (if !ok then "correct" else "WRONG");
  let s = Stats.of_sequencer p outcome.Sequencer.stats in
  Printf.printf "performance: %s\n" (Stats.summary_to_string s)
