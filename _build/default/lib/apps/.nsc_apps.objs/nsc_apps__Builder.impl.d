lib/apps/builder.pp.ml: Nsc_diagram
