lib/apps/builder.pp.mli: Nsc_arch Nsc_diagram
