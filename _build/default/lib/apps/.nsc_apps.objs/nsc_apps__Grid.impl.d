lib/apps/grid.pp.ml: Array Float Ppx_deriving_runtime
