lib/apps/grid.pp.mli: Format
