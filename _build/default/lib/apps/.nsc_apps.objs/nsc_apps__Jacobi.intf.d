lib/apps/jacobi.pp.mli: Grid Nsc_arch Nsc_diagram Nsc_sim Poisson
