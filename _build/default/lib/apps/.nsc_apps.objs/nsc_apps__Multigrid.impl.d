lib/apps/multigrid.pp.ml: Als Array Balance Builder Diagnostic Float Icon Knowledge List Nsc_arch Nsc_checker Nsc_diagram Nsc_microcode Nsc_sim Opcode Params Pipeline Program Resource String
