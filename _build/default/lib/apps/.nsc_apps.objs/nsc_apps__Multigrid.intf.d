lib/apps/multigrid.pp.mli: Nsc_arch Nsc_diagram Nsc_sim
