lib/apps/parallel.pp.ml: Array Float Grid Jacobi Knowledge List Multinode Node Nsc_arch Nsc_checker Nsc_diagram Nsc_microcode Nsc_sim Option Params Program Result Router Sequencer String
