lib/apps/parallel.pp.mli: Grid Jacobi Nsc_arch Nsc_sim
