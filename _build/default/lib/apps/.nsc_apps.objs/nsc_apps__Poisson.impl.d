lib/apps/poisson.pp.ml: Array Float Grid List Option
