lib/apps/poisson.pp.mli: Grid
