(** Re-export of {!Nsc_diagram.Build} under the historical name used by
    the application builders. *)

include Nsc_diagram.Build
