(** Re-export of {!Nsc_diagram.Build} under the historical name used by
    the application builders. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val fail_on_error : ('a, string) result -> 'a
val mem_to_pad :
  Nsc_diagram.Pipeline.t ->
  plane:Nsc_arch.Resource.plane_id ->
  var:string ->
  offset:int ->
  ?stride:int ->
  icon:Nsc_diagram.Icon.id ->
  pad:Nsc_diagram.Icon.pad -> unit -> Nsc_diagram.Pipeline.t
val pad_to_mem :
  Nsc_diagram.Pipeline.t ->
  icon:Nsc_diagram.Icon.id ->
  pad:Nsc_diagram.Icon.pad ->
  plane:Nsc_arch.Resource.plane_id ->
  var:string -> offset:int -> ?stride:int -> unit -> Nsc_diagram.Pipeline.t
val pad_to_pad :
  Nsc_diagram.Pipeline.t ->
  from_icon:Nsc_diagram.Icon.id ->
  from_pad:Nsc_diagram.Icon.pad ->
  to_icon:Nsc_diagram.Icon.id ->
  to_pad:Nsc_diagram.Icon.pad -> Nsc_diagram.Pipeline.t
val als_of_icon :
  Nsc_diagram.Pipeline.t -> Nsc_diagram.Icon.id -> Nsc_arch.Resource.als_id
val declare_all :
  Nsc_diagram.Program.t ->
  (string * Nsc_arch.Resource.plane_id) list ->
  length:int -> Nsc_diagram.Program.t
val place :
  Nsc_diagram.Pipeline.t ->
  params:Nsc_arch.Params.t ->
  kind:Nsc_arch.Als.kind ->
  x:int -> y:int -> Nsc_diagram.Icon.id * Nsc_diagram.Pipeline.t
val config :
  Nsc_diagram.Pipeline.t ->
  icon:Nsc_diagram.Icon.id ->
  slot:int ->
  ?a:Nsc_diagram.Fu_config.input_binding ->
  ?b:Nsc_diagram.Fu_config.input_binding ->
  Nsc_arch.Opcode.t -> Nsc_diagram.Pipeline.t
val sw : Nsc_diagram.Fu_config.input_binding
val chain : Nsc_diagram.Fu_config.input_binding
val const : float -> Nsc_diagram.Fu_config.input_binding
val feedback : int -> Nsc_diagram.Fu_config.input_binding
