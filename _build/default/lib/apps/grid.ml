(** Uniform 3-D grids in the padded linear layout NSC stencil pipelines use.

    A grid of [nx * ny * nz] points (boundary included) is linearised as
    [i + nx*j + nx*ny*k] and stored with [pad = nx*ny] zero words before and
    after, so that every stencil neighbour offset (±1, ±nx, ±nx*ny) of
    every point stays inside the allocation — the shifted DMA streams of a
    sweep then never leave the declared variable. *)

type t = {
  nx : int;
  ny : int;
  nz : int;
  h : float;  (** mesh spacing (uniform in all directions) *)
}
[@@deriving show { with_path = false }, eq]

(** Cubic grid of [n] points per side on the unit cube. *)
let cube n =
  if n < 3 then invalid_arg "Grid.cube: need at least 3 points per side";
  { nx = n; ny = n; nz = n; h = 1.0 /. float_of_int (n - 1) }

(** Slab of a cube split along z (for multi-node decomposition); spacing is
    inherited from the full grid. *)
let slab ~of_:(g : t) ~nz = { g with nz }

let points g = g.nx * g.ny * g.nz

(** Zero padding before and after the field data. *)
let pad g = g.nx * g.ny

(** Words a padded field occupies. *)
let padded_words g = points g + (2 * pad g)

(** Linear index of (i, j, k) within the padded field. *)
let index g ~i ~j ~k =
  if i < 0 || i >= g.nx || j < 0 || j >= g.ny || k < 0 || k >= g.nz then
    invalid_arg "Grid.index: out of range";
  pad g + i + (g.nx * j) + (g.nx * g.ny * k)

(** Stencil neighbour offsets in the linear layout. *)
let offsets g = (1, g.nx, g.nx * g.ny)

let is_boundary g ~i ~j ~k =
  i = 0 || i = g.nx - 1 || j = 0 || j = g.ny - 1 || k = 0 || k = g.nz - 1

(** Iterate over all grid points. *)
let iter g f =
  for k = 0 to g.nz - 1 do
    for j = 0 to g.ny - 1 do
      for i = 0 to g.nx - 1 do
        f ~i ~j ~k
      done
    done
  done

(** Freshly zeroed padded field. *)
let field g = Array.make (padded_words g) 0.0

(** Padded field initialised pointwise from a function of (i, j, k). *)
let field_of g f =
  let a = field g in
  iter g (fun ~i ~j ~k -> a.(index g ~i ~j ~k) <- f ~i ~j ~k);
  a

(** Interior mask: 1.0 strictly inside, 0.0 on the boundary shell and in
    the padding.  Multiplying an update by the mask freezes homogeneous
    Dirichlet boundaries. *)
let interior_mask g =
  field_of g (fun ~i ~j ~k -> if is_boundary g ~i ~j ~k then 0.0 else 1.0)

(** Point coordinates on the unit cube (z offset supports slabs). *)
let coords ?(k0 = 0) g ~i ~j ~k =
  (float_of_int i *. g.h, float_of_int j *. g.h, float_of_int (k + k0) *. g.h)

(** Max-norm of the difference of two padded fields over grid points. *)
let max_diff g a b =
  let m = ref 0.0 in
  iter g (fun ~i ~j ~k ->
      let idx = index g ~i ~j ~k in
      let d = Float.abs (a.(idx) -. b.(idx)) in
      if d > !m then m := d);
  !m
