(** Uniform 3-D grids in the padded linear layout NSC stencil pipelines use.

    A grid of [nx * ny * nz] points (boundary included) is linearised as
    [i + nx*j + nx*ny*k] and stored with [pad = nx*ny] zero words before and
    after, so that every stencil neighbour offset (±1, ±nx, ±nx*ny) of
    every point stays inside the allocation — the shifted DMA streams of a
    sweep then never leave the declared variable. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type t = { nx : int; ny : int; nz : int; h : float; }
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
(** Cubic grid of [n] points per side on the unit cube. *)
val cube : int -> t
val slab : of_:t -> nz:int -> t
val points : t -> int
(** Zero padding before and after the field data (= nx·ny), sized so
    every stencil neighbour offset stays inside the allocation. *)
val pad : t -> int
val padded_words : t -> int
(** Linear index of (i, j, k) within the padded field. *)
val index : t -> i:int -> j:int -> k:int -> int
(** Stencil neighbour offsets (±1, ±nx, ±nx·ny) in the linear layout. *)
val offsets : t -> int * int * int
val is_boundary : t -> i:int -> j:int -> k:int -> bool
val iter : t -> (i:int -> j:int -> k:int -> unit) -> unit
val field : t -> float array
(** Padded field initialised pointwise from (i, j, k). *)
val field_of : t -> (i:int -> j:int -> k:int -> float) -> float array
(** 1.0 strictly inside, 0.0 on the boundary shell and padding —
    multiplying an update by it freezes homogeneous Dirichlet walls. *)
val interior_mask : t -> float array
val coords : ?k0:int -> t -> i:int -> j:int -> k:int -> float * float * float
(** Max-norm difference of two padded fields over grid points. *)
val max_diff : t -> float array -> float array -> float
