(** Multigrid on the NSC (paper reference [6]: Nosenchuck, Krist, Zang,
    "On Multigrid Methods for the Navier-Stokes Computer").

    A two-grid correction scheme for the 1-D Poisson problem u'' = f with
    homogeneous Dirichlet boundaries: pre-smooth with weighted Jacobi,
    restrict the residual by full weighting, smooth the coarse error
    equation, prolong the correction linearly, correct, post-smooth.  The
    scheme is laid out as a {e twelve-instruction} visual program — the
    richest demonstration in this library of the NSC's phase-to-phase
    pipeline reconfiguration.

    The model problem is 1-D rather than the reference's 3-D because the
    simulated DMA engines, like the real ones, generate single-stride
    address streams: 1-D coarsening is a stride-2 stream, while 3-D
    coarsening would need triple-nested strides the hardware does not
    have.  Every phase of the algorithm is exercised identically. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

let omega = 2.0 /. 3.0  (** weighted-Jacobi damping *)

(** The 1-D fine grid: [n] points including boundaries ([n] odd so the
    coarse grid lands on every second point), spacing [h], padding 2. *)
type grid1 = { n : int; h : float }

let pad1 = 2

let grid1 n =
  if n < 5 || n mod 2 = 0 then
    invalid_arg "Multigrid.grid1: need an odd point count of at least 5";
  { n; h = 1.0 /. float_of_int (n - 1) }

let coarse_of g = { n = ((g.n - 1) / 2) + 1; h = 2.0 *. g.h }
let words1 g = g.n + (2 * pad1)

(** Memory-plane layout of the two-grid program. *)
type layout = {
  u_a : int;       (** fine u copy serving the ±1 streams *)
  u_c : int;       (** fine u copy serving centred streams *)
  unew : int;      (** fine scratch *)
  g_f : int;       (** h²·f on the fine grid *)
  mask_f : int;    (** fine interior mask *)
  r : int;         (** fine residual *)
  rc : int;        (** restricted residual (coarse rhs) *)
  e_a : int;       (** coarse error copy, ±1 streams *)
  e_c : int;       (** coarse error copy, centred streams *)
  enew : int;      (** coarse scratch *)
  g_c : int;       (** h_c²·rc *)
  mask_c : int;    (** coarse interior mask *)
  cf : int;        (** prolonged correction on the fine grid *)
  f : int;         (** the right-hand side *)
}

let default_layout =
  {
    u_a = 0;
    u_c = 1;
    unew = 2;
    g_f = 3;
    mask_f = 4;
    r = 5;
    rc = 6;
    e_a = 7;
    e_c = 8;
    enew = 9;
    g_c = 10;
    mask_c = 11;
    cf = 12;
    f = 13;
  }

(* -- pipeline builders -------------------------------------------------- *)

(* Weighted-Jacobi smoother: out = mask · ((1−ω)·u + (ω/2)·(u[-1]+u[+1]−g)).
   Shared by the fine and coarse phases via the plane/var arguments. *)
let build_smoother (p : Params.t) ~index ~label ~vlen ~(ua : int * string)
    ~(uc : int * string) ~(g : int * string) ~(mask : int * string)
    ~(out : int * string) : Pipeline.t =
  let pl = Pipeline.empty ~label index in
  let pl = Pipeline.with_vector_length pl vlen in
  let t0, pl = Builder.place pl ~params:p ~kind:Als.Triplet ~x:14 ~y:2 in
  let d0, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:34 ~y:2 in
  let s0, pl = Builder.place pl ~params:p ~kind:Als.Singlet ~x:52 ~y:2 in
  let plane_ua, var_ua = ua and plane_uc, var_uc = uc in
  let plane_g, var_g = g and plane_m, var_m = mask and plane_o, var_o = out in
  let pl = Builder.mem_to_pad pl ~plane:plane_ua ~var:var_ua ~offset:(pad1 - 1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.mem_to_pad pl ~plane:plane_ua ~var:var_ua ~offset:(pad1 + 1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.mem_to_pad pl ~plane:plane_g ~var:var_g ~offset:pad1 ~icon:t0 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Builder.config pl ~icon:t0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:t0 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fsub in
  let pl = Builder.config pl ~icon:t0 ~slot:2 ~a:Builder.chain ~b:(Builder.const (omega /. 2.0)) Opcode.Fmul in
  let pl = Builder.mem_to_pad pl ~plane:plane_uc ~var:var_uc ~offset:pad1 ~icon:d0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.config pl ~icon:d0 ~slot:0 ~a:Builder.sw ~b:(Builder.const (1.0 -. omega)) Opcode.Fmul in
  let pl = Builder.pad_to_pad pl ~from_icon:t0 ~from_pad:(Icon.Out_pad 2) ~to_icon:d0 ~to_pad:(Icon.In_pad (1, Resource.B)) in
  let pl = Builder.config pl ~icon:d0 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.pad_to_pad pl ~from_icon:d0 ~from_pad:(Icon.Out_pad 1) ~to_icon:s0 ~to_pad:(Icon.In_pad (0, Resource.A)) in
  let pl = Builder.mem_to_pad pl ~plane:plane_m ~var:var_m ~offset:pad1 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.config pl ~icon:s0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fmul in
  Builder.pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane:plane_o ~var:var_o ~offset:pad1 ()

(* Copy [src] over each plane in [dsts]. *)
let build_refresh (p : Params.t) ~index ~label ~vlen ~(src : int * string)
    ~(dsts : (int * string) list) : Pipeline.t =
  let plane_s, var_s = src in
  let pl = Pipeline.empty ~label index in
  let pl = Pipeline.with_vector_length pl vlen in
  List.fold_left
    (fun pl (i, (plane, var)) ->
      let s, pl = Builder.place pl ~params:p ~kind:Als.Singlet ~x:(12 + (18 * i)) ~y:6 in
      let pl = Builder.mem_to_pad pl ~plane:plane_s ~var:var_s ~offset:pad1 ~icon:s ~pad:(Icon.In_pad (0, Resource.A)) () in
      let pl = Builder.config pl ~icon:s ~slot:0 ~a:Builder.sw Opcode.Pass in
      Builder.pad_to_mem pl ~icon:s ~pad:(Icon.Out_pad 0) ~plane ~var ~offset:pad1 ())
    pl
    (List.mapi (fun i d -> (i, d)) dsts)

(* Residual: r = mask · (f − (u[-1] − 2u + u[+1]) / h²). *)
let build_residual (p : Params.t) (g : grid1) (l : layout) ~index : Pipeline.t =
  let pl = Pipeline.empty ~label:"fine residual" index in
  let pl = Pipeline.with_vector_length pl g.n in
  let d0, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:12 ~y:12 in
  let t0, pl = Builder.place pl ~params:p ~kind:Als.Triplet ~x:12 ~y:2 in
  let d1, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:34 ~y:2 in
  let pl = Builder.mem_to_pad pl ~plane:l.u_c ~var:"u_c" ~offset:pad1 ~icon:d0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.config pl ~icon:d0 ~slot:0 ~a:Builder.sw ~b:(Builder.const 2.0) Opcode.Fmul in
  let pl = Builder.mem_to_pad pl ~plane:l.u_a ~var:"u_a" ~offset:(pad1 - 1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.u_a ~var:"u_a" ~offset:(pad1 + 1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.config pl ~icon:t0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.pad_to_pad pl ~from_icon:d0 ~from_pad:(Icon.Out_pad 0) ~to_icon:t0 ~to_pad:(Icon.In_pad (1, Resource.B)) in
  let pl = Builder.config pl ~icon:t0 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fsub in
  let pl = Builder.config pl ~icon:t0 ~slot:2 ~a:Builder.chain ~b:(Builder.const (1.0 /. (g.h *. g.h))) Opcode.Fmul in
  let pl = Builder.mem_to_pad pl ~plane:l.f ~var:"f" ~offset:pad1 ~icon:d1 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.pad_to_pad pl ~from_icon:t0 ~from_pad:(Icon.Out_pad 2) ~to_icon:d1 ~to_pad:(Icon.In_pad (0, Resource.B)) in
  let pl = Builder.config pl ~icon:d1 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fsub in
  let pl = Builder.mem_to_pad pl ~plane:l.mask_f ~var:"mask_f" ~offset:pad1 ~icon:d1 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Builder.config pl ~icon:d1 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fmul in
  Builder.pad_to_mem pl ~icon:d1 ~pad:(Icon.Out_pad 1) ~plane:l.r ~var:"r" ~offset:pad1 ()

(* Full-weighting restriction: rc[j] = (r[2j-1] + 2 r[2j] + r[2j+1]) / 4. *)
let build_restrict (p : Params.t) (gc : grid1) (l : layout) ~index : Pipeline.t =
  let pl = Pipeline.empty ~label:"restrict residual (full weighting)" index in
  let pl = Pipeline.with_vector_length pl gc.n in
  let d0, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:12 ~y:12 in
  let t0, pl = Builder.place pl ~params:p ~kind:Als.Triplet ~x:12 ~y:2 in
  let pl = Builder.mem_to_pad pl ~plane:l.r ~var:"r" ~offset:pad1 ~stride:2 ~icon:d0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.config pl ~icon:d0 ~slot:0 ~a:Builder.sw ~b:(Builder.const 2.0) Opcode.Fmul in
  let pl = Builder.mem_to_pad pl ~plane:l.r ~var:"r" ~offset:(pad1 - 1) ~stride:2 ~icon:t0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.r ~var:"r" ~offset:(pad1 + 1) ~stride:2 ~icon:t0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.config pl ~icon:t0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.pad_to_pad pl ~from_icon:d0 ~from_pad:(Icon.Out_pad 0) ~to_icon:t0 ~to_pad:(Icon.In_pad (1, Resource.B)) in
  let pl = Builder.config pl ~icon:t0 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:t0 ~slot:2 ~a:Builder.chain ~b:(Builder.const 0.25) Opcode.Fmul in
  Builder.pad_to_mem pl ~icon:t0 ~pad:(Icon.Out_pad 2) ~plane:l.rc ~var:"rc" ~offset:pad1 ()

(* gc = h_c² · rc, and zeroing the coarse error copies. *)
let build_scale (p : Params.t) ~index ~label ~vlen ~const:k ~(src : int * string)
    ~(dsts : (int * string) list) : Pipeline.t =
  let plane_s, var_s = src in
  let pl = Pipeline.empty ~label index in
  let pl = Pipeline.with_vector_length pl vlen in
  let s0, pl = Builder.place pl ~params:p ~kind:Als.Singlet ~x:30 ~y:6 in
  let pl = Builder.mem_to_pad pl ~plane:plane_s ~var:var_s ~offset:pad1 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.config pl ~icon:s0 ~slot:0 ~a:Builder.sw ~b:(Builder.const k) Opcode.Fmul in
  List.fold_left
    (fun pl (plane, var) ->
      Builder.pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane ~var ~offset:pad1 ())
    pl dsts

(* Prolongation: even fine points copy the coarse value; odd fine points
   average their coarse neighbours. *)
let build_prolong_even (p : Params.t) (gc : grid1) (l : layout) ~index : Pipeline.t =
  let pl = Pipeline.empty ~label:"prolong (even points)" index in
  let pl = Pipeline.with_vector_length pl gc.n in
  let s0, pl = Builder.place pl ~params:p ~kind:Als.Singlet ~x:30 ~y:6 in
  let pl = Builder.mem_to_pad pl ~plane:l.e_c ~var:"e_c" ~offset:pad1 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.config pl ~icon:s0 ~slot:0 ~a:Builder.sw Opcode.Pass in
  Builder.pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane:l.cf ~var:"cf" ~offset:pad1 ~stride:2 ()

let build_prolong_odd (p : Params.t) (gc : grid1) (l : layout) ~index : Pipeline.t =
  let pl = Pipeline.empty ~label:"prolong (odd points)" index in
  let pl = Pipeline.with_vector_length pl (gc.n - 1) in
  let d0, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:30 ~y:2 in
  let pl = Builder.mem_to_pad pl ~plane:l.e_c ~var:"e_c" ~offset:pad1 ~icon:d0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.e_c ~var:"e_c" ~offset:(pad1 + 1) ~icon:d0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.config pl ~icon:d0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:d0 ~slot:1 ~a:Builder.chain ~b:(Builder.const 0.5) Opcode.Fmul in
  Builder.pad_to_mem pl ~icon:d0 ~pad:(Icon.Out_pad 1) ~plane:l.cf ~var:"cf" ~offset:(pad1 + 1) ~stride:2 ()

(* Correction: unew = u + cf. *)
let build_correct (p : Params.t) (g : grid1) (l : layout) ~index : Pipeline.t =
  let pl = Pipeline.empty ~label:"apply coarse correction" index in
  let pl = Pipeline.with_vector_length pl g.n in
  let s0, pl = Builder.place pl ~params:p ~kind:Als.Singlet ~x:30 ~y:6 in
  let pl = Builder.mem_to_pad pl ~plane:l.u_c ~var:"u_c" ~offset:pad1 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.cf ~var:"cf" ~offset:pad1 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.config pl ~icon:s0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  Builder.pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane:l.unew ~var:"unew" ~offset:pad1 ()

type build = { program : Program.t; layout : layout; fine : grid1; coarse : grid1 }

(** Build the complete two-grid program: twelve instructions, each a fresh
    pipeline configuration. *)
let build (kb : Knowledge.t) ?(layout = default_layout) (g : grid1) ~cycles ~nu1 ~nu2
    ~nu_coarse : build =
  let p = Knowledge.params kb in
  let gc = coarse_of g in
  let l = layout in
  let prog = Program.empty "multigrid-two-grid" in
  let prog =
    Builder.declare_all prog
      [ ("u_a", l.u_a); ("u_c", l.u_c); ("unew", l.unew); ("g_f", l.g_f);
        ("mask_f", l.mask_f); ("r", l.r); ("cf", l.cf); ("f", l.f) ]
      ~length:(words1 g)
  in
  let prog =
    Builder.declare_all prog
      [ ("rc", l.rc); ("e_a", l.e_a); ("e_c", l.e_c); ("enew", l.enew);
        ("g_c", l.g_c); ("mask_c", l.mask_c) ]
      ~length:(words1 gc)
  in
  let pipelines =
    [
      (* 1 *) build_scale p ~index:1 ~label:"setup: g = h^2 * f" ~vlen:g.n
                ~const:(g.h *. g.h) ~src:(l.f, "f") ~dsts:[ (l.g_f, "g_f") ];
      (* 2 *) build_smoother p ~index:2 ~label:"fine smoother" ~vlen:g.n
                ~ua:(l.u_a, "u_a") ~uc:(l.u_c, "u_c") ~g:(l.g_f, "g_f")
                ~mask:(l.mask_f, "mask_f") ~out:(l.unew, "unew");
      (* 3 *) build_refresh p ~index:3 ~label:"refresh fine u" ~vlen:g.n
                ~src:(l.unew, "unew") ~dsts:[ (l.u_a, "u_a"); (l.u_c, "u_c") ];
      (* 4 *) build_residual p g l ~index:4;
      (* 5 *) build_restrict p gc l ~index:5;
      (* 6 *) build_scale p ~index:6 ~label:"setup: g_c = h_c^2 * rc" ~vlen:gc.n
                ~const:(gc.h *. gc.h) ~src:(l.rc, "rc") ~dsts:[ (l.g_c, "g_c") ];
      (* 7 *) build_scale p ~index:7 ~label:"zero coarse error" ~vlen:gc.n ~const:0.0
                ~src:(l.rc, "rc") ~dsts:[ (l.e_a, "e_a"); (l.e_c, "e_c") ];
      (* 8 *) build_smoother p ~index:8 ~label:"coarse smoother" ~vlen:gc.n
                ~ua:(l.e_a, "e_a") ~uc:(l.e_c, "e_c") ~g:(l.g_c, "g_c")
                ~mask:(l.mask_c, "mask_c") ~out:(l.enew, "enew");
      (* 9 *) build_refresh p ~index:9 ~label:"refresh coarse e" ~vlen:gc.n
                ~src:(l.enew, "enew") ~dsts:[ (l.e_a, "e_a"); (l.e_c, "e_c") ];
      (* 10 *) build_prolong_even p gc l ~index:10;
      (* 11 *) build_prolong_odd p gc l ~index:11;
      (* 12 *) build_correct p g l ~index:12;
    ]
  in
  let prog = { prog with Program.pipelines } in
  let smooth_fine n = Program.Repeat { count = n; body = [ Program.Exec 2; Program.Exec 3 ] } in
  let prog =
    Program.set_control prog
      [
        Program.Exec 1;
        Program.Repeat
          {
            count = cycles;
            body =
              [
                smooth_fine nu1;
                Program.Exec 4;
                Program.Exec 5;
                Program.Exec 6;
                Program.Exec 7;
                Program.Repeat
                  { count = nu_coarse; body = [ Program.Exec 8; Program.Exec 9 ] };
                Program.Exec 10;
                Program.Exec 11;
                Program.Exec 12;
                Program.Exec 3;
                smooth_fine nu2;
              ];
          };
        Program.Halt;
      ]
  in
  let prog = Balance.balance_program kb prog in
  { program = prog; layout = l; fine = g; coarse = gc }

(* -- host reference (identical algorithm) ------------------------------- *)

type host_problem = { grid : grid1; f : float array; exact : float array option }

let pi = 4.0 *. atan 1.0

(** Manufactured 1-D problem: u* = sin(πx), f = u*'' = −π² sin(πx). *)
let manufactured n =
  let grid = grid1 n in
  let at i = float_of_int i *. grid.h in
  let f = Array.make (words1 grid) 0.0 in
  let exact = Array.make (words1 grid) 0.0 in
  for i = 0 to grid.n - 1 do
    f.(pad1 + i) <- -.(pi *. pi) *. sin (pi *. at i);
    exact.(pad1 + i) <- sin (pi *. at i)
  done;
  { grid; f; exact = Some exact }

let mask1 g = Array.init (words1 g) (fun i -> if i > pad1 && i < pad1 + g.n - 1 then 1.0 else 0.0)

let host_smooth g ~(u : float array) ~(gh2 : float array) ~(mask : float array) =
  let out = Array.make (words1 g) 0.0 in
  for i = 0 to g.n - 1 do
    let idx = pad1 + i in
    out.(idx) <-
      mask.(idx)
      *. (((1.0 -. omega) *. u.(idx))
         +. (omega /. 2.0 *. (u.(idx - 1) +. u.(idx + 1) -. gh2.(idx))))
  done;
  Array.blit out 0 u 0 (words1 g)

let host_residual g ~(u : float array) ~(f : float array) ~(mask : float array) =
  let r = Array.make (words1 g) 0.0 in
  let h2 = g.h *. g.h in
  for i = 0 to g.n - 1 do
    let idx = pad1 + i in
    r.(idx) <-
      mask.(idx) *. (f.(idx) -. ((u.(idx - 1) -. (2.0 *. u.(idx)) +. u.(idx + 1)) /. h2))
  done;
  r

(** Run the identical two-grid scheme on the host.  Returns the solution. *)
let host_solve (prob : host_problem) ~cycles ~nu1 ~nu2 ~nu_coarse =
  let g = prob.grid in
  let gc = coarse_of g in
  let mask_f = mask1 g and mask_c = mask1 gc in
  let gh2 = Array.map (fun v -> v *. g.h *. g.h) prob.f in
  let u = Array.make (words1 g) 0.0 in
  for _ = 1 to cycles do
    for _ = 1 to nu1 do
      host_smooth g ~u ~gh2 ~mask:mask_f
    done;
    let r = host_residual g ~u ~f:prob.f ~mask:mask_f in
    (* full weighting *)
    let rc = Array.make (words1 gc) 0.0 in
    for j = 0 to gc.n - 1 do
      let fi = pad1 + (2 * j) in
      rc.(pad1 + j) <- 0.25 *. (r.(fi - 1) +. (2.0 *. r.(fi)) +. r.(fi + 1))
    done;
    let gc2 = Array.map (fun v -> v *. gc.h *. gc.h) rc in
    let e = Array.make (words1 gc) 0.0 in
    for _ = 1 to nu_coarse do
      host_smooth gc ~u:e ~gh2:gc2 ~mask:mask_c
    done;
    (* linear prolongation + correction *)
    for j = 0 to gc.n - 1 do
      u.(pad1 + (2 * j)) <- u.(pad1 + (2 * j)) +. e.(pad1 + j)
    done;
    for j = 0 to gc.n - 2 do
      u.(pad1 + (2 * j) + 1) <-
        u.(pad1 + (2 * j) + 1) +. (0.5 *. (e.(pad1 + j) +. e.(pad1 + j + 1)))
    done;
    for _ = 1 to nu2 do
      host_smooth g ~u ~gh2 ~mask:mask_f
    done
  done;
  u

(** Max-norm of the 1-D discrete residual. *)
let host_residual_norm (prob : host_problem) u =
  let r = host_residual prob.grid ~u ~f:prob.f ~mask:(mask1 prob.grid) in
  Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 r

type outcome = { u : float array; stats : Nsc_sim.Sequencer.stats }

(** Compile and run the NSC two-grid program on a fresh node. *)
let solve (kb : Knowledge.t) (prob : host_problem) ~cycles ~nu1 ~nu2 ~nu_coarse :
    (outcome, string) result =
  let b = build kb prob.grid ~cycles ~nu1 ~nu2 ~nu_coarse in
  match Nsc_microcode.Codegen.compile kb b.program with
  | Error ds ->
      Error (String.concat "; " (List.map Diagnostic.to_string (Diagnostic.errors ds)))
  | Ok compiled -> (
      let node = Nsc_sim.Node.create (Knowledge.params kb) in
      Nsc_sim.Node.load_array node ~plane:b.layout.f ~base:0 prob.f;
      Nsc_sim.Node.load_array node ~plane:b.layout.mask_f ~base:0 (mask1 b.fine);
      Nsc_sim.Node.load_array node ~plane:b.layout.mask_c ~base:0 (mask1 b.coarse);
      match Nsc_sim.Sequencer.run node compiled with
      | Error e -> Error e
      | Ok outcome ->
          Ok
            {
              u = Nsc_sim.Node.dump_array node ~plane:b.layout.u_c ~base:0 ~len:(words1 b.fine);
              stats = outcome.Nsc_sim.Sequencer.stats;
            })
