(** Multigrid on the NSC (paper reference [6]: Nosenchuck, Krist, Zang,
    "On Multigrid Methods for the Navier-Stokes Computer").

    A two-grid correction scheme for the 1-D Poisson problem u'' = f with
    homogeneous Dirichlet boundaries: pre-smooth with weighted Jacobi,
    restrict the residual by full weighting, smooth the coarse error
    equation, prolong the correction linearly, correct, post-smooth.  The
    scheme is laid out as a {e twelve-instruction} visual program — the
    richest demonstration in this library of the NSC's phase-to-phase
    pipeline reconfiguration.

    The model problem is 1-D rather than the reference's 3-D because the
    simulated DMA engines, like the real ones, generate single-stride
    address streams: 1-D coarsening is a stride-2 stream, while 3-D
    coarsening would need triple-nested strides the hardware does not
    have.  Every phase of the algorithm is exercised identically. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val omega : float
type grid1 = { n : int; h : float; }
val pad1 : int
val grid1 : int -> grid1
val coarse_of : grid1 -> grid1
val words1 : grid1 -> int
type layout = {
  u_a : int;
  u_c : int;
  unew : int;
  g_f : int;
  mask_f : int;
  r : int;
  rc : int;
  e_a : int;
  e_c : int;
  enew : int;
  g_c : int;
  mask_c : int;
  cf : int;
  f : int;
}
val default_layout : layout
(** The twelve-instruction two-grid program: setup, smoothing, residual,
    full-weighting restriction, coarse setup/zero/smooth, linear
    prolongation (even and odd points), correction — each phase a fresh
    pipeline configuration. *)
val build_smoother :
  Nsc_arch.Params.t ->
  index:int ->
  label:string ->
  vlen:int ->
  ua:int * string ->
  uc:int * string ->
  g:int * string ->
  mask:int * string -> out:int * string -> Nsc_diagram.Pipeline.t
val build_refresh :
  Nsc_arch.Params.t ->
  index:int ->
  label:string ->
  vlen:int ->
  src:int * string -> dsts:(int * string) list -> Nsc_diagram.Pipeline.t
val build_residual :
  Nsc_arch.Params.t -> grid1 -> layout -> index:int -> Nsc_diagram.Pipeline.t
val build_restrict :
  Nsc_arch.Params.t -> grid1 -> layout -> index:int -> Nsc_diagram.Pipeline.t
val build_scale :
  Nsc_arch.Params.t ->
  index:int ->
  label:string ->
  vlen:int ->
  const:float ->
  src:int * string -> dsts:(int * string) list -> Nsc_diagram.Pipeline.t
val build_prolong_even :
  Nsc_arch.Params.t -> grid1 -> layout -> index:int -> Nsc_diagram.Pipeline.t
val build_prolong_odd :
  Nsc_arch.Params.t -> grid1 -> layout -> index:int -> Nsc_diagram.Pipeline.t
val build_correct :
  Nsc_arch.Params.t -> grid1 -> layout -> index:int -> Nsc_diagram.Pipeline.t
type build = {
  program : Nsc_diagram.Program.t;
  layout : layout;
  fine : grid1;
  coarse : grid1;
}
val build :
  Nsc_arch.Knowledge.t ->
  ?layout:layout ->
  grid1 -> cycles:int -> nu1:int -> nu2:int -> nu_coarse:int -> build
type host_problem = {
  grid : grid1;
  f : float array;
  exact : float array option;
}
val pi : float
val manufactured : int -> host_problem
val mask1 : grid1 -> float array
val host_smooth :
  grid1 -> u:float array -> gh2:float array -> mask:float array -> unit
val host_residual :
  grid1 -> u:float array -> f:float array -> mask:float array -> float array
(** The identical two-grid scheme on the host, for exact comparison. *)
val host_solve :
  host_problem ->
  cycles:int -> nu1:int -> nu2:int -> nu_coarse:int -> float array
val host_residual_norm : host_problem -> float array -> float
type outcome = { u : float array; stats : Nsc_sim.Sequencer.stats; }
(** Compile and run the NSC program on a fresh node. *)
val solve :
  Nsc_arch.Knowledge.t ->
  host_problem ->
  cycles:int ->
  nu1:int -> nu2:int -> nu_coarse:int -> (outcome, string) result
