(** The 3-D Poisson model problem of the paper's example: ∇²u = f on the
    unit cube with homogeneous Dirichlet boundaries.

    A manufactured solution u*(x,y,z) = sin(πx) sin(πy) sin(πz) gives
    f = -3π² u*, so simulated solves can be validated against a known
    answer as well as against the host reference implementation. *)

type problem = {
  grid : Grid.t;
  f : float array;      (** right-hand side, padded layout *)
  mask : float array;   (** interior mask *)
  exact : float array option;  (** manufactured solution when known *)
}

let pi = 4.0 *. atan 1.0

(** The manufactured-solution problem on an [n]-point cube. *)
let manufactured n =
  let grid = Grid.cube n in
  let exact =
    Grid.field_of grid (fun ~i ~j ~k ->
        let x, y, z = Grid.coords grid ~i ~j ~k in
        sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z))
  in
  let f =
    Grid.field_of grid (fun ~i ~j ~k ->
        let x, y, z = Grid.coords grid ~i ~j ~k in
        -3.0 *. pi *. pi *. sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z))
  in
  { grid; f; mask = Grid.interior_mask grid; exact = Some exact }

(** A problem with a concentrated source at the cube centre — the kind of
    driving term a CFD pressure solve produces. *)
let point_source n =
  let grid = Grid.cube n in
  let ci = n / 2 in
  let f =
    Grid.field_of grid (fun ~i ~j ~k ->
        if i = ci && j = ci && k = ci then 1.0 /. (grid.Grid.h ** 3.0) else 0.0)
  in
  { grid; f; mask = Grid.interior_mask grid; exact = None }

(** One host (reference) Jacobi sweep per Equation 1 of the paper:
    unew = (u[i±1] + u[j±1] + u[k±1] - h² f) / 6, interior only.
    Returns the maximum pointwise change — the residual convergence check. *)
let host_sweep (p : problem) ~(u : float array) ~(unew : float array) =
  let g = p.grid in
  let s1, sy, sz = Grid.offsets g in
  let h2 = g.Grid.h *. g.Grid.h in
  let change = ref 0.0 in
  Grid.iter g (fun ~i ~j ~k ->
      let idx = Grid.index g ~i ~j ~k in
      if Grid.is_boundary g ~i ~j ~k then unew.(idx) <- u.(idx)
      else begin
        let v =
          (u.(idx - s1) +. u.(idx + s1) +. u.(idx - sy) +. u.(idx + sy)
          +. u.(idx - sz) +. u.(idx + sz) -. (h2 *. p.f.(idx)))
          /. 6.0
        in
        let d = Float.abs (v -. u.(idx)) in
        if d > !change then change := d;
        unew.(idx) <- v
      end);
  !change

(** Host Jacobi iteration with the residual convergence check: iterate
    until the max change falls to [tol] or [max_iters] sweeps have run.
    Returns the solution, iteration count, and per-sweep change history. *)
let host_solve (p : problem) ~tol ~max_iters =
  let u = ref (Grid.field p.grid) and unew = ref (Grid.field p.grid) in
  let history = ref [] in
  let iters = ref 0 in
  (try
     for _ = 1 to max_iters do
       let change = host_sweep p ~u:!u ~unew:!unew in
       history := change :: !history;
       incr iters;
       let tmp = !u in
       u := !unew;
       unew := tmp;
       if change <= tol then raise Exit
     done
   with Exit -> ());
  (!u, !iters, List.rev !history)

(** Max-norm error against the manufactured solution, when available. *)
let error_vs_exact (p : problem) u =
  Option.map (fun exact -> Grid.max_diff p.grid u exact) p.exact

(** Max-norm of the discrete residual f - ∇²u over interior points. *)
let residual_norm (p : problem) u =
  let g = p.grid in
  let s1, sy, sz = Grid.offsets g in
  let h2 = g.Grid.h *. g.Grid.h in
  let m = ref 0.0 in
  Grid.iter g (fun ~i ~j ~k ->
      if not (Grid.is_boundary g ~i ~j ~k) then begin
        let idx = Grid.index g ~i ~j ~k in
        let lap =
          (u.(idx - s1) +. u.(idx + s1) +. u.(idx - sy) +. u.(idx + sy)
          +. u.(idx - sz) +. u.(idx + sz) -. (6.0 *. u.(idx)))
          /. h2
        in
        let r = Float.abs (p.f.(idx) -. lap) in
        if r > !m then m := r
      end);
  !m
