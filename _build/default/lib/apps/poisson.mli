(** The 3-D Poisson model problem of the paper's example: ∇²u = f on the
    unit cube with homogeneous Dirichlet boundaries.

    A manufactured solution u*(x,y,z) = sin(πx) sin(πy) sin(πz) gives
    f = -3π² u*, so simulated solves can be validated against a known
    answer as well as against the host reference implementation. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type problem = {
  grid : Grid.t;
  f : float array;
  mask : float array;
  exact : float array option;
}
val pi : float
(** The manufactured-solution problem: u* = sin πx · sin πy · sin πz,
    f = −3π²u*, so solves can be validated against a known answer. *)
val manufactured : int -> problem
val point_source : int -> problem
(** One reference Jacobi sweep per the paper's Equation 1; returns the
    max pointwise change (the residual convergence check). *)
val host_sweep : problem -> u:float array -> unew:float array -> float
(** Reference Jacobi iteration to tolerance; returns solution, sweep
    count, and the per-sweep change history. *)
val host_solve :
  problem -> tol:float -> max_iters:int -> float array * int * float list
val error_vs_exact : problem -> float array -> float option
(** Max-norm of the discrete residual f − ∇²u over interior points. *)
val residual_norm : problem -> float array -> float
