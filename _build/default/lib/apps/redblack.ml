(** Red-black Gauss-Seidel / SOR for the 3-D Poisson problem.

    A second CFD workload exercising a different diagram shape: each half
    sweep updates only one colour of the checkerboard, blending through a
    colour mask — unew = u + ω · mask_colour · (jacobi(u) − u) — so the
    machine's lack of scatter writes never bites.  ω = 1 is classic
    Gauss-Seidel (half the sweeps Jacobi needs); ω > 1 is successive
    over-relaxation, which the benches show converging in a fraction of
    the sweeps again.  The relaxation factor is one register-file constant
    in the diagram. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

(** Memory-plane layout: u copies on 0,1,2,6; h²f on 3; colour masks on 5
    and 9; the half-sweep result on 4; f on 7; interior mask on 8. *)
type layout = {
  sx : int;
  sy : int;
  sz : int;
  center : int;
  g : int;
  mask_red : int;
  mask_black : int;
  unew : int;
  f : int;
}

let default_layout =
  { sx = 0; sy = 1; sz = 2; center = 6; g = 3; mask_red = 5; mask_black = 9; unew = 4; f = 7 }

let u_planes l = List.sort_uniq compare [ l.sx; l.sy; l.sz; l.center ]
let u_var plane = Printf.sprintf "u%d" plane

(** Colour masks: interior points of one parity of i+j+k.  [omega] scales
    the mask, turning the blend unew = u + mask·(jacobi−u) into
    over-relaxation — the factor rides along in the mask plane, costing no
    extra functional unit. *)
let colour_mask ?(omega = 1.0) grid ~red =
  Grid.field_of grid (fun ~i ~j ~k ->
      if Grid.is_boundary grid ~i ~j ~k then 0.0
      else if (i + j + k) mod 2 = if red then 0 else 1 then omega
      else 0.0)

(* One half sweep: unew = u + mask · (jacobi(u) − u); the residual of the
   half sweep is max |mask · (jacobi(u) − u)|. *)
let build_half (p : Params.t) (grid : Grid.t) (l : layout) ~index ~label ~mask_plane
    ~mask_var : Pipeline.t * Resource.fu_id =
  let off1, offy, offz = Grid.offsets grid in
  let pad = Grid.pad grid in
  let pl = Pipeline.empty ~label index in
  let pl = Pipeline.with_vector_length pl (Grid.points grid) in
  let t0 = ref 0 and t1 = ref 0 and d0 = ref 0 and d1 = ref 0 and t2 = ref 0 in
  let pl =
    let i, pl = Builder.place pl ~params:p ~kind:Als.Triplet ~x:14 ~y:2 in
    t0 := i;
    let i, pl = Builder.place pl ~params:p ~kind:Als.Triplet ~x:32 ~y:2 in
    t1 := i;
    let i, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:50 ~y:2 in
    d0 := i;
    let i, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:50 ~y:12 in
    d1 := i;
    let i, pl = Builder.place pl ~params:p ~kind:Als.Doublet ~x:68 ~y:2 in
    t2 := i;
    pl
  in
  let t0 = !t0 and t1 = !t1 and d0 = !d0 and d1 = !d1 and t2 = !t2 in
  (* neighbour sum, minus g — same head as the Jacobi sweep *)
  let pl = Builder.mem_to_pad pl ~plane:l.sx ~var:(u_var l.sx) ~offset:(pad - off1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.sx ~var:(u_var l.sx) ~offset:(pad + off1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.sy ~var:(u_var l.sy) ~offset:(pad - offy) ~icon:t0 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.sy ~var:(u_var l.sy) ~offset:(pad + offy) ~icon:t0 ~pad:(Icon.In_pad (2, Resource.B)) () in
  let pl = Builder.config pl ~icon:t0 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:t0 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:t0 ~slot:2 ~a:Builder.chain ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.pad_to_pad pl ~from_icon:t0 ~from_pad:(Icon.Out_pad 2) ~to_icon:t1 ~to_pad:(Icon.In_pad (0, Resource.A)) in
  let pl = Builder.mem_to_pad pl ~plane:l.sz ~var:(u_var l.sz) ~offset:(pad - offz) ~icon:t1 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.sz ~var:(u_var l.sz) ~offset:(pad + offz) ~icon:t1 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.g ~var:"g" ~offset:pad ~icon:t1 ~pad:(Icon.In_pad (2, Resource.B)) () in
  let pl = Builder.config pl ~icon:t1 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:t1 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.config pl ~icon:t1 ~slot:2 ~a:Builder.chain ~b:Builder.sw Opcode.Fsub in
  (* d0: jacobi value, then delta = jacobi − u *)
  let pl = Builder.pad_to_pad pl ~from_icon:t1 ~from_pad:(Icon.Out_pad 2) ~to_icon:d0 ~to_pad:(Icon.In_pad (0, Resource.A)) in
  let pl = Builder.mem_to_pad pl ~plane:l.center ~var:(u_var l.center) ~offset:pad ~icon:d0 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Builder.config pl ~icon:d0 ~slot:0 ~a:Builder.sw ~b:(Builder.const (1.0 /. 6.0)) Opcode.Fmul in
  let pl = Builder.config pl ~icon:d0 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fsub in
  (* d1: masked delta, then unew = u + masked delta *)
  let pl = Builder.pad_to_pad pl ~from_icon:d0 ~from_pad:(Icon.Out_pad 1) ~to_icon:d1 ~to_pad:(Icon.In_pad (0, Resource.A)) in
  let pl = Builder.mem_to_pad pl ~plane:mask_plane ~var:mask_var ~offset:pad ~icon:d1 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Builder.mem_to_pad pl ~plane:l.center ~var:(u_var l.center) ~offset:pad ~icon:d1 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Builder.config pl ~icon:d1 ~slot:0 ~a:Builder.sw ~b:Builder.sw Opcode.Fmul in
  let pl = Builder.config pl ~icon:d1 ~slot:1 ~a:Builder.chain ~b:Builder.sw Opcode.Fadd in
  let pl = Builder.pad_to_mem pl ~icon:d1 ~pad:(Icon.Out_pad 1) ~plane:l.unew ~var:"unew" ~offset:pad () in
  (* residual: running max of |masked delta| *)
  let pl = Builder.pad_to_pad pl ~from_icon:d1 ~from_pad:(Icon.Out_pad 0) ~to_icon:t2 ~to_pad:(Icon.In_pad (0, Resource.A)) in
  let pl = Builder.config pl ~icon:t2 ~slot:0 ~a:Builder.sw Opcode.Fabs in
  let pl = Builder.config pl ~icon:t2 ~slot:1 ~a:Builder.chain ~b:(Builder.feedback 1) Opcode.Max in
  (pl, { Resource.als = Builder.als_of_icon pl t2; slot = 1 })

(* Refresh: copy unew over the u copies (shared shape with Jacobi). *)
let build_refresh (p : Params.t) (grid : Grid.t) (l : layout) ~index =
  let pad = Grid.pad grid in
  let pl = Pipeline.empty ~label:"refresh u copies" index in
  let pl = Pipeline.with_vector_length pl (Grid.points grid) in
  List.fold_left
    (fun pl plane ->
      let s, pl =
        Builder.place pl ~params:p ~kind:Als.Singlet ~x:(12 + (18 * (plane mod 4))) ~y:6
      in
      let pl = Builder.mem_to_pad pl ~plane:l.unew ~var:"unew" ~offset:pad ~icon:s ~pad:(Icon.In_pad (0, Resource.A)) () in
      let pl = Builder.config pl ~icon:s ~slot:0 ~a:Builder.sw Opcode.Pass in
      Builder.pad_to_mem pl ~icon:s ~pad:(Icon.Out_pad 0) ~plane ~var:(u_var plane) ~offset:pad ())
    pl (u_planes l)

type build = {
  program : Program.t;
  residual_unit : Resource.fu_id;
  layout : layout;
}

(** Build the red-black program: setup, then per iteration
    red half-sweep → refresh → black half-sweep → refresh, looping on the
    black half-sweep's captured change. *)
let build (kb : Knowledge.t) ?(layout = default_layout) (grid : Grid.t) ~tol ~max_iters :
    build =
  let p = Knowledge.params kb in
  let words = Grid.padded_words grid in
  let prog = Program.empty "redblack3d" in
  let vars =
    List.map (fun plane -> (u_var plane, plane)) (u_planes layout)
    @ [
        ("g", layout.g);
        ("mask_red", layout.mask_red);
        ("mask_black", layout.mask_black);
        ("unew", layout.unew);
        ("f", layout.f);
      ]
  in
  let prog = Builder.declare_all prog vars ~length:words in
  (* setup g = h²·f, reusing the Jacobi setup shape *)
  let setup =
    let pl = Pipeline.empty ~label:"setup: g = h^2 * f" 1 in
    let pl = Pipeline.with_vector_length pl words in
    let s0, pl = Builder.place pl ~params:p ~kind:Als.Singlet ~x:30 ~y:6 in
    let pl = Builder.mem_to_pad pl ~plane:layout.f ~var:"f" ~offset:0 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.A)) () in
    let h2 = grid.Grid.h *. grid.Grid.h in
    let pl = Builder.config pl ~icon:s0 ~slot:0 ~a:Builder.sw ~b:(Builder.const h2) Opcode.Fmul in
    Builder.pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane:layout.g ~var:"g" ~offset:0 ()
  in
  let red, _ =
    build_half p grid layout ~index:2 ~label:"red half-sweep" ~mask_plane:layout.mask_red
      ~mask_var:"mask_red"
  in
  let refresh1 = build_refresh p grid layout ~index:3 in
  let black, residual_unit =
    build_half p grid layout ~index:4 ~label:"black half-sweep"
      ~mask_plane:layout.mask_black ~mask_var:"mask_black"
  in
  let refresh2 = build_refresh p grid layout ~index:5 in
  let prog = { prog with Program.pipelines = [ setup; red; refresh1; black; refresh2 ] } in
  let prog =
    Program.set_control prog
      [
        Program.Exec 1;
        Program.While
          {
            condition =
              { Interrupt.unit_watched = residual_unit; relation = Interrupt.Rgt; threshold = tol };
            max_iterations = max_iters;
            body = [ Program.Exec 2; Program.Exec 3; Program.Exec 4; Program.Exec 5 ];
          };
        Program.Halt;
      ]
  in
  let prog = Balance.balance_program kb prog in
  { program = prog; residual_unit; layout }

(** Host reference: one full red-black iteration (red then black half
    sweep, Gauss-Seidel style, in place); returns max change of the black
    half (the quantity the NSC program's loop watches). *)
let host_iteration ?(omega = 1.0) (prob : Poisson.problem) ~(u : float array) =
  let g = prob.Poisson.grid in
  let s1, sy, sz = Grid.offsets g in
  let h2 = g.Grid.h *. g.Grid.h in
  let half red =
    let change = ref 0.0 in
    Grid.iter g (fun ~i ~j ~k ->
        if
          (not (Grid.is_boundary g ~i ~j ~k))
          && (i + j + k) mod 2 = (if red then 0 else 1)
        then begin
          let idx = Grid.index g ~i ~j ~k in
          let v =
            (u.(idx - s1) +. u.(idx + s1) +. u.(idx - sy) +. u.(idx + sy)
            +. u.(idx - sz) +. u.(idx + sz)
            -. (h2 *. prob.Poisson.f.(idx)))
            /. 6.0
          in
          let delta = omega *. (v -. u.(idx)) in
          let d = Float.abs delta in
          if d > !change then change := d;
          u.(idx) <- u.(idx) +. delta
        end);
    !change
  in
  ignore (half true);
  half false

(** Host solve, mirroring the NSC loop structure. *)
let host_solve ?omega (prob : Poisson.problem) ~tol ~max_iters =
  let u = Grid.field prob.Poisson.grid in
  let iters = ref 0 in
  let change = ref Float.infinity in
  while !iters < max_iters && !change > tol do
    change := host_iteration ?omega prob ~u;
    incr iters
  done;
  (u, !iters, !change)

(** Load problem data, including the (possibly over-relaxed) colour
    masks. *)
let load ?omega (node : Nsc_sim.Node.t) (b : build) (prob : Poisson.problem) =
  let grid = prob.Poisson.grid in
  Nsc_sim.Node.load_array node ~plane:b.layout.f ~base:0 prob.Poisson.f;
  Nsc_sim.Node.load_array node ~plane:b.layout.mask_red ~base:0
    (colour_mask ?omega grid ~red:true);
  Nsc_sim.Node.load_array node ~plane:b.layout.mask_black ~base:0
    (colour_mask ?omega grid ~red:false)

type outcome = {
  u : float array;
  iterations : int;  (** full red+black iterations *)
  final_change : float;
  stats : Nsc_sim.Sequencer.stats;
}

(** Compile and execute on a fresh node. *)
let solve (kb : Knowledge.t) ?layout ?omega (prob : Poisson.problem) ~tol ~max_iters :
    (outcome, string) result =
  let b = build kb ?layout prob.Poisson.grid ~tol ~max_iters in
  match Nsc_microcode.Codegen.compile kb b.program with
  | Error ds ->
      Error (String.concat "; " (List.map Diagnostic.to_string (Diagnostic.errors ds)))
  | Ok compiled -> (
      let node = Nsc_sim.Node.create (Knowledge.params kb) in
      load ?omega node b prob;
      match Nsc_sim.Sequencer.run node compiled with
      | Error e -> Error e
      | Ok outcome ->
          let stats = outcome.Nsc_sim.Sequencer.stats in
          Ok
            {
              u =
                Nsc_sim.Node.dump_array node ~plane:b.layout.unew ~base:0
                  ~len:(Grid.padded_words prob.Poisson.grid);
              iterations = (stats.Nsc_sim.Sequencer.instructions_executed - 1) / 4;
              final_change =
                List.assoc_opt b.residual_unit outcome.Nsc_sim.Sequencer.last_values
                |> Option.value ~default:Float.nan;
              stats;
            })
