(** Red-black Gauss-Seidel / SOR for the 3-D Poisson problem.

    A second CFD workload exercising a different diagram shape: each half
    sweep updates only one colour of the checkerboard, blending through a
    colour mask — unew = u + ω · mask_colour · (jacobi(u) − u) — so the
    machine's lack of scatter writes never bites.  ω = 1 is classic
    Gauss-Seidel (half the sweeps Jacobi needs); ω > 1 is successive
    over-relaxation, which the benches show converging in a fraction of
    the sweeps again.  The relaxation factor is one register-file constant
    in the diagram. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type layout = {
  sx : int;
  sy : int;
  sz : int;
  center : int;
  g : int;
  mask_red : int;
  mask_black : int;
  unew : int;
  f : int;
}
val default_layout : layout
val u_planes : layout -> int list
val u_var : int -> string
val colour_mask : ?omega:float -> Grid.t -> red:bool -> float array
val build_half :
  Nsc_arch.Params.t ->
  Grid.t ->
  layout ->
  index:int ->
  label:string ->
  mask_plane:Nsc_arch.Resource.plane_id ->
  mask_var:string -> Nsc_diagram.Pipeline.t * Nsc_arch.Resource.fu_id
val build_refresh :
  Nsc_arch.Params.t ->
  Grid.t -> layout -> index:int -> Nsc_diagram.Pipeline.t
type build = {
  program : Nsc_diagram.Program.t;
  residual_unit : Nsc_arch.Resource.fu_id;
  layout : layout;
}
val build :
  Nsc_arch.Knowledge.t ->
  ?layout:layout -> Grid.t -> tol:float -> max_iters:int -> build
val host_iteration :
  ?omega:float -> Poisson.problem -> u:float array -> float
val host_solve :
  ?omega:float ->
  Poisson.problem ->
  tol:float -> max_iters:int -> float array * int * float
val load :
  ?omega:float -> Nsc_sim.Node.t -> build -> Poisson.problem -> unit
type outcome = {
  u : float array;
  iterations : int;
  final_change : float;
  stats : Nsc_sim.Sequencer.stats;
}
val solve :
  Nsc_arch.Knowledge.t ->
  ?layout:layout ->
  ?omega:float ->
  Poisson.problem ->
  tol:float -> max_iters:int -> (outcome, string) result
