lib/arch/als.pp.ml: List Params Ppx_deriving_runtime Resource
