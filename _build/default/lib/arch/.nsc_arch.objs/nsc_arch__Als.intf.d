lib/arch/als.pp.mli: Format Params Resource
