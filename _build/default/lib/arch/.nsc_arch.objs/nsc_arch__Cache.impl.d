lib/arch/cache.pp.ml: Array Params Ppx_deriving_runtime Printf Resource
