lib/arch/cache.pp.mli: Format Params Resource
