lib/arch/capability.pp.ml: Fmt Ppx_deriving_runtime
