lib/arch/capability.pp.mli: Format
