lib/arch/dma.pp.ml: List Memory Params Ppx_deriving_runtime Printf Resource
