lib/arch/dma.pp.mli: Format Params Resource
