lib/arch/interrupt.pp.ml: Float Ppx_deriving_runtime Printf Resource
