lib/arch/interrupt.pp.mli: Format Resource
