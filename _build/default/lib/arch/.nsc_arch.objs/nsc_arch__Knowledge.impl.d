lib/arch/knowledge.pp.ml: List Opcode Option Params Printf Resource Switch
