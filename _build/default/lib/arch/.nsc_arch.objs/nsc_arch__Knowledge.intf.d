lib/arch/knowledge.pp.mli: Opcode Params Resource Switch
