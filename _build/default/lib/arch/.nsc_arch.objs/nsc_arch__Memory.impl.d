lib/arch/memory.pp.ml: Array Hashtbl List Params Ppx_deriving_runtime Printf Resource
