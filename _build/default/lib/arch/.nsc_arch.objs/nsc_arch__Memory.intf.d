lib/arch/memory.pp.mli: Format Hashtbl Params Resource
