lib/arch/opcode.pp.ml: Capability Params Ppx_deriving_runtime String
