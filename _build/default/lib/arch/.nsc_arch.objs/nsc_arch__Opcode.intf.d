lib/arch/opcode.pp.mli: Capability Format Params String
