lib/arch/params.pp.ml: List Ppx_deriving_runtime
