lib/arch/params.pp.mli: Format
