lib/arch/register_file.pp.ml: Array List Params Ppx_deriving_runtime Printf
