lib/arch/register_file.pp.mli: Format Params
