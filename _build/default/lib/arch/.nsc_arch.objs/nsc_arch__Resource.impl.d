lib/arch/resource.pp.ml: Capability Fmt List Params Ppx_deriving_runtime Printf
