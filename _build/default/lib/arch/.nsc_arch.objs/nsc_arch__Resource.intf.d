lib/arch/resource.pp.mli: Capability Format Params
