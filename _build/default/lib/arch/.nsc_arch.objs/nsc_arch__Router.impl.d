lib/arch/router.pp.ml: List Params Ppx_deriving_runtime
