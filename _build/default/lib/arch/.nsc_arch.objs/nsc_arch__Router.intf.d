lib/arch/router.pp.mli: Format Params
