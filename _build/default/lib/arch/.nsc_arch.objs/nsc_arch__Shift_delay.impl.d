lib/arch/shift_delay.pp.ml: Params Ppx_deriving_runtime Printf Register_file Resource
