lib/arch/shift_delay.pp.mli: Format Params Register_file Resource
