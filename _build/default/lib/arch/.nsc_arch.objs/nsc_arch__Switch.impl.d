lib/arch/switch.pp.ml: List Params Ppx_deriving_runtime Printf Resource
