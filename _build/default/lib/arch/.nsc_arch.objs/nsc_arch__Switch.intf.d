lib/arch/switch.pp.mli: Format Params Resource
