(** Arithmetic-logic structures: the hardwired groupings of functional units.

    The NSC hardwires its 32 functional units into singlets, doublets and
    triplets.  Within an ALS the units form a chain: the output of slot [k]
    can feed an operand of slot [k+1] without crossing the switch network.
    Doublets may also be configured to act as singlets by bypassing one of
    the units (the paper's Figure 4 shows both doublet representations). *)

type kind = Singlet | Doublet | Triplet [@@deriving show { with_path = false }, eq, ord]

let kind_size = function Singlet -> 1 | Doublet -> 2 | Triplet -> 3

let kind_to_string = function
  | Singlet -> "singlet"
  | Doublet -> "doublet"
  | Triplet -> "triplet"

let kind_of_string = function
  | "singlet" -> Some Singlet
  | "doublet" -> Some Doublet
  | "triplet" -> Some Triplet
  | _ -> None

(** Kind of ALS [a] under parameters [p] (singlets first, then doublets,
    then triplets — the convention fixed in {!Resource}). *)
let kind_of (p : Params.t) (a : Resource.als_id) : kind =
  match Resource.als_size p a with
  | 1 -> Singlet
  | 2 -> Doublet
  | 3 -> Triplet
  | _ -> assert false

(** ALS ids of a given kind under parameters [p]. *)
let ids_of_kind (p : Params.t) (k : kind) =
  List.filter (fun a -> equal_kind (kind_of p a) k) (Resource.all_als p)

(** A doublet configured with one unit bypassed, behaving as a singlet.
    [Keep_head] retains slot 0 (the integer-capable unit); [Keep_tail]
    retains slot 1 (the min/max-capable unit). *)
type bypass = No_bypass | Keep_head | Keep_tail
[@@deriving show { with_path = false }, eq, ord]

(** Slots that actually process data for an ALS of size [size] under the
    given bypass configuration. *)
let active_slots ~size = function
  | No_bypass -> List.init size (fun i -> i)
  | Keep_head -> [ 0 ]
  | Keep_tail -> [ size - 1 ]

(** Bypass configurations legal for an ALS of size [size]: bypassing is a
    doublet-only feature in the prototype. *)
let legal_bypasses ~size =
  if size = 2 then [ No_bypass; Keep_head; Keep_tail ] else [ No_bypass ]

(** The slot whose output leaves the ALS for the switch network. *)
let output_slot ~size = function
  | No_bypass -> size - 1
  | Keep_head -> 0
  | Keep_tail -> size - 1

(** External operand ports exposed by an ALS: the head unit exposes both
    operands; each chained unit's A port is fed internally, leaving its B
    port external.  With a bypass only the surviving unit's two ports are
    exposed. *)
let external_inputs ~size bypass : (int * Resource.port) list =
  match active_slots ~size bypass with
  | [] -> []
  | first :: rest ->
      ((first, Resource.A) : int * Resource.port)
      :: (first, Resource.B)
      :: List.map (fun slot -> (slot, Resource.B)) rest

(** Is port [port] of slot [slot] fed through the switch network (as opposed
    to being hardwired to the previous unit in the chain)? *)
let port_is_external ~size bypass ~slot ~port =
  List.exists
    (fun (s, pt) -> s = slot && Resource.equal_port pt port)
    (external_inputs ~size bypass)

(** The chain predecessor feeding [slot]'s A port internally, if any. *)
let chain_predecessor ~size bypass ~slot =
  match active_slots ~size bypass with
  | [] -> None
  | slots ->
      let rec find prev = function
        | [] -> None
        | s :: rest -> if s = slot then prev else find (Some s) rest
      in
      find None slots
