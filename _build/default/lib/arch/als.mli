(** Arithmetic-logic structures: the hardwired groupings of functional units.

    The NSC hardwires its 32 functional units into singlets, doublets and
    triplets.  Within an ALS the units form a chain: the output of slot [k]
    can feed an operand of slot [k+1] without crossing the switch network.
    Doublets may also be configured to act as singlets by bypassing one of
    the units (the paper's Figure 4 shows both doublet representations). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type kind = Singlet | Doublet | Triplet
val pp_kind :
  Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int
val kind_size : kind -> int
val kind_to_string : kind -> string
(** Kind of an ALS id under the singlets-doublets-triplets numbering. *)
val kind_of_string : string -> kind option
val kind_of : Params.t -> Resource.als_id -> kind
(** ALS ids of a given kind. *)
val ids_of_kind : Params.t -> kind -> Resource.als_id list
type bypass = No_bypass | Keep_head | Keep_tail
val pp_bypass :
  Format.formatter ->
  bypass -> unit
val show_bypass : bypass -> string
val equal_bypass : bypass -> bypass -> bool
val compare_bypass : bypass -> bypass -> int
(** Slots that actually process data under the bypass configuration. *)
val active_slots : size:int -> bypass -> int list
(** Bypassing is a doublet-only feature in the prototype. *)
val legal_bypasses : size:int -> bypass list
(** The slot whose output leaves the ALS for the switch network. *)
val output_slot : size:int -> bypass -> int
(** Operand ports fed through the switch (the head unit exposes both;
    each chained unit's A port arrives over the internal chain). *)
val external_inputs :
  size:int -> bypass -> (int * Resource.port) list
(** Is the port switch-fed, as opposed to hardwired to the chain? *)
val port_is_external :
  size:int -> bypass -> slot:int -> port:Resource.port -> bool
(** The chain predecessor feeding a slot's A port internally, if any. *)
val chain_predecessor : size:int -> bypass -> slot:int -> int option
