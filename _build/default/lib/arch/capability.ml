(** Functional-unit capabilities.

    Every functional unit in the NSC performs floating-point operations; only
    designated units within an ALS carry the extra integer/logical circuitry
    (drawn as "double box" units in the paper's Figure 4) or the min/max
    circuitry.  These asymmetries are a prime source of programming errors
    and are enforced by the checker. *)

type t =
  | Float        (** floating-point arithmetic — present in every unit *)
  | Int_logical  (** integer and logical operations ("double box" units) *)
  | Min_max      (** minimum/maximum computations *)
[@@deriving show { with_path = false }, eq, ord]

let all = [ Float; Int_logical; Min_max ]

let to_string = function
  | Float -> "float"
  | Int_logical -> "int/logical"
  | Min_max -> "min/max"

let pp_short ppf c = Fmt.string ppf (to_string c)
