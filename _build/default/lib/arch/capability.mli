(** Functional-unit capabilities.

    Every functional unit in the NSC performs floating-point operations; only
    designated units within an ALS carry the extra integer/logical circuitry
    (drawn as "double box" units in the paper's Figure 4) or the min/max
    circuitry.  These asymmetries are a prime source of programming errors
    and are enforced by the checker. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type t = Float | Int_logical | Min_max
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val all : t list
val to_string : t -> string
val pp_short : Format.formatter -> t -> unit
