(** The architecture knowledge base, as queried by the checker and editor.

    The paper's checker "contains, in a knowledge base or other suitable
    representation, detailed information about the architecture of the NSC,
    so far as it is relevant to the programming process".  This module is
    that representation: a bundle of machine parameters plus derived query
    functions the editor uses to populate menus with only-legal choices and
    the checker uses to validate diagrams. *)

type t = { params : Params.t }

let make params =
  match Params.validate params with
  | [] -> Ok { params }
  | problems -> Error problems

let make_exn params =
  match make params with
  | Ok kb -> kb
  | Error (p :: _) -> invalid_arg ("Knowledge.make_exn: " ^ p)
  | Error [] -> assert false

let default = make_exn Params.default
let subset = make_exn Params.subset_model
let params kb = kb.params

(** Opcodes a given functional unit may legally execute. *)
let legal_opcodes kb fu =
  List.filter
    (fun op ->
      Resource.fu_has_capability kb.params fu (Opcode.required_capability op))
    Opcode.all

(** Functional units able to execute a given opcode. *)
let units_for_opcode kb op =
  let cap = Opcode.required_capability op in
  List.filter (fun fu -> Resource.fu_has_capability kb.params fu cap)
    (Resource.all_fus kb.params)

(** All sources the switch could offer a menu for (the editor filters these
    further against the current routing table). *)
let all_sources kb : Resource.source list =
  let p = kb.params in
  List.map (fun fu -> Resource.Src_fu fu) (Resource.all_fus p)
  @ List.concat_map
      (fun pl -> List.init p.plane_dma_slots (fun e -> Resource.Src_memory (pl, e)))
      (List.init p.n_memory_planes (fun i -> i))
  @ List.concat_map
      (fun c -> List.init p.cache_dma_slots (fun e -> Resource.Src_cache (c, e)))
      (List.init p.n_caches (fun i -> i))
  @ List.init p.n_shift_delay (fun s -> Resource.Src_shift_delay s)

(** All sinks the switch network exposes. *)
let all_sinks kb : Resource.sink list =
  let p = kb.params in
  List.concat_map
    (fun fu -> [ Resource.Snk_fu (fu, Resource.A); Resource.Snk_fu (fu, Resource.B) ])
    (Resource.all_fus p)
  @ List.concat_map
      (fun pl -> List.init p.plane_dma_slots (fun e -> Resource.Snk_memory (pl, e)))
      (List.init p.n_memory_planes (fun i -> i))
  @ List.concat_map
      (fun c -> List.init p.cache_dma_slots (fun e -> Resource.Snk_cache (c, e)))
      (List.init p.n_caches (fun i -> i))
  @ List.init p.n_shift_delay (fun s -> Resource.Snk_shift_delay s)

(** Sources that may legally be offered for [snk] given routing table [table]:
    the menu contents behind the paper's "menu pops up showing the available
    choices".  Filters out everything {!Switch.check} would reject. *)
let legal_sources_for kb table snk =
  List.filter
    (fun src -> Option.is_none (Switch.check table { Switch.src; snk }))
    (all_sources kb)

(** Memory planes with no writer yet under [table] — the planes the editor
    may offer when the user routes a pipeline output to memory. *)
let writable_planes kb table =
  List.filter
    (fun p -> Switch.plane_writers table p = [])
    (List.init kb.params.n_memory_planes (fun p -> p))

(** One-line summary of the machine, for banners and listings. *)
let summary kb =
  let p = kb.params in
  Printf.sprintf
    "NSC node: %d FUs (%d singlets, %d doublets, %d triplets), %d planes x %d MB, %d \
     caches, %d shift/delay, %.0f MHz, peak %.0f MFLOPS"
    (Params.n_functional_units p)
    p.n_singlets p.n_doublets p.n_triplets p.n_memory_planes
    (p.memory_plane_words * 8 / (1024 * 1024))
    p.n_caches p.n_shift_delay p.clock_mhz (Params.peak_mflops p)
