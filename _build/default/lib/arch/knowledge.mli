(** The architecture knowledge base, as queried by the checker and editor.

    The paper's checker "contains, in a knowledge base or other suitable
    representation, detailed information about the architecture of the NSC,
    so far as it is relevant to the programming process".  This module is
    that representation: a bundle of machine parameters plus derived query
    functions the editor uses to populate menus with only-legal choices and
    the checker uses to validate diagrams.

    A change to the machine design is accommodated "merely by updating the
    knowledge base": construct a [t] from revised {!Params.t} and every
    downstream layer — icons, checker rules, microcode layout, simulator —
    follows. *)

type t = { params : Params.t }

(** Build a knowledge base, validating the parameters; [Error] lists the
    inconsistencies found. *)
val make : Params.t -> (t, string list) result

(** Like {!make} but raises [Invalid_argument] on inconsistent parameters. *)
val make_exn : Params.t -> t

(** The default machine: the paper's figures (32 units, 640 MFLOPS, 2 GB). *)
val default : t

(** The restricted model of the paper's Section 6 programmability
    discussion: no triplets, half the planes, shallower queues. *)
val subset : t

val params : t -> Params.t

(** Opcodes a given functional unit may legally execute, per its
    capability circuitry. *)
val legal_opcodes : t -> Resource.fu_id -> Opcode.t list

(** Functional units able to execute a given opcode. *)
val units_for_opcode : t -> Opcode.t -> Resource.fu_id list

(** Every switch source of the machine (functional-unit taps, plane and
    cache DMA engines, shift/delay outputs). *)
val all_sources : t -> Resource.source list

(** Every switch sink of the machine. *)
val all_sinks : t -> Resource.sink list

(** Sources that may legally be offered for [snk] given routing table
    [table]: the menu contents behind the paper's "menu pops up showing
    the available choices".  Everything {!Switch.check} would reject is
    filtered out. *)
val legal_sources_for : t -> Switch.t -> Resource.sink -> Resource.source list

(** Memory planes with no writer yet under the routing table — the planes
    the editor may offer when the user routes a pipeline output to
    memory. *)
val writable_planes : t -> Switch.t -> Resource.plane_id list

(** One-line machine summary for banners and listings. *)
val summary : t -> string
