(** Operations a functional unit can be programmed to perform.

    Each opcode records the capability it demands, its operand arity, the
    latency class used for pipeline-timing analysis, and whether executing it
    counts as a floating-point operation for MFLOPS accounting. *)

type cmp = Lt | Le | Eq | Ne | Ge | Gt [@@deriving show { with_path = false }, eq, ord]

type t =
  | Pass             (** route the A operand through unchanged *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | Fabs
  | Fcmp of cmp      (** floating compare producing 1.0 / 0.0 *)
  | Iadd
  | Isub
  | Imul
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  | Max
  | Min
[@@deriving show { with_path = false }, eq, ord]

let all =
  [
    Pass; Fadd; Fsub; Fmul; Fdiv; Fneg; Fabs;
    Fcmp Lt; Fcmp Le; Fcmp Eq; Fcmp Ne; Fcmp Ge; Fcmp Gt;
    Iadd; Isub; Imul; Iand; Ior; Ixor; Ishl; Ishr; Max; Min;
  ]

(** Capability a unit must possess to execute the opcode. *)
let required_capability = function
  | Pass | Fadd | Fsub | Fmul | Fdiv | Fneg | Fabs | Fcmp _ -> Capability.Float
  | Iadd | Isub | Imul | Iand | Ior | Ixor | Ishl | Ishr -> Capability.Int_logical
  | Max | Min -> Capability.Min_max

(** Number of operands consumed (1 or 2). *)
let arity = function
  | Pass | Fneg | Fabs -> 1
  | Fadd | Fsub | Fmul | Fdiv | Fcmp _ | Iadd | Isub | Imul | Iand | Ior
  | Ixor | Ishl | Ishr | Max | Min ->
      2

(** Pipeline latency in cycles, drawn from the machine parameters. *)
let latency (lat : Params.latencies) = function
  | Pass -> lat.lat_pass
  | Fadd | Fsub | Fneg | Fabs -> lat.lat_fadd
  | Fmul -> lat.lat_fmul
  | Fdiv -> lat.lat_fdiv
  | Fcmp _ -> lat.lat_cmp
  | Iadd | Isub | Imul | Iand | Ior | Ixor | Ishl | Ishr -> lat.lat_int
  | Max | Min -> lat.lat_minmax

(** Does the opcode count toward floating-point-operation totals? *)
let is_flop = function
  | Fadd | Fsub | Fmul | Fdiv | Fneg | Fabs | Fcmp _ | Max | Min -> true
  | Pass | Iadd | Isub | Imul | Iand | Ior | Ixor | Ishl | Ishr -> false

let cmp_to_string = function
  | Lt -> "<" | Le -> "<=" | Eq -> "=" | Ne -> "<>" | Ge -> ">=" | Gt -> ">"

(** Mnemonic used in listings, menus and microcode disassembly. *)
let mnemonic = function
  | Pass -> "pass"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fneg -> "fneg"
  | Fabs -> "fabs"
  | Fcmp c -> "fcmp" ^ cmp_to_string c
  | Iadd -> "iadd"
  | Isub -> "isub"
  | Imul -> "imul"
  | Iand -> "iand"
  | Ior -> "ior"
  | Ixor -> "ixor"
  | Ishl -> "ishl"
  | Ishr -> "ishr"
  | Max -> "max"
  | Min -> "min"

let of_mnemonic s =
  let rec find = function
    | [] -> None
    | op :: rest -> if String.equal (mnemonic op) s then Some op else find rest
  in
  find all

(** Encoding used in the microcode opcode field (stable across runs). *)
let to_code op =
  let rec index i = function
    | [] -> invalid_arg "Opcode.to_code"
    | o :: rest -> if equal o op then i else index (i + 1) rest
  in
  index 1 all (* 0 is reserved for "unit idle" *)

let of_code = function
  | 0 -> None
  | n ->
      let rec nth i = function
        | [] -> None
        | o :: rest -> if i = n then Some o else nth (i + 1) rest
      in
      nth 1 all
