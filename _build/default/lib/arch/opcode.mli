(** Operations a functional unit can be programmed to perform.

    Each opcode records the capability it demands, its operand arity, the
    latency class used for pipeline-timing analysis, and whether executing it
    counts as a floating-point operation for MFLOPS accounting. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type cmp = Lt | Le | Eq | Ne | Ge | Gt
val pp_cmp :
  Format.formatter -> cmp -> unit
val show_cmp : cmp -> string
val equal_cmp : cmp -> cmp -> bool
val compare_cmp : cmp -> cmp -> int
type t =
    Pass
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | Fabs
  | Fcmp of cmp
  | Iadd
  | Isub
  | Imul
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  | Max
  | Min
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val all : t list
(** Capability a unit must possess to execute the opcode. *)
val required_capability : t -> Capability.t
(** Number of operands consumed (1 or 2). *)
val arity : t -> int
(** Pipeline latency in cycles, drawn from the machine parameters. *)
val latency : Params.latencies -> t -> int
(** Does the opcode count toward floating-point-operation totals? *)
val is_flop : t -> bool
val cmp_to_string : cmp -> string
(** Mnemonic used in listings, menus and microcode disassembly. *)
val mnemonic : t -> string
val of_mnemonic : String.t -> t option
(** Encoding used in the microcode opcode field; 0 means "unit idle". *)
val to_code : t -> int
val of_code : int -> t option
