(** Machine parameters of a Navier-Stokes Computer node.

    The values below form the "knowledge base" of machine facts the paper's
    checker carries (Section 4): counts and sizes of every hardware resource,
    functional-unit latencies, and switch-network limits.  Everything in the
    rest of the system is parameterised over a [t], so a revised machine
    design is accommodated "merely by updating the knowledge base".

    Defaults reproduce the figures quoted in the paper: 32 functional units
    per node arranged into singlets, doublets and triplets; 16 memory planes
    of 128 Mbytes (2 Gbytes per node); 16 double-buffered data caches; two
    shift/delay units; and a 20 MHz clock so that 32 units x 20 MHz x 1 flop
    = 640 MFLOPS peak per node. *)

type latencies = {
  lat_pass : int;     (** identity / route-through *)
  lat_fadd : int;     (** floating add/subtract/negate/abs *)
  lat_fmul : int;     (** floating multiply *)
  lat_fdiv : int;     (** floating divide *)
  lat_int : int;      (** integer / logical operations *)
  lat_minmax : int;   (** min/max circuitry *)
  lat_cmp : int;      (** floating compare *)
}
[@@deriving show, eq]

type t = {
  n_singlets : int;         (** ALSs containing one functional unit *)
  n_doublets : int;         (** ALSs containing two functional units *)
  n_triplets : int;         (** ALSs containing three functional units *)
  n_memory_planes : int;    (** independent memory planes per node *)
  memory_plane_words : int; (** 64-bit words per memory plane *)
  n_caches : int;           (** double-buffered data caches per node *)
  cache_words : int;        (** 64-bit words per cache buffer *)
  n_shift_delay : int;      (** shift/delay units per node *)
  rf_registers : int;       (** registers in each per-unit register file *)
  rf_max_delay : int;       (** deepest circular delay queue a register file
                                can realise (paper: buffering "to adjust for
                                pipeline timing delays") *)
  plane_read_ports : int;   (** read-stream words a plane's port serves per
                                cycle; more active read streams than this
                                stalls the pipeline *)
  plane_write_ports : int;  (** concurrent write streams per plane; the
                                editor refuses a second writer outright *)
  plane_dma_slots : int;    (** DMA stream engines per memory plane — the
                                hard limit on streams a plane can source or
                                sink in one instruction *)
  cache_dma_slots : int;    (** DMA stream engines per cache *)
  switch_fanout : int;      (** maximum sinks fed by one switch source *)
  switch_capacity : int;    (** total simultaneous routes in the network *)
  clock_mhz : float;        (** node clock, MHz *)
  reconfig_cycles : int;    (** cycles the sequencer spends reprogramming the
                                switches between pipeline instructions *)
  latencies : latencies;
  hypercube_dim : int;      (** log2 of the machine's node count *)
  link_words_per_cycle : float; (** hyperspace-router link bandwidth *)
  hop_latency : int;        (** cycles added per router hop *)
}
[@@deriving show, eq]

let default_latencies =
  {
    lat_pass = 1;
    lat_fadd = 6;
    lat_fmul = 7;
    lat_fdiv = 20;
    lat_int = 2;
    lat_minmax = 4;
    lat_cmp = 4;
  }

let default =
  {
    n_singlets = 4;
    n_doublets = 8;
    n_triplets = 4;
    n_memory_planes = 16;
    memory_plane_words = 16 * 1024 * 1024 (* 128 MB of 64-bit words *);
    n_caches = 16;
    cache_words = 8 * 1024;
    n_shift_delay = 2;
    rf_registers = 128;
    rf_max_delay = 96;
    plane_read_ports = 2;
    plane_write_ports = 1;
    plane_dma_slots = 4;
    cache_dma_slots = 2;
    switch_fanout = 4;
    switch_capacity = 128;
    clock_mhz = 20.0;
    reconfig_cycles = 16;
    latencies = default_latencies;
    hypercube_dim = 6;
    link_words_per_cycle = 0.5;
    hop_latency = 8;
  }

(** Total functional units in a node: the paper's "32 functional units". *)
let n_functional_units p = p.n_singlets + (2 * p.n_doublets) + (3 * p.n_triplets)

(** Total arithmetic-logic structures in a node. *)
let n_als p = p.n_singlets + p.n_doublets + p.n_triplets

(** Peak MFLOPS of one node: one flop per functional unit per cycle.  With
    the default parameters this is the paper's 640 MFLOPS figure. *)
let peak_mflops p = float_of_int (n_functional_units p) *. p.clock_mhz

(** Peak GFLOPS of the full hypercube (the paper's 40 GFLOPS for 64 nodes). *)
let peak_gflops_machine p =
  peak_mflops p *. float_of_int (1 lsl p.hypercube_dim) /. 1000.0

(** Node memory in bytes (the paper's 2 Gbytes). *)
let node_memory_bytes p = p.n_memory_planes * p.memory_plane_words * 8

(** A deliberately restricted machine model for the paper's Section 6
    programmability-versus-performance discussion: no triplets, half the
    memory planes, shallower delay queues.  Easier to map code onto, slower
    in absolute terms. *)
let subset_model =
  {
    default with
    n_singlets = 8;
    n_doublets = 6;
    n_triplets = 0;
    n_memory_planes = 8;
    n_caches = 8;
    rf_max_delay = 32;
  }

(** [validate p] checks internal consistency of a parameter record and
    returns a list of human-readable problems (empty when sound). *)
let validate p =
  let problems = ref [] in
  let need cond msg = if not cond then problems := msg :: !problems in
  need (p.n_singlets >= 0 && p.n_doublets >= 0 && p.n_triplets >= 0)
    "ALS counts must be non-negative";
  need (n_als p > 0) "machine must contain at least one ALS";
  need (p.n_memory_planes > 0) "machine must contain at least one memory plane";
  need (p.memory_plane_words > 0) "memory planes must be non-empty";
  need (p.n_caches >= 0) "cache count must be non-negative";
  need (p.cache_words > 0) "caches must be non-empty";
  need (p.n_shift_delay >= 0) "shift/delay count must be non-negative";
  need (p.rf_registers > 0) "register files must be non-empty";
  need
    (p.rf_max_delay > 0 && p.rf_max_delay <= p.rf_registers)
    "delay queues must fit inside the register file";
  need (p.plane_read_ports > 0) "planes must expose at least one read port";
  need (p.plane_write_ports > 0) "planes must expose at least one write port";
  need
    (p.plane_dma_slots >= p.plane_read_ports + p.plane_write_ports)
    "planes need at least as many DMA engines as ports";
  need (p.cache_dma_slots >= 1) "caches need at least one DMA engine";
  need (p.switch_fanout > 0) "switch fanout must be positive";
  need (p.switch_capacity > 0) "switch capacity must be positive";
  need (p.clock_mhz > 0.0) "clock must be positive";
  need (p.reconfig_cycles >= 0) "reconfiguration cost must be non-negative";
  need (p.hypercube_dim >= 0) "hypercube dimension must be non-negative";
  need (p.hop_latency >= 0) "hop latency must be non-negative";
  need (p.link_words_per_cycle > 0.0) "link bandwidth must be positive";
  List.rev !problems
