(** Machine parameters of a Navier-Stokes Computer node.

    The values below form the "knowledge base" of machine facts the paper's
    checker carries (Section 4): counts and sizes of every hardware resource,
    functional-unit latencies, and switch-network limits.  Everything in the
    rest of the system is parameterised over a [t], so a revised machine
    design is accommodated "merely by updating the knowledge base".

    Defaults reproduce the figures quoted in the paper: 32 functional units
    per node arranged into singlets, doublets and triplets; 16 memory planes
    of 128 Mbytes (2 Gbytes per node); 16 double-buffered data caches; two
    shift/delay units; and a 20 MHz clock so that 32 units x 20 MHz x 1 flop
    = 640 MFLOPS peak per node. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type latencies = {
  lat_pass : int;
  lat_fadd : int;
  lat_fmul : int;
  lat_fdiv : int;
  lat_int : int;
  lat_minmax : int;
  lat_cmp : int;
}
val pp_latencies :
  Format.formatter ->
  latencies -> unit
val show_latencies : latencies -> string
val equal_latencies : latencies -> latencies -> bool
type t = {
  n_singlets : int;
  n_doublets : int;
  n_triplets : int;
  n_memory_planes : int;
  memory_plane_words : int;
  n_caches : int;
  cache_words : int;
  n_shift_delay : int;
  rf_registers : int;
  rf_max_delay : int;
  plane_read_ports : int;
  plane_write_ports : int;
  plane_dma_slots : int;
  cache_dma_slots : int;
  switch_fanout : int;
  switch_capacity : int;
  clock_mhz : float;
  reconfig_cycles : int;
  latencies : latencies;
  hypercube_dim : int;
  link_words_per_cycle : float;
  hop_latency : int;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
(** Latencies of the default machine (divide slowest, pass cheapest). *)
(** The default machine: reproduces the paper's figures — 32 functional
    units (4 singlets + 8 doublets + 4 triplets), 16 planes x 128 MB,
    20 MHz so that peak is exactly 640 MFLOPS per node. *)
val default_latencies : latencies
val default : t
(** Total functional units in a node: the paper's "32". *)
val n_functional_units : t -> int
(** Total arithmetic-logic structures in a node. *)
val n_als : t -> int
(** Peak MFLOPS of one node (one flop per unit per cycle). *)
val peak_mflops : t -> float
(** Peak GFLOPS of the full hypercube (the paper's 40 for 64 nodes). *)
val peak_gflops_machine : t -> float
(** Node memory in bytes (the paper's 2 Gbytes). *)
val node_memory_bytes : t -> int
(** The deliberately restricted machine of the paper's Section 6
    programmability-versus-performance discussion. *)
val subset_model : t
(** Internal-consistency problems of a parameter record (empty = sound). *)
val validate : t -> string list
