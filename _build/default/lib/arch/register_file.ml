(** Per-unit register files.

    Each functional unit owns a register file used for two purposes the
    paper calls out: holding constants or intermediate values, and buffering
    a stream through a circular queue so that vector operands arrive at a
    unit in step ("to adjust for pipeline timing delays").

    This module provides the static descriptors (validated against the
    machine parameters) and the dynamic circular-queue state the simulator
    steps. *)

(** How a register file participates in one pipeline instruction. *)
type usage = {
  constants : (int * float) list;
      (** register index [->] constant value preloaded before the run *)
  delay_a : int;  (** circular-queue depth applied to the unit's A operand *)
  delay_b : int;  (** circular-queue depth applied to the unit's B operand *)
}
[@@deriving show { with_path = false }, eq]

let no_usage = { constants = []; delay_a = 0; delay_b = 0 }

(** Registers consumed by a usage: one per constant plus the two queues. *)
let registers_used u = List.length u.constants + u.delay_a + u.delay_b

(** Validate a usage against machine parameters; returns problems found. *)
let validate (p : Params.t) (u : usage) =
  let problems = ref [] in
  let need cond msg = if not cond then problems := msg :: !problems in
  need (u.delay_a >= 0 && u.delay_b >= 0) "delay-queue depths must be non-negative";
  need (u.delay_a <= p.rf_max_delay)
    (Printf.sprintf "A-operand delay %d exceeds maximum %d" u.delay_a p.rf_max_delay);
  need (u.delay_b <= p.rf_max_delay)
    (Printf.sprintf "B-operand delay %d exceeds maximum %d" u.delay_b p.rf_max_delay);
  List.iter
    (fun (idx, _) ->
      need (idx >= 0 && idx < p.rf_registers)
        (Printf.sprintf "constant register %d outside file of %d registers" idx
           p.rf_registers))
    u.constants;
  let indices = List.map fst u.constants in
  need
    (List.length indices = List.length (List.sort_uniq compare indices))
    "constant registers must be distinct";
  need (registers_used u <= p.rf_registers)
    (Printf.sprintf "usage requires %d registers but the file holds %d"
       (registers_used u) p.rf_registers);
  List.rev !problems

(** Dynamic circular delay queue.  A queue of depth [d] returns, for each
    pushed element, the element pushed [d] steps earlier ([fill] until then —
    streams are zero-primed, matching the simulator's vector semantics). *)
type queue = { depth : int; buf : float array; mutable head : int }

let make_queue ?(fill = 0.0) depth =
  if depth < 0 then invalid_arg "Register_file.make_queue";
  { depth; buf = Array.make (max depth 1) fill; head = 0 }

(** Push [x]; return the value delayed by the queue's depth.  Depth 0 is the
    identity. *)
let push q x =
  if q.depth = 0 then x
  else begin
    let out = q.buf.(q.head) in
    q.buf.(q.head) <- x;
    q.head <- (q.head + 1) mod q.depth;
    out
  end

let reset ?(fill = 0.0) q =
  Array.fill q.buf 0 (Array.length q.buf) fill;
  q.head <- 0
