(** Per-unit register files.

    Each functional unit owns a register file used for two purposes the
    paper calls out: holding constants or intermediate values, and buffering
    a stream through a circular queue so that vector operands arrive at a
    unit in step ("to adjust for pipeline timing delays").

    This module provides the static descriptors (validated against the
    machine parameters) and the dynamic circular-queue state the simulator
    steps. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type usage = {
  constants : (int * float) list;
  delay_a : int;
  delay_b : int;
}
val pp_usage :
  Format.formatter -> usage -> unit
val show_usage : usage -> string
val equal_usage : usage -> usage -> bool
val no_usage : usage
val registers_used : usage -> int
val validate : Params.t -> usage -> string list
type queue = { depth : int; buf : float array; mutable head : int; }
val make_queue : ?fill:float -> int -> queue
val push : queue -> float -> float
val reset : ?fill:float -> queue -> unit
