(** Identifiers for the hardware resources of a node.

    All higher layers (diagrams, checker, microcode, simulator) refer to
    hardware through these identifiers, so the naming scheme is fixed here
    once: ALSs are numbered with singlets first, then doublets, then
    triplets; functional units are addressed as (ALS, slot). *)

type als_id = int [@@deriving show, eq, ord]
type plane_id = int [@@deriving show, eq, ord]
type cache_id = int [@@deriving show, eq, ord]
type sd_id = int [@@deriving show, eq, ord]

(** A functional unit: slot [0] is the head of the ALS's internal chain. *)
type fu_id = { als : als_id; slot : int } [@@deriving show { with_path = false }, eq, ord]

(** Operand ports of a functional unit. *)
type port = A | B [@@deriving show { with_path = false }, eq, ord]

let port_to_string = function A -> "a" | B -> "b"

(** Data producers the switch network can route from.  Memory and cache
    streams are identified by their DMA engine slot, not just the device: a
    plane pumping two differently-strided streams does so through two
    engines, and the switch routes each engine's output separately. *)
type source =
  | Src_fu of fu_id                 (** tapped output of a functional unit *)
  | Src_memory of plane_id * int    (** plane read stream: (plane, engine) *)
  | Src_cache of cache_id * int     (** cache read stream: (cache, engine) *)
  | Src_shift_delay of sd_id
[@@deriving show { with_path = false }, eq, ord]

(** Data consumers the switch network can route to. *)
type sink =
  | Snk_fu of fu_id * port
  | Snk_memory of plane_id * int    (** plane write stream: (plane, engine) *)
  | Snk_cache of cache_id * int
  | Snk_shift_delay of sd_id
[@@deriving show { with_path = false }, eq, ord]

let fu_to_string { als; slot } = Printf.sprintf "als%d.u%d" als slot

let source_to_string = function
  | Src_fu fu -> fu_to_string fu
  | Src_memory (p, e) -> Printf.sprintf "mem%d.e%d" p e
  | Src_cache (c, e) -> Printf.sprintf "cache%d.e%d" c e
  | Src_shift_delay s -> Printf.sprintf "sd%d" s

let sink_to_string = function
  | Snk_fu (fu, p) -> Printf.sprintf "%s.%s" (fu_to_string fu) (port_to_string p)
  | Snk_memory (p, e) -> Printf.sprintf "mem%d.e%d" p e
  | Snk_cache (c, e) -> Printf.sprintf "cache%d.e%d" c e
  | Snk_shift_delay s -> Printf.sprintf "sd%d" s

let pp_source ppf s = Fmt.string ppf (source_to_string s)
let pp_sink ppf s = Fmt.string ppf (sink_to_string s)

(** Kind of ALS an [als_id] denotes under parameters [p]. *)
let als_kind_counts (p : Params.t) = (p.n_singlets, p.n_doublets, p.n_triplets)

(** Number of functional-unit slots in ALS [a] under parameters [p]. *)
let als_size (p : Params.t) (a : als_id) =
  if a < 0 then invalid_arg "Resource.als_size: negative ALS id"
  else if a < p.n_singlets then 1
  else if a < p.n_singlets + p.n_doublets then 2
  else if a < Params.n_als p then 3
  else invalid_arg "Resource.als_size: ALS id out of range"

(** Is [fu] a valid functional-unit id under parameters [p]? *)
let fu_valid (p : Params.t) (fu : fu_id) =
  fu.als >= 0 && fu.als < Params.n_als p && fu.slot >= 0
  && fu.slot < als_size p fu.als

(** Dense global index of a functional unit, used by the microcode layout.
    Units are numbered ALS by ALS, slot by slot. *)
let fu_global_index (p : Params.t) (fu : fu_id) =
  if not (fu_valid p fu) then invalid_arg "Resource.fu_global_index";
  let rec sum a acc = if a >= fu.als then acc else sum (a + 1) (acc + als_size p a) in
  sum 0 0 + fu.slot

(** Inverse of [fu_global_index]. *)
let fu_of_global_index (p : Params.t) idx =
  if idx < 0 || idx >= Params.n_functional_units p then
    invalid_arg "Resource.fu_of_global_index";
  let rec scan a off =
    let sz = als_size p a in
    if off < sz then { als = a; slot = off } else scan (a + 1) (off - sz)
  in
  scan 0 idx

(** All ALS ids of a node, in order. *)
let all_als (p : Params.t) = List.init (Params.n_als p) (fun a -> a)

(** All functional units of a node, in global-index order. *)
let all_fus (p : Params.t) =
  List.concat_map
    (fun a -> List.init (als_size p a) (fun slot -> { als = a; slot }))
    (all_als p)

(** Capabilities of a functional unit.  The knowledge-base convention,
    mirroring the paper's asymmetries: every unit computes in floating
    point; in multi-unit ALSs the head slot carries the integer/logical
    circuitry ("double box") and the tail slot the min/max circuitry; a
    singlet's lone unit carries only floating point. *)
let fu_capabilities (p : Params.t) (fu : fu_id) : Capability.t list =
  let sz = als_size p fu.als in
  let caps = [ Capability.Float ] in
  let caps = if sz > 1 && fu.slot = 0 then Capability.Int_logical :: caps else caps in
  let caps = if sz > 1 && fu.slot = sz - 1 then Capability.Min_max :: caps else caps in
  caps

let fu_has_capability p fu cap =
  List.exists (Capability.equal cap) (fu_capabilities p fu)

(** Stable integer encodings of sources and sinks for the microcode switch
    fields.  0 is reserved for "unrouted". *)
let source_code (p : Params.t) = function
  | Src_fu fu -> 1 + fu_global_index p fu
  | Src_memory (pl, e) ->
      1 + Params.n_functional_units p + (pl * p.plane_dma_slots) + e
  | Src_cache (c, e) ->
      1 + Params.n_functional_units p
      + (p.n_memory_planes * p.plane_dma_slots)
      + (c * p.cache_dma_slots) + e
  | Src_shift_delay s ->
      1 + Params.n_functional_units p
      + (p.n_memory_planes * p.plane_dma_slots)
      + (p.n_caches * p.cache_dma_slots)
      + s

let source_of_code (p : Params.t) code =
  let nfu = Params.n_functional_units p in
  let n_plane_eng = p.n_memory_planes * p.plane_dma_slots in
  let n_cache_eng = p.n_caches * p.cache_dma_slots in
  if code <= 0 then None
  else
    let c = code - 1 in
    if c < nfu then Some (Src_fu (fu_of_global_index p c))
    else if c < nfu + n_plane_eng then
      let k = c - nfu in
      Some (Src_memory (k / p.plane_dma_slots, k mod p.plane_dma_slots))
    else if c < nfu + n_plane_eng + n_cache_eng then
      let k = c - nfu - n_plane_eng in
      Some (Src_cache (k / p.cache_dma_slots, k mod p.cache_dma_slots))
    else if c < nfu + n_plane_eng + n_cache_eng + p.n_shift_delay then
      Some (Src_shift_delay (c - nfu - n_plane_eng - n_cache_eng))
    else None
