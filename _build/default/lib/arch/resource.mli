(** Identifiers for the hardware resources of a node.

    All higher layers (diagrams, checker, microcode, simulator) refer to
    hardware through these identifiers, so the naming scheme is fixed here
    once: ALSs are numbered with singlets first, then doublets, then
    triplets; functional units are addressed as (ALS, slot). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type als_id = int
val pp_als_id :
  Format.formatter ->
  als_id -> unit
val show_als_id : als_id -> string
val equal_als_id : als_id -> als_id -> bool
val compare_als_id : als_id -> als_id -> int
type plane_id = int
val pp_plane_id :
  Format.formatter ->
  plane_id -> unit
val show_plane_id : plane_id -> string
val equal_plane_id : plane_id -> plane_id -> bool
val compare_plane_id : plane_id -> plane_id -> int
type cache_id = int
val pp_cache_id :
  Format.formatter ->
  cache_id -> unit
val show_cache_id : cache_id -> string
val equal_cache_id : cache_id -> cache_id -> bool
val compare_cache_id : cache_id -> cache_id -> int
type sd_id = int
val pp_sd_id :
  Format.formatter -> sd_id -> unit
val show_sd_id : sd_id -> string
val equal_sd_id : sd_id -> sd_id -> bool
val compare_sd_id : sd_id -> sd_id -> int
type fu_id = { als : als_id; slot : int; }
val pp_fu_id :
  Format.formatter -> fu_id -> unit
val show_fu_id : fu_id -> string
val equal_fu_id : fu_id -> fu_id -> bool
val compare_fu_id : fu_id -> fu_id -> int
type port = A | B
val pp_port :
  Format.formatter -> port -> unit
val show_port : port -> string
val equal_port : port -> port -> bool
val compare_port : port -> port -> int
val port_to_string : port -> string
type source =
    Src_fu of fu_id
  | Src_memory of plane_id * int
  | Src_cache of cache_id * int
  | Src_shift_delay of sd_id
val show_source : source -> string
val equal_source : source -> source -> bool
val compare_source : source -> source -> int
type sink =
    Snk_fu of fu_id * port
  | Snk_memory of plane_id * int
  | Snk_cache of cache_id * int
  | Snk_shift_delay of sd_id
val show_sink : sink -> string
val equal_sink : sink -> sink -> bool
val compare_sink : sink -> sink -> int
val fu_to_string : fu_id -> string
val source_to_string : source -> string
val sink_to_string : sink -> string
val pp_source : Format.formatter -> source -> unit
val pp_sink : Format.formatter -> sink -> unit
val als_kind_counts : Params.t -> int * int * int
(** Number of functional-unit slots in an ALS (1, 2 or 3). *)
val als_size : Params.t -> als_id -> int
val fu_valid : Params.t -> fu_id -> bool
(** Dense global index of a unit (ALS by ALS, slot by slot) — the
    numbering the microcode layout uses. *)
val fu_global_index : Params.t -> fu_id -> int
(** Inverse of {!fu_global_index}. *)
val fu_of_global_index : Params.t -> int -> fu_id
val all_als : Params.t -> int list
(** All functional units of a node, in global-index order. *)
val all_fus : Params.t -> fu_id list
(** Capabilities of a unit.  The knowledge-base convention mirrors the
    paper's asymmetries: every unit computes in floating point; in
    multi-unit ALSs the head slot carries the integer/logical circuitry
    (the "double box") and the tail slot the min/max circuitry. *)
val fu_capabilities :
  Params.t -> fu_id -> Capability.t list
val fu_has_capability :
  Params.t -> fu_id -> Capability.t -> bool
(** Stable integer encoding of a source for the microcode switch fields;
    0 is reserved for "unrouted". *)
val source_code : Params.t -> source -> int
(** Inverse of {!source_code}; [None] for 0 or out-of-range codes. *)
val source_of_code : Params.t -> int -> source option
