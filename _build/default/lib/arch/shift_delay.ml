(** Shift/delay units.

    Two shift/delay units per node help "reformat memory data into multiple
    vector streams".  A unit is programmed with a mode: a pure delay of [d]
    cycles, or a shift that replicates its input stream at a relative offset
    (the mechanism used to derive the u[i-1] / u[i+1] streams of a stencil
    from a single central stream). *)

type mode =
  | Delay of int  (** emit the element received [d] cycles earlier *)
  | Shift of int  (** emit element [i + offset] of the logical stream *)
[@@deriving show { with_path = false }, eq]

let mode_to_string = function
  | Delay d -> Printf.sprintf "delay %d" d
  | Shift o -> Printf.sprintf "shift %+d" o

(** Validate a mode against the machine's buffering capacity (a shift/delay
    unit reuses register-file-sized buffering). *)
let validate (p : Params.t) = function
  | Delay d ->
      if d < 0 then [ "shift/delay: negative delay" ]
      else if d > p.rf_max_delay then
        [ Printf.sprintf "shift/delay: delay %d exceeds maximum %d" d p.rf_max_delay ]
      else []
  | Shift o ->
      if abs o > p.rf_max_delay then
        [ Printf.sprintf "shift/delay: offset %+d exceeds maximum %d" o p.rf_max_delay ]
      else []

(** Dynamic state mirrors a circular queue; [Shift] with negative offset is
    realised as a delay, with positive offset as a negative-latency stream
    the simulator services from the source stream directly. *)
type t = { id : Resource.sd_id; mode : mode; queue : Register_file.queue }

let make (p : Params.t) id mode =
  if id < 0 || id >= p.n_shift_delay then invalid_arg "Shift_delay.make: bad id";
  (match validate p mode with [] -> () | e :: _ -> invalid_arg ("Shift_delay.make: " ^ e));
  let depth = match mode with Delay d -> d | Shift o when o < 0 -> -o | Shift _ -> 0 in
  { id; mode; queue = Register_file.make_queue depth }

let step t x = Register_file.push t.queue x
let reset t = Register_file.reset t.queue
