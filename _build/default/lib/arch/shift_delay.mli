(** Shift/delay units.

    Two shift/delay units per node help "reformat memory data into multiple
    vector streams".  A unit is programmed with a mode: a pure delay of [d]
    cycles, or a shift that replicates its input stream at a relative offset
    (the mechanism used to derive the u[i-1] / u[i+1] streams of a stencil
    from a single central stream). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type mode = Delay of int | Shift of int
val pp_mode :
  Format.formatter -> mode -> unit
val show_mode : mode -> string
val equal_mode : mode -> mode -> bool
val mode_to_string : mode -> string
val validate : Params.t -> mode -> string list
type t = {
  id : Resource.sd_id;
  mode : mode;
  queue : Register_file.queue;
}
val make : Params.t -> Resource.sd_id -> mode -> t
val step : t -> float -> float
val reset : t -> unit
