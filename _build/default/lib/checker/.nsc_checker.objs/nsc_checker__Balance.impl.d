lib/checker/balance.pp.ml: Fu_config Icon Knowledge List Nsc_arch Nsc_diagram Pipeline Program Resource Semantic Timing
