lib/checker/balance.pp.mli: Nsc_arch Nsc_diagram
