lib/checker/checker.pp.mli: Diagnostic Nsc_arch Nsc_diagram
