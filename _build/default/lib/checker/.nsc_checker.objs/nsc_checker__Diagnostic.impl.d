lib/checker/diagnostic.pp.ml: Fmt Fun List Nsc_arch Nsc_diagram Option Ppx_deriving_runtime Printf Resource String
