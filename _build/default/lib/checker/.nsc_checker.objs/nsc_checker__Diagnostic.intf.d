lib/checker/diagnostic.pp.mli: Format Nsc_arch Nsc_diagram
