lib/checker/timing.pp.ml: Als Fu_config Hashtbl List Nsc_arch Nsc_diagram Opcode Option Params Resource Semantic Shift_delay
