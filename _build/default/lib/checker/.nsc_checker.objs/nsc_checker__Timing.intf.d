lib/checker/timing.pp.mli: Nsc_arch Nsc_diagram
