(** Automatic delay balancing of pipeline diagrams.

    The paper's user fixes stream misalignment by hand — "routing input
    data into a circular queue in a register file and then retrieving the
    value a number of clock cycles later" — guided by checker errors.  This
    module automates the chore: it repeatedly applies the corrections
    {!Timing.balancing_corrections} computes until every binary unit sees
    its operands in step.  The compiler uses it on every generated diagram;
    the editor offers it as a one-click fix. *)

open Nsc_arch
open Nsc_diagram

let max_rounds = 32

(* Icon id carrying a given ALS in the diagram. *)
let icon_for_als (pl : Pipeline.t) als =
  List.find_map
    (fun (i : Icon.t) ->
      match i.Icon.kind with
      | Icon.Als_icon { als = a; _ } when a = als -> Some i.Icon.id
      | Icon.Als_icon _ | Icon.Memory_icon _ | Icon.Cache_icon _
      | Icon.Shift_delay_icon _ ->
          None)
    pl.Pipeline.icons

(** Balance one diagram.  Returns the corrected diagram and the number of
    correction rounds applied (0 = already balanced).  Corrections that
    would exceed the register files' maximum queue depth are left in place
    for the checker to report. *)
let balance_pipeline (kb : Knowledge.t) ?(lookup = fun _ -> None) (pl : Pipeline.t) :
    Pipeline.t * int =
  let p = Knowledge.params kb in
  let rec go pl round =
    if round >= max_rounds then (pl, round)
    else begin
      let sem, _ = Semantic.of_pipeline p ~lookup pl in
      let analysis = Timing.analyse p sem in
      match Timing.balancing_corrections analysis with
      | [] -> (pl, round)
      | corrections ->
          let pl =
            List.fold_left
              (fun pl ((fu : Resource.fu_id), port, extra) ->
                match icon_for_als pl fu.Resource.als with
                | None -> pl
                | Some id -> (
                    match Pipeline.config_of pl ~id ~slot:fu.Resource.slot with
                    | None -> pl
                    | Some cfg ->
                        let cfg =
                          match port with
                          | Resource.A ->
                              { cfg with Fu_config.delay_a = cfg.Fu_config.delay_a + extra }
                          | Resource.B ->
                              { cfg with Fu_config.delay_b = cfg.Fu_config.delay_b + extra }
                        in
                        if
                          cfg.Fu_config.delay_a <= p.rf_max_delay
                          && cfg.Fu_config.delay_b <= p.rf_max_delay
                        then Pipeline.set_config pl ~id ~slot:fu.Resource.slot cfg
                        else pl))
              pl corrections
          in
          go pl (round + 1)
    end
  in
  go pl 0

(** Balance every pipeline of a program. *)
let balance_program (kb : Knowledge.t) (prog : Program.t) : Program.t =
  let lookup = Program.variable_base prog in
  List.fold_left
    (fun prog (pl : Pipeline.t) ->
      let pl, _ = balance_pipeline kb ~lookup pl in
      Program.update_pipeline prog pl)
    prog prog.Program.pipelines
