(** Automatic delay balancing of pipeline diagrams.

    The paper's user fixes stream misalignment by hand — "routing input
    data into a circular queue in a register file and then retrieving the
    value a number of clock cycles later" — guided by checker errors.  This
    module automates the chore: it repeatedly applies the corrections
    {!Timing.balancing_corrections} computes until every binary unit sees
    its operands in step.  The compiler uses it on every generated diagram;
    the editor offers it as a one-click fix. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val max_rounds : int
val icon_for_als :
  Nsc_diagram.Pipeline.t ->
  Nsc_arch.Resource.als_id -> Nsc_diagram.Icon.id option
(** Repeatedly apply {!Timing.balancing_corrections} until every binary
    unit sees its operands in step; returns the corrected diagram and the
    number of correction rounds (0 = already balanced). *)
val balance_pipeline :
  Nsc_arch.Knowledge.t ->
  ?lookup:(string -> int option) ->
  Nsc_diagram.Pipeline.t -> Nsc_diagram.Pipeline.t * int
(** Balance every pipeline of a program. *)
val balance_program :
  Nsc_arch.Knowledge.t -> Nsc_diagram.Program.t -> Nsc_diagram.Program.t
