(** The checker: knowledge-base-driven validation of visual programs.

    "The graphical editor calls on the checker at appropriate points during
    interaction with the user to validate the information being input ...
    The checker is invoked again at [code-generation time] to perform a
    thorough check of global constraints."

    Two levels are therefore provided: [`Interactive] accepts incomplete
    diagrams (unwired pads are advisory) and is cheap enough to run on every
    editing action; [`Complete] additionally requires every consumed operand
    to be bound, runs the timing analysis, and enforces global rules.  The
    checker also powers the editor's menus, enumerating only the legal
    choices for any pad (see {!legal_sources}). *)

open Nsc_arch
open Nsc_diagram

type level = [ `Interactive | `Complete ]

let loc ?pipeline ?icon ?connection ?unit_ () =
  { Diagnostic.pipeline; icon; connection; unit_ }

(* Icon carrying a given ALS in the diagram, for error locations. *)
let icon_of_als (pl : Pipeline.t) als =
  List.find_opt
    (fun (i : Icon.t) ->
      match i.Icon.kind with
      | Icon.Als_icon { als = a; _ } -> a = als
      | Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Shift_delay_icon _ -> false)
    pl.Pipeline.icons
  |> Option.map (fun (i : Icon.t) -> i.Icon.id)

let unit_loc pl ?connection (fu : Resource.fu_id) =
  loc ~pipeline:pl.Pipeline.index ?icon:(icon_of_als pl fu.Resource.als) ?connection
    ~unit_:fu ()

(* Build the switch routing table from semantic routes, collecting
   conflicts. *)
let build_switch_table (kb : Knowledge.t) (pl : Pipeline.t) (sem : Semantic.t) :
    Switch.t * Diagnostic.t list =
  List.fold_left
    (fun (table, ds) (r : Switch.route) ->
      match Switch.add table r with
      | Ok table -> (table, ds)
      | Error e ->
          ( table,
            Diagnostic.error
              ~location:(loc ~pipeline:pl.Pipeline.index ())
              Diagnostic.Switch_conflict "%s" (Switch.error_to_string e)
            :: ds ))
    (Switch.empty (Knowledge.params kb), [])
    sem.Semantic.routes

(* Memory-plane and cache stream pressure: a second plane writer is refused
   outright (the paper's worked example of error prevention); exhausting a
   channel's DMA engines is unprogrammable; more concurrent read streams
   than the plane's port bandwidth is legal but stalls every element. *)
let check_plane_pressure (kb : Knowledge.t) (pl : Pipeline.t) (sem : Semantic.t) :
    Diagnostic.t list =
  let p = Knowledge.params kb in
  let location = loc ~pipeline:pl.Pipeline.index () in
  let channel_checks channel ~slots ~read_ports ~write_ports =
    let streams = Semantic.streams_on sem channel in
    let reads, writes =
      List.partition
        (fun (s : Semantic.stream) ->
          Dma.equal_direction s.Semantic.transfer.Dma.direction Dma.Read)
        streams
    in
    let name = Dma.channel_to_string channel in
    let ds = [] in
    let ds =
      if List.length writes > write_ports then
        Diagnostic.error ~location Diagnostic.Plane_write_exclusive
          "%s is written by %d streams but sustains %d write stream%s; route the \
           second result elsewhere"
          name (List.length writes) write_ports
          (if write_ports = 1 then "" else "s")
        :: ds
      else ds
    in
    let ds =
      if List.length streams > slots then
        Diagnostic.error ~location Diagnostic.Dma_range
          "%s carries %d streams but has only %d DMA engines" name (List.length streams)
          slots
        :: ds
      else ds
    in
    if List.length reads > read_ports then
      Diagnostic.warning ~location Diagnostic.Plane_read_contention
        "%s feeds %d streams through %d read port%s; the pipeline will stall on every \
         element"
        name (List.length reads) read_ports
        (if read_ports = 1 then "" else "s")
      :: ds
    else ds
  in
  List.concat_map
    (fun plane ->
      channel_checks (Dma.Plane plane) ~slots:p.plane_dma_slots
        ~read_ports:p.plane_read_ports ~write_ports:p.plane_write_ports)
    (List.init p.n_memory_planes (fun i -> i))
  @ List.concat_map
      (fun cache ->
        channel_checks (Dma.Cache_chan cache) ~slots:p.cache_dma_slots ~read_ports:1
          ~write_ports:1)
      (List.init p.n_caches (fun i -> i))

(* A channel both read and written within one instruction is pumped by its
   DMA engine in both directions concurrently: overlapping regions race
   (the reason a Jacobi sweep writes its update to a second plane), and
   even disjoint regions deserve a note. *)
let check_plane_hazard (pl : Pipeline.t) (sem : Semantic.t) : Diagnostic.t list =
  let vlen = sem.Semantic.vector_length in
  let extent (t : Dma.transfer) =
    let count = if t.Dma.count = 0 then vlen else t.Dma.count in
    let plane = match t.Dma.channel with Dma.Plane p -> p | Dma.Cache_chan c -> c in
    Memory.strided_extent ~plane ~base:t.Dma.base ~stride:t.Dma.stride ~count
  in
  let reads, writes =
    List.partition
      (fun (s : Semantic.stream) ->
        Dma.equal_direction s.Semantic.transfer.Dma.direction Dma.Read)
      sem.Semantic.streams
  in
  List.concat_map
    (fun (w : Semantic.stream) ->
      List.filter_map
        (fun (r : Semantic.stream) ->
          let wt = w.Semantic.transfer and rt = r.Semantic.transfer in
          if not (Dma.equal_channel wt.Dma.channel rt.Dma.channel) then None
          else begin
            let name = Dma.channel_to_string wt.Dma.channel in
            let location = loc ~pipeline:pl.Pipeline.index () in
            if Memory.extents_overlap (extent wt) (extent rt) then
              Some
                (Diagnostic.error ~location Diagnostic.Plane_hazard
                   "%s is read and written over overlapping regions in one instruction; \
                    the concurrent DMA streams race — write the result to a different \
                    region or plane"
                   name)
            else
              Some
                (Diagnostic.warning ~location Diagnostic.Plane_hazard
                   "%s is both read and written in one instruction (disjoint regions); \
                    its DMA engine serves two streams"
                   name)
          end)
        reads)
    writes

(* Capability asymmetries: integer ops only on double-box units, min/max
   only on units with that circuitry. *)
let check_capabilities (kb : Knowledge.t) (pl : Pipeline.t) (sem : Semantic.t) :
    Diagnostic.t list =
  let p = Knowledge.params kb in
  List.filter_map
    (fun (u : Semantic.unit_program) ->
      let cap = Opcode.required_capability u.Semantic.op in
      if Resource.fu_has_capability p u.Semantic.fu cap then None
      else
        Some
          (Diagnostic.error
             ~location:(unit_loc pl u.Semantic.fu)
             Diagnostic.Capability "unit %s lacks the %s circuitry required by '%s'"
             (Resource.fu_to_string u.Semantic.fu)
             (Capability.to_string cap)
             (Opcode.mnemonic u.Semantic.op)))
    sem.Semantic.units

(* Operand-binding consistency per engaged unit. *)
let check_bindings (kb : Knowledge.t) (level : level) (pl : Pipeline.t)
    (sem : Semantic.t) : Diagnostic.t list =
  let p = Knowledge.params kb in
  let ds = ref [] in
  let push d = ds := d :: !ds in
  let routes_into fu port =
    List.filter
      (fun (r : Switch.route) ->
        Resource.equal_sink r.Switch.snk (Resource.Snk_fu (fu, port)))
      sem.Semantic.routes
  in
  List.iter
    (fun (u : Semantic.unit_program) ->
      let fu = u.Semantic.fu in
      let size = Resource.als_size p fu.Resource.als in
      let bypass =
        Option.value ~default:Als.No_bypass
          (List.assoc_opt fu.Resource.als sem.Semantic.bypasses)
      in
      let consumed =
        match Opcode.arity u.Semantic.op with
        | 1 -> [ (Resource.A, u.Semantic.a) ]
        | _ -> [ (Resource.A, u.Semantic.a); (Resource.B, u.Semantic.b) ]
      in
      List.iter
        (fun ((port : Resource.port), binding) ->
          let wires = routes_into fu port in
          let portname = Resource.port_to_string port in
          (match binding with
          | Fu_config.From_switch ->
              if not (Als.port_is_external ~size bypass ~slot:fu.Resource.slot ~port)
              then
                push
                  (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                     "port %s of %s is fed by the internal chain and cannot take switch \
                      data"
                     portname (Resource.fu_to_string fu))
              else if wires = [] then
                (match level with
                | `Complete ->
                    push
                      (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                         "port %s of %s expects switch data but no wire reaches it"
                         portname (Resource.fu_to_string fu))
                | `Interactive ->
                    push
                      (Diagnostic.info ~location:(unit_loc pl fu) Diagnostic.Binding
                         "port %s of %s is not yet wired" portname
                         (Resource.fu_to_string fu)))
          | Fu_config.From_chain -> (
              match Als.chain_predecessor ~size bypass ~slot:fu.Resource.slot with
              | None ->
                  push
                    (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                       "port %s of %s is bound to the chain but the unit has no \
                        predecessor in its ALS"
                       portname (Resource.fu_to_string fu))
              | Some pred_slot ->
                  let pred = { Resource.als = fu.Resource.als; slot = pred_slot } in
                  if Semantic.unit_for sem pred = None && level = `Complete then
                    push
                      (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                         "port %s of %s chains from %s, which is not programmed"
                         portname (Resource.fu_to_string fu) (Resource.fu_to_string pred)))
          | Fu_config.From_feedback n ->
              if n < 1 then
                push
                  (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                     "feedback depth on port %s of %s must be at least 1" portname
                     (Resource.fu_to_string fu))
              else if n > p.rf_max_delay then
                push
                  (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Register_file
                     "feedback depth %d on %s exceeds the register file's maximum queue \
                      of %d"
                     n (Resource.fu_to_string fu) p.rf_max_delay)
          | Fu_config.From_constant _ -> ()
          | Fu_config.Unbound -> (
              match level with
              | `Complete ->
                  push
                    (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                       "operand %s of %s ('%s') is unbound" portname
                       (Resource.fu_to_string fu)
                       (Opcode.mnemonic u.Semantic.op))
              | `Interactive ->
                  push
                    (Diagnostic.info ~location:(unit_loc pl fu) Diagnostic.Binding
                       "operand %s of %s is not yet specified" portname
                       (Resource.fu_to_string fu))));
          (* a wire into a port that is not switch-bound contradicts the
             configuration *)
          match binding with
          | Fu_config.From_switch -> ()
          | _ when wires <> [] ->
              push
                (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                   "a wire drives port %s of %s, but the port is bound to '%s'" portname
                   (Resource.fu_to_string fu)
                   (Fu_config.binding_to_string binding))
          | _ -> ())
        consumed;
      (* register-file capacity *)
      let usage =
        Fu_config.register_file_usage
          {
            Fu_config.op = Some u.Semantic.op;
            a = u.Semantic.a;
            b = u.Semantic.b;
            delay_a = u.Semantic.delay_a;
            delay_b = u.Semantic.delay_b;
          }
      in
      List.iter
        (fun m ->
          push
            (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Register_file "%s: %s"
               (Resource.fu_to_string fu) m))
        (Register_file.validate p usage))
    sem.Semantic.units;
  (* wires into ports of unengaged units *)
  List.iter
    (fun (r : Switch.route) ->
      match r.Switch.snk with
      | Resource.Snk_fu (fu, port) when Semantic.unit_for sem fu = None ->
          push
            (Diagnostic.warning ~location:(unit_loc pl fu) Diagnostic.Unused
               "a wire drives port %s of %s, but the unit is not programmed"
               (Resource.port_to_string port)
               (Resource.fu_to_string fu))
      | _ -> ())
    sem.Semantic.routes;
  (* wires out of unengaged units *)
  if level = `Complete then
    List.iter
      (fun (r : Switch.route) ->
        match r.Switch.src with
        | Resource.Src_fu fu when Semantic.unit_for sem fu = None ->
            push
              (Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Binding
                 "a wire taps the output of %s, but the unit is not programmed"
                 (Resource.fu_to_string fu))
        | _ -> ())
      sem.Semantic.routes;
  List.rev !ds

(* Shift/delay legality: a unit with a forward shift reads ahead in its
   input stream, which only a DMA stream (a pure function of the element
   index) can supply — a functional unit's future output does not exist
   yet.  An engaged unit with no input is also flagged. *)
let check_shift_delay (pl : Pipeline.t) (sem : Semantic.t) : Diagnostic.t list =
  List.concat_map
    (fun (s : Semantic.sd_program) ->
      let sd = s.Semantic.sd in
      let input = Semantic.source_feeding sem (Resource.Snk_shift_delay sd) in
      let location = loc ~pipeline:pl.Pipeline.index () in
      let no_input =
        match input with
        | None ->
            [
              Diagnostic.warning ~location Diagnostic.Unused
                "shift/delay unit %d is engaged but nothing feeds it" sd;
            ]
        | Some _ -> []
      in
      let forward =
        match (s.Semantic.mode, input) with
        | Shift_delay.Shift o, Some (Resource.Src_fu fu) when o > 0 ->
            [
              Diagnostic.error ~location Diagnostic.Binding
                "shift/delay unit %d shifts forward by %d but is fed by unit %s; a \
                 forward shift needs a memory or cache stream (the future of a \
                 computed stream does not exist)"
                sd o (Resource.fu_to_string fu);
            ]
        | _ -> []
      in
      no_input @ forward)
    sem.Semantic.sds

(* DMA stream validation: ranges and stream-length agreement. *)
let check_streams (kb : Knowledge.t) (pl : Pipeline.t) (sem : Semantic.t) :
    Diagnostic.t list =
  let p = Knowledge.params kb in
  let vlen = sem.Semantic.vector_length in
  List.concat_map
    (fun (s : Semantic.stream) ->
      let t = s.Semantic.transfer in
      let range_problems =
        List.map
          (fun m ->
            Diagnostic.error
              ~location:(loc ~pipeline:pl.Pipeline.index ())
              Diagnostic.Dma_range "%s" m)
          (Dma.validate p t ~vector_length:vlen)
      in
      let length_problems =
        if t.Dma.count <> 0 && t.Dma.count <> vlen then
          [
            Diagnostic.error
              ~location:(loc ~pipeline:pl.Pipeline.index ())
              Diagnostic.Stream_length
              "transfer on %s carries %d elements but the instruction's vector length \
               is %d"
              (Dma.channel_to_string t.Dma.channel)
              t.Dma.count vlen;
          ]
        else []
      in
      range_problems @ length_problems)
    sem.Semantic.streams

(* Units whose results go nowhere. *)
let check_unused (kb : Knowledge.t) (pl : Pipeline.t) (sem : Semantic.t) :
    Diagnostic.t list =
  let p = Knowledge.params kb in
  let consumed_somewhere (fu : Resource.fu_id) =
    (* routed through the switch? *)
    List.exists
      (fun (r : Switch.route) ->
        match r.Switch.src with
        | Resource.Src_fu f -> Resource.equal_fu_id f fu
        | _ -> false)
      sem.Semantic.routes
    (* consumed over the chain by the next engaged unit? *)
    || List.exists
         (fun (u : Semantic.unit_program) ->
           let g = u.Semantic.fu in
           g.Resource.als = fu.Resource.als
           &&
           let size = Resource.als_size p g.Resource.als in
           let bypass =
             Option.value ~default:Als.No_bypass
               (List.assoc_opt g.Resource.als sem.Semantic.bypasses)
           in
           (match Als.chain_predecessor ~size bypass ~slot:g.Resource.slot with
           | Some pred -> pred = fu.Resource.slot
           | None -> false)
           && Fu_config.equal_input_binding u.Semantic.a Fu_config.From_chain)
         sem.Semantic.units
  in
  let feeds_itself (u : Semantic.unit_program) =
    match (u.Semantic.a, u.Semantic.b) with
    | Fu_config.From_feedback _, _ | _, Fu_config.From_feedback _ -> true
    | _ -> false
  in
  List.filter_map
    (fun (u : Semantic.unit_program) ->
      if consumed_somewhere u.Semantic.fu || feeds_itself u then None
      else
        Some
          (Diagnostic.warning
             ~location:(unit_loc pl u.Semantic.fu)
             Diagnostic.Unused "the result of %s ('%s') is never consumed"
             (Resource.fu_to_string u.Semantic.fu)
             (Opcode.mnemonic u.Semantic.op)))
    sem.Semantic.units

(* Timing: combinational cycles and stream misalignment. *)
let check_timing (kb : Knowledge.t) (pl : Pipeline.t) (sem : Semantic.t) :
    Diagnostic.t list =
  let p = Knowledge.params kb in
  let analysis = Timing.analyse p sem in
  let cycle_ds =
    List.map
      (fun fu ->
        Diagnostic.error ~location:(unit_loc pl fu) Diagnostic.Switch_cycle
          "unit %s lies on a combinational loop through the switch; feedback must pass \
           through a register-file queue"
          (Resource.fu_to_string fu))
      analysis.Timing.cyclic
  in
  let misalign_ds =
    List.filter_map
      (fun (u : Timing.unit_timing) ->
        match u.Timing.misaligned with
        | None -> None
        | Some d ->
            let early_port, depth =
              if d > 0 then (Resource.B, d) else (Resource.A, -d)
            in
            Some
              (Diagnostic.error ~location:(unit_loc pl u.Timing.fu) Diagnostic.Timing
                 "operands of %s arrive %d cycle%s apart; route the %s operand through \
                  a register-file queue of depth %d"
                 (Resource.fu_to_string u.Timing.fu)
                 (abs d)
                 (if abs d = 1 then "" else "s")
                 (Resource.port_to_string early_port)
                 depth))
      analysis.Timing.units
  in
  cycle_ds @ misalign_ds

(** Check one pipeline diagram.  [lookup] resolves declared variable names
    (pass {!Nsc_diagram.Program.variable_base} of the enclosing program). *)
let check_pipeline (kb : Knowledge.t) ?(lookup = fun _ -> None) ~(level : level)
    (pl : Pipeline.t) : Diagnostic.t list =
  let p = Knowledge.params kb in
  let structural =
    List.map
      (fun (pr : Validate.problem) ->
        Diagnostic.error
          ~location:(loc ~pipeline:pl.Pipeline.index ())
          Diagnostic.Structural "%s: %s" pr.Validate.where pr.Validate.message)
      (Validate.pipeline p pl)
  in
  if structural <> [] then structural
  else begin
    let sem, issues = Semantic.of_pipeline p ~lookup pl in
    let unresolved =
      List.map
        (fun (i : Semantic.issue) ->
          Diagnostic.error
            ~location:
              (loc ~pipeline:pl.Pipeline.index ?connection:i.Semantic.connection ())
            Diagnostic.Unresolved "%s" i.Semantic.message)
        issues
    in
    let _table, conflicts = build_switch_table kb pl sem in
    let ds =
      unresolved @ conflicts
      @ check_plane_pressure kb pl sem
      @ check_plane_hazard pl sem
      @ check_capabilities kb pl sem
      @ check_bindings kb level pl sem
      @ check_shift_delay pl sem
      @ check_streams kb pl sem
      @ check_unused kb pl sem
    in
    let ds = if level = `Complete then ds @ check_timing kb pl sem else ds in
    Diagnostic.sort ds
  end

(* Control-flow checks that need the whole program. *)
let check_control (kb : Knowledge.t) (prog : Program.t) : Diagnostic.t list =
  let p = Knowledge.params kb in
  let engaged_in_pipeline n fu =
    match Program.find_pipeline prog n with
    | None -> false
    | Some pl ->
        let sem, _ = Semantic.of_pipeline p pl in
        Semantic.unit_for sem fu <> None
  in
  let rec body_pipelines acc = function
    | [] -> acc
    | Program.Exec n :: rest -> body_pipelines (n :: acc) rest
    | Program.Repeat { body; _ } :: rest | Program.While { body; _ } :: rest ->
        body_pipelines (body_pipelines acc body) rest
    | Program.Halt :: rest -> body_pipelines acc rest
  in
  let rec walk = function
    | [] -> []
    | Program.While { condition; body; max_iterations } :: rest ->
        let fu = condition.Interrupt.unit_watched in
        let ns = body_pipelines [] body in
        let here =
          if not (List.exists (fun n -> engaged_in_pipeline n fu) ns) then
            [
              Diagnostic.error Diagnostic.Control
                "while-condition watches %s, but no pipeline in the loop body programs \
                 that unit, so the captured scalar would never change"
                (Resource.fu_to_string fu);
            ]
          else []
        in
        let bound =
          if max_iterations = 0 then
            [
              Diagnostic.warning Diagnostic.Control
                "while-loop on %s has no iteration bound; a non-converging computation \
                 would never halt"
                (Resource.fu_to_string fu);
            ]
          else []
        in
        here @ bound @ walk body @ walk rest
    | Program.Repeat { body; _ } :: rest -> walk body @ walk rest
    | (Program.Exec _ | Program.Halt) :: rest -> walk rest
  in
  walk (Program.effective_control prog)

(* Transfers anchored to a declared variable must stay inside it. *)
let check_variable_bounds (kb : Knowledge.t) (prog : Program.t) : Diagnostic.t list =
  ignore kb;
  List.concat_map
    (fun (pl : Pipeline.t) ->
      List.concat_map
        (fun (c : Connection.t) ->
          match c.Connection.spec with
          | Some ({ Dma_spec.variable = Some name; _ } as spec) -> (
              match Program.lookup_variable prog name with
              | None -> [] (* already an Unresolved error from projection *)
              | Some d ->
                  let count =
                    if spec.Dma_spec.count = 0 then pl.Pipeline.vector_length
                    else spec.Dma_spec.count
                  in
                  let first = spec.Dma_spec.offset in
                  let last = first + (spec.Dma_spec.stride * (count - 1)) in
                  if count > 0 && (min first last < 0 || max first last >= d.Program.length)
                  then
                    [
                      Diagnostic.error
                        ~location:
                          (loc ~pipeline:pl.Pipeline.index
                             ~connection:c.Connection.id ())
                        Diagnostic.Dma_range
                        "transfer touches elements %d..%d of variable '%s', which holds \
                         %d elements"
                        (min first last) (max first last) name d.Program.length;
                    ]
                  else [])
          | Some _ | None -> [])
        pl.Pipeline.connections)
    prog.Program.pipelines

(** Check a whole program: the "thorough check of global constraints"
    performed before microcode generation. *)
let check_program (kb : Knowledge.t) (prog : Program.t) : Diagnostic.t list =
  let p = Knowledge.params kb in
  let structural =
    List.map
      (fun (pr : Validate.problem) ->
        Diagnostic.error Diagnostic.Structural "%s: %s" pr.Validate.where
          pr.Validate.message)
      (Validate.program p prog)
  in
  let lookup = Program.variable_base prog in
  let per_pipeline =
    List.concat_map
      (fun pl -> check_pipeline kb ~lookup ~level:`Complete pl)
      prog.Program.pipelines
  in
  Diagnostic.sort
    (structural @ per_pipeline @ check_control kb prog
    @ check_variable_bounds kb prog)

(** Sources the editor may legally offer for a consuming pad of [pl] —
    the contents of the popup menu of Figure 8.  Everything already ruled
    out by the routing table built so far is filtered away. *)
let legal_sources (kb : Knowledge.t) ?(lookup = fun _ -> None) (pl : Pipeline.t)
    (snk : Resource.sink) : Resource.source list =
  let p = Knowledge.params kb in
  let sem, _ = Semantic.of_pipeline p ~lookup pl in
  let table, _ = build_switch_table kb pl sem in
  Knowledge.legal_sources_for kb table snk

(** Memory planes the editor may offer as a destination: planes without a
    writer (the paper's example of error prevention). *)
let writable_planes (kb : Knowledge.t) ?(lookup = fun _ -> None) (pl : Pipeline.t) :
    Resource.plane_id list =
  let p = Knowledge.params kb in
  let sem, _ = Semantic.of_pipeline p ~lookup pl in
  let table, _ = build_switch_table kb pl sem in
  Knowledge.writable_planes kb table

(** Opcodes the popup menu of Figure 10 offers for a unit. *)
let legal_opcodes (kb : Knowledge.t) (fu : Resource.fu_id) : Opcode.t list =
  Knowledge.legal_opcodes kb fu
