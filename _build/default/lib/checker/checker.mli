(** The checker: knowledge-base-driven validation of visual programs.

    "The graphical editor calls on the checker at appropriate points during
    interaction with the user to validate the information being input ...
    The checker is invoked again at [code-generation time] to perform a
    thorough check of global constraints."

    Two levels are provided: [`Interactive] accepts incomplete diagrams
    (unwired pads are advisory) and is cheap enough to run on every editing
    action; [`Complete] additionally requires every consumed operand to be
    bound, runs the timing analysis, and enforces global rules.  The
    checker also powers the editor's menus, enumerating only the legal
    choices for any pad. *)

type level = [ `Complete | `Interactive ]

(** Check one pipeline diagram.  [lookup] resolves declared variable names
    to base word addresses (pass {!Nsc_diagram.Program.variable_base} of
    the enclosing program). *)
val check_pipeline :
  Nsc_arch.Knowledge.t ->
  ?lookup:(string -> int option) ->
  level:level ->
  Nsc_diagram.Pipeline.t ->
  Diagnostic.t list

(** Check a whole program: the "thorough check of global constraints"
    performed before microcode generation.  Includes structural validation,
    a [`Complete]-level pass over every pipeline, control-flow rules, and
    variable-bound checks on every DMA specification. *)
val check_program :
  Nsc_arch.Knowledge.t -> Nsc_diagram.Program.t -> Diagnostic.t list

(** Sources the editor may legally offer for a consuming pad — the
    contents of the connection popup menu.  Everything already ruled out by
    the pipeline's routing state is filtered away. *)
val legal_sources :
  Nsc_arch.Knowledge.t ->
  ?lookup:(string -> int option) ->
  Nsc_diagram.Pipeline.t ->
  Nsc_arch.Resource.sink ->
  Nsc_arch.Resource.source list

(** Memory planes still open to a writer — the paper's worked example of
    error prevention ("the graphical editor will not let him send the
    output of a second unit to the same plane"). *)
val writable_planes :
  Nsc_arch.Knowledge.t ->
  ?lookup:(string -> int option) ->
  Nsc_diagram.Pipeline.t ->
  Nsc_arch.Resource.plane_id list

(** Opcodes the operation popup menu offers for a unit: exactly those its
    circuitry supports. *)
val legal_opcodes :
  Nsc_arch.Knowledge.t -> Nsc_arch.Resource.fu_id -> Nsc_arch.Opcode.t list
