(** Diagnostics produced by the checker.

    "Any errors are flagged as soon as they are detected" — every diagnostic
    carries enough location information (pipeline, icon, connection, unit)
    for the editor to highlight the offending object and display the message
    in the window's information strip. *)

open Nsc_arch

type severity =
  | Error    (** violates a hardware rule; microcode cannot be generated *)
  | Warning  (** legal but suspicious (e.g. read-port contention stalls) *)
  | Info     (** advisory, e.g. suggested delay-queue depths *)
[@@deriving show { with_path = false }, eq]

(* Hand-written: ppx_deriving.ord mis-resolves the [Error] constructor
   against Stdlib's [Error of 'a]. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

(** What the diagnostic is anchored to. *)
type location = {
  pipeline : int option;               (** pipeline (instruction) number *)
  icon : Nsc_diagram.Icon.id option;
  connection : Nsc_diagram.Connection.id option;
  unit_ : Resource.fu_id option;
}
[@@deriving show { with_path = false }, eq]

let nowhere = { pipeline = None; icon = None; connection = None; unit_ = None }

(** Stable rule identifiers, used by tests and for documentation. *)
type rule =
  | Structural            (** malformed diagram data *)
  | Unresolved            (** endpoint/spec could not be resolved *)
  | Switch_conflict       (** sink driven twice, fanout, capacity, self-loop *)
  | Plane_write_exclusive (** second writer routed to one memory plane *)
  | Plane_read_contention (** more readers than a plane has ports *)
  | Plane_hazard          (** a plane both read and written in one
                              instruction; an error when the regions overlap
                              (the DMA engines pump both streams
                              concurrently, so in-place updates are racy) *)
  | Capability            (** op not supported by the unit's circuitry *)
  | Binding               (** operand sources inconsistent or missing *)
  | Register_file         (** register-file capacity / queue depth *)
  | Dma_range             (** transfer outside plane/cache or variable bounds *)
  | Stream_length         (** transfer count disagrees with vector length *)
  | Timing                (** vector streams arrive misaligned at a unit *)
  | Switch_cycle          (** combinational loop through the switch *)
  | Control               (** control-flow specification problems *)
  | Unused                (** engaged hardware with no effect *)
[@@deriving show { with_path = false }, eq, ord]

let rule_name = function
  | Structural -> "structural"
  | Unresolved -> "unresolved"
  | Switch_conflict -> "switch-conflict"
  | Plane_write_exclusive -> "plane-write-exclusive"
  | Plane_read_contention -> "plane-read-contention"
  | Plane_hazard -> "plane-hazard"
  | Capability -> "capability"
  | Binding -> "binding"
  | Register_file -> "register-file"
  | Dma_range -> "dma-range"
  | Stream_length -> "stream-length"
  | Timing -> "timing"
  | Switch_cycle -> "switch-cycle"
  | Control -> "control"
  | Unused -> "unused"

type t = {
  severity : severity;
  rule : rule;
  location : location;
  message : string;
}
[@@deriving show { with_path = false }, eq]

let make ?(location = nowhere) severity rule fmt =
  Printf.ksprintf (fun message -> { severity; rule; location; message }) fmt

let error ?location rule fmt = make ?location Error rule fmt
let warning ?location rule fmt = make ?location Warning rule fmt
let info ?location rule fmt = make ?location Info rule fmt

let is_error d = equal_severity d.severity Error

(** Human-readable one-liner, as shown in the editor's message strip. *)
let to_string d =
  let sev =
    match d.severity with Error -> "error" | Warning -> "warning" | Info -> "info"
  in
  let where =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "pipeline %d") d.location.pipeline;
        Option.map (Printf.sprintf "icon %d") d.location.icon;
        Option.map (Printf.sprintf "wire %d") d.location.connection;
        Option.map
          (fun fu -> Printf.sprintf "unit %s" (Resource.fu_to_string fu))
          d.location.unit_;
      ]
  in
  let where = match where with [] -> "" | ws -> " [" ^ String.concat ", " ws ^ "]" in
  Printf.sprintf "%s(%s)%s: %s" sev (rule_name d.rule) where d.message

let pp ppf d = Fmt.string ppf (to_string d)

(** Sort errors first, then warnings, then infos, each in stable order. *)
let sort ds =
  List.stable_sort (fun a b -> compare_severity a.severity b.severity) ds

let errors ds = List.filter is_error ds
let has_errors ds = List.exists is_error ds
