(** Diagnostics produced by the checker.

    "Any errors are flagged as soon as they are detected" — every diagnostic
    carries enough location information (pipeline, icon, connection, unit)
    for the editor to highlight the offending object and display the message
    in the window's information strip. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type severity = Error | Warning | Info
val pp_severity :
  Format.formatter ->
  severity -> unit
val show_severity : severity -> string
val equal_severity : severity -> severity -> bool
val severity_rank : severity -> int
val compare_severity : severity -> severity -> int
type location = {
  pipeline : int option;
  icon : Nsc_diagram.Icon.id option;
  connection : Nsc_diagram.Connection.id option;
  unit_ : Nsc_arch.Resource.fu_id option;
}
val pp_location :
  Format.formatter ->
  location -> unit
val show_location : location -> string
val equal_location : location -> location -> bool
val nowhere : location
type rule =
    Structural
  | Unresolved
  | Switch_conflict
  | Plane_write_exclusive
  | Plane_read_contention
  | Plane_hazard
  | Capability
  | Binding
  | Register_file
  | Dma_range
  | Stream_length
  | Timing
  | Switch_cycle
  | Control
  | Unused
val pp_rule :
  Format.formatter -> rule -> unit
val show_rule : rule -> string
val equal_rule : rule -> rule -> bool
val compare_rule : rule -> rule -> int
(** Stable kebab-case rule identifier, for tests and documentation. *)
val rule_name : rule -> string
type t = {
  severity : severity;
  rule : rule;
  location : location;
  message : string;
}
val show : t -> string
val equal : t -> t -> bool
val make :
  ?location:location ->
  severity -> rule -> ('a, unit, string, t) format4 -> 'a
(** Construct an error-severity diagnostic (printf-style message). *)
val error : ?location:location -> rule -> ('a, unit, string, t) format4 -> 'a
(** Construct a warning. *)
val warning :
  ?location:location -> rule -> ('a, unit, string, t) format4 -> 'a
val info : ?location:location -> rule -> ('a, unit, string, t) format4 -> 'a
val is_error : t -> bool
(** Human-readable one-liner, as shown in the editor's message strip. *)
val to_string : t -> string
val pp : Format.formatter -> t -> unit
(** Errors first, then warnings, then infos, stable within severity. *)
val sort : t list -> t list
val errors : t list -> t list
(** Does any error-severity finding block code generation? *)
val has_errors : t list -> bool
