lib/debug/stepper.ml: Engine Float Interrupt List Node Nsc_arch Nsc_diagram Nsc_editor Nsc_microcode Nsc_sim Option Params Pipeline Printf Program Resource Semantic Sequencer String
