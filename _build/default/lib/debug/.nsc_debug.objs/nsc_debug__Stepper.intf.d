lib/debug/stepper.mli: Nsc_arch Nsc_diagram Nsc_microcode Nsc_sim
