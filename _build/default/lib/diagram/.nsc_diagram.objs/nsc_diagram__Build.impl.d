lib/diagram/build.pp.ml: Connection Dma_spec Fu_config Geometry Icon List Pipeline Program
