lib/diagram/build.pp.mli: Fu_config Icon Nsc_arch Pipeline Program
