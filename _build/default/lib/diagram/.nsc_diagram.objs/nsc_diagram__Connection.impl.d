lib/diagram/connection.pp.ml: Dma Dma_spec Icon Nsc_arch Ppx_deriving_runtime Printf Resource
