lib/diagram/connection.pp.mli: Dma_spec Format Icon Nsc_arch
