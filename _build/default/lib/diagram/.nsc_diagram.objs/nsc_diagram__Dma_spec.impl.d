lib/diagram/dma_spec.pp.ml: Nsc_arch Ppx_deriving_runtime Printf Result
