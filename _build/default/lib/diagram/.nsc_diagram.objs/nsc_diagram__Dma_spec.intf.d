lib/diagram/dma_spec.pp.mli: Format Nsc_arch
