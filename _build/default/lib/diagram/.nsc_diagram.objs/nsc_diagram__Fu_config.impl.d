lib/diagram/fu_config.pp.ml: List Nsc_arch Opcode Option Ppx_deriving_runtime Printf Register_file Resource String
