lib/diagram/fu_config.pp.mli: Format Nsc_arch
