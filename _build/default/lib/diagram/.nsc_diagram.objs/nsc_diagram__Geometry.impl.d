lib/diagram/geometry.pp.ml: List Option Ppx_deriving_runtime
