lib/diagram/geometry.pp.mli: Format
