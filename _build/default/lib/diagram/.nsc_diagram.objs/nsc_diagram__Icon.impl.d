lib/diagram/icon.pp.ml: Als Array Fu_config Geometry List Nsc_arch Option Params Ppx_deriving_runtime Printf Resource Shift_delay String
