lib/diagram/icon.pp.mli: Format Fu_config Geometry Nsc_arch
