lib/diagram/pipeline.pp.ml: Als Array Connection Fu_config Geometry Icon List Nsc_arch Option Params Ppx_deriving_runtime Printf Resource Shift_delay
