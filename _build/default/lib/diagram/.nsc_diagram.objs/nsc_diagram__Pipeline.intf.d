lib/diagram/pipeline.pp.mli: Connection Dma_spec Format Fu_config Geometry Icon Nsc_arch
