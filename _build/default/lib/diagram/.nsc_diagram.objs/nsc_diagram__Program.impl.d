lib/diagram/program.pp.ml: Interrupt List Nsc_arch Option Pipeline Ppx_deriving_runtime Printf Resource String
