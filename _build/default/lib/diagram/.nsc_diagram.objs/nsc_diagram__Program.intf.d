lib/diagram/program.pp.mli: Format Nsc_arch Pipeline String
