lib/diagram/semantic.pp.ml: Als Array Connection Dma Dma_spec Fu_config Hashtbl Icon List Nsc_arch Opcode Option Params Pipeline Ppx_deriving_runtime Printf Resource Shift_delay Switch
