lib/diagram/semantic.pp.mli: Connection Format Fu_config Hashtbl Nsc_arch Pipeline
