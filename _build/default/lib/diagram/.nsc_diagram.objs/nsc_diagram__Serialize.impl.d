lib/diagram/serialize.pp.ml: Als Array Buffer Connection Dma_spec Fu_config Fun Geometry Icon Interrupt List Nsc_arch Opcode Option Params Pipeline Printf Program Resource Shift_delay String
