lib/diagram/serialize.pp.mli: Connection Dma_spec Fu_config Nsc_arch Pipeline Program
