lib/diagram/validate.pp.ml: Als Array Connection Icon Interrupt List Memory Nsc_arch Params Pipeline Ppx_deriving_runtime Printf Program Resource Shift_delay String
