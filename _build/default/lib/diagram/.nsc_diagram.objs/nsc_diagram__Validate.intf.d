lib/diagram/validate.pp.mli: Format Nsc_arch Pipeline Program
