(** Shared wiring helpers for the application program builders: the same
    few editing gestures — wire a memory stream to a pad, wire a pad to a
    memory stream, wire two pads — that every diagram in this library is
    drawn with. *)

let fail_on_error = function Ok v -> v | Error e -> failwith e

(** Wire a memory-plane read stream into an icon pad, with its DMA spec. *)
let mem_to_pad pl ~plane ~var ~offset ?(stride = 1) ~icon ~pad () =
  let _, pl =
    Pipeline.add_connection pl
      ~src:(Connection.Direct_memory plane)
      ~dst:(Connection.Pad { icon; pad })
      ~spec:(Dma_spec.make ~variable:var ~offset ~stride (Dma_spec.To_plane plane))
      ()
  in
  pl

(** Wire an icon pad to a memory-plane write stream. *)
let pad_to_mem pl ~icon ~pad ~plane ~var ~offset ?(stride = 1) () =
  let _, pl =
    Pipeline.add_connection pl
      ~src:(Connection.Pad { icon; pad })
      ~dst:(Connection.Direct_memory plane)
      ~spec:(Dma_spec.make ~variable:var ~offset ~stride (Dma_spec.To_plane plane))
      ()
  in
  pl

(** Wire one icon pad to another (the plain rubber-band connection). *)
let pad_to_pad pl ~from_icon ~from_pad ~to_icon ~to_pad =
  let _, pl =
    Pipeline.add_connection pl
      ~src:(Connection.Pad { icon = from_icon; pad = from_pad })
      ~dst:(Connection.Pad { icon = to_icon; pad = to_pad })
      ()
  in
  pl

(** The ALS bound to an icon. *)
let als_of_icon pl icon =
  match Pipeline.icon_kind pl icon with
  | Some (Icon.Als_icon { als; _ }) -> als
  | _ -> invalid_arg "Builder.als_of_icon: not an ALS icon"

(** Declare a list of (name, plane) variables, all of [length] words. *)
let declare_all prog vars ~length =
  List.fold_left
    (fun prog (name, plane) ->
      match Program.declare prog { Program.name; plane; base = 0; length } with
      | Ok prog -> prog
      | Error e -> failwith e)
    prog vars

(** Place an ALS icon of a kind, failing loudly when the machine is out of
    that kind. *)
let place pl ~params ~kind ~x ~y =
  fail_on_error (Pipeline.place_als params pl ~kind ~pos:(Geometry.point x y) ())

(** Shorthand configuration setters. *)
let config pl ~icon ~slot ?(a = Fu_config.Unbound) ?(b = Fu_config.Unbound) op =
  Pipeline.set_config pl ~id:icon ~slot (Fu_config.make ~a ~b op)

let sw = Fu_config.From_switch
let chain = Fu_config.From_chain
let const c = Fu_config.From_constant c
let feedback n = Fu_config.From_feedback n
