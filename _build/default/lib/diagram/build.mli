(** Shared wiring helpers for the application program builders: the same
    few editing gestures — wire a memory stream to a pad, wire a pad to a
    memory stream, wire two pads — that every diagram in this library is
    drawn with. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val fail_on_error : ('a, string) result -> 'a
val mem_to_pad :
  Pipeline.t ->
  plane:Nsc_arch.Resource.plane_id ->
  var:string ->
  offset:int ->
  ?stride:int ->
  icon:Icon.id ->
  pad:Icon.pad -> unit -> Pipeline.t
val pad_to_mem :
  Pipeline.t ->
  icon:Icon.id ->
  pad:Icon.pad ->
  plane:Nsc_arch.Resource.plane_id ->
  var:string -> offset:int -> ?stride:int -> unit -> Pipeline.t
val pad_to_pad :
  Pipeline.t ->
  from_icon:Icon.id ->
  from_pad:Icon.pad ->
  to_icon:Icon.id ->
  to_pad:Icon.pad -> Pipeline.t
val als_of_icon :
  Pipeline.t -> Icon.id -> Nsc_arch.Resource.als_id
val declare_all :
  Program.t ->
  (string * Nsc_arch.Resource.plane_id) list ->
  length:int -> Program.t
val place :
  Pipeline.t ->
  params:Nsc_arch.Params.t ->
  kind:Nsc_arch.Als.kind ->
  x:int -> y:int -> Icon.id * Pipeline.t
val config :
  Pipeline.t ->
  icon:Icon.id ->
  slot:int ->
  ?a:Fu_config.input_binding ->
  ?b:Fu_config.input_binding ->
  Nsc_arch.Opcode.t -> Pipeline.t
val sw : Fu_config.input_binding
val chain : Fu_config.input_binding
val const : float -> Fu_config.input_binding
val feedback : int -> Fu_config.input_binding
