(** Wiring connections between I/O pads.

    A connection is what the rubber-band operation of Figure 8 creates: a
    directed wire from a producing endpoint to a consuming endpoint.  When
    either end is a memory plane or cache, the popup subwindow of Figure 9
    supplies a {!Dma_spec.t} carried on the connection.

    Endpoints are usually pads of placed icons; memory planes and caches may
    also be referenced directly without a placed icon, exactly as in the
    prototype (whose memory icons were "useful, but not currently
    implemented"). *)

open Nsc_arch

type endpoint =
  | Pad of { icon : Icon.id; pad : Icon.pad }
  | Direct_memory of Resource.plane_id
  | Direct_cache of Resource.cache_id
[@@deriving show { with_path = false }, eq, ord]

type id = int [@@deriving show, eq, ord]

type t = {
  id : id;
  src : endpoint;  (** producing end *)
  dst : endpoint;  (** consuming end *)
  spec : Dma_spec.t option;
      (** DMA programming; required exactly when an end is memory or cache *)
}
[@@deriving show { with_path = false }, eq]

let endpoint_to_string = function
  | Pad { icon; pad } -> Printf.sprintf "icon%d.%s" icon (Icon.pad_to_string pad)
  | Direct_memory p -> Printf.sprintf "mem%d" p
  | Direct_cache c -> Printf.sprintf "cache%d" c

let to_string c =
  Printf.sprintf "#%d %s -> %s%s" c.id (endpoint_to_string c.src)
    (endpoint_to_string c.dst)
    (match c.spec with None -> "" | Some s -> " [" ^ Dma_spec.to_string s ^ "]")

(** Does the endpoint denote a DMA-fed stream (memory or cache), whether as
    a direct reference or through a placed icon?  [icon_kind] resolves icon
    ids to their kinds. *)
let is_dma_endpoint ~(icon_kind : Icon.id -> Icon.kind option) = function
  | Direct_memory _ | Direct_cache _ -> true
  | Pad { icon; pad = Icon.Flow_in | Icon.Flow_out } -> (
      match icon_kind icon with
      | Some (Icon.Memory_icon _ | Icon.Cache_icon _) -> true
      | Some (Icon.Als_icon _ | Icon.Shift_delay_icon _) | None -> false)
  | Pad _ -> false

(** DMA channel denoted by the endpoint, if it is one. *)
let dma_channel ~(icon_kind : Icon.id -> Icon.kind option) = function
  | Direct_memory p -> Some (Dma.Plane p)
  | Direct_cache c -> Some (Dma.Cache_chan c)
  | Pad { icon; pad = Icon.Flow_in | Icon.Flow_out } -> (
      match icon_kind icon with
      | Some (Icon.Memory_icon p) -> Some (Dma.Plane p)
      | Some (Icon.Cache_icon c) -> Some (Dma.Cache_chan c)
      | Some (Icon.Als_icon _ | Icon.Shift_delay_icon _) | None -> None)
  | Pad _ -> None

(** Does the connection mention endpoint [e] (either end)? *)
let mentions c e = equal_endpoint c.src e || equal_endpoint c.dst e

(** Does the connection touch icon [icon_id]? *)
let touches_icon c icon_id =
  let touch = function Pad { icon; _ } -> icon = icon_id | Direct_memory _ | Direct_cache _ -> false in
  touch c.src || touch c.dst
