(** Wiring connections between I/O pads.

    A connection is what the rubber-band operation of Figure 8 creates: a
    directed wire from a producing endpoint to a consuming endpoint.  When
    either end is a memory plane or cache, the popup subwindow of Figure 9
    supplies a {!Dma_spec.t} carried on the connection.

    Endpoints are usually pads of placed icons; memory planes and caches may
    also be referenced directly without a placed icon, exactly as in the
    prototype (whose memory icons were "useful, but not currently
    implemented"). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type endpoint =
    Pad of { icon : Icon.id; pad : Icon.pad; }
  | Direct_memory of Nsc_arch.Resource.plane_id
  | Direct_cache of Nsc_arch.Resource.cache_id
val pp_endpoint :
  Format.formatter ->
  endpoint -> unit
val show_endpoint : endpoint -> string
val equal_endpoint : endpoint -> endpoint -> bool
val compare_endpoint : endpoint -> endpoint -> int
type id = int
val pp_id :
  Format.formatter -> id -> unit
val show_id : id -> string
val equal_id : id -> id -> bool
val compare_id : id -> id -> int
type t = {
  id : id;
  src : endpoint;
  dst : endpoint;
  spec : Dma_spec.t option;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val endpoint_to_string : endpoint -> string
val to_string : t -> string
val is_dma_endpoint :
  icon_kind:(Icon.id -> Icon.kind option) ->
  endpoint -> bool
val dma_channel :
  icon_kind:(Icon.id -> Icon.kind option) ->
  endpoint -> Nsc_arch.Dma.channel option
val mentions : t -> endpoint -> bool
val touches_icon : t -> Icon.id -> bool
