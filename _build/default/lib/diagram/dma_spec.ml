(** Data collected by the cache/memory connection popup subwindow.

    Figure 9 of the paper shows the form: the plane (or cache) number, a
    variable name or starting address, an offset, and a stride.  The count
    defaults to the instruction's vector length. *)

type target = To_plane of int | To_cache of int
[@@deriving show { with_path = false }, eq, ord]

type t = {
  target : target;
  variable : string option;
      (** declared variable whose base address anchors the transfer; [None]
          means [offset] is an absolute word address *)
  offset : int;  (** word offset added to the variable's base (or absolute) *)
  stride : int;  (** word step between consecutive vector elements *)
  count : int;   (** element count; 0 = "use the instruction's vector length" *)
}
[@@deriving show { with_path = false }, eq, ord]

let make ?variable ?(offset = 0) ?(stride = 1) ?(count = 0) target =
  { target; variable; offset; stride; count }

let target_to_string = function
  | To_plane p -> Printf.sprintf "plane %d" p
  | To_cache c -> Printf.sprintf "cache %d" c

let to_string t =
  Printf.sprintf "%s %s offset=%d stride=%d count=%s" (target_to_string t.target)
    (match t.variable with Some v -> v | None -> "(absolute)")
    t.offset t.stride
    (if t.count = 0 then "vlen" else string_of_int t.count)

(** Channel the spec addresses, in DMA terms. *)
let channel t : Nsc_arch.Dma.channel =
  match t.target with
  | To_plane p -> Nsc_arch.Dma.Plane p
  | To_cache c -> Nsc_arch.Dma.Cache_chan c

(** Resolve the spec to a concrete transfer, given the direction and a
    function resolving variable names to base word addresses.  Fails with
    [Error] when the variable is undeclared. *)
let resolve t ~direction ~(lookup : string -> int option) :
    (Nsc_arch.Dma.transfer, string) result =
  let base =
    match t.variable with
    | None -> Ok t.offset
    | Some name -> (
        match lookup name with
        | Some b -> Ok (b + t.offset)
        | None -> Error (Printf.sprintf "undeclared variable '%s'" name))
  in
  Result.map
    (fun base ->
      {
        Nsc_arch.Dma.channel = channel t;
        direction;
        base;
        stride = t.stride;
        count = t.count;
      })
    base
