(** Data collected by the cache/memory connection popup subwindow.

    Figure 9 of the paper shows the form: the plane (or cache) number, a
    variable name or starting address, an offset, and a stride.  The count
    defaults to the instruction's vector length. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type target = To_plane of int | To_cache of int
val pp_target :
  Format.formatter ->
  target -> unit
val show_target : target -> string
val equal_target : target -> target -> bool
val compare_target : target -> target -> int
type t = {
  target : target;
  variable : string option;
  offset : int;
  stride : int;
  count : int;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val make :
  ?variable:string -> ?offset:int -> ?stride:int -> ?count:int -> target -> t
val target_to_string : target -> string
val to_string : t -> string
val channel : t -> Nsc_arch.Dma.channel
val resolve :
  t ->
  direction:Nsc_arch.Dma.direction ->
  lookup:(string -> int option) -> (Nsc_arch.Dma.transfer, string) result
