(** Per-functional-unit programming: the third editing step of Section 5.

    A configuration records the operation assigned through the popup menu of
    Figure 10, where each operand comes from, and the register-file delay
    queues used to align vector streams (operands routed "into a circular
    queue in a register file" and retrieved "a number of clock cycles
    later"). *)

open Nsc_arch

(** Where an operand port takes its data. *)
type input_binding =
  | From_switch           (** wired externally through a diagram connection *)
  | From_chain            (** hardwired output of the previous unit in the ALS *)
  | From_constant of float (** constant held in the unit's register file *)
  | From_feedback of int  (** the unit's own output, [n >= 1] elements back,
                              through a register-file circular queue *)
  | Unbound               (** not yet specified *)
[@@deriving show { with_path = false }, eq, ord]

let binding_to_string = function
  | From_switch -> "switch"
  | From_chain -> "chain"
  | From_constant c -> Printf.sprintf "const %g" c
  | From_feedback n -> Printf.sprintf "feedback %d" n
  | Unbound -> "unbound"

type t = {
  op : Opcode.t option;  (** [None] until the user programs the unit *)
  a : input_binding;
  b : input_binding;
  delay_a : int;  (** extra alignment delay on the A operand, in elements *)
  delay_b : int;  (** extra alignment delay on the B operand, in elements *)
}
[@@deriving show { with_path = false }, eq, ord]

let idle = { op = None; a = Unbound; b = Unbound; delay_a = 0; delay_b = 0 }

let make ?(a = Unbound) ?(b = Unbound) ?(delay_a = 0) ?(delay_b = 0) op =
  { op = Some op; a; b; delay_a; delay_b }

let is_programmed t = Option.is_some t.op

(** Bindings actually consumed by the configured operation: unary opcodes
    use only the A port. *)
let consumed_bindings t =
  match t.op with
  | None -> []
  | Some op -> (
      match Opcode.arity op with
      | 1 -> [ (Resource.A, t.a) ]
      | _ -> [ (Resource.A, t.a); (Resource.B, t.b) ])

let binding_of_port t = function Resource.A -> t.a | Resource.B -> t.b

let delay_of_port t = function Resource.A -> t.delay_a | Resource.B -> t.delay_b

(** Register-file usage implied by a configuration (constants occupy one
    register each; delay and feedback queues occupy their depth). *)
let register_file_usage t : Register_file.usage =
  let const_regs =
    List.filter_map
      (function From_constant c -> Some c | From_switch | From_chain | From_feedback _ | Unbound -> None)
      [ t.a; t.b ]
    |> List.mapi (fun i c -> (i, c))
  in
  let feedback_depth b = match b with From_feedback n -> n | _ -> 0 in
  {
    Register_file.constants = const_regs;
    delay_a = t.delay_a + feedback_depth t.a;
    delay_b = t.delay_b + feedback_depth t.b;
  }

(** One-line rendering for listings and the ASCII editor view. *)
let to_string t =
  match t.op with
  | None -> "idle"
  | Some op ->
      let operand port b d =
        let base = binding_to_string b in
        let base = if d > 0 then Printf.sprintf "%s+z%d" base d else base in
        Printf.sprintf "%s=%s" port base
      in
      let parts =
        match Opcode.arity op with
        | 1 -> [ operand "a" t.a t.delay_a ]
        | _ -> [ operand "a" t.a t.delay_a; operand "b" t.b t.delay_b ]
      in
      Printf.sprintf "%s(%s)" (Opcode.mnemonic op) (String.concat ", " parts)
