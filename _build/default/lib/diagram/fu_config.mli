(** Per-functional-unit programming: the third editing step of Section 5.

    A configuration records the operation assigned through the popup menu of
    Figure 10, where each operand comes from, and the register-file delay
    queues used to align vector streams (operands routed "into a circular
    queue in a register file" and retrieved "a number of clock cycles
    later"). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type input_binding =
    From_switch
  | From_chain
  | From_constant of float
  | From_feedback of int
  | Unbound
val pp_input_binding :
  Format.formatter ->
  input_binding -> unit
val show_input_binding : input_binding -> string
val equal_input_binding :
  input_binding -> input_binding -> bool
val compare_input_binding :
  input_binding -> input_binding -> int
val binding_to_string : input_binding -> string
type t = {
  op : Nsc_arch.Opcode.t option;
  a : input_binding;
  b : input_binding;
  delay_a : int;
  delay_b : int;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val idle : t
val make :
  ?a:input_binding ->
  ?b:input_binding -> ?delay_a:int -> ?delay_b:int -> Nsc_arch.Opcode.t -> t
val is_programmed : t -> bool
val consumed_bindings : t -> (Nsc_arch.Resource.port * input_binding) list
val binding_of_port : t -> Nsc_arch.Resource.port -> input_binding
val delay_of_port : t -> Nsc_arch.Resource.port -> int
val register_file_usage : t -> Nsc_arch.Register_file.usage
val to_string : t -> string
