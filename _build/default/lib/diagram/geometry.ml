(** Plane geometry for the drawing surface.

    The prototype draws on a high-resolution bit-mapped display; we keep the
    same model with integer coordinates.  Geometry is pure display data: the
    semantic projection of a diagram discards it entirely. *)

type point = { x : int; y : int } [@@deriving show { with_path = false }, eq, ord]

let point x y = { x; y }
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }

(** Axis-aligned rectangle anchored at its top-left corner. *)
type rect = { ox : int; oy : int; w : int; h : int }
[@@deriving show { with_path = false }, eq, ord]

let rect ox oy w h =
  if w < 0 || h < 0 then invalid_arg "Geometry.rect: negative extent";
  { ox; oy; w; h }

let origin r = { x = r.ox; y = r.oy }

(** Point containment, inclusive of all edges. *)
let contains r p = p.x >= r.ox && p.x <= r.ox + r.w && p.y >= r.oy && p.y <= r.oy + r.h

let intersects a b =
  a.ox <= b.ox + b.w && b.ox <= a.ox + a.w && a.oy <= b.oy + b.h && b.oy <= a.oy + a.h

let translate r d = { r with ox = r.ox + d.x; oy = r.oy + d.y }
let center r = { x = r.ox + (r.w / 2); y = r.oy + (r.h / 2) }

(** Squared Euclidean distance (avoids needless floating point in hit
    testing). *)
let dist2 a b =
  let dx = a.x - b.x and dy = a.y - b.y in
  (dx * dx) + (dy * dy)

(** Nearest of [candidates] to [p] within radius [within], if any — the
    editor uses this to resolve a mouse click to an I/O pad. *)
let nearest ~within p candidates =
  let r2 = within * within in
  List.fold_left
    (fun best (q, v) ->
      let d = dist2 p q in
      match best with
      | Some (bd, _) when bd <= d -> best
      | _ -> if d <= r2 then Some (d, v) else best)
    None candidates
  |> Option.map snd
