(** Plane geometry for the drawing surface.

    The prototype draws on a high-resolution bit-mapped display; we keep the
    same model with integer coordinates.  Geometry is pure display data: the
    semantic projection of a diagram discards it entirely. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type point = { x : int; y : int; }
val pp_point :
  Format.formatter -> point -> unit
val show_point : point -> string
val equal_point : point -> point -> bool
val compare_point : point -> point -> int
val point : int -> int -> point
val add : point -> point -> point
val sub : point -> point -> point
type rect = { ox : int; oy : int; w : int; h : int; }
val pp_rect :
  Format.formatter -> rect -> unit
val show_rect : rect -> string
val equal_rect : rect -> rect -> bool
val compare_rect : rect -> rect -> int
val rect : int -> int -> int -> int -> rect
val origin : rect -> point
val contains : rect -> point -> bool
val intersects : rect -> rect -> bool
val translate : rect -> point -> rect
val center : rect -> point
val dist2 : point -> point -> int
val nearest : within:int -> point -> (point * 'a) list -> 'a option
