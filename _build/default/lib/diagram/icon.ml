(** Icons: the visual objects representing architectural components.

    "Visual objects, or icons, are used to represent architectural
    components of the NSC at a suitable level of abstraction ...  Subimages
    within each icon are also meaningful."  The prototype implements ALS
    icons (Figure 4, including the bypassed-doublet representation); the
    paper lists memory planes and shift/delay units as useful additions —
    we implement those too, plus caches.

    All coordinates are in character cells of the drawing surface, with the
    ALS chain flowing top to bottom; positions are display data only. *)

open Nsc_arch

type id = int [@@deriving show, eq, ord]

type kind =
  | Als_icon of { als : Resource.als_id; bypass : Als.bypass }
  | Memory_icon of Resource.plane_id
  | Cache_icon of Resource.cache_id
  | Shift_delay_icon of { sd : Resource.sd_id; mode : Shift_delay.mode }
[@@deriving show { with_path = false }, eq]

(** Connection points drawn as "short wires terminated by small black
    circles" on an icon. *)
type pad =
  | In_pad of int * Resource.port  (** operand port of an ALS slot *)
  | Out_pad of int                 (** output tap of an ALS slot *)
  | Flow_in                        (** write side of memory/cache/shift-delay *)
  | Flow_out                       (** read side of memory/cache/shift-delay *)
[@@deriving show { with_path = false }, eq, ord]

type t = {
  id : id;
  kind : kind;
  pos : Geometry.point;          (** top-left corner on the drawing surface *)
  configs : Fu_config.t array;   (** one per ALS slot; empty otherwise *)
}
[@@deriving show { with_path = false }, eq]

(* Drawing metrics, in character cells. *)
let fu_box_w = 9
let fu_box_h = 3
let fu_gap = 1

let als_of_kind = function Als_icon { als; _ } -> Some als | Memory_icon _ | Cache_icon _ | Shift_delay_icon _ -> None

(** Number of functional-unit slots the icon carries. *)
let slot_count (p : Params.t) = function
  | Als_icon { als; _ } -> Resource.als_size p als
  | Memory_icon _ | Cache_icon _ | Shift_delay_icon _ -> 0

let make (p : Params.t) ~id ~kind ~pos =
  let n =
    match kind with
    | Als_icon { als; _ } -> Resource.als_size p als
    | Memory_icon _ | Cache_icon _ | Shift_delay_icon _ -> 0
  in
  { id; kind; pos; configs = Array.make n Fu_config.idle }

(** Functional unit denoted by slot [slot] of an ALS icon. *)
let fu_of_slot icon slot : Resource.fu_id option =
  match icon.kind with
  | Als_icon { als; _ } -> Some { Resource.als; slot }
  | Memory_icon _ | Cache_icon _ | Shift_delay_icon _ -> None

(** Active slots of the icon under its bypass configuration. *)
let active_slots (p : Params.t) icon =
  match icon.kind with
  | Als_icon { als; bypass } ->
      Als.active_slots ~size:(Resource.als_size p als) bypass
  | Memory_icon _ | Cache_icon _ | Shift_delay_icon _ -> []

(** Size of the icon's bounding box in character cells. *)
let size (p : Params.t) icon =
  match icon.kind with
  | Als_icon { als; _ } ->
      let n = Resource.als_size p als in
      (fu_box_w, (n * fu_box_h) + ((n - 1) * fu_gap) + 2)
  | Memory_icon _ -> (13, 3)
  | Cache_icon _ -> (13, 3)
  | Shift_delay_icon _ -> (11, 3)

let bounding_box p icon =
  let w, h = size p icon in
  Geometry.rect icon.pos.Geometry.x icon.pos.Geometry.y w h

(** Vertical character row of slot [slot]'s box top, relative to the icon. *)
let slot_row slot = 1 + (slot * (fu_box_h + fu_gap))

(** Pads exposed by the icon, with positions relative to [icon.pos].
    For an ALS: the first active slot exposes A (top-left) and B (top-right)
    pads; each later active slot exposes a B pad on its right edge (its A
    operand arrives over the internal chain); every active slot exposes an
    output tap, drawn bottom-centre for the final slot and bottom-left
    otherwise. *)
let pads (p : Params.t) icon : (pad * Geometry.point) list =
  match icon.kind with
  | Als_icon { als; bypass } -> (
      let size_ = Resource.als_size p als in
      let actives = Als.active_slots ~size:size_ bypass in
      let out_slot = Als.output_slot ~size:size_ bypass in
      match actives with
      | [] -> []
      | first :: rest ->
          let top = slot_row first - 1 in
          let head_pads =
            [
              (In_pad (first, Resource.A), Geometry.point 2 top);
              (In_pad (first, Resource.B), Geometry.point (fu_box_w - 3) top);
            ]
          in
          let chain_pads =
            List.map
              (fun slot ->
                (In_pad (slot, Resource.B),
                 Geometry.point (fu_box_w - 1) (slot_row slot + 1)))
              rest
          in
          let out_pads =
            List.map
              (fun slot ->
                let row = slot_row slot + fu_box_h in
                if slot = out_slot then
                  (Out_pad slot, Geometry.point (fu_box_w / 2) row)
                else (Out_pad slot, Geometry.point 0 (row - 1)))
              actives
          in
          head_pads @ chain_pads @ out_pads)
  | Memory_icon _ | Cache_icon _ ->
      [ (Flow_in, Geometry.point 3 0); (Flow_out, Geometry.point 9 2) ]
  | Shift_delay_icon _ ->
      [ (Flow_in, Geometry.point 2 0); (Flow_out, Geometry.point 8 2) ]

(** Absolute position of [pad] on the drawing surface. *)
let pad_position p icon pad =
  List.assoc_opt pad (pads p icon)
  |> Option.map (fun rel -> Geometry.add icon.pos rel)

type pad_direction = Consumes | Produces

(** Does the pad consume or produce data? *)
let pad_direction = function
  | In_pad _ | Flow_in -> Consumes
  | Out_pad _ | Flow_out -> Produces

let pad_to_string = function
  | In_pad (slot, port) -> Printf.sprintf "in%d%s" slot (Resource.port_to_string port)
  | Out_pad slot -> Printf.sprintf "out%d" slot
  | Flow_in -> "flowin"
  | Flow_out -> "flowout"

let pad_of_string s =
  match s with
  | "flowin" -> Some Flow_in
  | "flowout" -> Some Flow_out
  | _ ->
      let parse prefix mk =
        let pl = String.length prefix in
        if String.length s > pl && String.sub s 0 pl = prefix then
          mk (String.sub s pl (String.length s - pl))
        else None
      in
      let in_pad rest =
        let n = String.length rest in
        if n >= 2 then
          let port =
            match rest.[n - 1] with
            | 'a' -> Some Resource.A
            | 'b' -> Some Resource.B
            | _ -> None
          in
          match (port, int_of_string_opt (String.sub rest 0 (n - 1))) with
          | Some port, Some slot -> Some (In_pad (slot, port))
          | _ -> None
        else None
      in
      let out_pad rest =
        Option.map (fun slot -> Out_pad slot) (int_of_string_opt rest)
      in
      (match parse "in" in_pad with Some p -> Some p | None -> parse "out" out_pad)

(** Title drawn in the icon header. *)
let title icon =
  match icon.kind with
  | Als_icon { als; bypass } ->
      let base = Printf.sprintf "ALS%d" als in
      (match bypass with
      | Als.No_bypass -> base
      | Als.Keep_head -> base ^ "(h)"
      | Als.Keep_tail -> base ^ "(t)")
  | Memory_icon pl -> Printf.sprintf "MEM %d" pl
  | Cache_icon c -> Printf.sprintf "CACHE %d" c
  | Shift_delay_icon { sd; mode } ->
      Printf.sprintf "SD%d %s" sd (Shift_delay.mode_to_string mode)
