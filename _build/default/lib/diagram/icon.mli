(** Icons: the visual objects representing architectural components.

    "Visual objects, or icons, are used to represent architectural
    components of the NSC at a suitable level of abstraction ...  Subimages
    within each icon are also meaningful."  The prototype implements ALS
    icons (Figure 4, including the bypassed-doublet representation); the
    paper lists memory planes and shift/delay units as useful additions —
    we implement those too, plus caches.

    All coordinates are in character cells of the drawing surface, with the
    ALS chain flowing top to bottom; positions are display data only. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type id = int
val pp_id :
  Format.formatter -> id -> unit
val show_id : id -> string
val equal_id : id -> id -> bool
val compare_id : id -> id -> int
type kind =
    Als_icon of { als : Nsc_arch.Resource.als_id;
      bypass : Nsc_arch.Als.bypass;
    }
  | Memory_icon of Nsc_arch.Resource.plane_id
  | Cache_icon of Nsc_arch.Resource.cache_id
  | Shift_delay_icon of { sd : Nsc_arch.Resource.sd_id;
      mode : Nsc_arch.Shift_delay.mode;
    }
val pp_kind :
  Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool
type pad =
    In_pad of int * Nsc_arch.Resource.port
  | Out_pad of int
  | Flow_in
  | Flow_out
val pp_pad :
  Format.formatter -> pad -> unit
val show_pad : pad -> string
val equal_pad : pad -> pad -> bool
val compare_pad : pad -> pad -> int
type t = {
  id : id;
  kind : kind;
  pos : Geometry.point;
  configs : Fu_config.t array;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val fu_box_w : int
val fu_box_h : int
val fu_gap : int
val als_of_kind : kind -> Nsc_arch.Resource.als_id option
val slot_count : Nsc_arch.Params.t -> kind -> int
val make :
  Nsc_arch.Params.t ->
  id:id -> kind:kind -> pos:Geometry.point -> t
val fu_of_slot : t -> int -> Nsc_arch.Resource.fu_id option
val active_slots : Nsc_arch.Params.t -> t -> int list
val size : Nsc_arch.Params.t -> t -> int * int
val bounding_box : Nsc_arch.Params.t -> t -> Geometry.rect
val slot_row : int -> int
val pads : Nsc_arch.Params.t -> t -> (pad * Geometry.point) list
val pad_position :
  Nsc_arch.Params.t -> t -> pad -> Geometry.point option
type pad_direction = Consumes | Produces
val pad_direction : pad -> pad_direction
val pad_to_string : pad -> string
val pad_of_string : string -> pad option
val title : t -> string
