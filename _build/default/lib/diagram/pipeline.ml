(** A pipeline diagram: one instruction of the visual program.

    "Each pipeline corresponds to a single instruction, or one line of code,
    in a more conventional language."  A diagram holds placed icons, the
    wiring connections between their pads, and the per-unit configurations;
    the vector length is the number of elements every stream of the
    instruction carries (scalars are vectors of length one). *)

open Nsc_arch

type t = {
  index : int;  (** instruction number within the program (1-based) *)
  label : string;
  vector_length : int;
  icons : Icon.t list;  (** in placement order *)
  connections : Connection.t list;
  next_icon_id : int;
  next_conn_id : int;
}
[@@deriving show { with_path = false }, eq]

let empty ?(label = "") index =
  {
    index;
    label;
    vector_length = 1;
    icons = [];
    connections = [];
    next_icon_id = 0;
    next_conn_id = 0;
  }

let with_vector_length t vlen =
  if vlen < 1 then invalid_arg "Pipeline.with_vector_length: length must be >= 1";
  { t with vector_length = vlen }

let find_icon t id = List.find_opt (fun (i : Icon.t) -> i.Icon.id = id) t.icons
let icon_kind t id = Option.map (fun (i : Icon.t) -> i.Icon.kind) (find_icon t id)

(** ALS ids already bound to icons of this diagram. *)
let used_als t =
  List.filter_map (fun (i : Icon.t) -> Icon.als_of_kind i.Icon.kind) t.icons

(** Shift/delay units already bound to icons of this diagram. *)
let used_shift_delay t =
  List.filter_map
    (fun (i : Icon.t) ->
      match i.Icon.kind with
      | Icon.Shift_delay_icon { sd; _ } -> Some sd
      | Icon.Als_icon _ | Icon.Memory_icon _ | Icon.Cache_icon _ -> None)
    t.icons

(** Lowest-numbered free ALS of kind [k], if the machine still has one. *)
let free_als (p : Params.t) t (k : Als.kind) =
  let used = used_als t in
  List.find_opt (fun a -> not (List.mem a used)) (Als.ids_of_kind p k)

(** Lowest-numbered free shift/delay unit. *)
let free_shift_delay (p : Params.t) t =
  let used = used_shift_delay t in
  List.find_opt (fun s -> not (List.mem s used))
    (List.init p.n_shift_delay (fun s -> s))

(** Place an icon of the given kind at [pos].  ALS icons must already carry
    a concrete ALS id (use {!place_als} for automatic assignment). *)
let add_icon (p : Params.t) t ~kind ~pos =
  let icon = Icon.make p ~id:t.next_icon_id ~kind ~pos in
  (icon.Icon.id, { t with icons = t.icons @ [ icon ]; next_icon_id = t.next_icon_id + 1 })

(** Place an ALS icon of kind [k], automatically binding the lowest free ALS
    of that kind — what happens when the user drags an ALS icon out of the
    control panel.  [Error] when the machine's supply of that kind is
    exhausted. *)
let place_als (p : Params.t) t ~(kind : Als.kind) ?(bypass = Als.No_bypass) ~pos () =
  match free_als p t kind with
  | None ->
      Error
        (Printf.sprintf "all %s ALSs of the machine are already in use"
           (Als.kind_to_string kind))
  | Some als ->
      if not (List.mem bypass (Als.legal_bypasses ~size:(Resource.als_size p als))) then
        Error "bypass configuration is only available on doublets"
      else Ok (add_icon p t ~kind:(Icon.Als_icon { als; bypass }) ~pos)

(** Place a shift/delay icon, automatically binding a free unit. *)
let place_shift_delay (p : Params.t) t ~mode ~pos =
  match free_shift_delay p t with
  | None -> Error "both shift/delay units are already in use"
  | Some sd ->
      (match Shift_delay.validate p mode with
      | [] -> Ok (add_icon p t ~kind:(Icon.Shift_delay_icon { sd; mode }) ~pos)
      | e :: _ -> Error e)

(** Delete an icon and every connection touching it. *)
let remove_icon t id =
  {
    t with
    icons = List.filter (fun (i : Icon.t) -> i.Icon.id <> id) t.icons;
    connections =
      List.filter (fun c -> not (Connection.touches_icon c id)) t.connections;
  }

let move_icon t id pos =
  {
    t with
    icons =
      List.map
        (fun (i : Icon.t) -> if i.Icon.id = id then { i with Icon.pos } else i)
        t.icons;
  }

(** Update the configuration of slot [slot] of icon [id]. *)
let set_config t ~id ~slot (cfg : Fu_config.t) =
  let update (i : Icon.t) =
    if i.Icon.id <> id then i
    else begin
      if slot < 0 || slot >= Array.length i.Icon.configs then
        invalid_arg "Pipeline.set_config: slot out of range";
      let configs = Array.copy i.Icon.configs in
      configs.(slot) <- cfg;
      { i with Icon.configs }
    end
  in
  { t with icons = List.map update t.icons }

let config_of t ~id ~slot =
  match find_icon t id with
  | Some i when slot >= 0 && slot < Array.length i.Icon.configs ->
      Some i.Icon.configs.(slot)
  | Some _ | None -> None

(** Add a connection; ids are assigned by the diagram. *)
let add_connection t ~src ~dst ?spec () =
  let c = { Connection.id = t.next_conn_id; src; dst; spec } in
  (c.Connection.id,
   { t with connections = t.connections @ [ c ]; next_conn_id = t.next_conn_id + 1 })

let remove_connection t id =
  {
    t with
    connections = List.filter (fun c -> c.Connection.id <> id) t.connections;
  }

let find_connection t id =
  List.find_opt (fun c -> c.Connection.id = id) t.connections

(** Connections whose consuming end is [e]. *)
let connections_into t e =
  List.filter (fun c -> Connection.equal_endpoint c.Connection.dst e) t.connections

(** Connections whose producing end is [e]. *)
let connections_from t e =
  List.filter (fun c -> Connection.equal_endpoint c.Connection.src e) t.connections

(** All pads of all icons with absolute positions — the hit-testing universe
    for the editor's mouse clicks. *)
let all_pads (p : Params.t) t =
  List.concat_map
    (fun (i : Icon.t) ->
      List.map
        (fun (pad, rel) -> (i.Icon.id, pad, Geometry.add i.Icon.pos rel))
        (Icon.pads p i))
    t.icons

(** Resolve a drawing-surface point to the nearest pad within [within]
    cells. *)
let pad_at (p : Params.t) t ~within pos =
  Geometry.nearest ~within pos
    (List.map (fun (id, pad, at) -> (at, (id, pad))) (all_pads p t))

(** Topmost icon whose bounding box contains [pos]. *)
let icon_at (p : Params.t) t pos =
  List.fold_left
    (fun acc (i : Icon.t) ->
      if Geometry.contains (Icon.bounding_box p i) pos then Some i else acc)
    None t.icons

(** Number of programmed (non-idle) functional units in the diagram. *)
let programmed_units t =
  List.fold_left
    (fun acc (i : Icon.t) ->
      acc + Array.fold_left (fun n c -> if Fu_config.is_programmed c then n + 1 else n) 0 i.Icon.configs)
    0 t.icons
