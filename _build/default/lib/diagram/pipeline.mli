(** A pipeline diagram: one instruction of the visual program.

    "Each pipeline corresponds to a single instruction, or one line of code,
    in a more conventional language."  A diagram holds placed icons, the
    wiring connections between their pads, and the per-unit configurations;
    the vector length is the number of elements every stream of the
    instruction carries (scalars are vectors of length one). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type t = {
  index : int;
  label : string;
  vector_length : int;
  icons : Icon.t list;
  connections : Connection.t list;
  next_icon_id : int;
  next_conn_id : int;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
(** A fresh, empty diagram for instruction [index]. *)
val empty : ?label:string -> int -> t
(** Set the instruction's vector length (scalars are vectors of length
    one); raises below 1. *)
val with_vector_length : t -> int -> t
val find_icon : t -> Icon.id -> Icon.t option
val icon_kind : t -> Icon.id -> Icon.kind option
(** ALS ids already bound to icons of this diagram. *)
val used_als : t -> Nsc_arch.Resource.als_id list
val used_shift_delay : t -> Nsc_arch.Resource.sd_id list
(** Lowest-numbered free ALS of a kind, if the machine still has one. *)
val free_als :
  Nsc_arch.Params.t ->
  t -> Nsc_arch.Als.kind -> Nsc_arch.Resource.als_id option
val free_shift_delay :
  Nsc_arch.Params.t -> t -> Nsc_arch.Resource.sd_id option
val add_icon :
  Nsc_arch.Params.t ->
  t ->
  kind:Icon.kind ->
  pos:Geometry.point -> Icon.id * t
(** Place an ALS icon, automatically binding the lowest free ALS of the
    requested kind — what happens when the user drags an icon out of the
    control panel.  [Error] when the supply is exhausted. *)
val place_als :
  Nsc_arch.Params.t ->
  t ->
  kind:Nsc_arch.Als.kind ->
  ?bypass:Nsc_arch.Als.bypass ->
  pos:Geometry.point ->
  unit -> (Icon.id * t, string) result
(** Place a shift/delay icon, automatically binding a free unit. *)
val place_shift_delay :
  Nsc_arch.Params.t ->
  t ->
  mode:Nsc_arch.Shift_delay.mode ->
  pos:Geometry.point -> (Icon.id * t, string) result
(** Delete an icon and every wire touching it. *)
val remove_icon : t -> Icon.id -> t
val move_icon : t -> Icon.id -> Geometry.point -> t
(** Update the configuration of one functional-unit slot. *)
val set_config :
  t -> id:Icon.id -> slot:int -> Fu_config.t -> t
val config_of :
  t -> id:Icon.id -> slot:int -> Fu_config.t option
(** Add a wire; ids are assigned by the diagram. *)
val add_connection :
  t ->
  src:Connection.endpoint ->
  dst:Connection.endpoint ->
  ?spec:Dma_spec.t -> unit -> Connection.id * t
val remove_connection : t -> Connection.id -> t
val find_connection :
  t -> Connection.id -> Connection.t option
val connections_into :
  t -> Connection.endpoint -> Connection.t list
val connections_from :
  t -> Connection.endpoint -> Connection.t list
(** All pads with absolute positions — the editor's hit-testing
    universe. *)
val all_pads :
  Nsc_arch.Params.t ->
  t ->
  (Icon.id * Icon.pad * Geometry.point)
  list
(** Resolve a drawing-surface point to the nearest pad within a radius. *)
val pad_at :
  Nsc_arch.Params.t ->
  t ->
  within:int ->
  Geometry.point ->
  (Icon.id * Icon.pad) option
(** Topmost icon whose bounding box contains the point. *)
val icon_at :
  Nsc_arch.Params.t ->
  t -> Geometry.point -> Icon.t option
(** Number of configured (non-idle) functional units in the diagram. *)
val programmed_units : t -> int
