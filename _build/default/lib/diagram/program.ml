(** A visual program: a numbered series of pipeline diagrams plus the
    variable declarations and control-flow specification the display window
    reserves its left-hand region for.

    The control-panel editing operations of Section 5 — "insert, delete,
    copy, and renumber pipelines" — live here; scrolling and jumping are
    editor-state concerns. *)

open Nsc_arch

(** A declared variable: a named strided region of one memory plane.  The
    DMA popup window resolves variable names against these. *)
type declaration = {
  name : string;
  plane : Resource.plane_id;
  base : int;    (** starting word address within the plane *)
  length : int;  (** element count *)
}
[@@deriving show { with_path = false }, eq]

(** Control-flow specification interpreted by the central sequencer.
    Conditions are interrupt-based (see {!Nsc_arch.Interrupt}): a [While]
    re-runs its body as long as the captured scalar satisfies the
    relation. *)
type control =
  | Exec of int  (** run pipeline number n *)
  | Repeat of { count : int; body : control list }
  | While of {
      condition : Interrupt.condition;
      max_iterations : int;  (** safety bound; 0 = unbounded *)
      body : control list;
    }
  | Halt
[@@deriving show { with_path = false }, eq]

type t = {
  name : string;
  declarations : declaration list;
  pipelines : Pipeline.t list;  (** kept sorted by [index], starting at 1 *)
  control : control list;       (** empty means: run pipelines in order *)
}
[@@deriving show { with_path = false }, eq]

let empty name = { name; declarations = []; pipelines = []; control = [] }

(* Renumber pipelines 1..n preserving order. *)
let renumber pipelines =
  List.mapi (fun i (pl : Pipeline.t) -> { pl with Pipeline.index = i + 1 }) pipelines

let pipeline_count t = List.length t.pipelines

let find_pipeline t index =
  List.find_opt (fun (pl : Pipeline.t) -> pl.Pipeline.index = index) t.pipelines

(** Replace pipeline [index] wholesale (the editor writes back the diagram
    it has been mutating). *)
let update_pipeline t (pl : Pipeline.t) =
  {
    t with
    pipelines =
      List.map
        (fun (q : Pipeline.t) -> if q.Pipeline.index = pl.Pipeline.index then pl else q)
        t.pipelines;
  }

(** Insert a fresh empty pipeline at position [at] (1-based; existing
    pipelines from [at] on shift up).  [at] beyond the end appends. *)
let insert_pipeline ?(label = "") t ~at =
  let at = max 1 (min at (pipeline_count t + 1)) in
  let fresh = Pipeline.empty ~label 0 in
  let rec ins i = function
    | [] -> [ fresh ]
    | pl :: rest -> if i = at then fresh :: pl :: rest else pl :: ins (i + 1) rest
  in
  let pipelines = renumber (ins 1 t.pipelines) in
  ({ t with pipelines }, at)

(** Append a fresh pipeline and return its number. *)
let append_pipeline ?(label = "") t =
  insert_pipeline ?label:(Some label) t ~at:(pipeline_count t + 1)

(** Delete pipeline [index]; later pipelines are renumbered down. *)
let delete_pipeline t ~index =
  {
    t with
    pipelines =
      renumber
        (List.filter (fun (pl : Pipeline.t) -> pl.Pipeline.index <> index) t.pipelines);
  }

(** Copy pipeline [index] and insert the copy immediately after it,
    returning the copy's number. *)
let copy_pipeline t ~index =
  match find_pipeline t index with
  | None -> Error (Printf.sprintf "no pipeline %d to copy" index)
  | Some src ->
      let rec ins = function
        | [] -> []
        | (pl : Pipeline.t) :: rest ->
            if pl.Pipeline.index = index then pl :: { src with Pipeline.index = 0 } :: rest
            else pl :: ins rest
      in
      Ok ({ t with pipelines = renumber (ins t.pipelines) }, index + 1)

(** Move pipeline [index] to position [to_] (the "renumber" panel op). *)
let move_pipeline t ~index ~to_ =
  match find_pipeline t index with
  | None -> Error (Printf.sprintf "no pipeline %d to move" index)
  | Some victim ->
      let rest =
        List.filter (fun (pl : Pipeline.t) -> pl.Pipeline.index <> index) t.pipelines
      in
      let to_ = max 1 (min to_ (List.length rest + 1)) in
      let rec ins i = function
        | [] -> [ victim ]
        | pl :: tl -> if i = to_ then victim :: pl :: tl else pl :: ins (i + 1) tl
      in
      Ok { t with pipelines = renumber (ins 1 rest) }

(** Declare a variable; [Error] on duplicate names. *)
let declare t (d : declaration) =
  if List.exists (fun (d' : declaration) -> String.equal d'.name d.name) t.declarations
  then
    Error (Printf.sprintf "variable '%s' is already declared" d.name)
  else Ok { t with declarations = t.declarations @ [ d ] }

let lookup_variable t name =
  List.find_opt (fun (d : declaration) -> String.equal d.name name) t.declarations

(** Base-address resolver handed to {!Dma_spec.resolve}. *)
let variable_base t name = Option.map (fun d -> d.base) (lookup_variable t name)

let set_control t control = { t with control }

(** Effective control program: an explicit specification if present,
    otherwise straight-line execution of the pipelines in order. *)
let effective_control t =
  match t.control with
  | [] -> List.map (fun (pl : Pipeline.t) -> Exec pl.Pipeline.index) t.pipelines @ [ Halt ]
  | c -> c

(** Pipeline numbers referenced by the control program. *)
let referenced_pipelines t =
  let rec walk acc = function
    | [] -> acc
    | Exec n :: rest -> walk (n :: acc) rest
    | Repeat { body; _ } :: rest | While { body; _ } :: rest ->
        walk (walk acc body) rest
    | Halt :: rest -> walk acc rest
  in
  List.sort_uniq compare (walk [] (effective_control t))
