(** A visual program: a numbered series of pipeline diagrams plus the
    variable declarations and control-flow specification the display window
    reserves its left-hand region for.

    The control-panel editing operations of Section 5 — "insert, delete,
    copy, and renumber pipelines" — live here; scrolling and jumping are
    editor-state concerns. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type declaration = {
  name : string;
  plane : Nsc_arch.Resource.plane_id;
  base : int;
  length : int;
}
val pp_declaration :
  Format.formatter ->
  declaration -> unit
val show_declaration : declaration -> string
val equal_declaration :
  declaration -> declaration -> bool
type control =
    Exec of int
  | Repeat of { count : int; body : control list; }
  | While of { condition : Nsc_arch.Interrupt.condition;
      max_iterations : int; body : control list;
    }
  | Halt
val pp_control :
  Format.formatter ->
  control -> unit
val show_control : control -> string
val equal_control : control -> control -> bool
type t = {
  name : string;
  declarations : declaration list;
  pipelines : Pipeline.t list;
  control : control list;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val empty : string -> t
val renumber : Pipeline.t list -> Pipeline.t list
val pipeline_count : t -> int
val find_pipeline : t -> int -> Pipeline.t option
val update_pipeline : t -> Pipeline.t -> t
(** Insert a fresh empty pipeline at a 1-based position; later pipelines
    renumber up. *)
val insert_pipeline : ?label:string -> t -> at:int -> t * int
(** Append a fresh pipeline and return its number. *)
val append_pipeline : ?label:string -> t -> t * int
(** Delete a pipeline; later pipelines renumber down. *)
val delete_pipeline : t -> index:int -> t
(** Copy a pipeline in place (the control panel's Copy operation). *)
val copy_pipeline : t -> index:int -> (t * int, string) result
(** Move a pipeline to a new position (the Renumber operation). *)
val move_pipeline : t -> index:int -> to_:int -> (t, string) result
(** Declare a variable; [Error] on duplicate names. *)
val declare : t -> declaration -> (t, string) result
val lookup_variable : t -> String.t -> declaration option
(** Base-address resolver handed to {!Dma_spec.resolve} and the
    checker. *)
val variable_base : t -> String.t -> int option
val set_control : t -> control list -> t
(** The sequencer programme: an explicit specification if present,
    otherwise straight-line execution of the pipelines in order. *)
val effective_control : t -> control list
(** Pipeline numbers reachable from the control programme. *)
val referenced_pipelines : t -> int list
