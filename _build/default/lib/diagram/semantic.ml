(** Semantic data structures: the machine-meaningful projection of a
    pipeline diagram.

    The paper distinguishes two kinds of internal editor data — display
    management data (icon positions) and "semantic information which is
    needed in order to generate microcode".  This module computes the
    latter: which ALSs are engaged and how they are bypassed, what each
    functional unit computes and where its operands come from, the switch
    routes, the shift/delay programmes, and the DMA transfers.  The
    prototype emitted exactly these structures as its output.

    DMA engine slots are allocated here: each distinct transfer on a memory
    plane or cache claims the channel's next engine; identical transfers
    (e.g. one stream fanned out to several units) share an engine. *)

open Nsc_arch

(** Programme of one engaged functional unit. *)
type unit_program = {
  fu : Resource.fu_id;
  op : Opcode.t;
  a : Fu_config.input_binding;
  b : Fu_config.input_binding;
  delay_a : int;
  delay_b : int;
}
[@@deriving show { with_path = false }, eq]

(** Programme of one engaged shift/delay unit. *)
type sd_program = { sd : Resource.sd_id; mode : Shift_delay.mode }
[@@deriving show { with_path = false }, eq]

(** A DMA transfer bound to the engine slot it runs on. *)
type stream = {
  transfer : Dma.transfer;
  engine : [ `Read of Resource.source | `Write of Resource.sink ];
      (** the slotted switch endpoint the engine exposes *)
}
[@@deriving show { with_path = false }, eq]

type t = {
  index : int;
  label : string;
  vector_length : int;
  bypasses : (Resource.als_id * Als.bypass) list;  (** engaged ALSs *)
  units : unit_program list;
  sds : sd_program list;
  routes : Switch.route list;
  streams : stream list;
}
[@@deriving show { with_path = false }, eq]

(** Problems found while projecting; positions refer to connection ids so
    the editor can highlight the offending wire. *)
type issue = { connection : Connection.id option; message : string }
[@@deriving show { with_path = false }, eq]

let issue ?connection message = { connection; message }

(* DMA engine allocator: per channel, the transfers already placed, in slot
   order.  Identical transfers share a slot. *)
type allocator = (Dma.channel, Dma.transfer list) Hashtbl.t

let alloc_slot (al : allocator) channel transfer =
  let existing = Option.value ~default:[] (Hashtbl.find_opt al channel) in
  let rec find i = function
    | [] -> None
    | t :: rest -> if Dma.equal_transfer t transfer then Some i else find (i + 1) rest
  in
  match find 0 existing with
  | Some slot -> (slot, false)
  | None ->
      Hashtbl.replace al channel (existing @ [ transfer ]);
      (List.length existing, true)

(* Resolve the DMA spec carried on a connection, insisting that the spec's
   target agree with the endpoint it programs. *)
let resolve_transfer (c : Connection.t) ~direction ~expected ~lookup :
    (Dma.transfer, issue) result =
  match c.Connection.spec with
  | None ->
      Error
        (issue ~connection:c.Connection.id
           "memory/cache connection is missing its DMA specification (the popup \
            subwindow was never completed)")
  | Some spec ->
      if not (Dma.equal_channel (Dma_spec.channel spec) expected) then
        Error
          (issue ~connection:c.Connection.id
             (Printf.sprintf "DMA specification targets %s but the wire attaches to %s"
                (Dma.channel_to_string (Dma_spec.channel spec))
                (Dma.channel_to_string expected)))
      else (
        match Dma_spec.resolve spec ~direction ~lookup with
        | Error e -> Error (issue ~connection:c.Connection.id e)
        | Ok transfer -> Ok transfer)

(* The DMA channel an endpoint denotes, if it is a memory/cache endpoint. *)
let endpoint_channel (pl : Pipeline.t) = function
  | Connection.Direct_memory plane -> Ok (Some (Dma.Plane plane))
  | Connection.Direct_cache cache -> Ok (Some (Dma.Cache_chan cache))
  | Connection.Pad { icon; pad } -> (
      match Pipeline.find_icon pl icon with
      | None -> Error (Printf.sprintf "icon %d does not exist" icon)
      | Some ic -> (
          match (ic.Icon.kind, pad) with
          | Icon.Memory_icon plane, (Icon.Flow_in | Icon.Flow_out) ->
              Ok (Some (Dma.Plane plane))
          | Icon.Cache_icon cache, (Icon.Flow_in | Icon.Flow_out) ->
              Ok (Some (Dma.Cache_chan cache))
          | _ -> Ok None))

(* Resolve a producing endpoint that is not DMA-fed. *)
let resolve_plain_source (p : Params.t) (pl : Pipeline.t) (c : Connection.t) :
    (Resource.source, issue) result =
  let conn = c.Connection.id in
  match c.Connection.src with
  | Connection.Direct_memory _ | Connection.Direct_cache _ ->
      assert false (* handled by the DMA path *)
  | Connection.Pad { icon; pad } -> (
      match Pipeline.find_icon pl icon with
      | None -> Error (issue ~connection:conn (Printf.sprintf "icon %d does not exist" icon))
      | Some ic -> (
          match (ic.Icon.kind, pad) with
          | Icon.Als_icon { als; bypass }, Icon.Out_pad slot ->
              let size = Resource.als_size p als in
              if List.mem slot (Als.active_slots ~size bypass) then
                Ok (Resource.Src_fu { Resource.als; slot })
              else
                Error
                  (issue ~connection:conn
                     (Printf.sprintf "slot %d of ALS%d is bypassed" slot als))
          | Icon.Shift_delay_icon { sd; _ }, Icon.Flow_out ->
              Ok (Resource.Src_shift_delay sd)
          | _, _ ->
              Error
                (issue ~connection:conn
                   (Printf.sprintf "pad %s of icon %d cannot produce data"
                      (Icon.pad_to_string pad) icon))))

(* Resolve a consuming endpoint that is not DMA-fed. *)
let resolve_plain_sink (p : Params.t) (pl : Pipeline.t) (c : Connection.t) :
    (Resource.sink, issue) result =
  let conn = c.Connection.id in
  match c.Connection.dst with
  | Connection.Direct_memory _ | Connection.Direct_cache _ -> assert false
  | Connection.Pad { icon; pad } -> (
      match Pipeline.find_icon pl icon with
      | None -> Error (issue ~connection:conn (Printf.sprintf "icon %d does not exist" icon))
      | Some ic -> (
          match (ic.Icon.kind, pad) with
          | Icon.Als_icon { als; bypass }, Icon.In_pad (slot, port) ->
              let size = Resource.als_size p als in
              if Als.port_is_external ~size bypass ~slot ~port then
                Ok (Resource.Snk_fu ({ Resource.als; slot }, port))
              else
                Error
                  (issue ~connection:conn
                     (Printf.sprintf
                        "port %s of ALS%d slot %d is fed internally, not from the switch"
                        (Resource.port_to_string port) als slot))
          | Icon.Shift_delay_icon { sd; _ }, Icon.Flow_in ->
              Ok (Resource.Snk_shift_delay sd)
          | _, _ ->
              Error
                (issue ~connection:conn
                   (Printf.sprintf "pad %s of icon %d cannot consume data"
                      (Icon.pad_to_string pad) icon))))

(** Project a pipeline diagram to its semantic structures.  [lookup]
    resolves declared variable names to base addresses (see
    {!Program.variable_base}).  All problems are accumulated rather than
    failing fast, so the editor can flag every offending wire at once. *)
let of_pipeline (p : Params.t) ?(lookup = fun _ -> None) (pl : Pipeline.t) :
    t * issue list =
  let issues = ref [] in
  let push i = issues := i :: !issues in
  let bypasses =
    List.filter_map
      (fun (i : Icon.t) ->
        match i.Icon.kind with
        | Icon.Als_icon { als; bypass } -> Some (als, bypass)
        | Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Shift_delay_icon _ -> None)
      pl.Pipeline.icons
  in
  let units =
    List.concat_map
      (fun (i : Icon.t) ->
        match i.Icon.kind with
        | Icon.Als_icon { als; _ } ->
            List.filter_map
              (fun slot ->
                let cfg = i.Icon.configs.(slot) in
                match cfg.Fu_config.op with
                | None -> None
                | Some op ->
                    Some
                      {
                        fu = { Resource.als; slot };
                        op;
                        a = cfg.Fu_config.a;
                        b = cfg.Fu_config.b;
                        delay_a = cfg.Fu_config.delay_a;
                        delay_b = cfg.Fu_config.delay_b;
                      })
              (Icon.active_slots p i)
        | Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Shift_delay_icon _ -> [])
      pl.Pipeline.icons
  in
  let sds =
    List.filter_map
      (fun (i : Icon.t) ->
        match i.Icon.kind with
        | Icon.Shift_delay_icon { sd; mode } -> Some { sd; mode }
        | Icon.Als_icon _ | Icon.Memory_icon _ | Icon.Cache_icon _ -> None)
      pl.Pipeline.icons
  in
  let routes = ref [] and streams = ref [] in
  let allocator : allocator = Hashtbl.create 8 in
  let slotted_source channel slot =
    match channel with
    | Dma.Plane plane -> Resource.Src_memory (plane, slot)
    | Dma.Cache_chan cache -> Resource.Src_cache (cache, slot)
  in
  let slotted_sink channel slot =
    match channel with
    | Dma.Plane plane -> Resource.Snk_memory (plane, slot)
    | Dma.Cache_chan cache -> Resource.Snk_cache (cache, slot)
  in
  List.iter
    (fun (c : Connection.t) ->
      let src_result =
        match endpoint_channel pl c.Connection.src with
        | Error m -> Error (issue ~connection:c.Connection.id m)
        | Ok (Some channel) -> (
            match resolve_transfer c ~direction:Dma.Read ~expected:channel ~lookup with
            | Error e -> Error e
            | Ok transfer ->
                let slot, fresh = alloc_slot allocator channel transfer in
                let src = slotted_source channel slot in
                if fresh then streams := { transfer; engine = `Read src } :: !streams;
                Ok src)
        | Ok None -> resolve_plain_source p pl c
      in
      let dst_result =
        match endpoint_channel pl c.Connection.dst with
        | Error m -> Error (issue ~connection:c.Connection.id m)
        | Ok (Some channel) -> (
            match resolve_transfer c ~direction:Dma.Write ~expected:channel ~lookup with
            | Error e -> Error e
            | Ok transfer ->
                let slot, fresh = alloc_slot allocator channel transfer in
                let snk = slotted_sink channel slot in
                if fresh then streams := { transfer; engine = `Write snk } :: !streams;
                Ok snk)
        | Ok None -> resolve_plain_sink p pl c
      in
      match (src_result, dst_result) with
      | Error e, Error e' ->
          push e;
          push e'
      | Error e, Ok _ | Ok _, Error e -> push e
      | Ok src, Ok snk ->
          (match (src, snk) with
          | ( (Resource.Src_memory _ | Resource.Src_cache _),
              (Resource.Snk_memory _ | Resource.Snk_cache _) ) ->
              push
                (issue ~connection:c.Connection.id
                   "a wire cannot join two DMA-fed devices directly; route the stream \
                    through a functional unit")
          | _ -> ());
          routes := { Switch.src; snk } :: !routes)
    pl.Pipeline.connections;
  ( {
      index = pl.Pipeline.index;
      label = pl.Pipeline.label;
      vector_length = pl.Pipeline.vector_length;
      bypasses;
      units;
      sds;
      routes = List.rev !routes;
      streams = List.rev !streams;
    },
    List.rev !issues )

(** Unit programme for a given functional unit, if engaged. *)
let unit_for t fu =
  List.find_opt (fun u -> Resource.equal_fu_id u.fu fu) t.units

(** The switch source feeding a sink, per the projected routes. *)
let source_feeding t snk =
  List.find_map
    (fun (r : Switch.route) ->
      if Resource.equal_sink r.Switch.snk snk then Some r.Switch.src else None)
    t.routes

(** Read streams of the pipeline, with their slotted sources. *)
let read_streams t =
  List.filter_map
    (fun s -> match s.engine with `Read src -> Some (src, s.transfer) | `Write _ -> None)
    t.streams

(** Write streams of the pipeline, with their slotted sinks. *)
let write_streams t =
  List.filter_map
    (fun s -> match s.engine with `Write snk -> Some (snk, s.transfer) | `Read _ -> None)
    t.streams

(** Distinct DMA streams running on a channel. *)
let streams_on t channel =
  List.filter (fun s -> Dma.equal_channel s.transfer.Dma.channel channel) t.streams

(** Floating-point operations one pass of the pipeline performs per vector
    element. *)
let flops_per_element t =
  List.fold_left (fun acc u -> if Opcode.is_flop u.op then acc + 1 else acc) 0 t.units
