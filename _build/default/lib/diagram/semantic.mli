(** Semantic data structures: the machine-meaningful projection of a
    pipeline diagram.

    The paper distinguishes two kinds of internal editor data — display
    management data (icon positions) and "semantic information which is
    needed in order to generate microcode".  This module computes the
    latter: which ALSs are engaged and how they are bypassed, what each
    functional unit computes and where its operands come from, the switch
    routes, the shift/delay programmes, and the DMA transfers.  The
    prototype emitted exactly these structures as its output.

    DMA engine slots are allocated here: each distinct transfer on a memory
    plane or cache claims the channel's next engine; identical transfers
    (e.g. one stream fanned out to several units) share an engine. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type unit_program = {
  fu : Nsc_arch.Resource.fu_id;
  op : Nsc_arch.Opcode.t;
  a : Fu_config.input_binding;
  b : Fu_config.input_binding;
  delay_a : int;
  delay_b : int;
}
val pp_unit_program :
  Format.formatter ->
  unit_program -> unit
val show_unit_program : unit_program -> string
val equal_unit_program :
  unit_program -> unit_program -> bool
type sd_program = {
  sd : Nsc_arch.Resource.sd_id;
  mode : Nsc_arch.Shift_delay.mode;
}
val pp_sd_program :
  Format.formatter ->
  sd_program -> unit
val show_sd_program : sd_program -> string
val equal_sd_program : sd_program -> sd_program -> bool
type stream = {
  transfer : Nsc_arch.Dma.transfer;
  engine :
    [ `Read of Nsc_arch.Resource.source | `Write of Nsc_arch.Resource.sink ];
}
val pp_stream :
  Format.formatter ->
  stream -> unit
val show_stream : stream -> string
val equal_stream : stream -> stream -> bool
type t = {
  index : int;
  label : string;
  vector_length : int;
  bypasses : (Nsc_arch.Resource.als_id * Nsc_arch.Als.bypass) list;
  units : unit_program list;
  sds : sd_program list;
  routes : Nsc_arch.Switch.route list;
  streams : stream list;
}
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
type issue = {
  connection : Connection.id option;
  message : string;
}
val pp_issue :
  Format.formatter -> issue -> unit
val show_issue : issue -> string
val equal_issue : issue -> issue -> bool
val issue : ?connection:Connection.id -> string -> issue
type allocator = (Nsc_arch.Dma.channel, Nsc_arch.Dma.transfer list) Hashtbl.t
val alloc_slot :
  allocator -> Nsc_arch.Dma.channel -> Nsc_arch.Dma.transfer -> int * bool
val resolve_transfer :
  Connection.t ->
  direction:Nsc_arch.Dma.direction ->
  expected:Nsc_arch.Dma.channel ->
  lookup:(string -> int option) -> (Nsc_arch.Dma.transfer, issue) result
val endpoint_channel :
  Pipeline.t ->
  Connection.endpoint ->
  (Nsc_arch.Dma.channel option, string) result
val resolve_plain_source :
  Nsc_arch.Params.t ->
  Pipeline.t ->
  Connection.t -> (Nsc_arch.Resource.source, issue) result
val resolve_plain_sink :
  Nsc_arch.Params.t ->
  Pipeline.t ->
  Connection.t -> (Nsc_arch.Resource.sink, issue) result
(** Project a diagram to its semantic structures, allocating DMA engine
    slots (identical transfers share an engine).  [lookup] resolves
    declared variable names; problems accumulate as issues so the editor
    can flag every offending wire at once. *)
val of_pipeline :
  Nsc_arch.Params.t ->
  ?lookup:(string -> int option) -> Pipeline.t -> t * issue list
(** The programme of a functional unit, if engaged. *)
val unit_for : t -> Nsc_arch.Resource.fu_id -> unit_program option
(** The switch source feeding a sink, per the projected routes. *)
val source_feeding :
  t -> Nsc_arch.Resource.sink -> Nsc_arch.Resource.source option
(** Read streams with their slotted sources. *)
val read_streams :
  t -> (Nsc_arch.Resource.source * Nsc_arch.Dma.transfer) list
(** Write streams with their slotted sinks. *)
val write_streams :
  t -> (Nsc_arch.Resource.sink * Nsc_arch.Dma.transfer) list
(** Distinct DMA streams running on a channel. *)
val streams_on : t -> Nsc_arch.Dma.channel -> stream list
(** Floating-point operations one pass performs per vector element. *)
val flops_per_element : t -> int
