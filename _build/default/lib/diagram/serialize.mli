(** Save and restore visual programs.

    The graphical editor must be able to "save the results"; this module
    defines the on-disk form: a line-oriented, whitespace-tokenised text
    format that round-trips the full program, display data included.  The
    format is deliberately diff-friendly so saved programs can live under
    version control. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val encode_label : string -> string
val decode_label : string -> string
val bypass_to_string : Nsc_arch.Als.bypass -> string
val bypass_of_string : string -> Nsc_arch.Als.bypass option
val binding_to_string : Fu_config.input_binding -> string
val binding_of_string : string -> Fu_config.input_binding option
val endpoint_to_string : Connection.endpoint -> string
val endpoint_of_string : string -> Connection.endpoint option
val spec_to_string : Dma_spec.t -> string
val kv_of_tokens : string list -> (string * string) list
val find_int : ('a * string) list -> 'a -> int option
val find_str : ('a * 'b) list -> 'a -> 'b option
val spec_of_tokens : string list -> Dma_spec.t option
val fu_ref_to_string : Nsc_arch.Resource.fu_id -> string
val fu_ref_of_string : string -> Nsc_arch.Resource.fu_id option
val relation_of_string : string -> Nsc_arch.Interrupt.relation option
val to_string : Program.t -> string
type parse_state = {
  mutable prog : Program.t;
  mutable current : Pipeline.t option;
  mutable lineno : int;
}
val fail : parse_state -> string -> ('a, string) result
val tokens_of_line : string -> string list
val flush_pipeline : parse_state -> unit
val of_string :
  Nsc_arch.Params.t -> string -> (Program.t, string) result
val save : Program.t -> path:string -> unit
val load :
  Nsc_arch.Params.t -> path:string -> (Program.t, string) result
