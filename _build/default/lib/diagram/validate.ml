(** Structural well-formedness of diagrams, independent of machine rules.

    These checks guard the data structures themselves (dangling icon ids,
    duplicate bindings, out-of-range slots); architectural legality is the
    checker library's concern. *)

open Nsc_arch

type problem = { where : string; message : string }
[@@deriving show { with_path = false }, eq]

let problem where fmt = Printf.ksprintf (fun message -> { where; message }) fmt

(** Structural problems of one pipeline diagram. *)
let pipeline (p : Params.t) (pl : Pipeline.t) : problem list =
  let where = Printf.sprintf "pipeline %d" pl.Pipeline.index in
  let out = ref [] in
  let push pr = out := pr :: !out in
  if pl.Pipeline.vector_length < 1 then
    push (problem where "vector length must be at least 1");
  (* icon ids unique *)
  let ids = List.map (fun (i : Icon.t) -> i.Icon.id) pl.Pipeline.icons in
  if List.length ids <> List.length (List.sort_uniq compare ids) then
    push (problem where "duplicate icon ids");
  (* ALS bound at most once *)
  let als = Pipeline.used_als pl in
  if List.length als <> List.length (List.sort_uniq compare als) then
    push (problem where "an ALS is bound to two icons");
  let sds = Pipeline.used_shift_delay pl in
  if List.length sds <> List.length (List.sort_uniq compare sds) then
    push (problem where "a shift/delay unit is bound to two icons");
  (* icons reference real hardware *)
  List.iter
    (fun (i : Icon.t) ->
      match i.Icon.kind with
      | Icon.Als_icon { als; bypass } ->
          if als < 0 || als >= Params.n_als p then
            push (problem where "icon %d references ALS%d which does not exist" i.Icon.id als)
          else begin
            let size = Resource.als_size p als in
            if not (List.mem bypass (Als.legal_bypasses ~size)) then
              push
                (problem where "icon %d uses a bypass configuration illegal for its ALS"
                   i.Icon.id);
            if Array.length i.Icon.configs <> size then
              push (problem where "icon %d has a malformed configuration array" i.Icon.id)
          end
      | Icon.Memory_icon pl' ->
          if pl' < 0 || pl' >= p.n_memory_planes then
            push (problem where "icon %d references memory plane %d" i.Icon.id pl')
      | Icon.Cache_icon c ->
          if c < 0 || c >= p.n_caches then
            push (problem where "icon %d references cache %d" i.Icon.id c)
      | Icon.Shift_delay_icon { sd; mode } ->
          if sd < 0 || sd >= p.n_shift_delay then
            push (problem where "icon %d references shift/delay unit %d" i.Icon.id sd)
          else
            List.iter
              (fun m -> push (problem where "icon %d: %s" i.Icon.id m))
              (Shift_delay.validate p mode))
    pl.Pipeline.icons;
  (* connection ids unique, endpoints resolvable *)
  let cids = List.map (fun (c : Connection.t) -> c.Connection.id) pl.Pipeline.connections in
  if List.length cids <> List.length (List.sort_uniq compare cids) then
    push (problem where "duplicate connection ids");
  List.iter
    (fun (c : Connection.t) ->
      let check_end role = function
        | Connection.Pad { icon; pad } -> (
            match Pipeline.find_icon pl icon with
            | None ->
                push
                  (problem where "connection %d %s references missing icon %d"
                     c.Connection.id role icon)
            | Some ic ->
                if not (List.mem_assoc pad (Icon.pads p ic)) then
                  push
                    (problem where "connection %d %s references pad %s absent from icon %d"
                       c.Connection.id role (Icon.pad_to_string pad) icon))
        | Connection.Direct_memory plane ->
            if plane < 0 || plane >= p.n_memory_planes then
              push
                (problem where "connection %d %s references memory plane %d"
                   c.Connection.id role plane)
        | Connection.Direct_cache cache ->
            if cache < 0 || cache >= p.n_caches then
              push
                (problem where "connection %d %s references cache %d" c.Connection.id role
                   cache)
      in
      check_end "source" c.Connection.src;
      check_end "destination" c.Connection.dst)
    pl.Pipeline.connections;
  List.rev !out

(** Structural problems of a whole program. *)
let program (p : Params.t) (prog : Program.t) : problem list =
  let out = ref [] in
  let push pr = out := pr :: !out in
  (* pipeline numbering must be 1..n in order *)
  List.iteri
    (fun i (pl : Pipeline.t) ->
      if pl.Pipeline.index <> i + 1 then
        push (problem "program" "pipelines are misnumbered at position %d" (i + 1)))
    prog.Program.pipelines;
  (* declarations: unique names, extents within planes, no overlap *)
  let decls = prog.Program.declarations in
  let names = List.map (fun (d : Program.declaration) -> d.name) decls in
  if List.length names <> List.length (List.sort_uniq String.compare names) then
    push (problem "declarations" "duplicate variable names");
  let extents =
    List.map
      (fun (d : Program.declaration) ->
        ( d,
          {
            Memory.plane = d.plane;
            lo = d.base;
            hi = d.base + d.length;
          } ))
      decls
  in
  List.iter
    (fun ((d : Program.declaration), e) ->
      List.iter
        (fun m -> push (problem ("variable " ^ d.name) "%s" m))
        (Memory.validate_extent p e);
      if d.length <= 0 then push (problem ("variable " ^ d.name) "length must be positive"))
    extents;
  let rec pairwise = function
    | [] -> ()
    | ((d1 : Program.declaration), e1) :: rest ->
        List.iter
          (fun ((d2 : Program.declaration), e2) ->
            if Memory.extents_overlap e1 e2 then
              push
                (problem "declarations" "variables '%s' and '%s' overlap in plane %d"
                   d1.name d2.name d1.plane))
          rest;
        pairwise rest
  in
  pairwise extents;
  (* control references existing pipelines; Repeat counts positive *)
  let n = Program.pipeline_count prog in
  let rec walk = function
    | [] -> ()
    | Program.Exec i :: rest ->
        if i < 1 || i > n then
          push (problem "control" "exec references pipeline %d of %d" i n);
        walk rest
    | Program.Repeat { count; body } :: rest ->
        if count < 0 then push (problem "control" "repeat count must be non-negative");
        walk body;
        walk rest
    | Program.While { max_iterations; body; condition } :: rest ->
        if max_iterations < 0 then
          push (problem "control" "while bound must be non-negative");
        if not (Resource.fu_valid p condition.Interrupt.unit_watched) then
          push (problem "control" "while condition watches a unit that does not exist");
        walk body;
        walk rest
    | Program.Halt :: rest -> walk rest
  in
  walk (Program.effective_control prog);
  (* per-pipeline structural checks *)
  List.iter (fun pl -> out := List.rev_append (pipeline p pl) !out) prog.Program.pipelines;
  List.rev !out
