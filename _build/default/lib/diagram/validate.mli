(** Structural well-formedness of diagrams, independent of machine rules.

    These checks guard the data structures themselves (dangling icon ids,
    duplicate bindings, out-of-range slots); architectural legality is the
    checker library's concern. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type problem = { where : string; message : string; }
val pp_problem :
  Format.formatter ->
  problem -> unit
val show_problem : problem -> string
val equal_problem : problem -> problem -> bool
val problem : string -> ('a, unit, string, problem) format4 -> 'a
val pipeline : Nsc_arch.Params.t -> Pipeline.t -> problem list
val program : Nsc_arch.Params.t -> Program.t -> problem list
