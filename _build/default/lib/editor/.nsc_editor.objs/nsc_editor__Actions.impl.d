lib/editor/actions.pp.ml: Editor Event Geometry Icon Knowledge Layout List Menu Nsc_arch Nsc_diagram Opcode Option Pipeline Printf State String
