lib/editor/actions.pp.mli: Layout Nsc_arch Nsc_diagram State
