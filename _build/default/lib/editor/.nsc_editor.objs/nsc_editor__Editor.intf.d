lib/editor/editor.pp.mli: Event State
