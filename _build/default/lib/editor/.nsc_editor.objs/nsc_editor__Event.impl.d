lib/editor/event.pp.ml: Geometry Nsc_diagram Option Ppx_deriving_runtime Printf String
