lib/editor/event.pp.mli: Format Nsc_diagram
