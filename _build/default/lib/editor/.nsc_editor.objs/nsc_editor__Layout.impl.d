lib/editor/layout.pp.ml: Geometry List Nsc_diagram Ppx_deriving_runtime
