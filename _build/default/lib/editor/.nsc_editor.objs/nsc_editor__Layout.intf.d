lib/editor/layout.pp.mli: Format Nsc_diagram
