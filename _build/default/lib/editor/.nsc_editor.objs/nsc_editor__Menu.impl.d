lib/editor/menu.pp.ml: Connection Geometry Icon List Nsc_arch Nsc_diagram Opcode Ppx_deriving_runtime Resource
