lib/editor/menu.pp.mli: Format Nsc_arch Nsc_diagram
