lib/editor/render_ascii.pp.mli: Bytes Nsc_arch Nsc_diagram State
