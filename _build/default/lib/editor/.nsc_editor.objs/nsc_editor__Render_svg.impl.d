lib/editor/render_svg.pp.ml: Als Array Buffer Capability Connection Fu_config Geometry Icon Layout List Nsc_arch Nsc_diagram Opcode Option Params Pipeline Printf Resource String
