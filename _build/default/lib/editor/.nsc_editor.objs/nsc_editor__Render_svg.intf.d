lib/editor/render_svg.pp.mli: Buffer Nsc_arch Nsc_diagram
