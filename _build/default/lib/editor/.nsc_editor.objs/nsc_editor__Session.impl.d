lib/editor/session.pp.ml: Editor Event List Render_ascii State String
