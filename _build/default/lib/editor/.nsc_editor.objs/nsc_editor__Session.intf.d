lib/editor/session.pp.mli: Event State
