lib/editor/state.pp.ml: Als Checker Diagnostic Geometry Icon Knowledge List Menu Nsc_arch Nsc_checker Nsc_diagram Pipeline Ppx_deriving_runtime Printf Program Resource Shift_delay
