lib/editor/state.pp.mli: Format Menu Nsc_arch Nsc_checker Nsc_diagram
