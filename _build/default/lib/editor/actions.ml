(** High-level editing gestures, expressed as the mouse/keyboard event
    sequences a user would produce.

    Everything here goes through {!Editor.handle} — these are macros over
    real events (computing pad and button coordinates by hit-testing the
    live state), not a separate mutation path, so scripted sessions and
    tests exercise exactly the interaction code the figures describe. *)

open Nsc_arch
open Nsc_diagram

let params st = Knowledge.params st.State.kb

let click st (at : Geometry.point) =
  Editor.run st [ Event.Mouse_down at; Event.Mouse_up at ]

let drag st ~(from : Geometry.point) ~(to_ : Geometry.point) =
  Editor.run st [ Event.Mouse_down from; Event.Mouse_move to_; Event.Mouse_up to_ ]

let button_center b = Geometry.center (Layout.button_rect b)

(** Press a control-panel button. *)
let press st b = Editor.handle st (Event.Mouse_down (button_center b))

(** Drag an icon button from the panel to drawing coordinates (x, y) —
    the Figure 6 gesture.  Returns the new state and the icon placed. *)
let place st b ~x ~y =
  let st =
    drag st ~from:(button_center b) ~to_:(Layout.of_drawing (Geometry.point x y))
  in
  (st, st.State.selected)

(** Absolute window position of a pad of a placed icon. *)
let pad_window_pos st icon pad =
  let pl = State.current_pipeline st in
  Option.bind (Pipeline.find_icon pl icon) (fun ic ->
      Option.map Layout.of_drawing (Icon.pad_position (params st) ic pad))

(** Rubber-band a wire between two pads (Figure 8). *)
let rubber_connect st ~from_icon ~from_pad ~to_icon ~to_pad =
  match (pad_window_pos st from_icon from_pad, pad_window_pos st to_icon to_pad) with
  | Some a, Some b -> drag st ~from:a ~to_:b
  | _ -> State.message st "rubber_connect: pad not found"

(** Click a pad, opening its source/destination popup menu. *)
let click_pad st ~icon ~pad =
  match pad_window_pos st icon pad with
  | Some at -> click st at
  | None -> State.message st "click_pad: pad not found"

(** Click the [slot]-th functional-unit box of an icon, opening the
    operation menu of Figure 10. *)
let click_unit st ~icon ~slot =
  let pl = State.current_pipeline st in
  match Pipeline.find_icon pl icon with
  | None -> State.message st "click_unit: icon not found"
  | Some ic ->
      let at =
        Geometry.add ic.Icon.pos (Geometry.point (Icon.fu_box_w / 2) (Icon.slot_row slot))
      in
      click st (Layout.of_drawing at)

(** Choose the menu item whose label starts with [label]. *)
let choose st ~label =
  match st.State.mode with
  | State.Menu_open menu -> (
      let rec find i = function
        | [] -> None
        | (it : Menu.item) :: rest ->
            if
              String.length it.Menu.label >= String.length label
              && String.sub it.Menu.label 0 (String.length label) = label
            then Some i
            else find (i + 1) rest
      in
      match find 0 menu.Menu.items with
      | Some i -> Editor.handle st (Event.Menu_select i)
      | None -> State.message st "no menu item matching '%s'" label)
  | _ -> State.message st "no menu is open"

(** Fill form fields and submit (the Figure 9 subwindow interaction). *)
let fill_and_submit st fields =
  let st =
    List.fold_left (fun st (name, v) -> Editor.handle st (Event.Form_set (name, v))) st
      fields
  in
  Editor.handle st Event.Form_submit

(** Programme a unit: click its box, then pick the mnemonic. *)
let set_op st ~icon ~slot op =
  choose (click_unit st ~icon ~slot) ~label:(Opcode.mnemonic op)

(** Wire a memory-plane stream into a pad: click the pad, choose "from
    memory plane ...", fill the DMA subwindow. *)
let wire_memory_to_pad st ~icon ~pad ~plane ?variable ?(offset = 0) ?(stride = 1) () =
  let st = click_pad st ~icon ~pad in
  let st = choose st ~label:"from memory plane" in
  fill_and_submit st
    ([ ("plane", string_of_int plane) ]
    @ (match variable with Some v -> [ ("variable", v) ] | None -> [])
    @ [ ("offset", string_of_int offset); ("stride", string_of_int stride) ])

(** Wire a pad's output to a memory plane. *)
let wire_pad_to_memory st ~icon ~pad ~plane ?variable ?(offset = 0) ?(stride = 1) () =
  let st = click_pad st ~icon ~pad in
  let st = choose st ~label:"to memory plane" in
  fill_and_submit st
    ([ ("plane", string_of_int plane) ]
    @ (match variable with Some v -> [ ("variable", v) ] | None -> [])
    @ [ ("offset", string_of_int offset); ("stride", string_of_int stride) ])

(** Bind a constant to a port through its popup menu. *)
let bind_constant st ~icon ~slot ~port value =
  let st = click_pad st ~icon ~pad:(Icon.In_pad (slot, port)) in
  let st = choose st ~label:"constant" in
  fill_and_submit st [ ("value", Printf.sprintf "%.17g" value) ]

(** Bind a feedback loop to a port through its popup menu. *)
let bind_feedback st ~icon ~slot ~port depth =
  let st = click_pad st ~icon ~pad:(Icon.In_pad (slot, port)) in
  let st = choose st ~label:"feedback" in
  fill_and_submit st [ ("depth", string_of_int depth) ]
