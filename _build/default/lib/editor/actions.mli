(** High-level editing gestures, expressed as the mouse/keyboard event
    sequences a user would produce.

    Everything here goes through {!Editor.handle} — these are macros over
    real events (computing pad and button coordinates by hit-testing the
    live state), not a separate mutation path, so scripted sessions and
    tests exercise exactly the interaction code the figures describe. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val params : State.t -> Nsc_arch.Params.t
val click :
  State.t -> Nsc_diagram.Geometry.point -> State.t
val drag :
  State.t ->
  from:Nsc_diagram.Geometry.point ->
  to_:Nsc_diagram.Geometry.point -> State.t
val button_center : Layout.button -> Nsc_diagram.Geometry.point
(** Press a control-panel button. *)
val press :
  State.t -> Layout.button -> State.t
(** Drag an icon button from the panel to drawing coordinates — the
    Figure 6 gesture.  Returns the state and the icon placed. *)
val place :
  State.t ->
  Layout.button ->
  x:int -> y:int -> State.t * Nsc_diagram.Icon.id option
val pad_window_pos :
  State.t ->
  Nsc_diagram.Icon.id ->
  Nsc_diagram.Icon.pad -> Nsc_diagram.Geometry.point option
(** Rubber-band a wire between two pads (Figure 8). *)
val rubber_connect :
  State.t ->
  from_icon:Nsc_diagram.Icon.id ->
  from_pad:Nsc_diagram.Icon.pad ->
  to_icon:Nsc_diagram.Icon.id ->
  to_pad:Nsc_diagram.Icon.pad -> State.t
(** Click a pad, opening its source/destination popup menu. *)
val click_pad :
  State.t ->
  icon:Nsc_diagram.Icon.id -> pad:Nsc_diagram.Icon.pad -> State.t
(** Click a functional-unit box, opening the Figure 10 menu. *)
val click_unit :
  State.t ->
  icon:Nsc_diagram.Icon.id -> slot:int -> State.t
(** Choose the open menu's item whose label starts with [label]. *)
val choose : State.t -> label:string -> State.t
(** Fill form fields and submit (the Figure 9 interaction). *)
val fill_and_submit :
  State.t -> (string * string) list -> State.t
(** Programme a unit: click its box, then pick the mnemonic. *)
val set_op :
  State.t ->
  icon:Nsc_diagram.Icon.id ->
  slot:int -> Nsc_arch.Opcode.t -> State.t
(** Wire a memory stream into a pad via menu + DMA subwindow. *)
val wire_memory_to_pad :
  State.t ->
  icon:Nsc_diagram.Icon.id ->
  pad:Nsc_diagram.Icon.pad ->
  plane:int ->
  ?variable:string ->
  ?offset:int -> ?stride:int -> unit -> State.t
(** Wire a pad's output to a memory plane. *)
val wire_pad_to_memory :
  State.t ->
  icon:Nsc_diagram.Icon.id ->
  pad:Nsc_diagram.Icon.pad ->
  plane:int ->
  ?variable:string ->
  ?offset:int -> ?stride:int -> unit -> State.t
val bind_constant :
  State.t ->
  icon:Nsc_diagram.Icon.id ->
  slot:int -> port:Nsc_arch.Resource.port -> float -> State.t
val bind_feedback :
  State.t ->
  icon:Nsc_diagram.Icon.id ->
  slot:int -> port:Nsc_arch.Resource.port -> int -> State.t
