(** The graphical editor's event interpreter.

    Gestures follow Section 5 of the paper:

    - drag an icon button from the control panel into the drawing space to
      place an ALS (Figure 6); the lowest free structure of that kind is
      bound automatically, and the editor refuses the drop when the
      machine's supply is exhausted;
    - {e click} an I/O pad and "a menu pops up showing the available
      choices" — external connections to other units, caches, memories or
      shift/delay units, or internal connections for feedback loops and
      register-file constants; or {e drag} from a producing pad to a
      consuming pad to wire them directly with the rubber band (Figure 8);
    - memory and cache choices open the popup subwindow of Figure 9 to
      programme the DMA unit;
    - click a functional-unit box to programme its operation through the
      popup menu of Figure 10.

    The checker is consulted on every completed gesture; a gesture that
    would introduce a hardware violation is rejected outright and the
    reason shown in the message strip — the paper's "if the user has
    routed the output from one function unit to a particular memory plane,
    the graphical editor will not let him send the output of a second unit
    to the same plane". *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

let params st = Knowledge.params st.State.kb

(* ------------------------------------------------------------------ *)
(* hit testing                                                        *)
(* ------------------------------------------------------------------ *)

let pad_hit st (p_draw : Geometry.point) =
  Pipeline.pad_at (params st) (State.current_pipeline st) ~within:1 p_draw

let icon_hit st p_draw = Pipeline.icon_at (params st) (State.current_pipeline st) p_draw

(* Which functional-unit box of [icon] contains the point, if any. *)
let slot_hit st (icon : Icon.t) (p_draw : Geometry.point) =
  let rel = Geometry.sub p_draw icon.Icon.pos in
  let slot = (rel.Geometry.y - 1) / (Icon.fu_box_h + Icon.fu_gap) in
  let within_box =
    rel.Geometry.y >= Icon.slot_row slot
    && rel.Geometry.y < Icon.slot_row slot + Icon.fu_box_h
    && rel.Geometry.x > 0
    && rel.Geometry.x < Icon.fu_box_w - 1
  in
  if within_box && List.mem slot (Icon.active_slots (params st) icon) then Some slot
  else None

(* ------------------------------------------------------------------ *)
(* gesture helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* Tentatively add a wire; keep it only if the checker reports no new
   errors.  Auto-bind the receiving port to the switch when it was
   unbound (the natural meaning of the gesture). *)
let try_connect (st : State.t) ~src ~dst ?spec () : State.t =
  let before = State.error_count st in
  let pl = State.current_pipeline st in
  let _, pl' = Pipeline.add_connection pl ~src ~dst ?spec () in
  let pl' =
    match dst with
    | Connection.Pad { icon; pad = Icon.In_pad (slot, port) } -> (
        match Pipeline.config_of pl' ~id:icon ~slot with
        | Some cfg
          when Fu_config.equal_input_binding
                 (Fu_config.binding_of_port cfg port)
                 Fu_config.Unbound ->
            let cfg =
              match port with
              | Resource.A -> { cfg with Fu_config.a = Fu_config.From_switch }
              | Resource.B -> { cfg with Fu_config.b = Fu_config.From_switch }
            in
            Pipeline.set_config pl' ~id:icon ~slot cfg
        | _ -> pl')
    | _ -> pl'
  in
  let st' = State.put_pipeline st pl' in
  if State.error_count st' > before then begin
    let new_error =
      match Diagnostic.errors st'.State.diagnostics with
      | d :: _ -> Diagnostic.to_string d
      | [] -> "illegal connection"
    in
    let st = State.put_pipeline st pl (* rollback *) in
    State.message st "rejected: %s" new_error
  end
  else
    State.message st' "connected %s -> %s"
      (Connection.endpoint_to_string src)
      (Connection.endpoint_to_string dst)

(* Update one port's binding of a placed unit, preserving the rest. *)
let set_binding (st : State.t) ~icon ~slot ~port binding : State.t =
  let pl = State.current_pipeline st in
  match Pipeline.config_of pl ~id:icon ~slot with
  | None -> State.message st "no such functional unit"
  | Some cfg ->
      let cfg =
        match port with
        | Resource.A -> { cfg with Fu_config.a = binding }
        | Resource.B -> { cfg with Fu_config.b = binding }
      in
      State.put_pipeline st (Pipeline.set_config pl ~id:icon ~slot cfg)

(* Programme a unit, preserving bindings already established and defaulting
   fresh ones: the A port of a chained slot is hardwired to its
   predecessor; a port already reached by a wire means the switch. *)
let set_op (st : State.t) ~icon ~slot op : State.t =
  let p = params st in
  let pl = State.current_pipeline st in
  match (Pipeline.find_icon pl icon, Pipeline.config_of pl ~id:icon ~slot) with
  | Some ic, Some cfg ->
      (match op with
      | None ->
          let pl = Pipeline.set_config pl ~id:icon ~slot Fu_config.idle in
          State.message (State.put_pipeline st pl) "unit set idle"
      | Some op ->
          let size, bypass =
            match ic.Icon.kind with
            | Icon.Als_icon { als; bypass } -> (Resource.als_size p als, bypass)
            | _ -> (0, Als.No_bypass)
          in
          let wired port =
            Pipeline.connections_into pl
              (Connection.Pad { icon; pad = Icon.In_pad (slot, port) })
            <> []
          in
          let default_binding port existing =
            match existing with
            | Fu_config.Unbound ->
                if
                  Resource.equal_port port Resource.A
                  && Als.chain_predecessor ~size bypass ~slot <> None
                then Fu_config.From_chain
                else if wired port then Fu_config.From_switch
                else Fu_config.Unbound
            | b -> b
          in
          let cfg =
            {
              cfg with
              Fu_config.op = Some op;
              a = default_binding Resource.A cfg.Fu_config.a;
              b = default_binding Resource.B cfg.Fu_config.b;
            }
          in
          let pl = Pipeline.set_config pl ~id:icon ~slot cfg in
          State.message (State.put_pipeline st pl) "unit programmed: %s" (Opcode.mnemonic op))
  | _ -> State.message st "no such functional unit"

(* ------------------------------------------------------------------ *)
(* menu construction                                                  *)
(* ------------------------------------------------------------------ *)

(* Endpoint for a pad, as a connection endpoint. *)
let pad_endpoint icon pad = Connection.Pad { icon; pad }

(* Sink denoted by a consuming pad of a placed icon, for legal-source
   queries. *)
let sink_of_pad st (icon : Icon.t) pad : Resource.sink option =
  match (icon.Icon.kind, pad) with
  | Icon.Als_icon { als; _ }, Icon.In_pad (slot, port) ->
      Some (Resource.Snk_fu ({ Resource.als; slot }, port))
  | Icon.Shift_delay_icon { sd; _ }, Icon.Flow_in -> Some (Resource.Snk_shift_delay sd)
  | (Icon.Memory_icon _ | Icon.Cache_icon _), Icon.Flow_in ->
      ignore st;
      None (* device pads take any unit output; handled separately *)
  | _ -> None

(* Producing pads of placed icons, with labels, for destination menus. *)
let placed_outputs st : (string * Connection.endpoint) list =
  let p = params st in
  let pl = State.current_pipeline st in
  List.concat_map
    (fun (ic : Icon.t) ->
      List.filter_map
        (fun (pad, _) ->
          match (ic.Icon.kind, pad) with
          | Icon.Als_icon { als; _ }, Icon.Out_pad slot ->
              Some
                (Printf.sprintf "from %s output" (Resource.fu_to_string { Resource.als; slot }),
                 pad_endpoint ic.Icon.id pad)
          | Icon.Shift_delay_icon { sd; _ }, Icon.Flow_out ->
              Some (Printf.sprintf "from sd%d output" sd, pad_endpoint ic.Icon.id pad)
          | ( ( Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Als_icon _
              | Icon.Shift_delay_icon _ ),
              _ ) ->
              None)
        (Icon.pads p ic))
    pl.Pipeline.icons

(* Consuming pads of placed icons (for output-pad destination menus). *)
let placed_inputs st : (string * Connection.endpoint) list =
  let p = params st in
  let pl = State.current_pipeline st in
  List.concat_map
    (fun (ic : Icon.t) ->
      List.filter_map
        (fun (pad, _) ->
          match (ic.Icon.kind, pad) with
          | Icon.Als_icon { als; _ }, Icon.In_pad (slot, port) ->
              Some
                (Printf.sprintf "to %s.%s"
                   (Resource.fu_to_string { Resource.als; slot })
                   (Resource.port_to_string port),
                 pad_endpoint ic.Icon.id pad)
          | Icon.Shift_delay_icon { sd; _ }, Icon.Flow_in ->
              Some (Printf.sprintf "to sd%d" sd, pad_endpoint ic.Icon.id pad)
          | (Icon.Memory_icon _ | Icon.Cache_icon _), Icon.Flow_in ->
              Some (Icon.title ic ^ " (DMA)", pad_endpoint ic.Icon.id pad)
          | ( ( Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Als_icon _
              | Icon.Shift_delay_icon _ ),
              _ ) ->
              None)
        (Icon.pads p ic))
    pl.Pipeline.icons

(* The source menu for a consuming pad: only choices the checker would
   accept appear (Knowledge + current routing table), exactly the paper's
   error-prevention behaviour. *)
let source_menu st (icon : Icon.t) pad ~at : Menu.t =
  let pl = State.current_pipeline st in
  let wires = Pipeline.connections_into pl (pad_endpoint icon.Icon.id pad) in
  let disconnects =
    List.map
      (fun (c : Connection.t) ->
        Menu.item
          (Printf.sprintf "disconnect wire %d" c.Connection.id)
          (Menu.P_disconnect c.Connection.id))
      wires
  in
  let legal_fu_sources =
    match sink_of_pad st icon pad with
    | None -> placed_outputs st
    | Some snk ->
        let legal =
          Checker.legal_sources st.State.kb
            ~lookup:(Program.variable_base st.State.program) pl snk
        in
        List.filter
          (fun (_, ep) ->
            match ep with
            | Connection.Pad { icon = src_icon; pad = src_pad } -> (
                match Pipeline.find_icon pl src_icon with
                | Some src_ic -> (
                    match (src_ic.Icon.kind, src_pad) with
                    | Icon.Als_icon { als; _ }, Icon.Out_pad slot ->
                        List.exists
                          (Resource.equal_source (Resource.Src_fu { Resource.als; slot }))
                          legal
                    | Icon.Shift_delay_icon { sd; _ }, Icon.Flow_out ->
                        List.exists
                          (Resource.equal_source (Resource.Src_shift_delay sd))
                          legal
                    | _ -> false)
                | None -> false)
            | _ -> false)
          (placed_outputs st)
  in
  let device_sources =
    (* placed memory/cache icons: the stream attaches to the icon's pad *)
    List.filter_map
      (fun (ic : Icon.t) ->
        match ic.Icon.kind with
        | Icon.Memory_icon _ ->
            Some
              (Menu.item
                 (Printf.sprintf "from %s ..." (Icon.title ic))
                 (Menu.P_dma_form
                    {
                      pending = Menu.Into_pad { icon = icon.Icon.id; pad };
                      target = `Memory;
                      device_icon = Some ic.Icon.id;
                    }))
        | Icon.Cache_icon _ ->
            Some
              (Menu.item
                 (Printf.sprintf "from %s ..." (Icon.title ic))
                 (Menu.P_dma_form
                    {
                      pending = Menu.Into_pad { icon = icon.Icon.id; pad };
                      target = `Cache;
                      device_icon = Some ic.Icon.id;
                    }))
        | Icon.Als_icon _ | Icon.Shift_delay_icon _ -> None)
      pl.Pipeline.icons
  in
  let externals =
    List.map
      (fun (label, ep) ->
        Menu.item label (Menu.P_connect { src = ep; dst = pad_endpoint icon.Icon.id pad }))
      legal_fu_sources
    @ device_sources
    @ [
        Menu.item "from memory plane ..."
          (Menu.P_dma_form
             { pending = Menu.Into_pad { icon = icon.Icon.id; pad }; target = `Memory;
               device_icon = None });
        Menu.item "from cache ..."
          (Menu.P_dma_form
             { pending = Menu.Into_pad { icon = icon.Icon.id; pad }; target = `Cache;
               device_icon = None });
      ]
  in
  let internals =
    match (icon.Icon.kind, pad) with
    | Icon.Als_icon _, Icon.In_pad (slot, port) ->
        [
          Menu.item "constant (register file) ..."
            (Menu.P_const_form { icon = icon.Icon.id; slot; port });
          Menu.item "feedback loop ..."
            (Menu.P_feedback_form { icon = icon.Icon.id; slot; port });
        ]
    | _ -> []
  in
  {
    Menu.title = "input source";
    at;
    items = disconnects @ externals @ internals @ [ Menu.item "cancel" Menu.P_cancel ];
  }

(* The destination menu for a producing pad. *)
let dest_menu st (icon : Icon.t) pad ~at : Menu.t =
  let dsts =
    List.map
      (fun (label, ep) ->
        match ep with
        | Connection.Pad { icon = dst_icon; pad = Icon.Flow_in } as dst -> (
            match Pipeline.icon_kind (State.current_pipeline st) dst_icon with
            | Some (Icon.Memory_icon _) | Some (Icon.Cache_icon _) ->
                (* device destination: needs the DMA subwindow *)
                ignore dst;
                Menu.item label
                  (Menu.P_dma_form
                     {
                       pending = Menu.Out_of_pad { icon = icon.Icon.id; pad };
                       target =
                         (match Pipeline.icon_kind (State.current_pipeline st) dst_icon with
                         | Some (Icon.Cache_icon _) -> `Cache
                         | _ -> `Memory);
                       device_icon = Some dst_icon;
                     })
            | _ ->
                Menu.item label
                  (Menu.P_connect { src = pad_endpoint icon.Icon.id pad; dst = ep }))
        | _ ->
            Menu.item label (Menu.P_connect { src = pad_endpoint icon.Icon.id pad; dst = ep }))
      (placed_inputs st)
  in
  {
    Menu.title = "output destination";
    at;
    items =
      dsts
      @ [
          Menu.item "to memory plane ..."
            (Menu.P_dma_form
               { pending = Menu.Out_of_pad { icon = icon.Icon.id; pad }; target = `Memory;
                 device_icon = None });
          Menu.item "to cache ..."
            (Menu.P_dma_form
               { pending = Menu.Out_of_pad { icon = icon.Icon.id; pad }; target = `Cache;
                 device_icon = None });
          Menu.item "cancel" Menu.P_cancel;
        ];
  }

(* The operation menu of Figure 10: only opcodes this unit's circuitry
   supports are listed. *)
let op_menu st (icon : Icon.t) slot ~at : Menu.t =
  match icon.Icon.kind with
  | Icon.Als_icon { als; _ } ->
      let fu = { Resource.als; slot } in
      let ops = Checker.legal_opcodes st.State.kb fu in
      {
        Menu.title = Printf.sprintf "operation of %s" (Resource.fu_to_string fu);
        at;
        items =
          List.map
            (fun op ->
              Menu.item (Opcode.mnemonic op)
                (Menu.P_set_op { icon = icon.Icon.id; slot; op = Some op }))
            ops
          @ [
              Menu.item "idle" (Menu.P_set_op { icon = icon.Icon.id; slot; op = None });
              Menu.item "cancel" Menu.P_cancel;
            ];
      }
  | _ -> { Menu.title = "operation"; at; items = [ Menu.item "cancel" Menu.P_cancel ] }

(* ------------------------------------------------------------------ *)
(* form submission                                                    *)
(* ------------------------------------------------------------------ *)

let int_field f name = Option.bind (Menu.field_value f name) int_of_string_opt
let float_field f name = Option.bind (Menu.field_value f name) float_of_string_opt

let submit_form (st : State.t) (f : Menu.form) : State.t =
  let st_idle = { st with State.mode = State.Idle } in
  match f.Menu.kind with
  | Menu.F_dma { pending; target; device_icon } -> (
      let device_field = match target with `Memory -> "plane" | `Cache -> "cache" in
      match int_field f device_field with
      | None -> State.message st "the %s number is missing or malformed" device_field
      | Some device ->
          let p = params st in
          let limit =
            match target with `Memory -> p.n_memory_planes | `Cache -> p.n_caches
          in
          if device < 0 || device >= limit then
            State.message st "%s %d does not exist (machine has %d)" device_field device
              limit
          else begin
            let spec =
              {
                Dma_spec.target =
                  (match target with
                  | `Memory -> Dma_spec.To_plane device
                  | `Cache -> Dma_spec.To_cache device);
                variable =
                  (match Menu.field_value f "variable" with
                  | Some "" | None -> None
                  | Some v -> Some v);
                offset = Option.value ~default:0 (int_field f "offset");
                stride = Option.value ~default:1 (int_field f "stride");
                count = Option.value ~default:0 (int_field f "count");
              }
            in
            (* when the wire attaches to a placed device icon, the endpoint
               is the icon's flow pad (and the device number must agree) *)
            let device_end flow =
              match device_icon with
              | Some id -> (
                  match Pipeline.icon_kind (State.current_pipeline st) id with
                  | Some (Icon.Memory_icon plane) when plane = device ->
                      Ok (Connection.Pad { icon = id; pad = flow })
                  | Some (Icon.Cache_icon cache) when cache = device ->
                      Ok (Connection.Pad { icon = id; pad = flow })
                  | Some (Icon.Memory_icon plane) ->
                      Error
                        (Printf.sprintf
                           "the wire attaches to %s, but the form names %s %d"
                           (Printf.sprintf "MEM %d" plane) device_field device)
                  | Some (Icon.Cache_icon cache) ->
                      Error
                        (Printf.sprintf
                           "the wire attaches to %s, but the form names %s %d"
                           (Printf.sprintf "CACHE %d" cache) device_field device)
                  | _ -> Error "the device icon vanished")
              | None -> (
                  match target with
                  | `Memory -> Ok (Connection.Direct_memory device)
                  | `Cache -> Ok (Connection.Direct_cache device))
            in
            match pending with
            | Menu.Into_pad { icon; pad } -> (
                match device_end Icon.Flow_out with
                | Ok src -> try_connect st_idle ~src ~dst:(Connection.Pad { icon; pad }) ~spec ()
                | Error m -> State.message st "%s" m)
            | Menu.Out_of_pad { icon; pad } -> (
                match device_end Icon.Flow_in with
                | Ok dst -> try_connect st_idle ~src:(Connection.Pad { icon; pad }) ~dst ~spec ()
                | Error m -> State.message st "%s" m)
          end)
  | Menu.F_constant { icon; slot; port } -> (
      match float_field f "value" with
      | None -> State.message st "the constant value is malformed"
      | Some v ->
          State.message
            (set_binding st_idle ~icon ~slot ~port (Fu_config.From_constant v))
            "constant %g loaded into the register file" v)
  | Menu.F_feedback { icon; slot; port } -> (
      match int_field f "depth" with
      | None -> State.message st "the feedback depth is malformed"
      | Some d ->
          State.message
            (set_binding st_idle ~icon ~slot ~port (Fu_config.From_feedback d))
            "feedback loop of depth %d" d)
  | Menu.F_place_memory -> (
      match int_field f "plane" with
      | None -> State.message st "the plane number is malformed"
      | Some plane ->
          {
            st_idle with
            State.mode =
              State.Placing
                { request = State.Place_memory plane; at = Geometry.point 40 10 };
          })
  | Menu.F_place_cache -> (
      match int_field f "cache" with
      | None -> State.message st "the cache number is malformed"
      | Some cache ->
          {
            st_idle with
            State.mode =
              State.Placing { request = State.Place_cache cache; at = Geometry.point 40 10 };
          })
  | Menu.F_place_shift_delay -> (
      let mode =
        match (Menu.field_value f "mode", int_field f "amount") with
        | Some "delay", Some d -> Some (Shift_delay.Delay d)
        | Some "shift", Some o -> Some (Shift_delay.Shift o)
        | _ -> None
      in
      match mode with
      | None -> State.message st "shift/delay mode must be 'delay' or 'shift' with an amount"
      | Some mode ->
          {
            st_idle with
            State.mode =
              State.Placing
                { request = State.Place_shift_delay mode; at = Geometry.point 40 10 };
          })
  | Menu.F_goto -> (
      match int_field f "pipeline" with
      | None -> State.message st "the pipeline number is malformed"
      | Some n -> State.message (State.goto st_idle n) "editing pipeline %d" n)
  | Menu.F_vlen -> (
      match int_field f "length" with
      | Some n when n >= 1 ->
          let pl = Pipeline.with_vector_length (State.current_pipeline st) n in
          State.message (State.put_pipeline st_idle pl) "vector length set to %d" n
      | _ -> State.message st "the vector length must be a positive integer")
  | Menu.F_renumber -> (
      match int_field f "to" with
      | None -> State.message st "the target position is malformed"
      | Some to_ -> (
          match Program.move_pipeline st.State.program ~index:st.State.current ~to_ with
          | Ok program ->
              State.message
                (State.goto { st_idle with State.program; dirty = true } to_)
                "pipeline moved to position %d" to_
          | Error e -> State.message st "%s" e))
  | Menu.F_save -> (
      match Menu.field_value f "path" with
      | None | Some "" -> State.message st "a file path is required"
      | Some path -> (
          try
            Serialize.save st.State.program ~path;
            State.message { st_idle with State.dirty = false } "saved to %s" path
          with Sys_error e -> State.message st "save failed: %s" e))
  | Menu.F_load -> (
      match Menu.field_value f "path" with
      | None | Some "" -> State.message st "a file path is required"
      | Some path -> (
          try
            match Serialize.load (params st) ~path with
            | Ok program ->
                State.message
                  (State.goto { (State.of_program st.State.kb program) with
                                State.messages = st.State.messages } 1)
                  "loaded %s (%d pipeline(s))" path (Program.pipeline_count program)
            | Error e -> State.message st "load failed: %s" e
          with Sys_error e -> State.message st "load failed: %s" e))

(* ------------------------------------------------------------------ *)
(* buttons                                                            *)
(* ------------------------------------------------------------------ *)

let press_button (st : State.t) (b : Layout.button) : State.t =
  let arm request =
    { st with State.mode = State.Placing { request; at = Geometry.point 40 10 } }
  in
  let open_form form = { st with State.mode = State.Form_open form } in
  match b with
  | Layout.B_singlet -> arm (State.Place_als (Als.Singlet, Als.No_bypass))
  | Layout.B_doublet -> arm (State.Place_als (Als.Doublet, Als.No_bypass))
  | Layout.B_doublet_bypass -> arm (State.Place_als (Als.Doublet, Als.Keep_head))
  | Layout.B_triplet -> arm (State.Place_als (Als.Triplet, Als.No_bypass))
  | Layout.B_memory ->
      open_form (Menu.form "Place memory plane" [ ("plane", "0") ] Menu.F_place_memory)
  | Layout.B_cache ->
      open_form (Menu.form "Place cache" [ ("cache", "0") ] Menu.F_place_cache)
  | Layout.B_shift_delay ->
      open_form
        (Menu.form "Place shift/delay unit"
           [ ("mode", "delay"); ("amount", "1") ]
           Menu.F_place_shift_delay)
  | Layout.B_insert ->
      let program, at =
        Program.insert_pipeline st.State.program ~at:(st.State.current + 1)
      in
      State.message
        (State.goto { st with State.program; dirty = true } at)
        "inserted pipeline %d" at
  | Layout.B_delete ->
      if Program.pipeline_count st.State.program <= 1 then
        State.message st "cannot delete the only pipeline"
      else
        let program = Program.delete_pipeline st.State.program ~index:st.State.current in
        State.message
          (State.goto { st with State.program; dirty = true } st.State.current)
          "deleted pipeline %d" st.State.current
  | Layout.B_copy -> (
      match Program.copy_pipeline st.State.program ~index:st.State.current with
      | Ok (program, copy_at) ->
          State.message
            (State.goto { st with State.program; dirty = true } copy_at)
            "copied pipeline %d to %d" st.State.current copy_at
      | Error e -> State.message st "%s" e)
  | Layout.B_renumber ->
      { st with State.mode = State.Form_open (Menu.form "Renumber pipeline" [ ("to", "1") ] Menu.F_renumber) }
  | Layout.B_next -> State.goto st (st.State.current + 1)
  | Layout.B_prev -> State.goto st (st.State.current - 1)
  | Layout.B_goto ->
      { st with State.mode = State.Form_open (Menu.form "Go to pipeline" [ ("pipeline", "1") ] Menu.F_goto) }
  | Layout.B_vlen ->
      {
        st with
        State.mode =
          State.Form_open
            (Menu.form "Vector length"
               [ ("length", string_of_int (State.current_pipeline st).Pipeline.vector_length) ]
               Menu.F_vlen);
      }
  | Layout.B_check ->
      let lookup = Program.variable_base st.State.program in
      let ds =
        Checker.check_pipeline st.State.kb ~lookup ~level:`Complete
          (State.current_pipeline st)
      in
      let st = { st with State.diagnostics = ds } in
      if ds = [] then State.message st "check complete: no findings"
      else
        State.message st "check complete: %d finding(s), %d error(s)" (List.length ds)
          (List.length (Diagnostic.errors ds))
  | Layout.B_balance ->
      let lookup = Program.variable_base st.State.program in
      let pl, rounds =
        Balance.balance_pipeline st.State.kb ~lookup (State.current_pipeline st)
      in
      if rounds = 0 then State.message st "streams already aligned"
      else
        State.message (State.put_pipeline st pl)
          "alignment queues inserted (%d correction round%s)" rounds
          (if rounds = 1 then "" else "s")
  | Layout.B_save ->
      { st with State.mode = State.Form_open (Menu.form "Save program" [ ("path", "") ] Menu.F_save) }
  | Layout.B_load ->
      { st with State.mode = State.Form_open (Menu.form "Load program" [ ("path", "") ] Menu.F_load) }

(* ------------------------------------------------------------------ *)
(* menu dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let dispatch_payload (st : State.t) (payload : Menu.payload) : State.t =
  let st = { st with State.mode = State.Idle } in
  match payload with
  | Menu.P_cancel -> st
  | Menu.P_set_op { icon; slot; op } -> set_op st ~icon ~slot op
  | Menu.P_connect { src; dst } -> try_connect st ~src ~dst ()
  | Menu.P_dma_form { pending; target; device_icon } ->
      let device =
        Option.bind device_icon (fun id ->
            match Pipeline.icon_kind (State.current_pipeline st) id with
            | Some (Icon.Memory_icon plane) -> Some plane
            | Some (Icon.Cache_icon cache) -> Some cache
            | _ -> None)
      in
      {
        st with
        State.mode =
          State.Form_open (Menu.dma_form ?device_icon ?device ~pending ~target ());
      }
  | Menu.P_const_form { icon; slot; port } ->
      { st with State.mode = State.Form_open (Menu.constant_form ~icon ~slot ~port) }
  | Menu.P_feedback_form { icon; slot; port } ->
      { st with State.mode = State.Form_open (Menu.feedback_form ~icon ~slot ~port) }
  | Menu.P_bind_chain { icon; slot; port } ->
      set_binding st ~icon ~slot ~port Fu_config.From_chain
  | Menu.P_disconnect cid ->
      let pl = Pipeline.remove_connection (State.current_pipeline st) cid in
      State.message (State.put_pipeline st pl) "wire %d removed" cid

(* ------------------------------------------------------------------ *)
(* the event interpreter                                              *)
(* ------------------------------------------------------------------ *)

let handle (st : State.t) (ev : Event.t) : State.t =
  let p = params st in
  match (st.State.mode, ev) with
  (* -- menus and forms capture their events -------------------------- *)
  | State.Menu_open menu, Event.Menu_select n -> (
      match Menu.nth_payload menu n with
      | Some payload -> dispatch_payload st payload
      | None -> State.message st "no such menu item")
  | State.Menu_open _, Event.Menu_cancel -> { st with State.mode = State.Idle }
  | State.Menu_open _, Event.Key "Escape" -> { st with State.mode = State.Idle }
  | State.Menu_open _, _ -> st
  | State.Form_open f, Event.Form_set (name, value) ->
      { st with State.mode = State.Form_open (Menu.set_field f name value) }
  | State.Form_open f, Event.Form_submit -> submit_form st f
  | State.Form_open _, (Event.Form_cancel | Event.Key "Escape") ->
      { st with State.mode = State.Idle }
  | State.Form_open _, _ -> st
  (* -- placing an icon (Figure 6) ------------------------------------ *)
  | State.Placing { request; _ }, Event.Mouse_move at ->
      { st with State.mode = State.Placing { request; at = Layout.to_drawing at } }
  | State.Placing { request; _ }, Event.Mouse_up at when Layout.in_drawing at -> (
      let pos = Layout.to_drawing at in
      let pl = State.current_pipeline st in
      let placed =
        match request with
        | State.Place_als (kind, bypass) -> Pipeline.place_als p pl ~kind ~bypass ~pos ()
        | State.Place_memory plane ->
            if plane < 0 || plane >= p.n_memory_planes then Error "no such memory plane"
            else Ok (Pipeline.add_icon p pl ~kind:(Icon.Memory_icon plane) ~pos)
        | State.Place_cache cache ->
            if cache < 0 || cache >= p.n_caches then Error "no such cache"
            else Ok (Pipeline.add_icon p pl ~kind:(Icon.Cache_icon cache) ~pos)
        | State.Place_shift_delay mode -> Pipeline.place_shift_delay p pl ~mode ~pos
      in
      match placed with
      | Ok (id, pl) ->
          let st = State.put_pipeline { st with State.mode = State.Idle } pl in
          let title =
            match Pipeline.find_icon (State.current_pipeline st) id with
            | Some ic -> Icon.title ic
            | None -> "icon"
          in
          State.message { st with State.selected = Some id } "placed %s" title
      | Error e -> State.message { st with State.mode = State.Idle } "%s" e)
  | State.Placing _, Event.Mouse_up _ ->
      State.message { st with State.mode = State.Idle } "placement cancelled"
  | State.Placing _, Event.Key "Escape" -> { st with State.mode = State.Idle }
  | State.Placing _, _ -> st
  (* -- moving a placed icon ------------------------------------------ *)
  | State.Moving { icon; grab }, Event.Mouse_move at ->
      let pos = Geometry.sub (Layout.to_drawing at) grab in
      State.put_pipeline st (Pipeline.move_icon (State.current_pipeline st) icon pos)
  | State.Moving { icon; grab }, Event.Mouse_up at ->
      let pos = Geometry.sub (Layout.to_drawing at) grab in
      let st =
        State.put_pipeline { st with State.mode = State.Idle }
          (Pipeline.move_icon (State.current_pipeline st) icon pos)
      in
      st
  | State.Moving _, _ -> st
  (* -- rubber-band wiring (Figure 8) ---------------------------------- *)
  | State.Rubber { from_icon; from_pad; _ }, Event.Mouse_move at ->
      {
        st with
        State.mode = State.Rubber { from_icon; from_pad; at = Layout.to_drawing at };
      }
  | State.Rubber { from_icon; from_pad; _ }, Event.Mouse_up at -> (
      let st = { st with State.mode = State.Idle } in
      let p_draw = Layout.to_drawing at in
      let pl = State.current_pipeline st in
      let from_pos =
        Option.bind (Pipeline.find_icon pl from_icon) (fun ic ->
            Icon.pad_position p ic from_pad)
      in
      let released_in_place =
        match from_pos with Some fp -> Geometry.dist2 fp p_draw <= 2 | None -> false
      in
      if released_in_place then begin
        (* a click, not a drag: open the destination menu *)
        match Pipeline.find_icon pl from_icon with
        | Some ic ->
            { st with State.mode = State.Menu_open (dest_menu st ic from_pad ~at:p_draw) }
        | None -> st
      end
      else
        match pad_hit st p_draw with
        | None -> State.message st "released over empty space; wire cancelled"
        | Some (to_icon, to_pad) -> (
            match Pipeline.find_icon pl to_icon with
            | None -> st
            | Some to_ic -> (
                match Icon.pad_direction to_pad with
                | Icon.Produces ->
                    State.message st "both ends produce data; wire cancelled"
                | Icon.Consumes -> (
                    match (to_ic.Icon.kind, to_pad) with
                    | (Icon.Memory_icon _ | Icon.Cache_icon _), Icon.Flow_in ->
                        (* a device destination: open the DMA subwindow *)
                        let device =
                          match to_ic.Icon.kind with
                          | Icon.Memory_icon plane -> plane
                          | Icon.Cache_icon cache -> cache
                          | _ -> 0
                        in
                        {
                          st with
                          State.mode =
                            State.Form_open
                              (Menu.dma_form ~device_icon:to_icon ~device
                                 ~pending:
                                   (Menu.Out_of_pad { icon = from_icon; pad = from_pad })
                                 ~target:
                                   (match to_ic.Icon.kind with
                                   | Icon.Cache_icon _ -> `Cache
                                   | _ -> `Memory)
                                 ());
                        }
                    | _ ->
                        try_connect st
                          ~src:(pad_endpoint from_icon from_pad)
                          ~dst:(pad_endpoint to_icon to_pad)
                          ()))))
  | State.Rubber _, Event.Key "Escape" -> { st with State.mode = State.Idle }
  | State.Rubber _, _ -> st
  (* -- idle ----------------------------------------------------------- *)
  | State.Idle, Event.Mouse_down at -> (
      match Layout.button_at at with
      | Some b -> press_button st b
      | None ->
          if not (Layout.in_drawing at) then st
          else begin
            let p_draw = Layout.to_drawing at in
            match pad_hit st p_draw with
            | Some (icon_id, pad) -> (
                let pl = State.current_pipeline st in
                match Pipeline.find_icon pl icon_id with
                | None -> st
                | Some ic -> (
                    match Icon.pad_direction pad with
                    | Icon.Produces ->
                        {
                          st with
                          State.mode =
                            State.Rubber
                              { from_icon = icon_id; from_pad = pad; at = p_draw };
                        }
                    | Icon.Consumes ->
                        {
                          st with
                          State.mode = State.Menu_open (source_menu st ic pad ~at:p_draw);
                        }))
            | None -> (
                match icon_hit st p_draw with
                | Some ic -> (
                    match slot_hit st ic p_draw with
                    | Some slot ->
                        {
                          st with
                          State.selected = Some ic.Icon.id;
                          State.mode = State.Menu_open (op_menu st ic slot ~at:p_draw);
                        }
                    | None ->
                        {
                          st with
                          State.selected = Some ic.Icon.id;
                          State.mode =
                            State.Moving
                              {
                                icon = ic.Icon.id;
                                grab = Geometry.sub p_draw ic.Icon.pos;
                              };
                        })
                | None -> { st with State.selected = None })
          end)
  | State.Idle, Event.Key ("x" | "Delete") -> (
      match st.State.selected with
      | None -> State.message st "nothing selected"
      | Some id ->
          let pl = Pipeline.remove_icon (State.current_pipeline st) id in
          State.message
            (State.put_pipeline { st with State.selected = None } pl)
            "icon %d deleted (with its wires)" id)
  | State.Idle, _ -> st

(** Feed a list of events through the editor. *)
let run (st : State.t) (events : Event.t list) : State.t = List.fold_left handle st events
