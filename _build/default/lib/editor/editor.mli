(** The graphical editor's event interpreter.

    Gestures follow Section 5 of the paper:

    - drag an icon button from the control panel into the drawing space to
      place an ALS (Figure 6); the lowest free structure of that kind is
      bound automatically, and the editor refuses the drop when the
      machine's supply is exhausted;
    - {e click} an I/O pad and "a menu pops up showing the available
      choices" - external connections to other units, caches, memories or
      shift/delay units, or internal connections for feedback loops and
      register-file constants; or {e drag} from a producing pad to a
      consuming pad to wire them directly with the rubber band (Figure 8);
    - memory and cache choices open the popup subwindow of Figure 9 to
      programme the DMA unit;
    - click a functional-unit box to programme its operation through the
      popup menu of Figure 10.

    The checker is consulted on every completed gesture; a gesture that
    would introduce a hardware violation is rejected outright and the
    reason shown in the message strip. *)

(** Apply one input event to the editor state. *)
val handle : State.t -> Event.t -> State.t

(** Feed a list of events through the editor. *)
val run : State.t -> Event.t list -> State.t
