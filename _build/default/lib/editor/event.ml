(** Input events the editor consumes.

    "Interaction is provided primarily with a 'mouse', augmented with a
    keyboard for some operations."  The editor is headless: events are
    synthesised by session scripts (or tests) and carry drawing-surface
    coordinates in character cells, so hit testing against icons, pads and
    panel buttons works exactly as it would under a pointing device. *)

open Nsc_diagram

type t =
  | Mouse_down of Geometry.point
  | Mouse_move of Geometry.point
  | Mouse_up of Geometry.point
  | Key of string             (** a keystroke, e.g. "x", "Escape" *)
  | Menu_select of int        (** choose the n-th item of the open menu *)
  | Menu_cancel
  | Form_set of string * string  (** set a form field by name *)
  | Form_submit
  | Form_cancel
[@@deriving show { with_path = false }, eq]

let to_string = show

(** Parse the textual form used by session scripts:
    [down x y], [move x y], [up x y], [key k], [menu n], [menu-cancel],
    [set field value], [submit], [form-cancel]. *)
let of_tokens = function
  | [ "down"; x; y ] ->
      Option.bind (int_of_string_opt x) (fun x ->
          Option.map (fun y -> Mouse_down (Geometry.point x y)) (int_of_string_opt y))
  | [ "move"; x; y ] ->
      Option.bind (int_of_string_opt x) (fun x ->
          Option.map (fun y -> Mouse_move (Geometry.point x y)) (int_of_string_opt y))
  | [ "up"; x; y ] ->
      Option.bind (int_of_string_opt x) (fun x ->
          Option.map (fun y -> Mouse_up (Geometry.point x y)) (int_of_string_opt y))
  | [ "key"; k ] -> Some (Key k)
  | [ "menu"; n ] -> Option.map (fun n -> Menu_select n) (int_of_string_opt n)
  | [ "menu-cancel" ] -> Some Menu_cancel
  | "set" :: field :: rest -> Some (Form_set (field, String.concat " " rest))
  | [ "submit" ] -> Some Form_submit
  | [ "form-cancel" ] -> Some Form_cancel
  | _ -> None

let to_tokens = function
  | Mouse_down p -> Printf.sprintf "down %d %d" p.Geometry.x p.Geometry.y
  | Mouse_move p -> Printf.sprintf "move %d %d" p.Geometry.x p.Geometry.y
  | Mouse_up p -> Printf.sprintf "up %d %d" p.Geometry.x p.Geometry.y
  | Key k -> "key " ^ k
  | Menu_select n -> Printf.sprintf "menu %d" n
  | Menu_cancel -> "menu-cancel"
  | Form_set (f, v) -> Printf.sprintf "set %s %s" f v
  | Form_submit -> "submit"
  | Form_cancel -> "form-cancel"
