(** Input events the editor consumes.

    "Interaction is provided primarily with a 'mouse', augmented with a
    keyboard for some operations."  The editor is headless: events are
    synthesised by session scripts (or tests) and carry drawing-surface
    coordinates in character cells, so hit testing against icons, pads and
    panel buttons works exactly as it would under a pointing device. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type t =
    Mouse_down of Nsc_diagram.Geometry.point
  | Mouse_move of Nsc_diagram.Geometry.point
  | Mouse_up of Nsc_diagram.Geometry.point
  | Key of string
  | Menu_select of int
  | Menu_cancel
  | Form_set of string * string
  | Form_submit
  | Form_cancel
val pp :
  Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val to_string : t -> string
val of_tokens : string list -> t option
val to_tokens : t -> string
