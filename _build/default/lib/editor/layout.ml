(** Geometry of the display window (the paper's Figure 5).

    The window is a character-cell surface: an information/error strip
    across the top; a region on the left reserved for control-flow
    specifications and variable declarations; the large central drawing
    space for pipeline diagrams; and a control-panel column on the right
    holding the ALS icons and the editor operations. *)

open Nsc_diagram

let window_w = 132
let window_h = 44

(** The message strip across the top. *)
let message_strip = Geometry.rect 0 0 (window_w - 1) 1

(** Left region: control-flow and declarations. *)
let left_region = Geometry.rect 0 2 19 (window_h - 3)

(** Central drawing space, in absolute window coordinates. *)
let drawing_area = Geometry.rect 20 2 90 (window_h - 3)

(** Right-hand control panel. *)
let control_panel = Geometry.rect 111 2 20 (window_h - 3)

(** Buttons in the control panel.  Icon buttons arm icon placement; the
    rest are the editor operations of Section 5 ("insert, delete, copy, and
    renumber pipelines, as well as ... scroll forward or backward or jump
    to a specific pipeline"). *)
type button =
  | B_singlet
  | B_doublet
  | B_doublet_bypass  (** the second doublet representation of Figure 4 *)
  | B_triplet
  | B_memory
  | B_cache
  | B_shift_delay
  | B_insert
  | B_delete
  | B_copy
  | B_renumber
  | B_next
  | B_prev
  | B_goto
  | B_vlen      (** set the instruction's vector length *)
  | B_check     (** run the complete checker pass *)
  | B_balance   (** auto-insert alignment delay queues *)
  | B_save
  | B_load
[@@deriving show { with_path = false }, eq]

let buttons =
  [
    (B_singlet, "Singlet");
    (B_doublet, "Doublet");
    (B_doublet_bypass, "Doublet/1");
    (B_triplet, "Triplet");
    (B_memory, "Memory");
    (B_cache, "Cache");
    (B_shift_delay, "Shift/Del");
    (B_insert, "Insert");
    (B_delete, "Delete");
    (B_copy, "Copy");
    (B_renumber, "Renumber");
    (B_next, "Next >");
    (B_prev, "< Prev");
    (B_goto, "Goto");
    (B_vlen, "VecLen");
    (B_check, "Check");
    (B_balance, "Balance");
    (B_save, "Save");
    (B_load, "Load");
  ]

let button_h = 2

(** Screen rectangle of each button, in panel order. *)
let button_rect b =
  let rec index i = function
    | [] -> invalid_arg "Layout.button_rect"
    | (b', _) :: rest -> if equal_button b b' then i else index (i + 1) rest
  in
  let i = index 0 buttons in
  Geometry.rect (control_panel.Geometry.ox + 1)
    (control_panel.Geometry.oy + 1 + (i * button_h))
    (control_panel.Geometry.w - 2) (button_h - 1)

(** Button under a window point, if any. *)
let button_at p =
  List.find_map
    (fun (b, _) -> if Geometry.contains (button_rect b) p then Some b else None)
    buttons

let label_of b = List.assoc b buttons

(** Convert window coordinates to drawing-area coordinates and back.  The
    pipeline diagram's icon positions are stored in drawing-area
    coordinates so that panel layout changes never disturb saved
    diagrams. *)
let to_drawing p = Geometry.sub p (Geometry.origin drawing_area)
let of_drawing p = Geometry.add p (Geometry.origin drawing_area)
let in_drawing p = Geometry.contains drawing_area p
