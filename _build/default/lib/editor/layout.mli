(** Geometry of the display window (the paper's Figure 5).

    The window is a character-cell surface: an information/error strip
    across the top; a region on the left reserved for control-flow
    specifications and variable declarations; the large central drawing
    space for pipeline diagrams; and a control-panel column on the right
    holding the ALS icons and the editor operations. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val window_w : int
val window_h : int
val message_strip : Nsc_diagram.Geometry.rect
val left_region : Nsc_diagram.Geometry.rect
val drawing_area : Nsc_diagram.Geometry.rect
val control_panel : Nsc_diagram.Geometry.rect
type button =
    B_singlet
  | B_doublet
  | B_doublet_bypass
  | B_triplet
  | B_memory
  | B_cache
  | B_shift_delay
  | B_insert
  | B_delete
  | B_copy
  | B_renumber
  | B_next
  | B_prev
  | B_goto
  | B_vlen
  | B_check
  | B_balance
  | B_save
  | B_load
val pp_button :
  Format.formatter ->
  button -> unit
val show_button : button -> string
val equal_button : button -> button -> bool
val buttons : (button * string) list
val button_h : int
val button_rect : button -> Nsc_diagram.Geometry.rect
val button_at : Nsc_diagram.Geometry.point -> button option
val label_of : button -> string
val to_drawing : Nsc_diagram.Geometry.point -> Nsc_diagram.Geometry.point
val of_drawing : Nsc_diagram.Geometry.point -> Nsc_diagram.Geometry.point
val in_drawing : Nsc_diagram.Geometry.point -> bool
