(** Popup menus and subwindows.

    "The use of popup menus and windows is crucial to our approach.  By
    hiding ancillary information until it is needed, the amount of detail
    displayed in the pipeline diagrams is reduced to a manageable level."

    Menus carry self-contained payloads so selecting an item needs no
    other context; forms are ordered field lists with a kind tag saying
    what submission means. *)

open Nsc_arch
open Nsc_diagram

(** A wire under construction whose memory/cache end still needs its DMA
    subwindow completed.  [Into_pad]: the stream flows from the device into
    the pad; [Out_of_pad]: from the pad into the device. *)
type pending_wire =
  | Into_pad of { icon : Icon.id; pad : Icon.pad }
  | Out_of_pad of { icon : Icon.id; pad : Icon.pad }
[@@deriving show { with_path = false }, eq]

type payload =
  | P_cancel
  | P_set_op of { icon : Icon.id; slot : int; op : Opcode.t option }
      (** programme (or idle) a functional unit — the Figure 10 menu *)
  | P_connect of { src : Connection.endpoint; dst : Connection.endpoint }
      (** complete a wire that needs no DMA data *)
  | P_dma_form of {
      pending : pending_wire;
      target : [ `Memory | `Cache ];
      device_icon : Icon.id option;
          (** a placed memory/cache icon the wire attaches to, when the
              gesture named one — its device number pre-fills the form *)
    }
      (** open the Figure 9 subwindow for a memory/cache connection *)
  | P_const_form of { icon : Icon.id; slot : int; port : Resource.port }
  | P_feedback_form of { icon : Icon.id; slot : int; port : Resource.port }
  | P_bind_chain of { icon : Icon.id; slot : int; port : Resource.port }
  | P_disconnect of Connection.id
[@@deriving show { with_path = false }, eq]

type item = { label : string; payload : payload }

type t = { title : string; at : Geometry.point; items : item list }

let item label payload = { label; payload }

let nth_payload menu n =
  if n < 0 || n >= List.length menu.items then None
  else Some (List.nth menu.items n).payload

(** Forms (popup subwindows).  Fields are an ordered (name, value) list;
    submission semantics live in [kind]. *)
type form_kind =
  | F_dma of {
      pending : pending_wire;
      target : [ `Memory | `Cache ];
      device_icon : Icon.id option;
    }
  | F_constant of { icon : Icon.id; slot : int; port : Resource.port }
  | F_feedback of { icon : Icon.id; slot : int; port : Resource.port }
  | F_place_memory
  | F_place_cache
  | F_place_shift_delay
  | F_goto
  | F_vlen
  | F_renumber
  | F_save
  | F_load
[@@deriving show { with_path = false }, eq]

type form = {
  form_title : string;
  fields : (string * string) list;  (** ordered; edited in place *)
  kind : form_kind;
}

let form form_title fields kind = { form_title; fields; kind }

let field_value f name = List.assoc_opt name f.fields

let set_field f name value =
  if List.mem_assoc name f.fields then
    {
      f with
      fields = List.map (fun (n, v) -> if n = name then (n, value) else (n, v)) f.fields;
    }
  else f

(** The Figure 9 cache/memory-connection subwindow.  [device] pre-fills
    the plane/cache number when the wire attaches to a placed icon. *)
let dma_form ?device_icon ?(device = 0) ~pending ~target () =
  let device_field = match target with `Memory -> "plane" | `Cache -> "cache" in
  form
    (match target with
    | `Memory -> "Memory connection"
    | `Cache -> "Cache connection")
    [ (device_field, string_of_int device); ("variable", ""); ("offset", "0");
      ("stride", "1"); ("count", "0") ]
    (F_dma { pending; target; device_icon })

let constant_form ~icon ~slot ~port =
  form "Register-file constant" [ ("value", "0.0") ] (F_constant { icon; slot; port })

let feedback_form ~icon ~slot ~port =
  form "Feedback queue" [ ("depth", "1") ] (F_feedback { icon; slot; port })
