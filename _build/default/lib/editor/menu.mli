(** Popup menus and subwindows.

    "The use of popup menus and windows is crucial to our approach.  By
    hiding ancillary information until it is needed, the amount of detail
    displayed in the pipeline diagrams is reduced to a manageable level."

    Menus carry self-contained payloads so selecting an item needs no
    other context; forms are ordered field lists with a kind tag saying
    what submission means. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type pending_wire =
    Into_pad of { icon : Nsc_diagram.Icon.id; pad : Nsc_diagram.Icon.pad; }
  | Out_of_pad of { icon : Nsc_diagram.Icon.id; pad : Nsc_diagram.Icon.pad; }
val pp_pending_wire :
  Format.formatter ->
  pending_wire -> unit
val show_pending_wire : pending_wire -> string
val equal_pending_wire :
  pending_wire -> pending_wire -> bool
type payload =
    P_cancel
  | P_set_op of { icon : Nsc_diagram.Icon.id; slot : int;
      op : Nsc_arch.Opcode.t option;
    }
  | P_connect of { src : Nsc_diagram.Connection.endpoint;
      dst : Nsc_diagram.Connection.endpoint;
    }
  | P_dma_form of { pending : pending_wire; target : [ `Cache | `Memory ];
      device_icon : Nsc_diagram.Icon.id option;
    }
  | P_const_form of { icon : Nsc_diagram.Icon.id; slot : int;
      port : Nsc_arch.Resource.port;
    }
  | P_feedback_form of { icon : Nsc_diagram.Icon.id; slot : int;
      port : Nsc_arch.Resource.port;
    }
  | P_bind_chain of { icon : Nsc_diagram.Icon.id; slot : int;
      port : Nsc_arch.Resource.port;
    }
  | P_disconnect of Nsc_diagram.Connection.id
val pp_payload :
  Format.formatter ->
  payload -> unit
val show_payload : payload -> string
val equal_payload : payload -> payload -> bool
type item = { label : string; payload : payload; }
type t = {
  title : string;
  at : Nsc_diagram.Geometry.point;
  items : item list;
}
val item : string -> payload -> item
val nth_payload : t -> int -> payload option
type form_kind =
    F_dma of { pending : pending_wire; target : [ `Cache | `Memory ];
      device_icon : Nsc_diagram.Icon.id option;
    }
  | F_constant of { icon : Nsc_diagram.Icon.id; slot : int;
      port : Nsc_arch.Resource.port;
    }
  | F_feedback of { icon : Nsc_diagram.Icon.id; slot : int;
      port : Nsc_arch.Resource.port;
    }
  | F_place_memory
  | F_place_cache
  | F_place_shift_delay
  | F_goto
  | F_vlen
  | F_renumber
  | F_save
  | F_load
val pp_form_kind :
  Format.formatter ->
  form_kind -> unit
val show_form_kind : form_kind -> string
val equal_form_kind : form_kind -> form_kind -> bool
type form = {
  form_title : string;
  fields : (string * string) list;
  kind : form_kind;
}
val form : string -> (string * string) list -> form_kind -> form
val field_value : form -> string -> string option
val set_field : form -> string -> string -> form
val dma_form :
  ?device_icon:Nsc_diagram.Icon.id ->
  ?device:int ->
  pending:pending_wire -> target:[ `Cache | `Memory ] -> unit -> form
val constant_form :
  icon:Nsc_diagram.Icon.id -> slot:int -> port:Nsc_arch.Resource.port -> form
val feedback_form :
  icon:Nsc_diagram.Icon.id -> slot:int -> port:Nsc_arch.Resource.port -> form
