(** ASCII rendering of the display window.

    Regenerates the paper's screen figures as text: the message strip, the
    left control-flow/declarations region, the central drawing space with
    icons, pads and wires, and the control panel (Figure 5).  Double-box
    functional units (integer/logical circuitry) are drawn with ['#']
    borders, min/max units carry an [m] mark, matching the icon vocabulary
    of Figure 4. *)

open Nsc_arch
open Nsc_diagram

type canvas = { w : int; h : int; cells : Bytes.t }

let make_canvas w h = { w; h; cells = Bytes.make (w * h) ' ' }

let put c x y ch =
  if x >= 0 && x < c.w && y >= 0 && y < c.h then Bytes.set c.cells ((y * c.w) + x) ch

let get c x y =
  if x >= 0 && x < c.w && y >= 0 && y < c.h then Bytes.get c.cells ((y * c.w) + x) else ' '

let text c x y s = String.iteri (fun i ch -> put c (x + i) y ch) s

let hline c x0 x1 y ch =
  for x = min x0 x1 to max x0 x1 do
    put c x y ch
  done

let vline c x y0 y1 ch =
  for y = min y0 y1 to max y0 y1 do
    put c x y ch
  done

let box c (r : Geometry.rect) =
  hline c r.Geometry.ox (r.Geometry.ox + r.Geometry.w) r.Geometry.oy '-';
  hline c r.Geometry.ox (r.Geometry.ox + r.Geometry.w) (r.Geometry.oy + r.Geometry.h) '-';
  vline c r.Geometry.ox r.Geometry.oy (r.Geometry.oy + r.Geometry.h) '|';
  vline c (r.Geometry.ox + r.Geometry.w) r.Geometry.oy (r.Geometry.oy + r.Geometry.h) '|';
  List.iter
    (fun (x, y) -> put c x y '+')
    [
      (r.Geometry.ox, r.Geometry.oy);
      (r.Geometry.ox + r.Geometry.w, r.Geometry.oy);
      (r.Geometry.ox, r.Geometry.oy + r.Geometry.h);
      (r.Geometry.ox + r.Geometry.w, r.Geometry.oy + r.Geometry.h);
    ]

let to_string c =
  let buf = Buffer.create ((c.w + 1) * c.h) in
  for y = 0 to c.h - 1 do
    (* trim trailing blanks per line *)
    let last = ref (-1) in
    for x = 0 to c.w - 1 do
      if get c x y <> ' ' then last := x
    done;
    for x = 0 to !last do
      Buffer.add_char buf (get c x y)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* -- icon drawing ---------------------------------------------------- *)

let draw_icon (p : Params.t) c ~(origin : Geometry.point) (ic : Icon.t) =
  let ox = origin.Geometry.x + ic.Icon.pos.Geometry.x in
  let oy = origin.Geometry.y + ic.Icon.pos.Geometry.y in
  (match ic.Icon.kind with
  | Icon.Als_icon { als; bypass } ->
      let size = Resource.als_size p als in
      let actives = Als.active_slots ~size bypass in
      List.iter
        (fun slot ->
          let fu = { Resource.als; slot } in
          let row = oy + Icon.slot_row slot in
          let double = Resource.fu_has_capability p fu Capability.Int_logical in
          let border = if double then '#' else '-' in
          let active = List.mem slot actives in
          if active then begin
            hline c (ox + 1) (ox + Icon.fu_box_w - 2) (row - 1) border;
            hline c (ox + 1) (ox + Icon.fu_box_w - 2) (row + 1) border;
            put c (ox + 1) row (if double then '#' else '|');
            put c (ox + Icon.fu_box_w - 2) row (if double then '#' else '|');
            let cfg = ic.Icon.configs.(slot) in
            let label =
              match cfg.Fu_config.op with
              | Some op -> Opcode.mnemonic op
              | None -> if Resource.fu_has_capability p fu Capability.Min_max then "m" else ""
            in
            text c (ox + 2) row label
          end
          else text c (ox + 2) row "bypass")
        (List.init size (fun s -> s));
      text c ox (oy + Icon.slot_row (size - 1) + Icon.fu_box_h) ""
  | Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Shift_delay_icon _ ->
      let w, h = Icon.size p ic in
      box c (Geometry.rect ox oy (w - 1) (h - 1)));
  text c ox (oy - 1) (Icon.title ic);
  (* pads *)
  List.iter
    (fun (_, rel) -> put c (ox + rel.Geometry.x) (oy + rel.Geometry.y) 'o')
    (Icon.pads p ic)

(* Manhattan wire from a to b: down, across, down. *)
let draw_wire c (a : Geometry.point) (b : Geometry.point) =
  let midy = (a.Geometry.y + b.Geometry.y) / 2 in
  vline c a.Geometry.x (a.Geometry.y + 1) midy '.';
  hline c a.Geometry.x b.Geometry.x midy '.';
  vline c b.Geometry.x midy (b.Geometry.y - 1) '.';
  put c a.Geometry.x a.Geometry.y '*';
  put c b.Geometry.x b.Geometry.y '*'

(* A direct-device label beside the pad it feeds: to the left of pads on
   the icon's left half, to the right otherwise, so neighbouring labels
   and the icon title stay readable. *)
let draw_source_label p pl c ~icon ~(at : Geometry.point) label =
  (match Pipeline.find_icon pl icon with
  | Some ic ->
      let centre =
        Geometry.add (Geometry.origin Layout.drawing_area)
          (Geometry.center (Icon.bounding_box p ic))
      in
      if at.Geometry.x <= centre.Geometry.x then
        text c (at.Geometry.x - String.length label) at.Geometry.y label
      else text c (at.Geometry.x + 1) at.Geometry.y label
  | None -> text c (at.Geometry.x - String.length label) at.Geometry.y label);
  put c at.Geometry.x at.Geometry.y '*'

(* -- the full window -------------------------------------------------- *)

let draw_drawing_area (p : Params.t) c (pl : Pipeline.t) =
  let origin = Geometry.origin Layout.drawing_area in
  box c Layout.drawing_area;
  List.iter (fun ic -> draw_icon p c ~origin ic) pl.Pipeline.icons;
  (* wires *)
  let pad_abs icon pad =
    Option.bind (Pipeline.find_icon pl icon) (fun ic ->
        Option.map (Geometry.add origin) (Icon.pad_position p ic pad))
  in
  List.iter
    (fun (conn : Connection.t) ->
      match (conn.Connection.src, conn.Connection.dst) with
      | Connection.Pad { icon = i1; pad = p1 }, Connection.Pad { icon = i2; pad = p2 } -> (
          match (pad_abs i1 p1, pad_abs i2 p2) with
          | Some a, Some b -> draw_wire c a b
          | _ -> ())
      | Connection.Direct_memory pl_, Connection.Pad { icon; pad } -> (
          match pad_abs icon pad with
          | Some b ->
              draw_source_label p pl c ~icon ~at:b (Printf.sprintf "[mem%d]" pl_)
          | None -> ())
      | Connection.Direct_cache ca, Connection.Pad { icon; pad } -> (
          match pad_abs icon pad with
          | Some b ->
              draw_source_label p pl c ~icon ~at:b (Printf.sprintf "[cache%d]" ca)
          | None -> ())
      | Connection.Pad { icon; pad }, Connection.Direct_memory pl_ -> (
          match pad_abs icon pad with
          | Some a ->
              text c (a.Geometry.x + 1) (a.Geometry.y + 1) (Printf.sprintf "[mem%d]" pl_);
              put c a.Geometry.x a.Geometry.y '*'
          | None -> ())
      | Connection.Pad { icon; pad }, Connection.Direct_cache ca -> (
          match pad_abs icon pad with
          | Some a ->
              text c (a.Geometry.x + 1) (a.Geometry.y + 1) (Printf.sprintf "[cache%d]" ca);
              put c a.Geometry.x a.Geometry.y '*'
          | None -> ())
      | (Connection.Direct_memory _ | Connection.Direct_cache _), _ -> ())
    pl.Pipeline.connections

let draw_panel c =
  box c Layout.control_panel;
  text c (Layout.control_panel.Geometry.ox + 2) Layout.control_panel.Geometry.oy "PANEL";
  List.iter
    (fun (b, label) ->
      let r = Layout.button_rect b in
      text c r.Geometry.ox r.Geometry.oy ("[" ^ label ^ "]"))
    Layout.buttons

let draw_left_region c (st : State.t) =
  box c Layout.left_region;
  let x = Layout.left_region.Geometry.ox + 1 in
  let y = ref (Layout.left_region.Geometry.oy + 1) in
  let line s =
    if !y < Layout.left_region.Geometry.oy + Layout.left_region.Geometry.h then begin
      text c x !y s;
      incr y
    end
  in
  line "DECLARATIONS";
  List.iter
    (fun (d : Program.declaration) ->
      line (Printf.sprintf "%s: p%d+%d" d.Program.name d.Program.plane d.Program.base))
    st.State.program.Program.declarations;
  line "";
  line "CONTROL";
  List.iter line
    (Nsc_microcode.Listing.control_to_lines ~indent:0
       (Program.effective_control st.State.program))

let draw_overlays c (st : State.t) =
  let origin = Geometry.origin Layout.drawing_area in
  match st.State.mode with
  | State.Menu_open menu ->
      let at = Geometry.add origin menu.Menu.at in
      let wmax =
        List.fold_left (fun m (i : Menu.item) -> max m (String.length i.Menu.label)) 8
          menu.Menu.items
      in
      let r = Geometry.rect at.Geometry.x at.Geometry.y (wmax + 6) (List.length menu.Menu.items + 2) in
      (* clear the menu area *)
      for y = r.Geometry.oy to r.Geometry.oy + r.Geometry.h do
        hline c r.Geometry.ox (r.Geometry.ox + r.Geometry.w) y ' '
      done;
      box c r;
      text c (r.Geometry.ox + 1) r.Geometry.oy menu.Menu.title;
      List.iteri
        (fun i (it : Menu.item) ->
          text c (r.Geometry.ox + 1)
            (r.Geometry.oy + 1 + i)
            (Printf.sprintf "%2d %s" i it.Menu.label))
        menu.Menu.items
  | State.Form_open f ->
      let r = Geometry.rect 40 8 44 (List.length f.Menu.fields + 3) in
      for y = r.Geometry.oy to r.Geometry.oy + r.Geometry.h do
        hline c r.Geometry.ox (r.Geometry.ox + r.Geometry.w) y ' '
      done;
      box c r;
      text c (r.Geometry.ox + 1) r.Geometry.oy (" " ^ f.Menu.form_title ^ " ");
      List.iteri
        (fun i (name, value) ->
          text c (r.Geometry.ox + 2)
            (r.Geometry.oy + 1 + i)
            (Printf.sprintf "%-10s: %s_" name value))
        f.Menu.fields;
      text c (r.Geometry.ox + 2)
        (r.Geometry.oy + 1 + List.length f.Menu.fields)
        "[submit]  [cancel]"
  | State.Placing { request; at } ->
      let at = Geometry.add origin at in
      let label =
        match request with
        | State.Place_als (k, _) -> Als.kind_to_string k
        | State.Place_memory pl_ -> Printf.sprintf "mem%d" pl_
        | State.Place_cache ca -> Printf.sprintf "cache%d" ca
        | State.Place_shift_delay _ -> "sd"
      in
      box c (Geometry.rect at.Geometry.x at.Geometry.y (Icon.fu_box_w - 1) 3);
      text c (at.Geometry.x + 1) (at.Geometry.y + 1) label
  | State.Rubber { from_icon; from_pad; at } -> (
      let p = Knowledge.params st.State.kb in
      let pl = State.current_pipeline st in
      match
        Option.bind (Pipeline.find_icon pl from_icon) (fun ic ->
            Icon.pad_position p ic from_pad)
      with
      | Some from_pos ->
          draw_wire c (Geometry.add origin from_pos) (Geometry.add origin at)
      | None -> ())
  | State.Moving _ | State.Idle -> ()

(** Render the full display window of the editor. *)
let render (st : State.t) : string =
  let p = Knowledge.params st.State.kb in
  let c = make_canvas Layout.window_w Layout.window_h in
  (* message strip *)
  box c Layout.message_strip;
  text c 2 0
    (Printf.sprintf " NSC visual environment | pipeline %d of %d | %s " st.State.current
       (Program.pipeline_count st.State.program)
       (State.latest_message st));
  draw_left_region c st;
  draw_drawing_area p c (State.current_pipeline st);
  draw_panel c;
  draw_overlays c st;
  (* status line: diagnostics summary *)
  let errors = List.length (Nsc_checker.Diagnostic.errors st.State.diagnostics) in
  text c 2 (Layout.window_h - 1)
    (Printf.sprintf "vlen %d | %d finding(s), %d error(s)%s"
       (State.current_pipeline st).Pipeline.vector_length
       (List.length st.State.diagnostics)
       errors
       (if st.State.dirty then " | modified" else ""));
  to_string c

(** Render just a pipeline diagram (no window chrome) — used by the
    debugger's annotated frames and the [render] CLI command.  [values]
    annotates engaged units with the data flowing through them (the
    debugging extension of Section 6: "each new instruction would display
    the corresponding pipeline diagram, annotated to show data values
    flowing through the pipeline"). *)
let render_pipeline ?(values : (Resource.fu_id * float) list = []) (p : Params.t)
    (pl : Pipeline.t) : string =
  let c = make_canvas Layout.window_w Layout.window_h in
  draw_drawing_area p c pl;
  let origin = Geometry.origin Layout.drawing_area in
  List.iter
    (fun (ic : Icon.t) ->
      match ic.Icon.kind with
      | Icon.Als_icon { als; _ } ->
          List.iter
            (fun slot ->
              match List.assoc_opt { Resource.als; slot } values with
              | Some v ->
                  let at =
                    Geometry.add (Geometry.add origin ic.Icon.pos)
                      (Geometry.point Icon.fu_box_w (Icon.slot_row slot))
                  in
                  text c at.Geometry.x at.Geometry.y (Printf.sprintf "=%.6g" v)
              | None -> ())
            (Icon.active_slots p ic)
      | Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Shift_delay_icon _ -> ())
    pl.Pipeline.icons;
  to_string c
