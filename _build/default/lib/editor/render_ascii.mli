(** ASCII rendering of the display window.

    Regenerates the paper's screen figures as text: the message strip, the
    left control-flow/declarations region, the central drawing space with
    icons, pads and wires, and the control panel (Figure 5).  Double-box
    functional units (integer/logical circuitry) are drawn with ['#']
    borders, min/max units carry an [m] mark, matching the icon vocabulary
    of Figure 4. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type canvas = { w : int; h : int; cells : Bytes.t; }
val make_canvas : int -> int -> canvas
val put : canvas -> int -> int -> char -> unit
val get : canvas -> int -> int -> char
val text : canvas -> int -> int -> string -> unit
val hline : canvas -> int -> int -> int -> char -> unit
val vline : canvas -> int -> int -> int -> char -> unit
val box : canvas -> Nsc_diagram.Geometry.rect -> unit
val to_string : canvas -> string
val draw_icon :
  Nsc_arch.Params.t ->
  canvas -> origin:Nsc_diagram.Geometry.point -> Nsc_diagram.Icon.t -> unit
val draw_wire :
  canvas -> Nsc_diagram.Geometry.point -> Nsc_diagram.Geometry.point -> unit
val draw_drawing_area :
  Nsc_arch.Params.t -> canvas -> Nsc_diagram.Pipeline.t -> unit
val draw_panel : canvas -> unit
val draw_left_region : canvas -> State.t -> unit
val draw_overlays : canvas -> State.t -> unit
val render : State.t -> string
val render_pipeline :
  ?values:(Nsc_arch.Resource.fu_id * float) list ->
  Nsc_arch.Params.t -> Nsc_diagram.Pipeline.t -> string
