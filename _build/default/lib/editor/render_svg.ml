(** SVG rendering of pipeline diagrams — publication-quality counterparts
    of the ASCII frames, scaled from the same character-cell geometry. *)

open Nsc_arch
open Nsc_diagram

let cell_w = 9
let cell_h = 18

let sx x = x * cell_w
let sy y = y * cell_h

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rect buf ~x ~y ~w ~h ~style =
  Buffer.add_string buf
    (Printf.sprintf "<rect x='%d' y='%d' width='%d' height='%d' style='%s'/>\n" x y w h
       style)

let line buf ~x1 ~y1 ~x2 ~y2 ~style =
  Buffer.add_string buf
    (Printf.sprintf "<line x1='%d' y1='%d' x2='%d' y2='%d' style='%s'/>\n" x1 y1 x2 y2
       style)

let text buf ~x ~y ?(style = "font:12px monospace;fill:#222") s =
  Buffer.add_string buf
    (Printf.sprintf "<text x='%d' y='%d' style='%s'>%s</text>\n" x y style (esc s))

let circle buf ~x ~y ~r ~style =
  Buffer.add_string buf
    (Printf.sprintf "<circle cx='%d' cy='%d' r='%d' style='%s'/>\n" x y r style)

let unit_style ~double =
  if double then "fill:#fff;stroke:#222;stroke-width:3" else "fill:#fff;stroke:#222;stroke-width:1.5"

let draw_icon (p : Params.t) buf (ic : Icon.t) =
  let ox = ic.Icon.pos.Geometry.x and oy = ic.Icon.pos.Geometry.y in
  (match ic.Icon.kind with
  | Icon.Als_icon { als; bypass } ->
      let size = Resource.als_size p als in
      let actives = Als.active_slots ~size bypass in
      List.iter
        (fun slot ->
          let fu = { Resource.als; slot } in
          let row = Icon.slot_row slot in
          let double = Resource.fu_has_capability p fu Capability.Int_logical in
          let active = List.mem slot actives in
          rect buf ~x:(sx (ox + 1)) ~y:(sy (oy + row - 1)) ~w:(sx (Icon.fu_box_w - 2))
            ~h:(sy Icon.fu_box_h)
            ~style:
              (if active then unit_style ~double
               else "fill:#eee;stroke:#999;stroke-dasharray:4");
          let cfg = ic.Icon.configs.(slot) in
          let label =
            match cfg.Fu_config.op with
            | Some op -> Opcode.mnemonic op
            | None ->
                if Resource.fu_has_capability p fu Capability.Min_max then "(m)" else ""
          in
          if active then
            text buf ~x:(sx (ox + 2)) ~y:(sy (oy + row) + 14) label;
          (* internal chain arrow *)
          if active && slot < size - 1 && List.mem (slot + 1) actives then
            line buf
              ~x1:(sx (ox + (Icon.fu_box_w / 2)))
              ~y1:(sy (oy + row - 1) + sy Icon.fu_box_h)
              ~x2:(sx (ox + (Icon.fu_box_w / 2)))
              ~y2:(sy (oy + Icon.slot_row (slot + 1) - 1))
              ~style:"stroke:#555;stroke-width:2")
        (List.init size (fun s -> s))
  | Icon.Memory_icon _ | Icon.Cache_icon _ | Icon.Shift_delay_icon _ ->
      let w, h = Icon.size p ic in
      rect buf ~x:(sx ox) ~y:(sy oy) ~w:(sx w) ~h:(sy h)
        ~style:"fill:#f5f5ff;stroke:#225;stroke-width:1.5");
  text buf ~x:(sx ox) ~y:(sy oy - 4) ~style:"font:bold 12px monospace;fill:#000"
    (Icon.title ic);
  List.iter
    (fun (_, rel) ->
      circle buf
        ~x:(sx (ox + rel.Geometry.x))
        ~y:(sy (oy + rel.Geometry.y) + (cell_h / 2))
        ~r:4 ~style:"fill:#000")
    (Icon.pads p ic)

let draw_wire buf (a : Geometry.point) (b : Geometry.point) =
  let ax = sx a.Geometry.x and ay = sy a.Geometry.y + (cell_h / 2) in
  let bx = sx b.Geometry.x and by_ = sy b.Geometry.y + (cell_h / 2) in
  let midy = (ay + by_) / 2 in
  let style = "stroke:#06c;stroke-width:2;fill:none" in
  Buffer.add_string buf
    (Printf.sprintf "<polyline points='%d,%d %d,%d %d,%d %d,%d' style='%s'/>\n" ax ay ax
       midy bx midy bx by_ style)

(** Render a pipeline diagram to a standalone SVG document. *)
let render_pipeline (p : Params.t) (pl : Pipeline.t) : string =
  let buf = Buffer.create 8192 in
  let w = sx (Layout.drawing_area.Geometry.w + 4) in
  let h = sy (Layout.drawing_area.Geometry.h + 4) in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d' viewBox='0 0 %d \
        %d'>\n<rect width='%d' height='%d' fill='#fff'/>\n"
       w h w h w h);
  text buf ~x:8 ~y:16 ~style:"font:bold 14px monospace;fill:#000"
    (Printf.sprintf "instruction %d: %s (vlen %d)" pl.Pipeline.index pl.Pipeline.label
       pl.Pipeline.vector_length);
  List.iter (fun ic -> draw_icon p buf ic) pl.Pipeline.icons;
  let pad_abs icon pad =
    Option.bind (Pipeline.find_icon pl icon) (fun ic -> Icon.pad_position p ic pad)
  in
  List.iter
    (fun (conn : Connection.t) ->
      let label_at (pt : Geometry.point) s ~above =
        text buf ~x:(sx pt.Geometry.x - 20)
          ~y:(sy pt.Geometry.y + if above then -8 else cell_h + 10)
          ~style:"font:11px monospace;fill:#063" s
      in
      match (conn.Connection.src, conn.Connection.dst) with
      | Connection.Pad { icon = i1; pad = p1 }, Connection.Pad { icon = i2; pad = p2 } -> (
          match (pad_abs i1 p1, pad_abs i2 p2) with
          | Some a, Some b -> draw_wire buf a b
          | _ -> ())
      | Connection.Direct_memory m, Connection.Pad { icon; pad } -> (
          match pad_abs icon pad with
          | Some b -> label_at b (Printf.sprintf "mem%d" m) ~above:true
          | None -> ())
      | Connection.Direct_cache ca, Connection.Pad { icon; pad } -> (
          match pad_abs icon pad with
          | Some b -> label_at b (Printf.sprintf "cache%d" ca) ~above:true
          | None -> ())
      | Connection.Pad { icon; pad }, Connection.Direct_memory m -> (
          match pad_abs icon pad with
          | Some a -> label_at a (Printf.sprintf "mem%d" m) ~above:false
          | None -> ())
      | Connection.Pad { icon; pad }, Connection.Direct_cache ca -> (
          match pad_abs icon pad with
          | Some a -> label_at a (Printf.sprintf "cache%d" ca) ~above:false
          | None -> ())
      | (Connection.Direct_memory _ | Connection.Direct_cache _), _ -> ())
    pl.Pipeline.connections;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

(** Render the machine datapath overview (the paper's Figure 1). *)
let render_datapath (p : Params.t) : string =
  let buf = Buffer.create 4096 in
  let w = 980 and h = 560 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d'>\n<rect width='%d' \
        height='%d' fill='#fff'/>\n"
       w h w h);
  text buf ~x:20 ~y:28 ~style:"font:bold 16px monospace;fill:#000"
    "Navier-Stokes Computer: node datapath";
  (* router *)
  rect buf ~x:20 ~y:50 ~w:180 ~h:50 ~style:"fill:#fef;stroke:#000";
  text buf ~x:30 ~y:80 "Hyperspace router";
  (* caches *)
  rect buf ~x:260 ~y:50 ~w:300 ~h:50 ~style:"fill:#eef;stroke:#000";
  text buf ~x:270 ~y:80 (Printf.sprintf "%d double-buffered caches" p.n_caches);
  (* memory planes *)
  rect buf ~x:620 ~y:50 ~w:330 ~h:50 ~style:"fill:#eef;stroke:#000";
  text buf ~x:630 ~y:80
    (Printf.sprintf "%d memory planes x %d MB" p.n_memory_planes
       (p.memory_plane_words * 8 / (1024 * 1024)));
  (* switch *)
  rect buf ~x:260 ~y:180 ~w:690 ~h:60 ~style:"fill:#ffe;stroke:#000";
  text buf ~x:270 ~y:215 "programmable switch network (FLONET)";
  (* ALS row *)
  let x = ref 40 in
  let als_box kind count =
    rect buf ~x:!x ~y:320 ~w:190 ~h:70 ~style:"fill:#efe;stroke:#000";
    text buf ~x:(!x + 10) ~y:350 (Printf.sprintf "%d %ss" count (Als.kind_to_string kind));
    text buf ~x:(!x + 10) ~y:370
      (Printf.sprintf "(%d units each)" (Als.kind_size kind));
    line buf ~x1:(!x + 95) ~y1:320 ~x2:(!x + 95) ~y2:240 ~style:"stroke:#000";
    x := !x + 230
  in
  als_box Als.Singlet p.n_singlets;
  als_box Als.Doublet p.n_doublets;
  als_box Als.Triplet p.n_triplets;
  (* shift/delay *)
  rect buf ~x:!x ~y:320 ~w:190 ~h:70 ~style:"fill:#efe;stroke:#000";
  text buf ~x:(!x + 10) ~y:350 (Printf.sprintf "%d shift/delay" p.n_shift_delay);
  text buf ~x:(!x + 10) ~y:370 "units";
  line buf ~x1:(!x + 95) ~y1:320 ~x2:(!x + 95) ~y2:240 ~style:"stroke:#000";
  (* vertical joins *)
  line buf ~x1:410 ~y1:100 ~x2:410 ~y2:180 ~style:"stroke:#000";
  line buf ~x1:780 ~y1:100 ~x2:780 ~y2:180 ~style:"stroke:#000";
  line buf ~x1:110 ~y1:100 ~x2:110 ~y2:460 ~style:"stroke:#000";
  text buf ~x:20 ~y:480
    (Printf.sprintf "%d functional units, peak %.0f MFLOPS/node"
       (Params.n_functional_units p) (Params.peak_mflops p));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
