(** SVG rendering of pipeline diagrams — publication-quality counterparts
    of the ASCII frames, scaled from the same character-cell geometry. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val cell_w : int
val cell_h : int
val sx : int -> int
val sy : int -> int
val esc : string -> string
val rect :
  Buffer.t -> x:int -> y:int -> w:int -> h:int -> style:string -> unit
val line :
  Buffer.t -> x1:int -> y1:int -> x2:int -> y2:int -> style:string -> unit
val text : Buffer.t -> x:int -> y:int -> ?style:string -> string -> unit
val circle : Buffer.t -> x:int -> y:int -> r:int -> style:string -> unit
val unit_style : double:bool -> string
val draw_icon : Nsc_arch.Params.t -> Buffer.t -> Nsc_diagram.Icon.t -> unit
val draw_wire :
  Buffer.t ->
  Nsc_diagram.Geometry.point -> Nsc_diagram.Geometry.point -> unit
val render_pipeline : Nsc_arch.Params.t -> Nsc_diagram.Pipeline.t -> string
val render_datapath : Nsc_arch.Params.t -> string
