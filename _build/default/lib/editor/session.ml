(** Session recording and replay.

    A session script is a text file of editor events (one per line, in the
    {!Event} token syntax), comments, and [snapshot <name>] directives that
    capture an ASCII render of the window.  Replay is deterministic, which
    is how the figure-generation targets and the editor regression tests
    reproduce interactive sessions without a display. *)

type frame = { name : string; render : string }

type replay = {
  final : State.t;
  frames : frame list;        (** in script order *)
  applied : int;              (** events applied *)
  errors : (int * string) list;  (** line number, problem *)
}

(** Replay a script over an initial state. *)
let replay (st : State.t) (script : string) : replay =
  let lines = String.split_on_char '\n' script in
  let st = ref st in
  let frames = ref [] and applied = ref 0 and errors = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let tokens =
        String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> ()
      | t :: _ when String.length t > 0 && t.[0] = '#' -> ()
      | [ "snapshot"; name ] ->
          frames := { name; render = Render_ascii.render !st } :: !frames
      | tokens -> (
          match Event.of_tokens tokens with
          | Some ev ->
              st := Editor.handle !st ev;
              incr applied
          | None -> errors := (lineno, "unparseable event: " ^ line) :: !errors))
    lines;
  {
    final = !st;
    frames = List.rev !frames;
    applied = !applied;
    errors = List.rev !errors;
  }

(** A recorder accumulating the events fed through it, for saving a session
    as a replayable script. *)
type recorder = { mutable events : Event.t list }

let recorder () = { events = [] }

let record (r : recorder) (st : State.t) (ev : Event.t) : State.t =
  r.events <- ev :: r.events;
  Editor.handle st ev

let script_of (r : recorder) : string =
  List.rev_map Event.to_tokens r.events |> String.concat "\n"
