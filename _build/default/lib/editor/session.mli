(** Session recording and replay.

    A session script is a text file of editor events (one per line, in the
    {!Event} token syntax), comments, and [snapshot <name>] directives that
    capture an ASCII render of the window.  Replay is deterministic, which
    is how the figure-generation targets and the editor regression tests
    reproduce interactive sessions without a display. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type frame = { name : string; render : string; }
type replay = {
  final : State.t;
  frames : frame list;
  applied : int;
  errors : (int * string) list;
}
(** Replay a script (events, comments, [snapshot NAME] directives) over
    an initial state, deterministically. *)
val replay : State.t -> string -> replay
type recorder = { mutable events : Event.t list; }
(** Apply an event while logging it for {!script_of}. *)
val recorder : unit -> recorder
val record :
  recorder -> State.t -> Event.t -> State.t
val script_of : recorder -> string
