(** Editor state: the program being edited plus the interaction mode.

    All mutation goes through {!Editor.handle}; the state itself is a pure
    value, which is what makes session replay and property testing of the
    editor practical. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

(** Icon-placement requests, armed by the control-panel icon buttons; the
    concrete hardware resource is bound when the icon is dropped. *)
type place_request =
  | Place_als of Als.kind * Als.bypass
  | Place_memory of Resource.plane_id
  | Place_cache of Resource.cache_id
  | Place_shift_delay of Shift_delay.mode
[@@deriving show { with_path = false }, eq]

type mode =
  | Idle
  | Placing of { request : place_request; at : Geometry.point }
      (** dragging an icon outline from the control panel (Figure 6) *)
  | Moving of { icon : Icon.id; grab : Geometry.point }
      (** repositioning a placed icon; [grab] is the in-icon grab offset *)
  | Rubber of { from_icon : Icon.id; from_pad : Icon.pad; at : Geometry.point }
      (** rubber-band wiring (Figure 8) *)
  | Menu_open of Menu.t
  | Form_open of Menu.form

type t = {
  kb : Knowledge.t;
  program : Program.t;
  current : int;  (** pipeline (instruction) number being edited *)
  mode : mode;
  selected : Icon.id option;
  messages : string list;  (** newest first; head feeds the message strip *)
  diagnostics : Diagnostic.t list;  (** current pipeline, refreshed on change *)
  dirty : bool;
}

let create ?(name = "untitled") (kb : Knowledge.t) : t =
  let program, current = Program.append_pipeline (Program.empty name) in
  {
    kb;
    program;
    current;
    mode = Idle;
    selected = None;
    messages = [];
    diagnostics = [];
    dirty = false;
  }

(** Wrap an existing program for editing. *)
let of_program (kb : Knowledge.t) (program : Program.t) : t =
  let program, current =
    if Program.pipeline_count program = 0 then Program.append_pipeline program
    else (program, 1)
  in
  {
    kb;
    program;
    current;
    mode = Idle;
    selected = None;
    messages = [];
    diagnostics = [];
    dirty = false;
  }

(** The pipeline under edit. *)
let current_pipeline (st : t) : Pipeline.t =
  match Program.find_pipeline st.program st.current with
  | Some pl -> pl
  | None -> Pipeline.empty st.current (* unreachable under the editor's invariants *)

let message st fmt =
  Printf.ksprintf (fun m -> { st with messages = m :: st.messages }) fmt

let latest_message st = match st.messages with [] -> "" | m :: _ -> m

(* Refresh the interactive diagnostics of the current pipeline. *)
let refresh (st : t) : t =
  let lookup = Program.variable_base st.program in
  let diagnostics =
    Checker.check_pipeline st.kb ~lookup ~level:`Interactive (current_pipeline st)
  in
  { st with diagnostics }

(** Store a modified current pipeline and re-check it. *)
let put_pipeline (st : t) (pl : Pipeline.t) : t =
  refresh { st with program = Program.update_pipeline st.program pl; dirty = true }

(** Move the edit cursor to pipeline [n] (clamped). *)
let goto (st : t) n : t =
  let n = max 1 (min n (Program.pipeline_count st.program)) in
  refresh { st with current = n; selected = None; mode = Idle }

let error_count st = List.length (Diagnostic.errors st.diagnostics)
