(** Editor state: the program being edited plus the interaction mode.

    All mutation goes through {!Editor.handle}; the state itself is a pure
    value, which is what makes session replay and property testing of the
    editor practical. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type place_request =
    Place_als of Nsc_arch.Als.kind * Nsc_arch.Als.bypass
  | Place_memory of Nsc_arch.Resource.plane_id
  | Place_cache of Nsc_arch.Resource.cache_id
  | Place_shift_delay of Nsc_arch.Shift_delay.mode
val pp_place_request :
  Format.formatter ->
  place_request -> unit
val show_place_request : place_request -> string
val equal_place_request :
  place_request -> place_request -> bool
type mode =
    Idle
  | Placing of { request : place_request; at : Nsc_diagram.Geometry.point; }
  | Moving of { icon : Nsc_diagram.Icon.id;
      grab : Nsc_diagram.Geometry.point;
    }
  | Rubber of { from_icon : Nsc_diagram.Icon.id;
      from_pad : Nsc_diagram.Icon.pad; at : Nsc_diagram.Geometry.point;
    }
  | Menu_open of Menu.t
  | Form_open of Menu.form
type t = {
  kb : Nsc_arch.Knowledge.t;
  program : Nsc_diagram.Program.t;
  current : int;
  mode : mode;
  selected : Nsc_diagram.Icon.id option;
  messages : string list;
  diagnostics : Nsc_checker.Diagnostic.t list;
  dirty : bool;
}
(** A fresh editing session holding one empty pipeline. *)
val create : ?name:string -> Nsc_arch.Knowledge.t -> t
(** Wrap an existing program for editing. *)
val of_program : Nsc_arch.Knowledge.t -> Nsc_diagram.Program.t -> t
(** The pipeline under edit. *)
val current_pipeline : t -> Nsc_diagram.Pipeline.t
val message : t -> ('a, unit, string, t) format4 -> 'a
val latest_message : t -> string
val refresh : t -> t
(** Store a modified current pipeline and re-run the interactive
    checker. *)
val put_pipeline : t -> Nsc_diagram.Pipeline.t -> t
(** Move the edit cursor to a pipeline (clamped). *)
val goto : t -> int -> t
val error_count : t -> int
