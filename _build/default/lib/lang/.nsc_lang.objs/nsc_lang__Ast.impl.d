lib/lang/ast.pp.ml: List Nsc_arch Ppx_deriving_runtime
