lib/lang/ast.pp.mli: Format Nsc_arch
