lib/lang/compile.pp.ml: Ast Balance Checker Diagnostic Hashtbl Interrupt Knowledge List Lower Nsc_arch Nsc_checker Nsc_diagram Option Params Parser Printf Program Resource String
