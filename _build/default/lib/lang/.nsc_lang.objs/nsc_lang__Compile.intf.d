lib/lang/compile.pp.mli: Ast Lower Nsc_arch Nsc_checker Nsc_diagram String
