lib/lang/dag.pp.ml: Array Ast Float Hashtbl List Nsc_arch Opcode Ppx_deriving_runtime
