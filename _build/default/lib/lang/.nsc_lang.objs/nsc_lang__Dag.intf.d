lib/lang/dag.pp.mli: Ast Format Hashtbl Nsc_arch
