lib/lang/lower.pp.ml: Als Ast Build Dag Fu_config Geometry Hashtbl Icon List Nsc_arch Nsc_diagram Opcode Params Pipeline Printf Resource
