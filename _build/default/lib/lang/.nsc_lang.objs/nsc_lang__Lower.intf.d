lib/lang/lower.pp.mli: Ast Nsc_arch Nsc_diagram
