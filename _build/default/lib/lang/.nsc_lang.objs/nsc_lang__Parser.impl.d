lib/lang/parser.pp.ml: Ast Lexer List Printf
