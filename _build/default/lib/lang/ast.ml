(** Abstract syntax of the textual pipeline language.

    The paper judges a FORTRAN compiler for the NSC a three-year project of
    doubtful payoff; this small vector language is the experiment behind
    that judgement.  One vector assignment compiles to one pipeline
    instruction; shifted references ([u[-1]]) become strided DMA streams;
    [maxreduce] is the register-file feedback reduction used for residual
    convergence checks; [repeat]/[while] map onto the sequencer. *)

type unop = Neg | Abs [@@deriving show { with_path = false }, eq]

type binop = Add | Sub | Mul | Div | Min | Max
[@@deriving show { with_path = false }, eq]

type expr =
  | Const of float
  | Ref of { name : string; shift : int }  (** array element, shifted *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Maxreduce of expr
      (** running maximum over the vector — the residual-check reduction *)
[@@deriving show { with_path = false }, eq]

type relation = Gt | Ge | Lt | Le [@@deriving show { with_path = false }, eq]

type stmt =
  | Assign of { target : string; expr : expr }
  | Scalar_assign of { scalar : string; expr : expr }
      (** capture a reduction into a named scalar (no memory write) *)
  | Repeat of { count : int; body : stmt list }
  | While of {
      scalar : string;
      rel : relation;
      threshold : float;
      max_iters : int;
      body : stmt list;
    }
[@@deriving show { with_path = false }, eq]

type decl =
  | Array of { name : string; length : int; plane : int }
  | Scalar of string
[@@deriving show { with_path = false }, eq]

type program = { decls : decl list; body : stmt list }
[@@deriving show { with_path = false }, eq]

let unop_opcode = function
  | Neg -> Nsc_arch.Opcode.Fneg
  | Abs -> Nsc_arch.Opcode.Fabs

let binop_opcode = function
  | Add -> Nsc_arch.Opcode.Fadd
  | Sub -> Nsc_arch.Opcode.Fsub
  | Mul -> Nsc_arch.Opcode.Fmul
  | Div -> Nsc_arch.Opcode.Fdiv
  | Min -> Nsc_arch.Opcode.Min
  | Max -> Nsc_arch.Opcode.Max

let relation_to_arch = function
  | Gt -> Nsc_arch.Interrupt.Rgt
  | Ge -> Nsc_arch.Interrupt.Rge
  | Lt -> Nsc_arch.Interrupt.Rlt
  | Le -> Nsc_arch.Interrupt.Rle

(** Largest |shift| appearing anywhere — determines array padding. *)
let max_shift (p : program) =
  let rec expr m = function
    | Const _ -> m
    | Ref { shift; _ } -> max m (abs shift)
    | Unop (_, e) | Maxreduce e -> expr m e
    | Binop (_, e1, e2) -> expr (expr m e1) e2
  in
  let rec stmt m = function
    | Assign { expr = e; _ } | Scalar_assign { expr = e; _ } -> expr m e
    | Repeat { body; _ } | While { body; _ } -> List.fold_left stmt m body
  in
  List.fold_left stmt 1 p.body
