(** Abstract syntax of the textual pipeline language.

    The paper judges a FORTRAN compiler for the NSC a three-year project of
    doubtful payoff; this small vector language is the experiment behind
    that judgement.  One vector assignment compiles to one pipeline
    instruction; shifted references ([u[-1]]) become strided DMA streams;
    [maxreduce] is the register-file feedback reduction used for residual
    convergence checks; [repeat]/[while] map onto the sequencer. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type unop = Neg | Abs
val pp_unop :
  Format.formatter -> unop -> unit
val show_unop : unop -> string
val equal_unop : unop -> unop -> bool
type binop = Add | Sub | Mul | Div | Min | Max
val pp_binop :
  Format.formatter -> binop -> unit
val show_binop : binop -> string
val equal_binop : binop -> binop -> bool
type expr =
    Const of float
  | Ref of { name : string; shift : int; }
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Maxreduce of expr
val pp_expr :
  Format.formatter -> expr -> unit
val show_expr : expr -> string
val equal_expr : expr -> expr -> bool
type relation = Gt | Ge | Lt | Le
val pp_relation :
  Format.formatter ->
  relation -> unit
val show_relation : relation -> string
val equal_relation : relation -> relation -> bool
type stmt =
    Assign of { target : string; expr : expr; }
  | Scalar_assign of { scalar : string; expr : expr; }
  | Repeat of { count : int; body : stmt list; }
  | While of { scalar : string; rel : relation; threshold : float;
      max_iters : int; body : stmt list;
    }
val pp_stmt :
  Format.formatter -> stmt -> unit
val show_stmt : stmt -> string
val equal_stmt : stmt -> stmt -> bool
type decl =
    Array of { name : string; length : int; plane : int; }
  | Scalar of string
val pp_decl :
  Format.formatter -> decl -> unit
val show_decl : decl -> string
val equal_decl : decl -> decl -> bool
type program = { decls : decl list; body : stmt list; }
val pp_program :
  Format.formatter ->
  program -> unit
val show_program : program -> string
val equal_program : program -> program -> bool
val unop_opcode : unop -> Nsc_arch.Opcode.t
val binop_opcode : binop -> Nsc_arch.Opcode.t
val relation_to_arch : relation -> Nsc_arch.Interrupt.relation
val max_shift : program -> int
