(** The compile driver: source text to a checked visual program.

    Arrays are laid out plane by plane in declaration order, each padded by
    the program's largest shift so stencil streams never leave their
    variable; statements lower one-by-one to pipeline diagrams; [repeat]
    and [while] become sequencer control; every generated diagram is
    auto-balanced and the whole program is put through the checker. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

type compiled = {
  program : Program.t;
  captures : (string * Resource.fu_id) list;
      (** scalar name -> unit whose last value realises it *)
  units_per_pipeline : (int * int) list;  (** pipeline index -> units engaged *)
  diagnostics : Diagnostic.t list;
}

type error = { message : string; at_statement : int option }

let err ?at_statement fmt =
  Printf.ksprintf (fun message -> Error { message; at_statement }) fmt

(* Array layout: bases assigned per plane in declaration order. *)
let layout_arrays (p : Params.t) (prog : Ast.program) ~pad :
    ((string * Lower.array_info) list, error) result =
  let next_base = Hashtbl.create 8 in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Ast.Scalar _ :: rest -> go acc rest
    | Ast.Array { name; length; plane } :: rest ->
        if plane < 0 || plane >= p.n_memory_planes then
          err "array '%s' names plane %d; the machine has planes 0..%d" name plane
            (p.n_memory_planes - 1)
        else if length <= 0 then err "array '%s' must have positive length" name
        else if List.mem_assoc name acc then err "array '%s' declared twice" name
        else begin
          let base = Option.value ~default:0 (Hashtbl.find_opt next_base plane) in
          let padded = length + (2 * pad) in
          if base + padded > p.memory_plane_words then
            err "plane %d overflows at array '%s'" plane name
          else begin
            Hashtbl.replace next_base plane (base + padded);
            go ((name, { Lower.plane; length; pad }) :: acc) rest
          end
        end
  in
  (* bases are implicit in declaration order; recover them for Program
     declarations below by replaying the same accumulation *)
  go [] prog.Ast.decls

let scalar_names (prog : Ast.program) =
  List.filter_map
    (function Ast.Scalar s -> Some s | Ast.Array _ -> None)
    prog.Ast.decls

(* Arrays referenced by an expression. *)
let rec refs_of = function
  | Ast.Const _ -> []
  | Ast.Ref { name; _ } -> [ name ]
  | Ast.Unop (_, e) | Ast.Maxreduce e -> refs_of e
  | Ast.Binop (_, e1, e2) -> refs_of e1 @ refs_of e2

(** Compile source text against knowledge base [kb]. *)
let compile (kb : Knowledge.t) ?(name = "compiled") (src : string) :
    (compiled, error) result =
  match Parser.parse src with
  | Error m -> Error { message = m; at_statement = None }
  | Ok ast -> (
      let p = Knowledge.params kb in
      let pad = Ast.max_shift ast in
      match layout_arrays p ast ~pad with
      | Error e -> Error e
      | Ok arrays -> (
          let env = { Lower.params = p; arrays } in
          let scalars = scalar_names ast in
          (* declare program variables with concrete bases *)
          let prog = Program.empty name in
          let next_base = Hashtbl.create 8 in
          let prog =
            List.fold_left
              (fun prog (nm, (info : Lower.array_info)) ->
                let base = Option.value ~default:0 (Hashtbl.find_opt next_base info.Lower.plane) in
                let padded = info.Lower.length + (2 * info.Lower.pad) in
                Hashtbl.replace next_base info.Lower.plane (base + padded);
                match
                  Program.declare prog
                    { Program.name = nm; plane = info.Lower.plane; base; length = padded }
                with
                | Ok prog -> prog
                | Error e -> failwith e)
              prog arrays
          in
          (* walk statements: produce pipelines + control *)
          let pipelines = ref [] in
          let captures : (string, Resource.fu_id) Hashtbl.t = Hashtbl.create 4 in
          let units = ref [] in
          let next_index = ref 0 in
          let error = ref None in
          let stmt_no = ref 0 in
          let rec walk_stmts stmts : Program.control list =
            List.concat_map
              (fun stmt ->
                if !error <> None then []
                else begin
                  incr stmt_no;
                  match stmt with
                  | Ast.Assign { target; expr } -> (
                      match Lower.array_info env target with
                      | None ->
                          if !error = None then error :=
                            Some
                              { message = Printf.sprintf "undeclared array '%s'" target;
                                at_statement = Some !stmt_no };
                          []
                      | Some info ->
                          if List.mem target (refs_of expr) then begin
                            error :=
                              Some
                                {
                                  message =
                                    Printf.sprintf
                                      "'%s' is both read and written in one statement; \
                                       the concurrent DMA streams would race — write \
                                       to a second array and copy back"
                                      target;
                                  at_statement = Some !stmt_no;
                                };
                            []
                          end
                          else begin
                            (* all referenced arrays must match the target length *)
                            let bad =
                              List.find_opt
                                (fun r ->
                                  match Lower.array_info env r with
                                  | Some i -> i.Lower.length <> info.Lower.length
                                  | None -> false)
                                (refs_of expr)
                            in
                            match bad with
                            | Some r ->
                                error :=
                                  Some
                                    {
                                      message =
                                        Printf.sprintf
                                          "array '%s' has a different length from \
                                           target '%s'; streams of one instruction \
                                           share a vector length"
                                          r target;
                                      at_statement = Some !stmt_no;
                                    };
                                []
                            | None -> (
                                incr next_index;
                                let index = !next_index in
                                match
                                  Lower.lower_expr env ~index
                                    ~label:(Printf.sprintf "%s = ..." target)
                                    ~vlen:info.Lower.length
                                    ~write_to:(Some (target, info)) expr
                                with
                                | Error m ->
                                    if !error = None then error := Some { message = m; at_statement = Some !stmt_no };
                                    []
                                | Ok low ->
                                    pipelines := low.Lower.pipeline :: !pipelines;
                                    units := (index, low.Lower.units_used) :: !units;
                                    [ Program.Exec index ])
                          end)
                  | Ast.Scalar_assign { scalar; expr } ->
                      if not (List.mem scalar scalars) then begin
                        if !error = None then
                          error :=
                            Some
                              { message = Printf.sprintf "undeclared scalar '%s'" scalar;
                                at_statement = Some !stmt_no };
                        []
                      end
                      else begin
                        let vlen =
                          match refs_of expr with
                          | r :: _ -> (
                              match Lower.array_info env r with
                              | Some i -> i.Lower.length
                              | None -> 1)
                          | [] -> 1
                        in
                        incr next_index;
                        let index = !next_index in
                        match
                          Lower.lower_expr env ~index
                            ~label:(Printf.sprintf "%s = maxreduce(...)" scalar)
                            ~vlen ~write_to:None expr
                        with
                        | Error m ->
                            if !error = None then error := Some { message = m; at_statement = Some !stmt_no };
                            []
                        | Ok low ->
                            (match low.Lower.capture with
                            | Some fu -> Hashtbl.replace captures scalar fu
                            | None -> ());
                            pipelines := low.Lower.pipeline :: !pipelines;
                            units := (index, low.Lower.units_used) :: !units;
                            [ Program.Exec index ]
                      end
                  | Ast.Repeat { count; body } ->
                      let body = walk_stmts body in
                      [ Program.Repeat { count; body } ]
                  | Ast.While { scalar; rel; threshold; max_iters; body } -> (
                      let body_ctl = walk_stmts body in
                      match Hashtbl.find_opt captures scalar with
                      | None ->
                          if !error = None then error :=
                            Some
                              {
                                message =
                                  Printf.sprintf
                                    "while-loop on '%s' needs a '%s = maxreduce(...)' \
                                     inside its body"
                                    scalar scalar;
                                at_statement = Some !stmt_no;
                              };
                          []
                      | Some fu ->
                          [
                            Program.While
                              {
                                condition =
                                  {
                                    Interrupt.unit_watched = fu;
                                    relation = Ast.relation_to_arch rel;
                                    threshold;
                                  };
                                max_iterations = max_iters;
                                body = body_ctl;
                              };
                          ])
                end)
              stmts
          in
          let control = walk_stmts ast.Ast.body @ [ Program.Halt ] in
          match !error with
          | Some e -> Error e
          | None ->
              let prog =
                { prog with Program.pipelines = List.rev !pipelines; control }
              in
              let prog = Balance.balance_program kb prog in
              let diagnostics = Checker.check_program kb prog in
              if Diagnostic.has_errors diagnostics then
                Error
                  {
                    message =
                      String.concat "; "
                        (List.map Diagnostic.to_string (Diagnostic.errors diagnostics));
                    at_statement = None;
                  }
              else
                Ok
                  {
                    program = prog;
                    captures = Hashtbl.fold (fun k v acc -> (k, v) :: acc) captures [];
                    units_per_pipeline = List.rev !units;
                    diagnostics;
                  }))

(** Where an array lives in the compiled program: (plane, base of element
    0) — i.e. including the pad.  For loading inputs and reading results
    from a simulated node. *)
let array_location (c : compiled) name : (int * int) option =
  Option.map
    (fun (d : Program.declaration) ->
      (* element 0 sits one pad beyond the variable base; recover the pad
         from the declaration length and the source length *)
      (d.Program.plane, d.Program.base))
    (Program.lookup_variable c.program name)
