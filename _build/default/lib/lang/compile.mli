(** The compile driver: source text to a checked visual program.

    Arrays are laid out plane by plane in declaration order, each padded by
    the program's largest shift so stencil streams never leave their
    variable; statements lower one-by-one to pipeline diagrams; [repeat]
    and [while] become sequencer control; every generated diagram is
    auto-balanced and the whole program is put through the checker. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type compiled = {
  program : Nsc_diagram.Program.t;
  captures : (string * Nsc_arch.Resource.fu_id) list;
  units_per_pipeline : (int * int) list;
  diagnostics : Nsc_checker.Diagnostic.t list;
}
type error = { message : string; at_statement : int option; }
val err :
  ?at_statement:int -> ('a, unit, string, ('b, error) result) format4 -> 'a
val layout_arrays :
  Nsc_arch.Params.t ->
  Ast.program ->
  pad:int -> ((string * Lower.array_info) list, error) result
val scalar_names : Ast.program -> string list
val refs_of : Ast.expr -> string list
(** Compile source text: parse, lay out arrays plane by plane (padded by
    the program's largest shift), lower each statement to a balanced
    pipeline diagram, build the sequencer control, and run the checker.
    [Error] carries the first problem with its statement number. *)
val compile :
  Nsc_arch.Knowledge.t -> ?name:string -> string -> (compiled, error) result
(** Where an array lives in the compiled program: (plane, base of the
    padded variable). *)
val array_location : compiled -> String.t -> (int * int) option
