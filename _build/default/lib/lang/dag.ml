(** Expression DAGs with hash-consing, constant folding and chain
    discovery.

    Mapping "function units onto expression graphs" is one of the compiler
    problems Section 3 calls out; the first step is a DAG with common
    subexpressions shared, then a greedy packing of single-consumer
    sequences into chains of up to three operations — candidates for the
    hardwired ALS internal connections. *)

open Nsc_arch

type node_op =
  | N_const of float
  | N_ref of { name : string; shift : int }
  | N_op of Opcode.t       (** ordinary operation; args in port order *)
  | N_maxreduce            (** running max over the stream (feedback loop) *)
[@@deriving show { with_path = false }, eq]

type node = { id : int; op : node_op; args : int list }

type t = {
  nodes : node array;       (** in topological (construction) order *)
  roots : int list;
  fanout : int array;
}

let node t id = t.nodes.(id)

let is_value_op = function N_const _ | N_ref _ -> false | N_op _ | N_maxreduce -> true

(* Must the operation sit in the tail slot of its ALS (min/max circuitry)? *)
let needs_minmax = function
  | N_op (Opcode.Min | Opcode.Max) | N_maxreduce -> true
  | N_op _ | N_const _ | N_ref _ -> false

(* Operations whose operands may be swapped to enable chaining. *)
let commutative = function
  | N_op (Opcode.Fadd | Opcode.Fmul | Opcode.Min | Opcode.Max) -> true
  | N_op _ | N_const _ | N_ref _ | N_maxreduce -> false

type builder = {
  mutable next : int;
  mutable acc : node list;
  table : (node_op * int list, int) Hashtbl.t;
}

let builder () = { next = 0; acc = []; table = Hashtbl.create 64 }

let intern b op args =
  match Hashtbl.find_opt b.table (op, args) with
  | Some id -> id
  | None ->
      let id = b.next in
      b.next <- id + 1;
      b.acc <- { id; op; args } :: b.acc;
      Hashtbl.replace b.table (op, args) id;
      id

(* Translate an AST expression, folding constants as we go. *)
let rec of_expr b (e : Ast.expr) : int =
  match e with
  | Ast.Const c -> intern b (N_const c) []
  | Ast.Ref { name; shift } -> intern b (N_ref { name; shift }) []
  | Ast.Unop (u, e1) -> (
      let a = of_expr b e1 in
      match List.find_opt (fun n -> n.id = a) b.acc with
      | Some { op = N_const c; _ } ->
          intern b
            (N_const (match u with Ast.Neg -> -.c | Ast.Abs -> Float.abs c))
            []
      | _ -> intern b (N_op (Ast.unop_opcode u)) [ a ])
  | Ast.Binop (op, e1, e2) -> (
      let a = of_expr b e1 and b2 = of_expr b e2 in
      let const_of id =
        match List.find_opt (fun n -> n.id = id) b.acc with
        | Some { op = N_const c; _ } -> Some c
        | _ -> None
      in
      match (const_of a, const_of b2) with
      | Some c1, Some c2 ->
          let v =
            match op with
            | Ast.Add -> c1 +. c2
            | Ast.Sub -> c1 -. c2
            | Ast.Mul -> c1 *. c2
            | Ast.Div -> c1 /. c2
            | Ast.Min -> Float.min c1 c2
            | Ast.Max -> Float.max c1 c2
          in
          intern b (N_const v) []
      | _ -> intern b (N_op (Ast.binop_opcode op)) [ a; b2 ])
  | Ast.Maxreduce e1 ->
      let a = of_expr b e1 in
      intern b N_maxreduce [ a ]

(** Build the DAG of one expression.  Returns the DAG and its root id. *)
let of_ast (e : Ast.expr) : t * int =
  let b = builder () in
  let root = of_expr b e in
  let nodes = Array.of_list (List.rev b.acc) in
  let fanout = Array.make (Array.length nodes) 0 in
  Array.iter (fun n -> List.iter (fun a -> fanout.(a) <- fanout.(a) + 1) n.args) nodes;
  fanout.(root) <- fanout.(root) + 1;
  ({ nodes; roots = [ root ]; fanout }, root)

(** Operation nodes, in topological order. *)
let op_nodes t = Array.to_list t.nodes |> List.filter (fun n -> is_value_op n.op)

(** Chains: single-consumer runs of up to [max_len] operations where each
    link feeds the next link's A operand (swapping commutative operands
    when that enables a link), min/max operations only at the tail.
    Returns chains as node-id lists in execution order. *)
let chains ?(max_len = 3) (t : t) : int list list =
  (* the chain each node currently tails, if any *)
  let tail_of : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let ops = op_nodes t in
  List.iter
    (fun n ->
      (* can we extend the chain tailed by arg [a]? *)
      let extendable a =
        is_value_op (node t a).op
        && t.fanout.(a) = 1
        && (not (needs_minmax (node t a).op))
        && Hashtbl.mem tail_of a
        && List.length (Hashtbl.find tail_of a) < max_len
      in
      let try_args =
        match n.args with
        | [ a ] -> if extendable a then Some (a, n.args) else None
        | [ a; b ] ->
            if extendable a then Some (a, n.args)
            else if commutative n.op && extendable b then Some (b, [ b; a ])
            else None
        | _ -> None
      in
      (match try_args with
      | Some (a, _) ->
          let c = Hashtbl.find tail_of a in
          Hashtbl.remove tail_of a;
          let c' = c @ [ n.id ] in
          Hashtbl.replace tail_of n.id c'
      | None -> Hashtbl.replace tail_of n.id [ n.id ]))
    ops;
  Hashtbl.fold (fun _ c acc -> c :: acc) tail_of []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

(** The argument order of node [n] after chain-driven operand swapping:
    if [n] is chained onto its second operand, the operands swap. *)
let effective_args (_t : t) (chains_ : int list list) (n : node) : int list =
  match n.args with
  | [ a; b ] when commutative n.op ->
      let chained_onto x =
        List.exists
          (fun c ->
            let rec adjacent = function
              | x' :: y :: _ when x' = x && y = n.id -> true
              | _ :: rest -> adjacent rest
              | [] -> false
            in
            adjacent c)
          chains_
      in
      if (not (chained_onto a)) && chained_onto b then [ b; a ] else [ a; b ]
  | args -> args

(** Number of operation nodes (functional units the expression needs). *)
let op_count t = List.length (op_nodes t)
