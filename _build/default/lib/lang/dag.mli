(** Expression DAGs with hash-consing, constant folding and chain
    discovery.

    Mapping "function units onto expression graphs" is one of the compiler
    problems Section 3 calls out; the first step is a DAG with common
    subexpressions shared, then a greedy packing of single-consumer
    sequences into chains of up to three operations — candidates for the
    hardwired ALS internal connections. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type node_op =
    N_const of float
  | N_ref of { name : string; shift : int; }
  | N_op of Nsc_arch.Opcode.t
  | N_maxreduce
val pp_node_op :
  Format.formatter ->
  node_op -> unit
val show_node_op : node_op -> string
val equal_node_op : node_op -> node_op -> bool
type node = { id : int; op : node_op; args : int list; }
type t = { nodes : node array; roots : int list; fanout : int array; }
val node : t -> int -> node
val is_value_op : node_op -> bool
val needs_minmax : node_op -> bool
val commutative : node_op -> bool
type builder = {
  mutable next : int;
  mutable acc : node list;
  table : (node_op * int list, int) Hashtbl.t;
}
val builder : unit -> builder
val intern : builder -> node_op -> int list -> int
val of_expr : builder -> Ast.expr -> int
val of_ast : Ast.expr -> t * int
val op_nodes : t -> node list
val chains : ?max_len:int -> t -> int list list
val effective_args : t -> int list list -> node -> int list
val op_count : t -> int
