(** Tokeniser for the pipeline language. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string     (** array, scalar, plane, repeat, while, max_iters *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQUAL
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | REL of Ast.relation
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EQUAL -> "="
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | REL Ast.Gt -> ">"
  | REL Ast.Ge -> ">="
  | REL Ast.Lt -> "<"
  | REL Ast.Le -> "<="
  | EOF -> "<eof>"

let keywords = [ "array"; "scalar"; "plane"; "repeat"; "while"; "max_iters" ]

exception Lex_error of int * string

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

(** Tokenise [src]; tokens are paired with their line numbers.  Comments
    run from [#] to end of line. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = out := (tok, !line) :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      let seen_dot = ref false and seen_exp = ref false in
      while
        !i < n
        && (is_digit src.[!i]
           || (src.[!i] = '.' && not !seen_dot)
           || ((src.[!i] = 'e' || src.[!i] = 'E') && not !seen_exp)
           || ((src.[!i] = '+' || src.[!i] = '-')
              && !i > start
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        if src.[!i] = '.' then seen_dot := true;
        if src.[!i] = 'e' || src.[!i] = 'E' then seen_exp := true;
        incr i
      done;
      let s = String.sub src start (!i - start) in
      if !seen_dot || !seen_exp then
        match float_of_string_opt s with
        | Some f -> push (FLOAT f)
        | None -> raise (Lex_error (!line, "malformed number " ^ s))
      else
        match int_of_string_opt s with
        | Some v -> push (INT v)
        | None -> raise (Lex_error (!line, "malformed integer " ^ s))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) else push (IDENT s)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ">=" ->
          push (REL Ast.Ge);
          i := !i + 2
      | "<=" ->
          push (REL Ast.Le);
          i := !i + 2
      | _ ->
          (match c with
          | '+' -> push PLUS
          | '-' -> push MINUS
          | '*' -> push STAR
          | '/' -> push SLASH
          | '=' -> push EQUAL
          | '(' -> push LPAREN
          | ')' -> push RPAREN
          | '[' -> push LBRACKET
          | ']' -> push RBRACKET
          | '{' -> push LBRACE
          | '}' -> push RBRACE
          | ',' -> push COMMA
          | '>' -> push (REL Ast.Gt)
          | '<' -> push (REL Ast.Lt)
          | c -> raise (Lex_error (!line, Printf.sprintf "unexpected character '%c'" c)));
          incr i
    end
  done;
  push EOF;
  List.rev !out
