(** Tokeniser for the pipeline language. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type token =
    INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQUAL
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | REL of Ast.relation
  | EOF
val token_to_string : token -> string
val keywords : string list
exception Lex_error of int * string
val is_digit : char -> bool
val is_ident_start : char -> bool
val is_ident : char -> bool
val tokenize : string -> (token * int) list
