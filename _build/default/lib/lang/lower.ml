(** Lowering expression DAGs onto the machine: ALS allocation and diagram
    generation.

    This is the paper's hard compiler problem in miniature: chains must
    respect the hardwired ALS structures; integer and min/max operations
    are only legal in particular slots; every array reference becomes a DMA
    stream on the array's plane, limited by that plane's engines and read
    ports.  Allocation failures surface as compile errors that tell the
    programmer to restructure — exactly the "optimum layout for one
    pipeline may be unworkable for the next" tension Section 3 describes. *)

open Nsc_arch
open Nsc_diagram

(** Where an array lives: resolved by the compile driver. *)
type array_info = { plane : int; length : int; pad : int }

type env = {
  params : Params.t;
  arrays : (string * array_info) list;
}

let array_info env name = List.assoc_opt name env.arrays

(* Mutable allocation state over one pipeline. *)
type alloc = {
  mutable free_singlets : Resource.als_id list;
  mutable free_doublets : Resource.als_id list;
  mutable free_triplets : Resource.als_id list;
  mutable placed : int;  (** icons placed so far, for layout positions *)
}

let fresh_alloc (p : Params.t) =
  {
    free_singlets = Als.ids_of_kind p Als.Singlet;
    free_doublets = Als.ids_of_kind p Als.Doublet;
    free_triplets = Als.ids_of_kind p Als.Triplet;
    placed = 0;
  }

let next_position al =
  let col = al.placed mod 4 and row = al.placed / 4 in
  al.placed <- al.placed + 1;
  Geometry.point (4 + (col * 22)) (2 + (row * 14))

let take_singlet al =
  match al.free_singlets with
  | a :: rest ->
      al.free_singlets <- rest;
      Some a
  | [] -> None

let take_doublet al =
  match al.free_doublets with
  | a :: rest ->
      al.free_doublets <- rest;
      Some a
  | [] -> None

let take_triplet al =
  match al.free_triplets with
  | a :: rest ->
      al.free_triplets <- rest;
      Some a
  | [] -> None

(** A chain's home: the icon, its ALS, its bypass, and the slot of each
    chain element in order. *)
type home = { icon : Icon.id; als : Resource.als_id; bypass : Als.bypass; slots : int list }

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Lower_error m)) fmt

(* Allocate one chain; may split it.  Returns (pipeline, homes of the
   sub-chains in order). *)
let rec alloc_chain env al pl (chain : int list) ~tail_minmax :
    Pipeline.t * (int list * home) list =
  let place pl ~kind ~bypass =
    let pos = next_position al in
    match Pipeline.place_als env.params pl ~kind ~bypass ~pos () with
    | Ok (icon, pl) -> (icon, pl)
    | Error e -> fail "%s" e
  in
  let home_of pl icon slots =
    match Pipeline.icon_kind pl icon with
    | Some (Icon.Als_icon { als; bypass }) -> { icon; als; bypass; slots }
    | _ -> assert false
  in
  let split () =
    match chain with
    | [] | [ _ ] -> fail "expression needs a min/max-capable structure but none is free"
    | first :: rest ->
        let pl, h1 = alloc_chain env al pl [ first ] ~tail_minmax:false in
        let pl, h2 = alloc_chain env al pl rest ~tail_minmax in
        (pl, h1 @ h2)
  in
  match (List.length chain, tail_minmax) with
  | 3, _ -> (
      match take_triplet al with
      | Some _als_id ->
          (* place_als binds the lowest free ALS of the kind; mirror that by
             re-inserting and letting place_als choose *)
          al.free_triplets <- al.free_triplets;
          let icon, pl = place pl ~kind:Als.Triplet ~bypass:Als.No_bypass in
          (pl, [ (chain, home_of pl icon [ 0; 1; 2 ]) ])
      | None -> split ())
  | 2, true -> (
      match take_doublet al with
      | Some _ ->
          let icon, pl = place pl ~kind:Als.Doublet ~bypass:Als.No_bypass in
          (pl, [ (chain, home_of pl icon [ 0; 1 ]) ])
      | None -> split ())
  | 2, false -> (
      match take_doublet al with
      | Some _ ->
          let icon, pl = place pl ~kind:Als.Doublet ~bypass:Als.No_bypass in
          (pl, [ (chain, home_of pl icon [ 0; 1 ]) ])
      | None -> (
          match take_triplet al with
          | Some _ ->
              let icon, pl = place pl ~kind:Als.Triplet ~bypass:Als.No_bypass in
              (pl, [ (chain, home_of pl icon [ 0; 1 ]) ])
          | None -> split ()))
  | 1, true -> (
      match take_doublet al with
      | Some _ ->
          let icon, pl = place pl ~kind:Als.Doublet ~bypass:Als.Keep_tail in
          (pl, [ (chain, home_of pl icon [ 1 ]) ])
      | None ->
          fail "expression needs a min/max-capable structure but no doublet is free")
  | 1, false -> (
      match take_singlet al with
      | Some _ ->
          let icon, pl = place pl ~kind:Als.Singlet ~bypass:Als.No_bypass in
          (pl, [ (chain, home_of pl icon [ 0 ]) ])
      | None -> (
          match take_doublet al with
          | Some _ ->
              let icon, pl = place pl ~kind:Als.Doublet ~bypass:Als.Keep_head in
              (pl, [ (chain, home_of pl icon [ 0 ]) ])
          | None -> (
              match take_triplet al with
              | Some _ ->
                  let icon, pl = place pl ~kind:Als.Triplet ~bypass:Als.No_bypass in
                  (pl, [ (chain, home_of pl icon [ 0 ]) ])
              | None -> fail "the machine has no free structure for this expression")))
  | n, _ -> fail "internal: chain of unexpected length %d" n

(** Result of lowering one statement. *)
type lowered = {
  pipeline : Pipeline.t;
  capture : Resource.fu_id option;
      (** the unit whose last value a scalar assignment captures *)
  units_used : int;
}

(** Lower one vector expression to a pipeline diagram.
    [write_to]: the destination array, or [None] for a scalar capture. *)
let lower_expr (env : env) ~index ~label ~vlen ~(write_to : (string * array_info) option)
    (e : Ast.expr) : (lowered, string) result =
  try
    let dag, root = Dag.of_ast e in
    (match Dag.node dag root with
    | { Dag.op = Dag.N_const _ | Dag.N_ref _; _ } ->
        fail "an assignment must compute something; use a 'pass' expression like x + 0.0"
    | _ -> ());
    let p = env.params in
    let pl = Pipeline.empty ~label index in
    let pl = Pipeline.with_vector_length pl vlen in
    let al = fresh_alloc p in
    let chains = Dag.chains dag in
    (* only chains of operation nodes matter *)
    let op_chains =
      List.filter
        (fun c -> Dag.is_value_op (Dag.node dag (List.hd c)).Dag.op)
        chains
    in
    let pl = ref pl in
    let homes : (int, home * int (* slot *)) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun chain ->
        let tail = List.nth chain (List.length chain - 1) in
        let tail_minmax = Dag.needs_minmax (Dag.node dag tail).Dag.op in
        let pl', sub = alloc_chain env al !pl chain ~tail_minmax in
        pl := pl';
        List.iter
          (fun (nodes, home) ->
            List.iteri
              (fun i nid -> Hashtbl.replace homes nid (home, List.nth home.slots i))
              nodes)
          sub)
      op_chains;
    (* wiring *)
    let fu_of nid =
      let home, slot = Hashtbl.find homes nid in
      ({ Resource.als = home.als; slot }, home.icon)
    in
    let is_chained_pair a v =
      (* does a feed v over the hardwired chain (same home, adjacent slots)? *)
      let ha, sa = Hashtbl.find homes a and hv, sv = Hashtbl.find homes v in
      ha.icon = hv.icon && sv = sa + 1
    in
    List.iter
      (fun (n : Dag.node) ->
        let home, slot = Hashtbl.find homes n.Dag.id in
        let op =
          match n.Dag.op with
          | Dag.N_op op -> op
          | Dag.N_maxreduce -> Opcode.Max
          | Dag.N_const _ | Dag.N_ref _ -> assert false
        in
        let args = Dag.effective_args dag chains n in
        let bind_port (port : Resource.port) arg_id : Fu_config.input_binding =
          match (Dag.node dag arg_id).Dag.op with
          | Dag.N_const c -> Fu_config.From_constant c
          | Dag.N_ref { name; shift } -> (
              match array_info env name with
              | None -> fail "undeclared array '%s'" name
              | Some info ->
                  pl :=
                    Build.mem_to_pad !pl ~plane:info.plane ~var:name
                      ~offset:(info.pad + shift) ~icon:home.icon
                      ~pad:(Icon.In_pad (slot, port)) ();
                  Fu_config.From_switch)
          | Dag.N_op _ | Dag.N_maxreduce ->
              if Resource.equal_port port Resource.A && is_chained_pair arg_id n.Dag.id
              then Fu_config.From_chain
              else begin
                let _, src_icon = fu_of arg_id in
                let _, src_slot = Hashtbl.find homes arg_id in
                pl :=
                  Build.pad_to_pad !pl ~from_icon:src_icon
                    ~from_pad:(Icon.Out_pad src_slot) ~to_icon:home.icon
                    ~to_pad:(Icon.In_pad (slot, port));
                Fu_config.From_switch
              end
        in
        let a, b =
          match (n.Dag.op, args) with
          | Dag.N_maxreduce, [ a ] -> (bind_port Resource.A a, Fu_config.From_feedback 1)
          | _, [ a ] -> (bind_port Resource.A a, Fu_config.Unbound)
          | _, [ a; b ] -> (bind_port Resource.A a, bind_port Resource.B b)
          | _, _ -> fail "internal: malformed node arity"
        in
        pl :=
          Pipeline.set_config !pl ~id:home.icon ~slot
            { Fu_config.op = Some op; a; b; delay_a = 0; delay_b = 0 })
      (Dag.op_nodes dag);
    (* the write stream *)
    let root_fu, root_icon = fu_of root in
    let _, root_slot = Hashtbl.find homes root in
    (match write_to with
    | Some (name, info) ->
        pl :=
          Build.pad_to_mem !pl ~icon:root_icon ~pad:(Icon.Out_pad root_slot)
            ~plane:info.plane ~var:name ~offset:info.pad ()
    | None -> ());
    Ok
      {
        pipeline = !pl;
        capture =
          (match (Dag.node dag root).Dag.op with
          | Dag.N_maxreduce -> Some root_fu
          | _ -> if write_to = None then Some root_fu else None);
        units_used = Dag.op_count dag;
      }
  with Lower_error m -> Error m
