(** Lowering expression DAGs onto the machine: ALS allocation and diagram
    generation.

    This is the paper's hard compiler problem in miniature: chains must
    respect the hardwired ALS structures; integer and min/max operations
    are only legal in particular slots; every array reference becomes a DMA
    stream on the array's plane, limited by that plane's engines and read
    ports.  Allocation failures surface as compile errors that tell the
    programmer to restructure — exactly the "optimum layout for one
    pipeline may be unworkable for the next" tension Section 3 describes. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type array_info = { plane : int; length : int; pad : int; }
type env = {
  params : Nsc_arch.Params.t;
  arrays : (string * array_info) list;
}
val array_info : env -> string -> array_info option
type alloc = {
  mutable free_singlets : Nsc_arch.Resource.als_id list;
  mutable free_doublets : Nsc_arch.Resource.als_id list;
  mutable free_triplets : Nsc_arch.Resource.als_id list;
  mutable placed : int;
}
val fresh_alloc : Nsc_arch.Params.t -> alloc
val next_position : alloc -> Nsc_diagram.Geometry.point
val take_singlet : alloc -> Nsc_arch.Resource.als_id option
val take_doublet : alloc -> Nsc_arch.Resource.als_id option
val take_triplet : alloc -> Nsc_arch.Resource.als_id option
type home = {
  icon : Nsc_diagram.Icon.id;
  als : Nsc_arch.Resource.als_id;
  bypass : Nsc_arch.Als.bypass;
  slots : int list;
}
exception Lower_error of string
val fail : ('a, unit, string, 'b) format4 -> 'a
val alloc_chain :
  env ->
  alloc ->
  Nsc_diagram.Pipeline.t ->
  int list ->
  tail_minmax:bool -> Nsc_diagram.Pipeline.t * (int list * home) list
type lowered = {
  pipeline : Nsc_diagram.Pipeline.t;
  capture : Nsc_arch.Resource.fu_id option;
  units_used : int;
}
val lower_expr :
  env ->
  index:int ->
  label:string ->
  vlen:int ->
  write_to:(string * array_info) option ->
  Ast.expr -> (lowered, string) result
