(** Recursive-descent parser for the pipeline language.

    Grammar:
    {v
    program  := decl* stmt*
    decl     := "array" IDENT "[" INT "]" "plane" INT
              | "scalar" IDENT
    stmt     := IDENT "=" expr
              | "repeat" INT "{" stmt* "}"
              | "while" IDENT rel NUMBER "max_iters" INT "{" stmt* "}"
    expr     := term (("+" | "-") term)*
    term     := factor (("*" | "/") factor)*
    factor   := NUMBER | "-" factor | "(" expr ")"
              | IDENT ("[" ("+"|"-") INT "]")?
              | ("abs"|"maxreduce") "(" expr ")"
              | ("min"|"max") "(" expr "," expr ")"
    v} *)

exception Parse_error of int * string

type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t
let line st = snd (peek st)
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (line st, m))) fmt

let expect st tok what =
  let got, _ = peek st in
  if got = tok then advance st
  else fail st "expected %s but found '%s'" what (Lexer.token_to_string got)

let expect_int st what =
  match peek st with
  | Lexer.INT n, _ ->
      advance st;
      n
  | t, _ -> fail st "expected %s but found '%s'" what (Lexer.token_to_string t)

let expect_number st what =
  match peek st with
  | Lexer.INT n, _ ->
      advance st;
      float_of_int n
  | Lexer.FLOAT f, _ ->
      advance st;
      f
  | t, _ -> fail st "expected %s but found '%s'" what (Lexer.token_to_string t)

let expect_ident st what =
  match peek st with
  | Lexer.IDENT s, _ ->
      advance st;
      s
  | t, _ -> fail st "expected %s but found '%s'" what (Lexer.token_to_string t)

let rec parse_expr st : Ast.expr =
  let lhs = parse_term st in
  let rec loop lhs =
    match fst (peek st) with
    | Lexer.PLUS ->
        advance st;
        loop (Ast.Binop (Ast.Add, lhs, parse_term st))
    | Lexer.MINUS ->
        advance st;
        loop (Ast.Binop (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st : Ast.expr =
  let lhs = parse_factor st in
  let rec loop lhs =
    match fst (peek st) with
    | Lexer.STAR ->
        advance st;
        loop (Ast.Binop (Ast.Mul, lhs, parse_factor st))
    | Lexer.SLASH ->
        advance st;
        loop (Ast.Binop (Ast.Div, lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st : Ast.expr =
  match fst (peek st) with
  | Lexer.INT n ->
      advance st;
      Ast.Const (float_of_int n)
  | Lexer.FLOAT f ->
      advance st;
      Ast.Const f
  | Lexer.MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, parse_factor st)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT ("abs" | "maxreduce" as fn) ->
      advance st;
      expect st Lexer.LPAREN "(";
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      if fn = "abs" then Ast.Unop (Ast.Abs, e) else Ast.Maxreduce e
  | Lexer.IDENT ("min" | "max" as fn) ->
      advance st;
      expect st Lexer.LPAREN "(";
      let e1 = parse_expr st in
      expect st Lexer.COMMA ",";
      let e2 = parse_expr st in
      expect st Lexer.RPAREN ")";
      Ast.Binop ((if fn = "min" then Ast.Min else Ast.Max), e1, e2)
  | Lexer.IDENT name -> (
      advance st;
      match fst (peek st) with
      | Lexer.LBRACKET ->
          advance st;
          let sign =
            match fst (peek st) with
            | Lexer.PLUS ->
                advance st;
                1
            | Lexer.MINUS ->
                advance st;
                -1
            | _ -> 1
          in
          let n = expect_int st "a shift amount" in
          expect st Lexer.RBRACKET "]";
          Ast.Ref { name; shift = sign * n }
      | _ -> Ast.Ref { name; shift = 0 })
  | t -> fail st "unexpected token '%s' in expression" (Lexer.token_to_string t)

let rec parse_stmts st ~terminator : Ast.stmt list =
  let rec loop acc =
    match fst (peek st) with
    | t when t = terminator -> List.rev acc
    | Lexer.EOF when terminator = Lexer.EOF -> List.rev acc
    | Lexer.EOF -> fail st "unexpected end of input (missing '}')"
    | Lexer.KW "repeat" ->
        advance st;
        let count = expect_int st "a repetition count" in
        expect st Lexer.LBRACE "{";
        let body = parse_stmts st ~terminator:Lexer.RBRACE in
        expect st Lexer.RBRACE "}";
        loop (Ast.Repeat { count; body } :: acc)
    | Lexer.KW "while" ->
        advance st;
        let scalar = expect_ident st "a scalar name" in
        let rel =
          match fst (peek st) with
          | Lexer.REL r ->
              advance st;
              r
          | t -> fail st "expected a relation but found '%s'" (Lexer.token_to_string t)
        in
        let threshold = expect_number st "a threshold" in
        expect st (Lexer.KW "max_iters") "max_iters";
        let max_iters = expect_int st "an iteration bound" in
        expect st Lexer.LBRACE "{";
        let body = parse_stmts st ~terminator:Lexer.RBRACE in
        expect st Lexer.RBRACE "}";
        loop (Ast.While { scalar; rel; threshold; max_iters; body } :: acc)
    | Lexer.IDENT target -> (
        advance st;
        expect st Lexer.EQUAL "=";
        let e = parse_expr st in
        match e with
        | Ast.Maxreduce _ -> loop (Ast.Scalar_assign { scalar = target; expr = e } :: acc)
        | e -> loop (Ast.Assign { target; expr = e } :: acc))
    | t -> fail st "unexpected token '%s'" (Lexer.token_to_string t)
  in
  loop []

let parse_decls st : Ast.decl list =
  let rec loop acc =
    match fst (peek st) with
    | Lexer.KW "array" ->
        advance st;
        let name = expect_ident st "an array name" in
        expect st Lexer.LBRACKET "[";
        let length = expect_int st "an array length" in
        expect st Lexer.RBRACKET "]";
        expect st (Lexer.KW "plane") "plane";
        let plane = expect_int st "a plane number" in
        loop (Ast.Array { name; length; plane } :: acc)
    | Lexer.KW "scalar" ->
        advance st;
        let name = expect_ident st "a scalar name" in
        loop (Ast.Scalar name :: acc)
    | _ -> List.rev acc
  in
  loop []

(** Parse a full program.  [Error] carries "line N: message". *)
let parse (src : string) : (Ast.program, string) result =
  try
    let st = { toks = Lexer.tokenize src } in
    let decls = parse_decls st in
    let body = parse_stmts st ~terminator:Lexer.EOF in
    Ok { Ast.decls; body }
  with
  | Parse_error (l, m) -> Error (Printf.sprintf "line %d: %s" l m)
  | Lexer.Lex_error (l, m) -> Error (Printf.sprintf "line %d: %s" l m)
