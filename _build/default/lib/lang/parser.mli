(** Recursive-descent parser for the pipeline language.

    Grammar:
    {v
    program  := decl* stmt*
    decl     := "array" IDENT "[" INT "]" "plane" INT
              | "scalar" IDENT
    stmt     := IDENT "=" expr
              | "repeat" INT "{" stmt* "}"
              | "while" IDENT rel NUMBER "max_iters" INT "{" stmt* "}"
    expr     := term (("+" | "-") term)*
    term     := factor (("*" | "/") factor)*
    factor   := NUMBER | "-" factor | "(" expr ")"
              | IDENT ("[" ("+"|"-") INT "]")?
              | ("abs"|"maxreduce") "(" expr ")"
              | ("min"|"max") "(" expr "," expr ")"
    v} *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

exception Parse_error of int * string
type state = { mutable toks : (Lexer.token * int) list; }
val peek : state -> Lexer.token * int
val line : state -> int
val advance : state -> unit
val fail : state -> ('a, unit, string, 'b) format4 -> 'a
val expect : state -> Lexer.token -> string -> unit
val expect_int : state -> string -> int
val expect_number : state -> string -> float
val expect_ident : state -> string -> string
val parse_expr : state -> Ast.expr
val parse_term : state -> Ast.expr
val parse_factor : state -> Ast.expr
val parse_stmts :
  state -> terminator:Lexer.token -> Ast.stmt list
val parse_decls : state -> Ast.decl list
val parse : string -> (Ast.program, string) result
