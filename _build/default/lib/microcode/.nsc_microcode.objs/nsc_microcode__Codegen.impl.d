lib/microcode/codegen.pp.ml: Checker Diagnostic Encode Fields Knowledge List Nsc_arch Nsc_checker Nsc_diagram Program Result Semantic
