lib/microcode/codegen.pp.mli: Encode Fields Nsc_arch Nsc_checker Nsc_diagram
