lib/microcode/decode.pp.ml: Als Dma Encode Fields Fu_config Knowledge List Nsc_arch Nsc_diagram Opcode Printf Resource Semantic Shift_delay Switch Word
