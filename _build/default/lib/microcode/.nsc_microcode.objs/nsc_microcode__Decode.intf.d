lib/microcode/decode.pp.mli: Fields Nsc_diagram Word
