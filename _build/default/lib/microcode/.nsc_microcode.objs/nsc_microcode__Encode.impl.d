lib/microcode/encode.pp.ml: Als Dma Fields Fu_config List Nsc_arch Nsc_diagram Opcode Printf Resource Semantic Shift_delay Switch Word
