lib/microcode/encode.pp.mli: Fields Nsc_diagram Word
