lib/microcode/fields.pp.ml: Als Hashtbl Knowledge List Nsc_arch Params Printf Resource Seq String Word
