lib/microcode/fields.pp.mli: Hashtbl Nsc_arch Word
