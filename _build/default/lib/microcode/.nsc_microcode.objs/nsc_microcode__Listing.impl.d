lib/microcode/listing.pp.ml: Als Buffer Codegen Dma Encode Fields Fu_config Interrupt List Nsc_arch Nsc_diagram Opcode Printf Program Resource Semantic Shift_delay String Switch Word
