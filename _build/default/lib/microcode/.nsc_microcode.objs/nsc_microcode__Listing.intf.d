lib/microcode/listing.pp.mli: Codegen Nsc_arch Nsc_diagram
