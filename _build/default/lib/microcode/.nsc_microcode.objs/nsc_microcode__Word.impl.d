lib/microcode/word.pp.ml: Buffer Bytes Char Int64 Printf
