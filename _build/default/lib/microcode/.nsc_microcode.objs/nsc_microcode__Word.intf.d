lib/microcode/word.pp.mli: Bytes
