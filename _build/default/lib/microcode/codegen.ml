(** Program-level code generation.

    Runs the checker's thorough global pass, projects every pipeline to its
    semantic structures, and encodes each into a microinstruction.  The
    result bundles the machine words with the sequencer's control programme
    and the semantic structures (retained for listings and the visual
    debugger). *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

type compiled = {
  program_name : string;
  layout : Fields.t;
  instructions : Encode.instruction list;  (** one per pipeline, in order *)
  semantics : Semantic.t list;             (** parallel to [instructions] *)
  control : Program.control list;          (** the sequencer programme *)
  diagnostics : Diagnostic.t list;         (** surviving warnings/infos *)
}

(** Compile a visual program to microcode.  [Error] carries the checker
    diagnostics when any error-severity finding blocks generation. *)
let compile (kb : Knowledge.t) (prog : Program.t) : (compiled, Diagnostic.t list) result =
  let p = Knowledge.params kb in
  let ds = Checker.check_program kb prog in
  if Diagnostic.has_errors ds then Error ds
  else begin
    let layout = Fields.make p in
    let lookup = Program.variable_base prog in
    let results =
      List.map
        (fun pl ->
          let sem, _ = Semantic.of_pipeline p ~lookup pl in
          (sem, Encode.encode layout sem))
        prog.Program.pipelines
    in
    let encode_errors =
      List.filter_map
        (fun ((sem : Semantic.t), r) ->
          match r with
          | Ok _ -> None
          | Error m ->
              Some
                (Diagnostic.error
                   ~location:
                     {
                       Diagnostic.nowhere with
                       Diagnostic.pipeline = Some sem.Semantic.index;
                     }
                   Diagnostic.Structural "encoding: %s" m))
        results
    in
    if encode_errors <> [] then Error (ds @ encode_errors)
    else
      Ok
        {
          program_name = prog.Program.name;
          layout;
          instructions =
            List.filter_map (fun (_, r) -> Result.to_option r) results;
          semantics = List.map fst results;
          control = Program.effective_control prog;
          diagnostics = ds;
        }
  end

(** Total size of the generated code in bits (the paper's "few thousand
    bits per instruction" multiplied out). *)
let code_bits c = List.length c.instructions * c.layout.Fields.total_bits

(** Find the instruction generated for pipeline [index]. *)
let instruction c ~index =
  List.find_opt (fun (i : Encode.instruction) -> i.Encode.index = index) c.instructions

let semantic c ~index =
  List.find_opt (fun (s : Semantic.t) -> s.Semantic.index = index) c.semantics
