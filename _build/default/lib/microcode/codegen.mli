(** Program-level code generation.

    Runs the checker's thorough global pass, projects every pipeline to its
    semantic structures, and encodes each into a microinstruction.  The
    result bundles the machine words with the sequencer's control programme
    and the semantic structures (retained for listings and the visual
    debugger). *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type compiled = {
  program_name : string;
  layout : Fields.t;
  instructions : Encode.instruction list;
  semantics : Nsc_diagram.Semantic.t list;
  control : Nsc_diagram.Program.control list;
  diagnostics : Nsc_checker.Diagnostic.t list;
}
(** Compile a visual program to microcode: the thorough checker pass,
    semantic projection of every pipeline, and encoding.  [Error] carries
    the diagnostics that block generation. *)
val compile :
  Nsc_arch.Knowledge.t ->
  Nsc_diagram.Program.t -> (compiled, Nsc_checker.Diagnostic.t list) result
(** Total generated code size in bits. *)
val code_bits : compiled -> int
(** The instruction generated for a pipeline number. *)
val instruction :
  compiled -> index:int -> Encode.instruction option
val semantic : compiled -> index:int -> Nsc_diagram.Semantic.t option
