(** The disassembler: microinstruction words back to semantic structures.

    Decoding is the inverse of {!Encode.encode} up to
    {!Encode.normalize}; the round trip is enforced by property tests and
    gives confidence that the generated machine code means what the diagram
    said. *)

open Nsc_arch
open Nsc_diagram

let decode_binding (layout : Fields.t) word ~g ~port_name : Fu_config.input_binding =
  let f name = Printf.sprintf "fu%d.%s" g name in
  let src = Fields.get layout word (f ("src_" ^ port_name)) in
  if src = Fields.src_unbound then Fu_config.Unbound
  else if src = Fields.src_switch then Fu_config.From_switch
  else if src = Fields.src_chain then Fu_config.From_chain
  else if src = Fields.src_const then
    Fu_config.From_constant (Fields.get_float layout word (f "const_val"))
  else if src = Fields.src_feedback then
    Fu_config.From_feedback (Fields.get layout word (f ("fb_" ^ port_name)))
  else Fu_config.Unbound

(** Decode a microinstruction.  Fails with [Error] on a bad magic number or
    an opcode the machine does not define. *)
let decode (layout : Fields.t) (word : Word.t) : (Semantic.t, string) result =
  let p = layout.Fields.params in
  if Fields.get layout word "hdr.magic" <> Encode.magic then
    Error "bad magic number: not an NSC microinstruction"
  else begin
    let index = Fields.get layout word "hdr.index" in
    let vlen = Fields.get layout word "hdr.vlen" in
    let errors = ref [] in
    (* units *)
    let units =
      List.filter_map
        (fun fu ->
          let g = Resource.fu_global_index p fu in
          let f name = Printf.sprintf "fu%d.%s" g name in
          match Fields.get layout word (f "op") with
          | 0 -> None
          | code -> (
              match Opcode.of_code code with
              | None ->
                  errors := Printf.sprintf "unit %d: undefined opcode %d" g code :: !errors;
                  None
              | Some op ->
                  Some
                    {
                      Semantic.fu;
                      op;
                      a = decode_binding layout word ~g ~port_name:"a";
                      b = decode_binding layout word ~g ~port_name:"b";
                      delay_a = Fields.get layout word (f "delay_a");
                      delay_b = Fields.get layout word (f "delay_b");
                    }))
        (Resource.all_fus p)
    in
    (* bypasses: engaged ALSs plus any ALS with an explicit bypass *)
    let bypasses =
      List.filter_map
        (fun als ->
          let code = Fields.get layout word (Printf.sprintf "als%d.bypass" als) in
          match Fields.bypass_of_code code with
          | None ->
              errors := Printf.sprintf "ALS%d: undefined bypass code %d" als code :: !errors;
              None
          | Some bypass ->
              let engaged =
                List.exists
                  (fun (u : Semantic.unit_program) -> u.Semantic.fu.Resource.als = als)
                  units
              in
              if engaged || not (Als.equal_bypass bypass Als.No_bypass) then
                Some (als, bypass)
              else None)
        (Resource.all_als p)
    in
    (* switch section *)
    let kb = Knowledge.make_exn p in
    let routes =
      List.filter_map
        (fun snk ->
          let code = Fields.get layout word ("snk." ^ Resource.sink_to_string snk) in
          if code = 0 then None
          else
            match Resource.source_of_code p code with
            | Some src -> Some { Switch.src; snk }
            | None ->
                errors :=
                  Printf.sprintf "sink %s: undefined source code %d"
                    (Resource.sink_to_string snk) code
                  :: !errors;
                None)
        (Knowledge.all_sinks kb)
    in
    (* DMA section *)
    let streams =
      let of_engine tag channel slot =
        let f name = Printf.sprintf "dma.%s.e%d.%s" tag slot name in
        if Fields.get layout word (f "active") = 0 then None
        else begin
          let direction = if Fields.get layout word (f "dir") = 0 then Dma.Read else Dma.Write in
          let transfer =
            {
              Dma.channel;
              direction;
              base = Fields.get layout word (f "base");
              stride = Fields.get_signed layout word (f "stride");
              count = Fields.get layout word (f "count");
            }
          in
          let engine =
            match (direction, channel) with
            | Dma.Read, Dma.Plane pl -> `Read (Resource.Src_memory (pl, slot))
            | Dma.Read, Dma.Cache_chan c -> `Read (Resource.Src_cache (c, slot))
            | Dma.Write, Dma.Plane pl -> `Write (Resource.Snk_memory (pl, slot))
            | Dma.Write, Dma.Cache_chan c -> `Write (Resource.Snk_cache (c, slot))
          in
          Some { Semantic.transfer; engine }
        end
      in
      List.concat_map
        (fun pl ->
          List.filter_map
            (fun slot -> of_engine (Printf.sprintf "plane%d" pl) (Dma.Plane pl) slot)
            (List.init p.plane_dma_slots (fun e -> e)))
        (List.init p.n_memory_planes (fun i -> i))
      @ List.concat_map
          (fun c ->
            List.filter_map
              (fun slot -> of_engine (Printf.sprintf "cache%d" c) (Dma.Cache_chan c) slot)
              (List.init p.cache_dma_slots (fun e -> e)))
          (List.init p.n_caches (fun i -> i))
    in
    (* shift/delay section *)
    let sds =
      List.filter_map
        (fun s ->
          let f name = Printf.sprintf "sd%d.%s" s name in
          let mode = Fields.get layout word (f "mode") in
          if mode = Fields.sd_off then None
          else
            let amount = Fields.get_signed layout word (f "amount") in
            if mode = Fields.sd_delay then
              Some { Semantic.sd = s; mode = Shift_delay.Delay amount }
            else if mode = Fields.sd_shift then
              Some { Semantic.sd = s; mode = Shift_delay.Shift amount }
            else begin
              errors := Printf.sprintf "sd%d: undefined mode %d" s mode :: !errors;
              None
            end)
        (List.init p.n_shift_delay (fun s -> s))
    in
    match !errors with
    | e :: _ -> Error e
    | [] ->
        Ok
          (Encode.normalize
             {
               Semantic.index;
               label = "";
               vector_length = vlen;
               bypasses;
               units;
               sds;
               routes;
               streams;
             })
  end
