(** The disassembler: microinstruction words back to semantic structures.

    Decoding is the inverse of {!Encode.encode} up to
    {!Encode.normalize}; the round trip is enforced by property tests and
    gives confidence that the generated machine code means what the diagram
    said. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

(** Disassemble a word back to (normalised) semantic structures; fails
    on a bad magic number or undefined opcodes. *)
val decode_binding :
  Fields.t ->
  Word.t ->
  g:int -> port_name:string -> Nsc_diagram.Fu_config.input_binding
val decode :
  Fields.t ->
  Word.t -> (Nsc_diagram.Semantic.t, string) result
