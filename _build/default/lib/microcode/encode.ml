(** Microcode generation: semantic data structures to machine words.

    "Once a complete program (or consistent program fragment) has been
    defined, the microcode generator uses the semantic data structures
    created by the graphical editor to generate machine code for the NSC."
    Switch settings are derived by interrogating the connection tables, DMA
    programmes from the popup-subwindow data, unit control from the
    per-unit configurations. *)

open Nsc_arch
open Nsc_diagram

let magic = 0xA5

type instruction = { index : int; word : Word.t }

(** Encode one semantic pipeline into a microinstruction.  The input is
    assumed to have passed [Checker.check_pipeline ~level:`Complete]; the
    residual failure modes (representational limits) are reported as
    [Error]. *)
let encode (layout : Fields.t) (sem : Semantic.t) : (instruction, string) result =
  let p = layout.Fields.params in
  let word = Fields.fresh_word layout in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  Fields.set layout word "hdr.magic" magic;
  (if sem.Semantic.index < 0 || sem.Semantic.index >= 1 lsl 16 then
     err "instruction number %d does not fit the header" sem.Semantic.index
   else Fields.set layout word "hdr.index" sem.Semantic.index);
  (if sem.Semantic.vector_length < 0 || sem.Semantic.vector_length >= 1 lsl 24 then
     err "vector length %d does not fit the header" sem.Semantic.vector_length
   else Fields.set layout word "hdr.vlen" sem.Semantic.vector_length);
  (* ALS bypasses *)
  List.iter
    (fun (als, bypass) ->
      Fields.set layout word
        (Printf.sprintf "als%d.bypass" als)
        (Fields.bypass_code bypass))
    sem.Semantic.bypasses;
  (* per-unit control *)
  List.iter
    (fun (u : Semantic.unit_program) ->
      let g = Resource.fu_global_index p u.Semantic.fu in
      let f name = Printf.sprintf "fu%d.%s" g name in
      Fields.set layout word (f "op") (Opcode.to_code u.Semantic.op);
      let encode_binding port_name = function
        | Fu_config.Unbound -> Fields.set layout word (f ("src_" ^ port_name)) Fields.src_unbound
        | Fu_config.From_switch -> Fields.set layout word (f ("src_" ^ port_name)) Fields.src_switch
        | Fu_config.From_chain -> Fields.set layout word (f ("src_" ^ port_name)) Fields.src_chain
        | Fu_config.From_constant c ->
            Fields.set layout word (f ("src_" ^ port_name)) Fields.src_const;
            let port_code = if port_name = "a" then Fields.const_a else Fields.const_b in
            let existing = Fields.get layout word (f "const_port") in
            if existing <> Fields.const_none then
              err
                "unit %s binds constants on both operands; the register file exposes \
                 one inline constant per instruction"
                (Resource.fu_to_string u.Semantic.fu)
            else begin
              Fields.set layout word (f "const_port") port_code;
              Fields.set_float layout word (f "const_val") c
            end
        | Fu_config.From_feedback n ->
            Fields.set layout word (f ("src_" ^ port_name)) Fields.src_feedback;
            if n > p.rf_max_delay then
              err "feedback depth %d on %s exceeds the encodable maximum %d" n
                (Resource.fu_to_string u.Semantic.fu)
                p.rf_max_delay
            else Fields.set layout word (f ("fb_" ^ port_name)) n
      in
      encode_binding "a" u.Semantic.a;
      encode_binding "b" u.Semantic.b;
      if u.Semantic.delay_a > p.rf_max_delay || u.Semantic.delay_b > p.rf_max_delay then
        err "alignment delay on %s exceeds the encodable maximum %d"
          (Resource.fu_to_string u.Semantic.fu)
          p.rf_max_delay
      else begin
        Fields.set layout word (f "delay_a") u.Semantic.delay_a;
        Fields.set layout word (f "delay_b") u.Semantic.delay_b
      end)
    sem.Semantic.units;
  (* switch section *)
  List.iter
    (fun (r : Switch.route) ->
      Fields.set layout word
        ("snk." ^ Resource.sink_to_string r.Switch.snk)
        (Resource.source_code p r.Switch.src))
    sem.Semantic.routes;
  (* DMA section *)
  List.iter
    (fun (s : Semantic.stream) ->
      let t = s.Semantic.transfer in
      let slot =
        match s.Semantic.engine with
        | `Read (Resource.Src_memory (_, e)) | `Read (Resource.Src_cache (_, e)) -> Some e
        | `Write (Resource.Snk_memory (_, e)) | `Write (Resource.Snk_cache (_, e)) ->
            Some e
        | `Read _ | `Write _ -> None
      in
      match slot with
      | None ->
          err "stream on %s is not bound to a DMA engine"
            (Dma.channel_to_string t.Dma.channel)
      | Some slot ->
          let slots, tag =
            match t.Dma.channel with
            | Dma.Plane pl -> (p.plane_dma_slots, Printf.sprintf "plane%d" pl)
            | Dma.Cache_chan c -> (p.cache_dma_slots, Printf.sprintf "cache%d" c)
          in
          if slot >= slots then
            err "channel %s needs engine %d but has only %d"
              (Dma.channel_to_string t.Dma.channel)
              slot slots
          else begin
            let f name = Printf.sprintf "dma.%s.e%d.%s" tag slot name in
            if Fields.get layout word (f "active") = 1 then
              err "two transfers programme DMA engine %s.e%d in one instruction" tag slot
            else begin
              Fields.set layout word (f "active") 1;
              Fields.set layout word (f "dir")
                (match t.Dma.direction with Dma.Read -> 0 | Dma.Write -> 1);
              try
                Fields.set layout word (f "base") t.Dma.base;
                Fields.set_signed layout word (f "stride") t.Dma.stride;
                Fields.set layout word (f "count")
                  (if t.Dma.count = 0 then sem.Semantic.vector_length else t.Dma.count)
              with Invalid_argument m -> err "DMA engine %s.e%d: %s" tag slot m
            end
          end)
    sem.Semantic.streams;
  (* shift/delay section *)
  List.iter
    (fun (s : Semantic.sd_program) ->
      let f name = Printf.sprintf "sd%d.%s" s.Semantic.sd name in
      match s.Semantic.mode with
      | Shift_delay.Delay d ->
          Fields.set layout word (f "mode") Fields.sd_delay;
          Fields.set_signed layout word (f "amount") d
      | Shift_delay.Shift o ->
          Fields.set layout word (f "mode") Fields.sd_shift;
          Fields.set_signed layout word (f "amount") o)
    sem.Semantic.sds;
  match List.rev !errors with
  | [] -> Ok { index = sem.Semantic.index; word }
  | e :: _ -> Error e

(** Canonical form of a semantic pipeline for encode/decode round-trip
    comparison: lists sorted, display-only fields cleared, implicit counts
    resolved, bypass entries restricted to ALSs that matter to the machine
    (those engaging a unit or configuring a bypass). *)
let normalize (sem : Semantic.t) : Semantic.t =
  let engaged als =
    List.exists (fun (u : Semantic.unit_program) -> u.Semantic.fu.Resource.als = als)
      sem.Semantic.units
  in
  {
    sem with
    Semantic.label = "";
    bypasses =
      List.filter
        (fun (als, bypass) -> engaged als || not (Als.equal_bypass bypass Als.No_bypass))
        sem.Semantic.bypasses
      |> List.sort_uniq compare;
    units =
      List.sort
        (fun (a : Semantic.unit_program) b -> compare a.Semantic.fu b.Semantic.fu)
        sem.Semantic.units;
    sds = List.sort compare sem.Semantic.sds;
    routes =
      List.sort compare sem.Semantic.routes;
    streams =
      List.map
        (fun (s : Semantic.stream) ->
          let t = s.Semantic.transfer in
          {
            s with
            Semantic.transfer =
              {
                t with
                Dma.count =
                  (if t.Dma.count = 0 then sem.Semantic.vector_length else t.Dma.count);
              };
          })
        sem.Semantic.streams
      |> List.sort compare;
  }
