(** Microcode generation: semantic data structures to machine words.

    "Once a complete program (or consistent program fragment) has been
    defined, the microcode generator uses the semantic data structures
    created by the graphical editor to generate machine code for the NSC."
    Switch settings are derived by interrogating the connection tables, DMA
    programmes from the popup-subwindow data, unit control from the
    per-unit configurations. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val magic : int
type instruction = { index : int; word : Word.t; }
(** Encode one semantic pipeline into a microinstruction.  Input is
    assumed checked at [`Complete] level; residual representational
    failures (e.g. two inline constants on one unit) come back as
    [Error]. *)
val encode :
  Fields.t ->
  Nsc_diagram.Semantic.t -> (instruction, string) result
(** Canonical form for encode/decode round-trip comparison: lists
    sorted, display-only fields cleared, implicit counts resolved. *)
val normalize : Nsc_diagram.Semantic.t -> Nsc_diagram.Semantic.t
