(** The microinstruction field layout.

    The layout is derived from the machine parameters, so a revised machine
    design regenerates it automatically.  An instruction completely
    specifies "the pipeline configuration and function unit operations for
    the entire machine":

    - a header (magic, instruction number, vector length);
    - per-ALS bypass configuration;
    - per-functional-unit control: opcode, operand-source selectors,
      alignment-queue depths, feedback-queue depths, one inline constant;
    - the switch section: one source selector per network sink;
    - the DMA section: one engine per memory plane and per cache;
    - the shift/delay section.

    With the default machine this comes to several thousand bits in several
    hundred field instances of two dozen distinct kinds — the scale the
    paper quotes as making hand-written microprograms impractical. *)

open Nsc_arch

type field = { name : string; offset : int; width : int }

type t = {
  params : Params.t;
  total_bits : int;
  fields : field list;  (** in layout order *)
  by_name : (string, field) Hashtbl.t;
}

(* Operand-source selector encodings (fields fu<i>.src_a / src_b). *)
let src_unbound = 0
let src_switch = 1
let src_chain = 2
let src_const = 3
let src_feedback = 4

(* Constant-port encodings (field fu<i>.const_port). *)
let const_none = 0
let const_a = 1
let const_b = 2

(* Shift/delay mode encodings. *)
let sd_off = 0
let sd_delay = 1
let sd_shift = 2

(* Bypass encodings. *)
let bypass_code = function
  | Als.No_bypass -> 0
  | Als.Keep_head -> 1
  | Als.Keep_tail -> 2

let bypass_of_code = function
  | 0 -> Some Als.No_bypass
  | 1 -> Some Als.Keep_head
  | 2 -> Some Als.Keep_tail
  | _ -> None

let bits_for n =
  (* bits needed to store values 0..n *)
  let rec go b = if 1 lsl b > n then b else go (b + 1) in
  go 1

(** Build the layout for machine [p]. *)
let make (p : Params.t) : t =
  let fields = ref [] in
  let cursor = ref 0 in
  let field name width =
    let f = { name; offset = !cursor; width } in
    fields := f :: !fields;
    cursor := !cursor + width;
    f
  in
  let nfu = Params.n_functional_units p in
  let src_width = bits_for (1 + nfu + p.n_memory_planes + p.n_caches + p.n_shift_delay) in
  let delay_width = bits_for p.rf_max_delay in
  let addr_width = bits_for (max p.memory_plane_words p.cache_words) in
  let count_width = addr_width in
  (* header *)
  ignore (field "hdr.magic" 8);
  ignore (field "hdr.index" 16);
  ignore (field "hdr.vlen" 24);
  (* per-ALS bypass *)
  List.iter (fun a -> ignore (field (Printf.sprintf "als%d.bypass" a) 2)) (Resource.all_als p);
  (* per-FU control *)
  List.iter
    (fun fu ->
      let g = Resource.fu_global_index p fu in
      let f name width = ignore (field (Printf.sprintf "fu%d.%s" g name) width) in
      f "op" 6;
      f "src_a" 3;
      f "src_b" 3;
      f "delay_a" delay_width;
      f "delay_b" delay_width;
      f "fb_a" delay_width;
      f "fb_b" delay_width;
      f "const_port" 2;
      f "const_val" 64)
    (Resource.all_fus p);
  (* switch section: one source selector per sink *)
  let kb = Knowledge.make_exn p in
  List.iter
    (fun snk ->
      ignore (field ("snk." ^ Resource.sink_to_string snk) src_width))
    (Knowledge.all_sinks kb);
  (* DMA section: one engine per (channel, slot) *)
  let dma_channel_fields tag n slots =
    List.iter
      (fun i ->
        List.iter
          (fun e ->
            let f name width =
              ignore (field (Printf.sprintf "dma.%s%d.e%d.%s" tag i e name) width)
            in
            f "active" 1;
            f "dir" 1;
            f "base" addr_width;
            f "stride" 17;
            f "count" count_width)
          (List.init slots (fun e -> e)))
      (List.init n (fun i -> i))
  in
  dma_channel_fields "plane" p.n_memory_planes p.plane_dma_slots;
  dma_channel_fields "cache" p.n_caches p.cache_dma_slots;
  (* shift/delay section *)
  List.iter
    (fun s ->
      ignore (field (Printf.sprintf "sd%d.mode" s) 2);
      ignore (field (Printf.sprintf "sd%d.amount" s) 9))
    (List.init p.n_shift_delay (fun s -> s));
  let fields = List.rev !fields in
  let by_name = Hashtbl.create 512 in
  List.iter (fun f -> Hashtbl.replace by_name f.name f) fields;
  { params = p; total_bits = !cursor; fields; by_name }

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Fields.find: no field '%s'" name)

let mem t name = Hashtbl.mem t.by_name name

(** Number of field instances in the layout. *)
let field_count t = List.length t.fields

(** Number of distinct field kinds (names with indices stripped) — the
    "dozens of separate fields" of the paper. *)
let kind_count t =
  let strip name =
    String.to_seq name
    |> Seq.filter (fun c -> not (c >= '0' && c <= '9'))
    |> String.of_seq
  in
  List.map (fun f -> strip f.name) t.fields |> List.sort_uniq String.compare |> List.length

(* field accessors over a word *)
let get t word name =
  let f = find t name in
  Word.get_int word ~offset:f.offset ~width:f.width

let set t word name v =
  let f = find t name in
  Word.set_int word ~offset:f.offset ~width:f.width v

let get_signed t word name =
  let f = find t name in
  Word.get_signed word ~offset:f.offset ~width:f.width

let set_signed t word name v =
  let f = find t name in
  Word.set_signed word ~offset:f.offset ~width:f.width v

let get_float t word name =
  let f = find t name in
  if f.width <> 64 then invalid_arg "Fields.get_float: not a 64-bit field";
  Word.get_float word ~offset:f.offset

let set_float t word name v =
  let f = find t name in
  if f.width <> 64 then invalid_arg "Fields.set_float: not a 64-bit field";
  Word.set_float word ~offset:f.offset v

let fresh_word t = Word.create t.total_bits
