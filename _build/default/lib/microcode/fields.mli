(** The microinstruction field layout.

    The layout is derived from the machine parameters, so a revised machine
    design regenerates it automatically.  An instruction completely
    specifies "the pipeline configuration and function unit operations for
    the entire machine":

    - a header (magic, instruction number, vector length);
    - per-ALS bypass configuration;
    - per-functional-unit control: opcode, operand-source selectors,
      alignment-queue depths, feedback-queue depths, one inline constant;
    - the switch section: one source selector per network sink;
    - the DMA section: one engine per memory plane and per cache;
    - the shift/delay section.

    With the default machine this comes to several thousand bits in several
    hundred field instances of two dozen distinct kinds — the scale the
    paper quotes as making hand-written microprograms impractical. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type field = { name : string; offset : int; width : int; }
type t = {
  params : Nsc_arch.Params.t;
  total_bits : int;
  fields : field list;
  by_name : (string, field) Hashtbl.t;
}
val src_unbound : int
val src_switch : int
val src_chain : int
val src_const : int
val src_feedback : int
val const_none : int
val const_a : int
val const_b : int
val sd_off : int
val sd_delay : int
val sd_shift : int
val bypass_code : Nsc_arch.Als.bypass -> int
val bypass_of_code : int -> Nsc_arch.Als.bypass option
val bits_for : int -> int
(** Build the field layout for a machine — several thousand bits in
    hundreds of field instances of ~30 kinds, derived entirely from the
    parameters. *)
val make : Nsc_arch.Params.t -> t
val find : t -> string -> field
val mem : t -> string -> bool
(** Number of field instances in the layout. *)
val field_count : t -> int
(** Number of distinct field kinds (names with indices stripped) — the
    paper's "dozens of separate fields". *)
val kind_count : t -> int
val get : t -> Word.t -> string -> int
val set : t -> Word.t -> string -> int -> unit
val get_signed : t -> Word.t -> string -> int
val set_signed : t -> Word.t -> string -> int -> unit
val get_float : t -> Word.t -> string -> float
val set_float : t -> Word.t -> string -> float -> unit
(** A zeroed word of the layout's width. *)
val fresh_word : t -> Word.t
