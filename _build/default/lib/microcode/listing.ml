(** Human-readable listings: the "pseudo-code representation of the
    instructions" the prototype emitted, plus optional hex dumps of the
    encoded words. *)

open Nsc_arch
open Nsc_diagram

let binding_doc = function
  | Fu_config.From_switch -> "switch"
  | Fu_config.From_chain -> "chain"
  | Fu_config.From_constant c -> Printf.sprintf "%g" c
  | Fu_config.From_feedback n -> Printf.sprintf "feedback[%d]" n
  | Fu_config.Unbound -> "?"

let unit_line (u : Semantic.unit_program) =
  let operand name b d =
    let s = binding_doc b in
    if d > 0 then Printf.sprintf "%s=%s (z^%d)" name s d else Printf.sprintf "%s=%s" name s
  in
  let operands =
    match Opcode.arity u.Semantic.op with
    | 1 -> [ operand "a" u.Semantic.a u.Semantic.delay_a ]
    | _ ->
        [
          operand "a" u.Semantic.a u.Semantic.delay_a;
          operand "b" u.Semantic.b u.Semantic.delay_b;
        ]
  in
  Printf.sprintf "    %-10s %-6s %s"
    (Resource.fu_to_string u.Semantic.fu)
    (Opcode.mnemonic u.Semantic.op)
    (String.concat "  " operands)

let route_line (r : Switch.route) =
  Printf.sprintf "    %s -> %s"
    (Resource.source_to_string r.Switch.src)
    (Resource.sink_to_string r.Switch.snk)

let stream_line (s : Semantic.stream) =
  let t = s.Semantic.transfer in
  let engine =
    match s.Semantic.engine with
    | `Write snk -> "engine " ^ Resource.sink_to_string snk
    | `Read src -> "engine " ^ Resource.source_to_string src
  in
  Printf.sprintf "    %s (%s)" (Dma.transfer_to_string t) engine

(** Listing of one semantic pipeline. *)
let semantic_to_string (sem : Semantic.t) =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt
  in
  line "instruction %d%s  (vector length %d)" sem.Semantic.index
    (if sem.Semantic.label = "" then "" else ": " ^ sem.Semantic.label)
    sem.Semantic.vector_length;
  (match sem.Semantic.bypasses with
  | [] -> ()
  | bs ->
      line "  structures: %s"
        (String.concat ", "
           (List.map
              (fun (als, bypass) ->
                Printf.sprintf "ALS%d%s" als
                  (match bypass with
                  | Als.No_bypass -> ""
                  | Als.Keep_head -> " (bypass: keep head)"
                  | Als.Keep_tail -> " (bypass: keep tail)"))
              bs)));
  if sem.Semantic.units <> [] then begin
    line "  units:";
    List.iter (fun u -> line "%s" (unit_line u)) sem.Semantic.units
  end;
  if sem.Semantic.sds <> [] then begin
    line "  shift/delay:";
    List.iter
      (fun (s : Semantic.sd_program) ->
        line "    sd%d %s" s.Semantic.sd (Shift_delay.mode_to_string s.Semantic.mode))
      sem.Semantic.sds
  end;
  if sem.Semantic.routes <> [] then begin
    line "  switch:";
    List.iter (fun r -> line "%s" (route_line r)) sem.Semantic.routes
  end;
  if sem.Semantic.streams <> [] then begin
    line "  dma:";
    List.iter (fun s -> line "%s" (stream_line s)) sem.Semantic.streams
  end;
  Buffer.contents buf

let rec control_to_lines ~indent (cs : Program.control list) =
  let pad = String.make indent ' ' in
  List.concat_map
    (function
      | Program.Exec n -> [ Printf.sprintf "%sexec %d" pad n ]
      | Program.Halt -> [ pad ^ "halt" ]
      | Program.Repeat { count; body } ->
          (Printf.sprintf "%srepeat %d times:" pad count)
          :: control_to_lines ~indent:(indent + 2) body
      | Program.While { condition; max_iterations; body } ->
          (Printf.sprintf "%swhile %s%s:" pad
             (Interrupt.condition_to_string condition)
             (if max_iterations > 0 then Printf.sprintf " (at most %d times)" max_iterations
              else ""))
          :: control_to_lines ~indent:(indent + 2) body)
    cs

(** Full program listing. *)
let compiled_to_string ?(hex = false) (c : Codegen.compiled) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" c.Codegen.program_name);
  Buffer.add_string buf
    (Printf.sprintf "  %d instruction(s), %d bits each (%d fields)\n\n"
       (List.length c.Codegen.instructions)
       c.Codegen.layout.Fields.total_bits
       (Fields.field_count c.Codegen.layout));
  List.iter
    (fun (sem : Semantic.t) ->
      Buffer.add_string buf (semantic_to_string sem);
      if hex then begin
        match Codegen.instruction c ~index:sem.Semantic.index with
        | Some i ->
            Buffer.add_string buf "  code:\n";
            String.split_on_char '\n' (Word.to_hex i.Encode.word)
            |> List.iter (fun l -> Buffer.add_string buf ("    " ^ l ^ "\n"))
        | None -> ()
      end;
      Buffer.add_char buf '\n')
    c.Codegen.semantics;
  Buffer.add_string buf "control:\n";
  List.iter
    (fun l -> Buffer.add_string buf (l ^ "\n"))
    (control_to_lines ~indent:2 c.Codegen.control);
  Buffer.contents buf
