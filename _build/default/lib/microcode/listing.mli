(** Human-readable listings: the "pseudo-code representation of the
    instructions" the prototype emitted, plus optional hex dumps of the
    encoded words. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val binding_doc : Nsc_diagram.Fu_config.input_binding -> string
val unit_line : Nsc_diagram.Semantic.unit_program -> string
val route_line : Nsc_arch.Switch.route -> string
val stream_line : Nsc_diagram.Semantic.stream -> string
val semantic_to_string : Nsc_diagram.Semantic.t -> string
val control_to_lines :
  indent:int -> Nsc_diagram.Program.control list -> string list
val compiled_to_string :
  ?hex:bool -> Codegen.compiled -> string
