(** Wide microinstruction words.

    An NSC instruction "requires a few thousand bits of information ...
    encoded in dozens of separate fields".  This module implements the raw
    bit container: a fixed-width bit vector with arbitrary-offset field
    access of up to 64 bits, plus hex dumps for listings. *)

type t = { bits : int; bytes : Bytes.t }

let create bits =
  if bits <= 0 then invalid_arg "Word.create";
  { bits; bytes = Bytes.make ((bits + 7) / 8) '\000' }

let width t = t.bits
let copy t = { t with bytes = Bytes.copy t.bytes }

let equal a b = a.bits = b.bits && Bytes.equal a.bytes b.bytes

let get_bit t i =
  if i < 0 || i >= t.bits then invalid_arg "Word.get_bit";
  Char.code (Bytes.get t.bytes (i lsr 3)) lsr (i land 7) land 1

let set_bit t i v =
  if i < 0 || i >= t.bits then invalid_arg "Word.set_bit";
  let byte = Char.code (Bytes.get t.bytes (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bytes (i lsr 3) (Char.chr byte)

(** Read [width] bits starting at [offset] as an unsigned Int64
    (little-endian bit order within the word). *)
let get t ~offset ~width : int64 =
  if width < 1 || width > 64 then invalid_arg "Word.get: width";
  if offset < 0 || offset + width > t.bits then invalid_arg "Word.get: range";
  let v = ref 0L in
  for i = width - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 1) (Int64.of_int (get_bit t (offset + i)))
  done;
  !v

(** Write [width] bits of [v] at [offset]; excess high bits of [v] must be
    zero. *)
let set t ~offset ~width (v : int64) =
  if width < 1 || width > 64 then invalid_arg "Word.set: width";
  if offset < 0 || offset + width > t.bits then invalid_arg "Word.set: range";
  if width < 64 && Int64.shift_right_logical v width <> 0L then
    invalid_arg
      (Printf.sprintf "Word.set: value %Ld does not fit in %d bits" v width);
  for i = 0 to width - 1 do
    set_bit t (offset + i)
      (Int64.logand (Int64.shift_right_logical v i) 1L = 1L)
  done

let get_int t ~offset ~width = Int64.to_int (get t ~offset ~width)

let set_int t ~offset ~width v =
  if v < 0 then invalid_arg "Word.set_int: negative";
  set t ~offset ~width (Int64.of_int v)

(** Signed access with excess-2^(w-1) bias (used for strides/offsets). *)
let get_signed t ~offset ~width =
  get_int t ~offset ~width - (1 lsl (width - 1))

let set_signed t ~offset ~width v =
  let biased = v + (1 lsl (width - 1)) in
  if biased < 0 || biased >= 1 lsl width then
    invalid_arg
      (Printf.sprintf "Word.set_signed: %d does not fit in %d signed bits" v width);
  set_int t ~offset ~width biased

let get_float t ~offset = Int64.float_of_bits (get t ~offset ~width:64)
let set_float t ~offset v = set t ~offset ~width:64 (Int64.bits_of_float v)

(** Count of bits set — a cheap "how much of the word is live" metric. *)
let popcount t =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let rec pc x acc = if x = 0 then acc else pc (x lsr 1) (acc + (x land 1)) in
      n := !n + pc (Char.code c) 0)
    t.bytes;
  !n

(** Hex dump, 32 bytes per line, as used in listings. *)
let to_hex t =
  let buf = Buffer.create (Bytes.length t.bytes * 3) in
  Bytes.iteri
    (fun i c ->
      if i > 0 then
        if i mod 32 = 0 then Buffer.add_char buf '\n' else Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    t.bytes;
  Buffer.contents buf
