(** Wide microinstruction words.

    An NSC instruction "requires a few thousand bits of information ...
    encoded in dozens of separate fields".  This module implements the raw
    bit container: a fixed-width bit vector with arbitrary-offset field
    access of up to 64 bits, plus hex dumps for listings. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type t = { bits : int; bytes : Bytes.t; }
val create : int -> t
val width : t -> int
val copy : t -> t
val equal : t -> t -> bool
val get_bit : t -> int -> int
val set_bit : t -> int -> bool -> unit
(** Read up to 64 bits at an arbitrary offset (little-endian bit order). *)
val get : t -> offset:int -> width:int -> int64
(** Write a field; excess high bits of the value must be zero. *)
val set : t -> offset:int -> width:int -> int64 -> unit
val get_int : t -> offset:int -> width:int -> int
val set_int : t -> offset:int -> width:int -> int -> unit
(** Signed access with excess-2^(w-1) bias (strides and offsets). *)
val get_signed : t -> offset:int -> width:int -> int
val set_signed : t -> offset:int -> width:int -> int -> unit
(** 64-bit IEEE double stored bit-exactly. *)
val get_float : t -> offset:int -> float
val set_float : t -> offset:int -> float -> unit
(** Count of live bits — how much of the word an instruction uses. *)
val popcount : t -> int
(** Hex dump, 32 bytes per line, as used in listings. *)
val to_hex : t -> string
