lib/sim/engine.pp.ml: Als Array Cache Dma Fu_config Fu_exec Hashtbl Interrupt List Node Nsc_arch Nsc_checker Nsc_diagram Opcode Option Params Resource Semantic Shift_delay Switch Timing
