lib/sim/engine.pp.mli: Hashtbl Node Nsc_arch Nsc_diagram
