lib/sim/fu_exec.pp.ml: Float Int64 Interrupt Nsc_arch Opcode
