lib/sim/fu_exec.pp.mli: Float Nsc_arch
