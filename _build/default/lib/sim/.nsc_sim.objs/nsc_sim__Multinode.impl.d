lib/sim/multinode.pp.ml: Array Hashtbl List Node Nsc_arch Option Params Router
