lib/sim/multinode.pp.mli: Node Nsc_arch
