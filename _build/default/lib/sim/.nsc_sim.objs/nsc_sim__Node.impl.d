lib/sim/node.pp.ml: Array Cache Memory Nsc_arch Params
