lib/sim/node.pp.mli: Nsc_arch
