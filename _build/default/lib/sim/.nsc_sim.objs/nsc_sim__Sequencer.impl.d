lib/sim/sequencer.pp.ml: Codegen Decode Encode Engine Float Hashtbl Interrupt List Node Nsc_arch Nsc_diagram Nsc_microcode Option Printf Program Resource Semantic
