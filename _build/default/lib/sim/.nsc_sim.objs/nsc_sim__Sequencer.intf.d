lib/sim/sequencer.pp.mli: Engine Node Nsc_arch Nsc_diagram Nsc_microcode
