lib/sim/stats.pp.ml: Nsc_arch Params Printf Sequencer
