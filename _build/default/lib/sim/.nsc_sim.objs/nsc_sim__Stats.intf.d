lib/sim/stats.pp.mli: Nsc_arch Sequencer
