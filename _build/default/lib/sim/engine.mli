(** Execution of one pipeline instruction on a node.

    The engine combines a per-element functional dataflow evaluation (exact
    numerics, including register-file feedback queues and shift/delay
    streams) with a pipeline-accurate analytic timing model (fill to the
    critical-path depth, then one element per cycle degraded by memory-plane
    port contention — see {!Nsc_checker.Timing.estimated_cycles}).

    When [honor_timing] is set (the default), misaligned operand streams are
    paired exactly as the synchronous hardware would pair them — element
    [e] of the late stream meets element [e + skew] of the early one — so a
    diagram with a missing delay queue computes visibly wrong results, which
    is what the paper's proposed visual debugger is for. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type trace = {
  unit_values : (Nsc_arch.Resource.fu_id * int, float) Hashtbl.t;
  vlen : int;
}
val trace_value :
  trace -> fu:Nsc_arch.Resource.fu_id -> element:int -> float option
type result = {
  cycles : int;
  flops : int;
  elements : int;
  writes : int;
  events : Nsc_arch.Interrupt.event list;
  last_values : (Nsc_arch.Resource.fu_id * float) list;
  trace : trace option;
}
val max_recorded_events : int
val run_general :
  Node.t ->
  ?record_trace:bool ->
  ?honor_timing:bool -> Nsc_diagram.Semantic.t -> result

(** Execute one pipeline instruction.  Dispatches to a dense
    topological-order evaluator when the diagram is aligned and acyclic
    (the checked, production case) and to the general memoized evaluator
    otherwise; [force_general] pins the general path (used by the
    equivalence property tests). *)
val run :
  Node.t ->
  ?record_trace:bool ->
  ?honor_timing:bool ->
  ?force_general:bool -> Nsc_diagram.Semantic.t -> result
