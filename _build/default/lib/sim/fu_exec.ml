(** Functional-unit operation semantics.

    Floating point is IEEE double throughout (the NSC's 64-bit words).
    Integer/logical operations act on the integer part of the operands, as
    the double-box units reuse the floating datapath's registers. *)

open Nsc_arch

let as_int x = Int64.of_float x
let of_int i = Int64.to_float i

(** Execute [op] on operands [a] (and [b]; ignored by unary operations). *)
let apply (op : Opcode.t) a b =
  match op with
  | Opcode.Pass -> a
  | Opcode.Fadd -> a +. b
  | Opcode.Fsub -> a -. b
  | Opcode.Fmul -> a *. b
  | Opcode.Fdiv -> a /. b
  | Opcode.Fneg -> -.a
  | Opcode.Fabs -> Float.abs a
  | Opcode.Fcmp c ->
      let holds =
        match c with
        | Opcode.Lt -> a < b
        | Opcode.Le -> a <= b
        | Opcode.Eq -> a = b
        | Opcode.Ne -> a <> b
        | Opcode.Ge -> a >= b
        | Opcode.Gt -> a > b
      in
      if holds then 1.0 else 0.0
  | Opcode.Iadd -> of_int (Int64.add (as_int a) (as_int b))
  | Opcode.Isub -> of_int (Int64.sub (as_int a) (as_int b))
  | Opcode.Imul -> of_int (Int64.mul (as_int a) (as_int b))
  | Opcode.Iand -> of_int (Int64.logand (as_int a) (as_int b))
  | Opcode.Ior -> of_int (Int64.logor (as_int a) (as_int b))
  | Opcode.Ixor -> of_int (Int64.logxor (as_int a) (as_int b))
  | Opcode.Ishl -> of_int (Int64.shift_left (as_int a) (Int64.to_int (as_int b) land 63))
  | Opcode.Ishr ->
      of_int (Int64.shift_right (as_int a) (Int64.to_int (as_int b) land 63))
  | Opcode.Max -> Float.max a b
  | Opcode.Min -> Float.min a b

(** Exception the execution would trap, if any. *)
let trapped (op : Opcode.t) a b result =
  ignore a;
  let is_div = match op with Opcode.Fdiv -> true | _ -> false in
  Interrupt.classify ~op_is_divide:is_div
    ~divisor:(if is_div then Some b else None)
    result
