(** Functional-unit operation semantics.

    Floating point is IEEE double throughout (the NSC's 64-bit words).
    Integer/logical operations act on the integer part of the operands, as
    the double-box units reuse the floating datapath's registers. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

val as_int : float -> int64
val of_int : int64 -> float
val apply : Nsc_arch.Opcode.t -> Float.t -> Float.t -> Float.t
val trapped :
  Nsc_arch.Opcode.t ->
  'a -> float -> float -> Nsc_arch.Interrupt.exception_kind option
