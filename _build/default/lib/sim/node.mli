(** Simulated state of one NSC node: memory planes and caches.

    Functional units and the switch are stateless between instructions (the
    pipeline configuration is carried entirely by each microinstruction);
    register-file queues are zero-primed at the start of every instruction,
    so the only persistent state is storage. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type t = {
  params : Nsc_arch.Params.t;
  planes : Nsc_arch.Memory.store array;
  caches : Nsc_arch.Cache.t array;
}
(** A fresh node: zeroed memory planes and caches. *)
val create : Nsc_arch.Params.t -> t
val plane : t -> int -> Nsc_arch.Memory.store
val cache : t -> int -> Nsc_arch.Cache.t
val read_plane : t -> plane:int -> addr:int -> float
val write_plane : t -> plane:int -> addr:int -> float -> unit
(** Bulk-load host data into a plane — how problems reach the machine. *)
val load_array : t -> plane:int -> base:int -> float array -> unit
(** Read a contiguous range back out of a plane. *)
val dump_array : t -> plane:int -> base:int -> len:int -> float array
(** Load a cache's DMA-side buffer and swap it to the pipeline side. *)
val stage_cache : t -> cache:int -> base:int -> float array -> unit
val clear : t -> unit
