test/main.mli:
