test/suite_apps.ml: Alcotest Array Float Grid Jacobi List Multigrid Nsc_apps Nsc_checker Nsc_sim Option Parallel Poisson Redblack Result Util
