test/suite_arch.ml: Alcotest Als Capability Knowledge List Nsc_arch Opcode Params Resource String Switch Util
