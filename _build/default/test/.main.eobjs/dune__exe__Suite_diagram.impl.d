test/suite_diagram.ml: Alcotest Als Build Connection Dma_spec Fu_config Geometry Icon List Nsc_arch Nsc_diagram Opcode Option Params Pipeline Program Resource Result Util
