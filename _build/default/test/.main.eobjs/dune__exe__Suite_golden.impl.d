test/suite_golden.ml: Alcotest Als Filename Geometry Nsc_apps Nsc_arch Nsc_diagram Nsc_editor Option Pipeline Program Sys Util
