test/suite_lang.ml: Alcotest Array Ast Compile Dag List Nsc_arch Nsc_checker Nsc_diagram Nsc_lang Nsc_microcode Nsc_sim Opcode Parser Printf Result String Util
