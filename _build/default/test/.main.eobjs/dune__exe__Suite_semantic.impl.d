test/suite_semantic.ml: Alcotest Als Build Connection Dma_spec Fu_config Geometry Icon List Nsc_apps Nsc_arch Nsc_diagram Pipeline Program Resource Result Semantic Serialize String Util Validate
