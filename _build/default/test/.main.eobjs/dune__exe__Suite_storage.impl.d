test/suite_storage.ml: Alcotest Cache List Memory Nsc_arch Params Register_file Shift_delay Util
