test/suite_switch.ml: Alcotest Dma Float Interrupt List Nsc_arch Params Resource Result Router Switch Util
