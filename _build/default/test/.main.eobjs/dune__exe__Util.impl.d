test/util.ml: Alcotest Als Build Fu_config Geometry Icon Knowledge List Nsc_arch Nsc_diagram Opcode Option Pipeline Program QCheck2 QCheck_alcotest Resource Semantic
