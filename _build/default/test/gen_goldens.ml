(* regenerate the golden render files *)
open Nsc_arch
open Nsc_diagram

let params = Knowledge.params Knowledge.default

let write path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let () =
  let dir = Sys.argv.(1) in
  (* icon gallery *)
  let pl = Pipeline.empty 1 in
  let add pl kind bypass x =
    match Pipeline.place_als params pl ~kind ~bypass ~pos:(Geometry.point x 2) () with
    | Ok (_, pl) -> pl
    | Error e -> failwith e
  in
  let pl = add pl Als.Singlet Als.No_bypass 4 in
  let pl = add pl Als.Doublet Als.No_bypass 20 in
  let pl = add pl Als.Doublet Als.Keep_head 36 in
  let pl = add pl Als.Triplet Als.No_bypass 52 in
  write (Filename.concat dir "icon_gallery.txt")
    (Nsc_editor.Render_ascii.render_pipeline params pl);
  (* jacobi sweep diagram, ASCII and SVG *)
  let b = Nsc_apps.Jacobi.build Knowledge.default (Nsc_apps.Grid.cube 5) ~tol:1e-6 ~max_iters:10 in
  let sweep = Option.get (Program.find_pipeline b.Nsc_apps.Jacobi.program 2) in
  write (Filename.concat dir "jacobi_sweep.txt")
    (Nsc_editor.Render_ascii.render_pipeline params sweep);
  write (Filename.concat dir "jacobi_sweep.svg")
    (Nsc_editor.Render_svg.render_pipeline params sweep);
  (* shipped program assets for the CLI, when a second directory is given *)
  if Array.length Sys.argv > 2 then begin
    let adir = Sys.argv.(2) in
    Serialize.save b.Nsc_apps.Jacobi.program
      ~path:(Filename.concat adir "jacobi3d_5.nsc");
    let mg =
      Nsc_apps.Multigrid.build Knowledge.default (Nsc_apps.Multigrid.grid1 17)
        ~cycles:2 ~nu1:2 ~nu2:2 ~nu_coarse:20
    in
    Serialize.save mg.Nsc_apps.Multigrid.program
      ~path:(Filename.concat adir "multigrid_17.nsc");
    let oc = open_out (Filename.concat adir "jacobi1d.lang") in
    output_string oc
      "# 1-D Jacobi relaxation in the pipeline language\n\
       array u[62]    plane 0\n\
       array g[62]    plane 1\n\
       array mask[62] plane 2\n\
       array unew[62] plane 3\n\
       array f[62]    plane 4\n\
       scalar r\n\
       g = f * 0.000252518875785965\n\
       while r > 0.000001 max_iters 4000 {\n\
       unew = mask * ((u[-1] + u[+1] - g) * 0.5)\n\
       r = maxreduce(abs(unew - u))\n\
       u = unew + 0.0\n\
       }\n";
    close_out oc
  end;
  print_endline "goldens written"
