(* Architecture knowledge base: parameters, resources, ALS structure,
   opcodes, capabilities. *)

open Nsc_arch
open Util

let default = Params.default

let params_tests =
  [
    case "default parameters are self-consistent" (fun () ->
        check_int "no problems" 0 (List.length (Params.validate default)));
    case "node has the paper's 32 functional units" (fun () ->
        check_int "fus" 32 (Params.n_functional_units default));
    case "peak node rate is the paper's 640 MFLOPS" (fun () ->
        check_float "mflops" 640.0 (Params.peak_mflops default));
    case "64-node machine approaches the paper's 40 GFLOPS" (fun () ->
        check_float "gflops" 40.96 (Params.peak_gflops_machine default));
    case "node memory is the paper's 2 Gbytes" (fun () ->
        check_int "bytes" (2 * 1024 * 1024 * 1024) (Params.node_memory_bytes default));
    case "subset model is also self-consistent" (fun () ->
        check_int "no problems" 0 (List.length (Params.validate Params.subset_model)));
    case "subset model has no triplets" (fun () ->
        check_int "triplets" 0 Params.subset_model.Params.n_triplets);
    case "validate rejects zero ALSs" (fun () ->
        let bad = { default with Params.n_singlets = 0; n_doublets = 0; n_triplets = 0 } in
        check_bool "flagged" true (Params.validate bad <> []));
    case "validate rejects delay queues deeper than the register file" (fun () ->
        let bad = { default with Params.rf_max_delay = default.Params.rf_registers + 1 } in
        check_bool "flagged" true (Params.validate bad <> []));
    case "validate rejects too few DMA engines" (fun () ->
        let bad = { default with Params.plane_dma_slots = 1 } in
        check_bool "flagged" true (Params.validate bad <> []));
    case "validate rejects a negative reconfiguration cost" (fun () ->
        let bad = { default with Params.reconfig_cycles = -1 } in
        check_bool "flagged" true (Params.validate bad <> []));
  ]

let resource_tests =
  [
    case "ALS sizes follow singlets-doublets-triplets order" (fun () ->
        check_int "first singlet" 1 (Resource.als_size default 0);
        check_int "first doublet" 2 (Resource.als_size default default.Params.n_singlets);
        check_int "first triplet" 3
          (Resource.als_size default (default.Params.n_singlets + default.Params.n_doublets)));
    case "global index round-trips over every unit" (fun () ->
        List.iter
          (fun fu ->
            let g = Resource.fu_global_index default fu in
            check_bool "roundtrip" true
              (Resource.equal_fu_id fu (Resource.fu_of_global_index default g)))
          (Resource.all_fus default));
    case "global indices are dense and complete" (fun () ->
        let idxs =
          List.map (Resource.fu_global_index default) (Resource.all_fus default)
          |> List.sort_uniq compare
        in
        check_int "count" 32 (List.length idxs);
        check_int "min" 0 (List.hd idxs);
        check_int "max" 31 (List.nth idxs 31));
    case "singlet units have only floating point" (fun () ->
        check_bool "float" true
          (Resource.fu_has_capability default { Resource.als = 0; slot = 0 } Capability.Float);
        check_bool "no int" false
          (Resource.fu_has_capability default { Resource.als = 0; slot = 0 }
             Capability.Int_logical);
        check_bool "no minmax" false
          (Resource.fu_has_capability default { Resource.als = 0; slot = 0 }
             Capability.Min_max));
    case "doublet head is the double-box unit; tail has min/max" (fun () ->
        let d = default.Params.n_singlets in
        check_bool "head int" true
          (Resource.fu_has_capability default { Resource.als = d; slot = 0 }
             Capability.Int_logical);
        check_bool "tail minmax" true
          (Resource.fu_has_capability default { Resource.als = d; slot = 1 }
             Capability.Min_max);
        check_bool "head not minmax" false
          (Resource.fu_has_capability default { Resource.als = d; slot = 0 }
             Capability.Min_max));
    case "triplet middle unit is plain floating point" (fun () ->
        let t = default.Params.n_singlets + default.Params.n_doublets in
        check_bool "no int" false
          (Resource.fu_has_capability default { Resource.als = t; slot = 1 }
             Capability.Int_logical);
        check_bool "no minmax" false
          (Resource.fu_has_capability default { Resource.als = t; slot = 1 }
             Capability.Min_max));
    case "fu_valid rejects out-of-range slots" (fun () ->
        check_bool "bad slot" false (Resource.fu_valid default { Resource.als = 0; slot = 1 });
        check_bool "bad als" false (Resource.fu_valid default { Resource.als = 99; slot = 0 }));
    case "source codes round-trip for every source" (fun () ->
        let kb = Knowledge.default in
        List.iter
          (fun src ->
            let code = Resource.source_code default src in
            match Resource.source_of_code default code with
            | Some src' -> check_bool "roundtrip" true (Resource.equal_source src src')
            | None -> Alcotest.fail "decode failed")
          (Knowledge.all_sources kb));
    case "source code 0 means unrouted" (fun () ->
        check_bool "none" true (Resource.source_of_code default 0 = None));
    case "source/sink names are distinct" (fun () ->
        let kb = Knowledge.default in
        let names = List.map Resource.sink_to_string (Knowledge.all_sinks kb) in
        check_int "unique" (List.length names)
          (List.length (List.sort_uniq String.compare names)));
  ]

let als_tests =
  [
    case "kind_of agrees with als_size" (fun () ->
        List.iter
          (fun a ->
            check_int "size" (Resource.als_size default a)
              (Als.kind_size (Als.kind_of default a)))
          (Resource.all_als default));
    case "bypass is a doublet-only feature" (fun () ->
        check_int "singlet" 1 (List.length (Als.legal_bypasses ~size:1));
        check_int "doublet" 3 (List.length (Als.legal_bypasses ~size:2));
        check_int "triplet" 1 (List.length (Als.legal_bypasses ~size:3)));
    case "active slots under bypass" (fun () ->
        Alcotest.(check (list int)) "keep head" [ 0 ] (Als.active_slots ~size:2 Als.Keep_head);
        Alcotest.(check (list int)) "keep tail" [ 1 ] (Als.active_slots ~size:2 Als.Keep_tail);
        Alcotest.(check (list int)) "full" [ 0; 1; 2 ] (Als.active_slots ~size:3 Als.No_bypass));
    case "external inputs: head exposes both ports, chained slots expose B" (fun () ->
        let ins = Als.external_inputs ~size:3 Als.No_bypass in
        check_int "count" 4 (List.length ins);
        check_bool "0a" true (List.mem (0, Resource.A) ins);
        check_bool "0b" true (List.mem (0, Resource.B) ins);
        check_bool "1b" true (List.mem (1, Resource.B) ins);
        check_bool "2b" true (List.mem (2, Resource.B) ins));
    case "a bypassed doublet exposes the surviving unit's two ports" (fun () ->
        let ins = Als.external_inputs ~size:2 Als.Keep_tail in
        check_bool "1a" true (List.mem (1, Resource.A) ins);
        check_bool "1b" true (List.mem (1, Resource.B) ins);
        check_int "count" 2 (List.length ins));
    case "chain predecessors" (fun () ->
        check_bool "slot0 has none" true
          (Als.chain_predecessor ~size:3 Als.No_bypass ~slot:0 = None);
        check_bool "slot2 chains from slot1" true
          (Als.chain_predecessor ~size:3 Als.No_bypass ~slot:2 = Some 1);
        check_bool "bypassed tail has none" true
          (Als.chain_predecessor ~size:2 Als.Keep_tail ~slot:1 = None));
    case "output slot respects bypass" (fun () ->
        check_int "full doublet" 1 (Als.output_slot ~size:2 Als.No_bypass);
        check_int "keep head" 0 (Als.output_slot ~size:2 Als.Keep_head));
  ]

let opcode_tests =
  [
    case "mnemonics round-trip" (fun () ->
        List.iter
          (fun op ->
            match Opcode.of_mnemonic (Opcode.mnemonic op) with
            | Some op' -> check_bool "roundtrip" true (Opcode.equal op op')
            | None -> Alcotest.fail "of_mnemonic failed")
          Opcode.all);
    case "codes round-trip and 0 is reserved" (fun () ->
        check_bool "zero" true (Opcode.of_code 0 = None);
        List.iter
          (fun op ->
            match Opcode.of_code (Opcode.to_code op) with
            | Some op' -> check_bool "roundtrip" true (Opcode.equal op op')
            | None -> Alcotest.fail "of_code failed")
          Opcode.all);
    case "capability demands match the machine's asymmetries" (fun () ->
        check_bool "iadd" true
          (Capability.equal (Opcode.required_capability Opcode.Iadd) Capability.Int_logical);
        check_bool "max" true
          (Capability.equal (Opcode.required_capability Opcode.Max) Capability.Min_max);
        check_bool "fadd" true
          (Capability.equal (Opcode.required_capability Opcode.Fadd) Capability.Float));
    case "arity: pass/neg/abs are unary, the rest binary" (fun () ->
        check_int "pass" 1 (Opcode.arity Opcode.Pass);
        check_int "fabs" 1 (Opcode.arity Opcode.Fabs);
        check_int "fadd" 2 (Opcode.arity Opcode.Fadd);
        check_int "max" 2 (Opcode.arity Opcode.Max));
    case "divide is the slowest floating operation" (fun () ->
        let lat = default.Params.latencies in
        check_bool "fdiv slowest" true
          (List.for_all
             (fun op -> Opcode.latency lat op <= Opcode.latency lat Opcode.Fdiv)
             Opcode.all));
    case "flop accounting excludes pass and integer ops" (fun () ->
        check_bool "pass" false (Opcode.is_flop Opcode.Pass);
        check_bool "iadd" false (Opcode.is_flop Opcode.Iadd);
        check_bool "fmul" true (Opcode.is_flop Opcode.Fmul);
        check_bool "max" true (Opcode.is_flop Opcode.Max));
  ]

let knowledge_tests =
  [
    case "singlets may not run integer or min/max operations" (fun () ->
        let ops = Knowledge.legal_opcodes kb { Resource.als = 0; slot = 0 } in
        check_bool "no iadd" false (List.exists (Opcode.equal Opcode.Iadd) ops);
        check_bool "no max" false (List.exists (Opcode.equal Opcode.Max) ops);
        check_bool "fadd ok" true (List.exists (Opcode.equal Opcode.Fadd) ops));
    case "units_for_opcode Max finds exactly the min/max units" (fun () ->
        let units = Knowledge.units_for_opcode kb Opcode.Max in
        (* one per doublet and one per triplet *)
        check_int "count" (default.Params.n_doublets + default.Params.n_triplets)
          (List.length units));
    case "every source is legal for a fresh sink" (fun () ->
        let table = Switch.empty default in
        let legal =
          Knowledge.legal_sources_for kb table
            (Resource.Snk_fu ({ Resource.als = 0; slot = 0 }, Resource.A))
        in
        (* everything except the unit's own output *)
        check_int "count" (List.length (Knowledge.all_sources kb) - 1) (List.length legal));
    case "summary quotes the peak rate" (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "has 640" true (contains (Knowledge.summary kb) "640"));
  ]

let suite =
  [
    ("arch:params", params_tests);
    ("arch:resource", resource_tests);
    ("arch:als", als_tests);
    ("arch:opcode", opcode_tests);
    ("arch:knowledge", knowledge_tests);
  ]
