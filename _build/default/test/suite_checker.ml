(* The checker: every rule must fire on a violation and stay silent on the
   valid programs. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker
open Util

let has_rule rule ds = List.exists (fun d -> Diagnostic.equal_rule d.Diagnostic.rule rule) ds

let errors_of_rule rule ds =
  List.filter
    (fun d -> Diagnostic.is_error d && Diagnostic.equal_rule d.Diagnostic.rule rule)
    ds

let check_pl ?(level = `Complete) pl = Checker.check_pipeline kb ~level pl

let rule_tests =
  [
    case "the valid vecadd program checks clean" (fun () ->
        let prog, _ = vecadd_program () in
        check_int "no findings" 0 (List.length (Checker.check_program kb prog)));
    case "capability: integer op on a singlet is an error" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) ~b:(Fu_config.From_constant 2.0)
               Opcode.Iadd)
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Capability (check_pl pl) <> []));
    case "capability: max on a doublet tail is legal" (fun () ->
        let pl, icon = pipeline_with Als.Doublet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:1
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) ~b:(Fu_config.From_feedback 1)
               Opcode.Max)
        in
        check_bool "silent" true (errors_of_rule Diagnostic.Capability (check_pl pl) = []));
    case "plane write exclusivity: a second writer is an error" (fun () ->
        let pl, i0 = pipeline_with Als.Singlet in
        let i1, pl =
          Build.fail_on_error
            (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 40 4) ())
        in
        let wire pl icon off =
          Build.pad_to_mem pl ~icon ~pad:(Icon.Out_pad 0) ~plane:5 ~var:"" ~offset:off ()
        in
        ignore wire;
        let out pl icon off =
          let _, pl =
            Pipeline.add_connection pl
              ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
              ~dst:(Connection.Direct_memory 5)
              ~spec:(Dma_spec.make ~offset:off (Dma_spec.To_plane 5)) ()
          in
          pl
        in
        let pl = out pl i0 0 in
        let pl = out pl i1 1000 in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Plane_write_exclusive (check_pl ~level:`Interactive pl)
          <> []));
    case "DMA engines: a fifth stream on one plane is an error" (fun () ->
        let pl, icon = pipeline_with Als.Triplet in
        let i1, pl =
          Build.fail_on_error
            (Pipeline.place_als params pl ~kind:Als.Triplet ~pos:(Geometry.point 40 4) ())
        in
        let wire pl icon pad off =
          let _, pl =
            Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
              ~dst:(Connection.Pad { icon; pad })
              ~spec:(Dma_spec.make ~offset:off (Dma_spec.To_plane 0)) ()
          in
          pl
        in
        let pl = wire pl icon (Icon.In_pad (0, Resource.A)) 0 in
        let pl = wire pl icon (Icon.In_pad (0, Resource.B)) 1 in
        let pl = wire pl icon (Icon.In_pad (1, Resource.B)) 2 in
        let pl = wire pl icon (Icon.In_pad (2, Resource.B)) 3 in
        let pl = wire pl i1 (Icon.In_pad (0, Resource.A)) 4 in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Dma_range (check_pl ~level:`Interactive pl) <> []));
    case "read contention: three streams on a dual-ported plane warn" (fun () ->
        let pl, icon = pipeline_with Als.Triplet in
        let wire pl pad off =
          let _, pl =
            Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
              ~dst:(Connection.Pad { icon; pad })
              ~spec:(Dma_spec.make ~offset:off (Dma_spec.To_plane 0)) ()
          in
          pl
        in
        let pl = wire pl (Icon.In_pad (0, Resource.A)) 0 in
        let pl = wire pl (Icon.In_pad (0, Resource.B)) 1 in
        let pl = wire pl (Icon.In_pad (1, Resource.B)) 2 in
        let ds = check_pl ~level:`Interactive pl in
        check_bool "warns" true (has_rule Diagnostic.Plane_read_contention ds);
        check_bool "not an error" true
          (errors_of_rule Diagnostic.Plane_read_contention ds = []));
    case "plane hazard: overlapping read+write is an error" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~offset:0 (Dma_spec.To_plane 0)) ()
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 0)
            ~spec:(Dma_spec.make ~offset:0 (Dma_spec.To_plane 0)) ()
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Plane_hazard (check_pl ~level:`Interactive pl) <> []));
    case "plane hazard: disjoint read+write only warns" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl = Pipeline.with_vector_length pl 8 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~offset:0 (Dma_spec.To_plane 0)) ()
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 0)
            ~spec:(Dma_spec.make ~offset:1000 (Dma_spec.To_plane 0)) ()
        in
        let ds = check_pl ~level:`Interactive pl in
        check_bool "warns" true (has_rule Diagnostic.Plane_hazard ds);
        check_bool "no error" true (errors_of_rule Diagnostic.Plane_hazard ds = []));
    case "binding: unbound operand is an error only at complete level" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl = Pipeline.set_config pl ~id:icon ~slot:0 (Fu_config.make Opcode.Fadd) in
        check_bool "interactive tolerant" true
          (errors_of_rule Diagnostic.Binding (check_pl ~level:`Interactive pl) = []);
        check_bool "complete strict" true
          (errors_of_rule Diagnostic.Binding (check_pl ~level:`Complete pl) <> []));
    case "binding: a wire into a constant-bound port is an error" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) ~b:(Fu_config.From_constant 2.0)
               Opcode.Fadd)
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Binding (check_pl ~level:`Interactive pl) <> []));
    case "binding: chain on a headless port is an error" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:Fu_config.From_chain ~b:(Fu_config.From_constant 0.0)
               Opcode.Fadd)
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Binding (check_pl ~level:`Interactive pl) <> []));
    case "register file: feedback deeper than the queue is an error" (fun () ->
        let pl, icon = pipeline_with Als.Doublet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:1
            (Fu_config.make ~a:(Fu_config.From_constant 1.0)
               ~b:(Fu_config.From_feedback (params.Params.rf_max_delay + 1)) Opcode.Max)
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Register_file (check_pl ~level:`Interactive pl) <> []));
    case "stream length: a count disagreeing with vlen is an error" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl = Pipeline.with_vector_length pl 8 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~count:4 (Dma_spec.To_plane 0)) ()
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Stream_length (check_pl ~level:`Interactive pl) <> []));
    case "unused: an unconsumed result warns" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) Opcode.Fabs)
        in
        check_bool "warns" true (has_rule Diagnostic.Unused (check_pl ~level:`Interactive pl)));
    case "switch cycle: mutual feeding through the switch is an error" (fun () ->
        let pl, i0 = pipeline_with Als.Singlet in
        let i1, pl =
          Build.fail_on_error
            (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 40 4) ())
        in
        let pl = Build.pad_to_pad pl ~from_icon:i0 ~from_pad:(Icon.Out_pad 0) ~to_icon:i1 ~to_pad:(Icon.In_pad (0, Resource.A)) in
        let pl = Build.pad_to_pad pl ~from_icon:i1 ~from_pad:(Icon.Out_pad 0) ~to_icon:i0 ~to_pad:(Icon.In_pad (0, Resource.A)) in
        let pl = Pipeline.set_config pl ~id:i0 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch Opcode.Fabs) in
        let pl = Pipeline.set_config pl ~id:i1 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch Opcode.Fabs) in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Switch_cycle (check_pl ~level:`Complete pl) <> []));
    case "timing: misaligned operands are an error at complete level" (fun () ->
        let pl, icon = pipeline_with Als.Doublet in
        (* slot1 mixes a chained input (late) with a fresh memory stream *)
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~offset:0 (Dma_spec.To_plane 0)) ()
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 1)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (1, Resource.B) })
            ~spec:(Dma_spec.make ~offset:0 (Dma_spec.To_plane 1)) ()
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 2.0) Opcode.Fmul)
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:1
            (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd)
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 1 })
            ~dst:(Connection.Direct_memory 2)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 2)) ()
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Timing (check_pl ~level:`Complete pl) <> []);
        (* and the balancer fixes it *)
        let fixed, rounds = Balance.balance_pipeline kb pl in
        check_bool "rounds > 0" true (rounds > 0);
        check_bool "clean" true
          (errors_of_rule Diagnostic.Timing (check_pl ~level:`Complete fixed) = []));
    case "control: while watching an unengaged unit is an error" (fun () ->
        let prog, _ = vecadd_program () in
        let prog =
          Program.set_control prog
            [
              Program.While
                {
                  condition =
                    {
                      Interrupt.unit_watched = { Resource.als = 15; slot = 2 };
                      relation = Interrupt.Rgt;
                      threshold = 0.0;
                    };
                  max_iterations = 5;
                  body = [ Program.Exec 1 ];
                };
            ]
        in
        check_bool "fires" true
          (Checker.check_program kb prog
          |> List.exists (fun d ->
                 Diagnostic.is_error d
                 && Diagnostic.equal_rule d.Diagnostic.rule Diagnostic.Control)));
    case "control: an unbounded while warns" (fun () ->
        let prog, icon = vecadd_program () in
        ignore icon;
        let prog =
          Program.set_control prog
            [
              Program.While
                {
                  condition =
                    {
                      Interrupt.unit_watched = { Resource.als = 0; slot = 0 };
                      relation = Interrupt.Rgt;
                      threshold = 0.0;
                    };
                  max_iterations = 0;
                  body = [ Program.Exec 1 ];
                };
            ]
        in
        check_bool "warns" true (has_rule Diagnostic.Control (Checker.check_program kb prog)));
    case "variable bounds: a stream past the array end is an error" (fun () ->
        let prog, icon = vecadd_program ~n:16 () in
        let pl = Option.get (Program.find_pipeline prog 1) in
        (* re-point x's stream beyond the declared 16 elements *)
        let pl = Pipeline.remove_connection pl 0 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~variable:"x" ~offset:8 (Dma_spec.To_plane 0)) ()
        in
        let prog = Program.update_pipeline prog pl in
        check_bool "fires" true
          (Checker.check_program kb prog
          |> List.exists (fun d ->
                 Diagnostic.is_error d
                 && Diagnostic.equal_rule d.Diagnostic.rule Diagnostic.Dma_range)));
  ]

let menu_tests =
  [
    case "legal_sources excludes an already-driven arrangement" (fun () ->
        let prog, icon = vecadd_program () in
        ignore icon;
        let pl = Option.get (Program.find_pipeline prog 1) in
        let snk = Resource.Snk_fu ({ Resource.als = 0; slot = 0 }, Resource.A) in
        (* that sink is already wired: no sources remain legal for it *)
        check_int "none" 0
          (List.length
             (Checker.legal_sources kb ~lookup:(Program.variable_base prog) pl snk)));
    case "writable_planes shrinks as writers are placed" (fun () ->
        let prog, _ = vecadd_program () in
        let pl = Option.get (Program.find_pipeline prog 1) in
        let planes = Checker.writable_planes kb ~lookup:(Program.variable_base prog) pl in
        check_int "one taken" (params.Params.n_memory_planes - 1) (List.length planes);
        check_bool "plane 2 gone" true (not (List.mem 2 planes)));
    case "legal_opcodes matches unit capabilities" (fun () ->
        let d = params.Params.n_singlets in
        let ops_head = Checker.legal_opcodes kb { Resource.als = d; slot = 0 } in
        let ops_tail = Checker.legal_opcodes kb { Resource.als = d; slot = 1 } in
        check_bool "head has iadd" true (List.exists (Opcode.equal Opcode.Iadd) ops_head);
        check_bool "tail has max" true (List.exists (Opcode.equal Opcode.Max) ops_tail);
        check_bool "tail lacks iadd" false (List.exists (Opcode.equal Opcode.Iadd) ops_tail));
  ]

let timing_tests =
  [
    case "a lone memory-fed unit is ready after its latency" (fun () ->
        let prog, _ = vecadd_program () in
        let sem, _ = semantic_of_program prog 1 in
        let a = Timing.analyse params sem in
        check_int "depth" params.Params.latencies.Params.lat_fadd a.Timing.depth);
    case "chained units accumulate latency" (fun () ->
        let pl, icon = pipeline_with Als.Doublet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let pl = Pipeline.set_config pl ~id:icon ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 2.0) Opcode.Fmul) in
        let pl = Pipeline.set_config pl ~id:icon ~slot:1 (Fu_config.make ~a:Fu_config.From_chain Opcode.Fabs) in
        let sem, _ = Semantic.of_pipeline params pl in
        let a = Timing.analyse params sem in
        let lat = params.Params.latencies in
        check_int "depth" (lat.Params.lat_fmul + lat.Params.lat_fadd) a.Timing.depth);
    case "estimated cycles: fill plus one element per cycle" (fun () ->
        let prog, _ = vecadd_program ~n:100 () in
        let sem, _ = semantic_of_program prog 1 in
        let a = Timing.analyse params sem in
        check_int "cycles"
          (params.Params.latencies.Params.lat_fadd + 99)
          (Timing.estimated_cycles params sem a ~vlen:100));
    case "estimated cycles double under read contention" (fun () ->
        let pl, icon = pipeline_with Als.Triplet in
        let wire pl pad off =
          let _, pl =
            Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
              ~dst:(Connection.Pad { icon; pad })
              ~spec:(Dma_spec.make ~offset:off (Dma_spec.To_plane 0)) ()
          in
          pl
        in
        let pl = wire pl (Icon.In_pad (0, Resource.A)) 0 in
        let pl = wire pl (Icon.In_pad (0, Resource.B)) 1 in
        let pl = wire pl (Icon.In_pad (1, Resource.B)) 2 in
        let pl = Pipeline.set_config pl ~id:icon ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd) in
        let pl = Pipeline.set_config pl ~id:icon ~slot:1 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd) in
        let pl, _ = Balance.balance_pipeline kb pl in
        let sem, _ = Semantic.of_pipeline params pl in
        let a = Timing.analyse params sem in
        let c = Timing.estimated_cycles params sem a ~vlen:101 in
        check_int "II = 2" (a.Timing.depth + 200) c);
    case "balancing corrections name the early port" (fun () ->
        let pl, icon = pipeline_with Als.Doublet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 1)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (1, Resource.B) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ()
        in
        let pl = Pipeline.set_config pl ~id:icon ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 1.0) Opcode.Fadd) in
        let pl = Pipeline.set_config pl ~id:icon ~slot:1 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd) in
        let sem, _ = Semantic.of_pipeline params pl in
        let a = Timing.analyse params sem in
        (match Timing.balancing_corrections a with
        | [ (fu, Resource.B, d) ] ->
            check_int "slot 1" 1 fu.Resource.slot;
            check_int "delay = fadd latency" params.Params.latencies.Params.lat_fadd d
        | _ -> Alcotest.fail "expected exactly one correction on port B"));
  ]

let suite =
  [
    ("checker:rules", rule_tests);
    ("checker:menus", menu_tests);
    ("checker:timing", timing_tests);
  ]

(* appended: shift/delay legality *)
let shift_delay_tests =
  [
    case "a forward shift fed by a unit is an error" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let sd_icon, pl =
          Build.fail_on_error
            (Pipeline.place_shift_delay params pl ~mode:(Nsc_arch.Shift_delay.Shift 2)
               ~pos:(Geometry.point 40 4))
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) Opcode.Fabs)
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Pad { icon = sd_icon; pad = Icon.Flow_in })
            ()
        in
        check_bool "fires" true
          (errors_of_rule Diagnostic.Binding (check_pl ~level:`Interactive pl) <> []));
    case "a forward shift fed by memory is legal" (fun () ->
        let pl = Pipeline.empty 1 in
        let sd_icon, pl =
          Build.fail_on_error
            (Pipeline.place_shift_delay params pl ~mode:(Nsc_arch.Shift_delay.Shift 2)
               ~pos:(Geometry.point 40 4))
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon = sd_icon; pad = Icon.Flow_in })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        check_bool "silent" true
          (errors_of_rule Diagnostic.Binding (check_pl ~level:`Interactive pl) = []));
    case "an unfed shift/delay unit warns" (fun () ->
        let pl = Pipeline.empty 1 in
        let _, pl =
          Build.fail_on_error
            (Pipeline.place_shift_delay params pl ~mode:(Nsc_arch.Shift_delay.Delay 3)
               ~pos:(Geometry.point 40 4))
        in
        check_bool "warns" true (has_rule Diagnostic.Unused (check_pl ~level:`Interactive pl)));
  ]

let suite = suite @ [ ("checker:shift-delay", shift_delay_tests) ]
