(* The visual debugger: traced frames, annotated diagrams, anomaly scans. *)

open Nsc_arch
open Nsc_sim
open Util

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let traced_vecadd () =
  let prog, _ = vecadd_program ~n:8 () in
  let c = Result.get_ok (Nsc_microcode.Codegen.compile kb prog) in
  let node = Node.create params in
  Node.load_array node ~plane:0 ~base:0 (Array.init 8 (fun i -> float_of_int i));
  Node.load_array node ~plane:1 ~base:0 (Array.init 8 (fun i -> float_of_int (10 * i)));
  (prog, Result.get_ok (Nsc_debug.Stepper.run node c prog))

let tests =
  [
    case "a run yields one frame per executed instruction" (fun () ->
        let _, run = traced_vecadd () in
        check_int "frames" 1 (List.length run.Nsc_debug.Stepper.frames));
    case "frame values agree with the computation" (fun () ->
        let _, run = traced_vecadd () in
        let f = Option.get (Nsc_debug.Stepper.frame run ~ordinal:0) in
        (match Nsc_debug.Stepper.values_at f ~element:3 with
        | [ (_, v) ] -> check_float "3 + 30" 33.0 v
        | _ -> Alcotest.fail "expected one unit value"));
    case "annotated diagrams show the flowing values (paper section 6)" (fun () ->
        let _, run = traced_vecadd () in
        let f = Option.get (Nsc_debug.Stepper.frame run ~ordinal:0) in
        let s = Nsc_debug.Stepper.render_frame params run f ~element:3 in
        check_bool "value shown" true (contains s "=33");
        check_bool "header" true (contains s "element 3 of 8"));
    case "the frame limit caps recording" (fun () ->
        let prog, _ = vecadd_program ~n:4 () in
        let prog =
          Nsc_diagram.Program.set_control prog
            [ Nsc_diagram.Program.Repeat { count = 10; body = [ Nsc_diagram.Program.Exec 1 ] } ]
        in
        let c = Result.get_ok (Nsc_microcode.Codegen.compile kb prog) in
        let node = Node.create params in
        let run = Result.get_ok (Nsc_debug.Stepper.run node ~limit:3 c prog) in
        check_int "capped" 3 (List.length run.Nsc_debug.Stepper.frames));
    case "anomaly scan finds non-finite values" (fun () ->
        (* divide a stream by zero: every element becomes infinite *)
        let open Nsc_diagram in
        let pl, icon = pipeline_with Als.Singlet in
        let pl = Pipeline.with_vector_length pl 4 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 0.0)
               Opcode.Fdiv)
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 1)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ()
        in
        let prog = { (Program.empty "div0") with Program.pipelines = [ pl ] } in
        let c = Result.get_ok (Nsc_microcode.Codegen.compile kb prog) in
        let node = Node.create params in
        Node.load_array node ~plane:0 ~base:0 [| 1.; 2.; 3.; 4. |];
        let run = Result.get_ok (Nsc_debug.Stepper.run node c prog) in
        let f = List.hd run.Nsc_debug.Stepper.frames in
        check_int "four anomalies" 4 (List.length (Nsc_debug.Stepper.anomalies f)));
    case "a timing bug is visible in the annotated values" (fun () ->
        (* the misaligned doublet from the engine suite, inspected through
           the debugger: the annotated value differs from the aligned sum *)
        let open Nsc_diagram in
        let pl, icon = pipeline_with Als.Doublet in
        let pl = Pipeline.with_vector_length pl 16 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 1)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (1, Resource.B) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ()
        in
        let pl = Pipeline.set_config pl ~id:icon ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 1.0) Opcode.Fmul) in
        let pl = Pipeline.set_config pl ~id:icon ~slot:1 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd) in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 1 })
            ~dst:(Connection.Direct_memory 2)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 2)) ()
        in
        let node = Node.create params in
        Node.load_array node ~plane:0 ~base:0 (Array.make 16 1.0);
        Node.load_array node ~plane:1 ~base:0 (Array.init 16 (fun i -> float_of_int i));
        let sem, _ = Semantic.of_pipeline params pl in
        let r = Engine.run node ~record_trace:true sem in
        let tr = Option.get r.Engine.trace in
        let v =
          Option.get
            (Engine.trace_value tr
               ~fu:{ Resource.als = params.Params.n_singlets; slot = 1 }
               ~element:0)
        in
        (* aligned result would be 1.0 + 0.0 = 1.0; the skewed pipeline
           pairs y[lat_fmul] instead *)
        check_float "skewed value" (1.0 +. float_of_int params.Params.latencies.Params.lat_fmul) v);
  ]

let suite = [ ("debug:stepper", tests) ]
