(* Diagram layer: geometry, icons, pipelines, programs. *)

open Nsc_arch
open Nsc_diagram
open Util

let geometry_tests =
  [
    case "containment includes edges" (fun () ->
        let r = Geometry.rect 0 0 10 10 in
        check_bool "corner" true (Geometry.contains r (Geometry.point 10 10));
        check_bool "outside" false (Geometry.contains r (Geometry.point 11 10)));
    case "nearest respects the radius" (fun () ->
        let cands = [ (Geometry.point 0 0, "a"); (Geometry.point 5 5, "b") ] in
        check_bool "hit" true
          (Geometry.nearest ~within:2 (Geometry.point 1 1) cands = Some "a");
        check_bool "miss" true
          (Geometry.nearest ~within:1 (Geometry.point 3 3) cands = None));
    case "nearest picks the closest candidate" (fun () ->
        let cands = [ (Geometry.point 0 0, "a"); (Geometry.point 2 0, "b") ] in
        check_bool "closest" true
          (Geometry.nearest ~within:5 (Geometry.point 3 0) cands = Some "b"));
    case "translate and center" (fun () ->
        let r = Geometry.translate (Geometry.rect 0 0 4 6) (Geometry.point 10 20) in
        check_int "ox" 10 r.Geometry.ox;
        let ctr = Geometry.center r in
        check_int "cx" 12 ctr.Geometry.x;
        check_int "cy" 23 ctr.Geometry.y);
    case "negative extents are rejected" (fun () ->
        Alcotest.check_raises "rect" (Invalid_argument "Geometry.rect: negative extent")
          (fun () -> ignore (Geometry.rect 0 0 (-1) 2)));
  ]

let triplet_als = params.Params.n_singlets + params.Params.n_doublets

let icon_tests =
  [
    case "a triplet icon exposes 4 input pads and 3 output taps" (fun () ->
        let icon =
          Icon.make params ~id:0
            ~kind:(Icon.Als_icon { als = triplet_als; bypass = Als.No_bypass })
            ~pos:(Geometry.point 0 0)
        in
        let pads = Icon.pads params icon in
        let ins =
          List.filter (fun (p, _) -> match p with Icon.In_pad _ -> true | _ -> false) pads
        in
        let outs =
          List.filter (fun (p, _) -> match p with Icon.Out_pad _ -> true | _ -> false) pads
        in
        check_int "ins" 4 (List.length ins);
        check_int "outs" 3 (List.length outs));
    case "a bypassed doublet exposes one unit's pads" (fun () ->
        let icon =
          Icon.make params ~id:0
            ~kind:(Icon.Als_icon { als = params.Params.n_singlets; bypass = Als.Keep_tail })
            ~pos:(Geometry.point 0 0)
        in
        let pads = Icon.pads params icon in
        check_int "pads" 3 (List.length pads) (* a, b, out *));
    case "memory icons expose flow pads" (fun () ->
        let icon = Icon.make params ~id:1 ~kind:(Icon.Memory_icon 3) ~pos:(Geometry.point 0 0) in
        let pads = Icon.pads params icon in
        check_bool "in" true (List.mem_assoc Icon.Flow_in pads);
        check_bool "out" true (List.mem_assoc Icon.Flow_out pads));
    case "pad names round-trip" (fun () ->
        List.iter
          (fun pad ->
            match Icon.pad_of_string (Icon.pad_to_string pad) with
            | Some pad' -> check_bool "roundtrip" true (Icon.equal_pad pad pad')
            | None -> Alcotest.fail "parse failed")
          [ Icon.In_pad (0, Resource.A); Icon.In_pad (2, Resource.B); Icon.Out_pad 1;
            Icon.Flow_in; Icon.Flow_out ]);
    case "pad directions" (fun () ->
        check_bool "in consumes" true (Icon.pad_direction (Icon.In_pad (0, Resource.A)) = Icon.Consumes);
        check_bool "out produces" true (Icon.pad_direction (Icon.Out_pad 0) = Icon.Produces);
        check_bool "flow_out produces" true (Icon.pad_direction Icon.Flow_out = Icon.Produces));
    case "pad positions stay inside the bounding box" (fun () ->
        let icon =
          Icon.make params ~id:0
            ~kind:(Icon.Als_icon { als = triplet_als; bypass = Als.No_bypass })
            ~pos:(Geometry.point 7 3)
        in
        let bb = Icon.bounding_box params icon in
        List.iter
          (fun (pad, _) ->
            match Icon.pad_position params icon pad with
            | Some p -> check_bool "inside" true (Geometry.contains bb p)
            | None -> Alcotest.fail "pad has no position")
          (Icon.pads params icon));
  ]

let pipeline_tests =
  [
    case "place_als binds the lowest free structure of the kind" (fun () ->
        let pl = Pipeline.empty 1 in
        let i0, pl = Build.fail_on_error (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 0 0) ()) in
        let i1, pl = Build.fail_on_error (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 12 0) ()) in
        (match (Pipeline.icon_kind pl i0, Pipeline.icon_kind pl i1) with
        | Some (Icon.Als_icon { als = 0; _ }), Some (Icon.Als_icon { als = 1; _ }) -> ()
        | _ -> Alcotest.fail "unexpected binding"));
    case "the supply of each ALS kind is finite" (fun () ->
        let rec drain pl n =
          match Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 0 0) () with
          | Ok (_, pl) -> drain pl (n + 1)
          | Error _ -> n
        in
        check_int "singlets" params.Params.n_singlets (drain (Pipeline.empty 1) 0));
    case "bypass placement is doublet-only" (fun () ->
        match
          Pipeline.place_als params (Pipeline.empty 1) ~kind:Als.Triplet
            ~bypass:Als.Keep_head ~pos:(Geometry.point 0 0) ()
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "triplet bypass accepted");
    case "removing an icon removes its wires" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let pl = Pipeline.remove_icon pl icon in
        check_int "no icons" 0 (List.length pl.Pipeline.icons);
        check_int "no wires" 0 (List.length pl.Pipeline.connections));
    case "set_config rejects bad slots" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        Alcotest.check_raises "slot" (Invalid_argument "Pipeline.set_config: slot out of range")
          (fun () -> ignore (Pipeline.set_config pl ~id:icon ~slot:1 Fu_config.idle)));
    case "pad_at hit-tests within the given radius" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let ic = Option.get (Pipeline.find_icon pl icon) in
        let pos = Option.get (Icon.pad_position params ic (Icon.Out_pad 0)) in
        (match Pipeline.pad_at params pl ~within:1 pos with
        | Some (id, Icon.Out_pad 0) -> check_int "icon" icon id
        | _ -> Alcotest.fail "missed pad");
        check_bool "far away misses" true
          (Pipeline.pad_at params pl ~within:1 (Geometry.point 500 500) = None));
    case "vector length must be positive" (fun () ->
        Alcotest.check_raises "vlen"
          (Invalid_argument "Pipeline.with_vector_length: length must be >= 1") (fun () ->
            ignore (Pipeline.with_vector_length (Pipeline.empty 1) 0)));
    case "programmed_units counts configured slots" (fun () ->
        let pl, icon = pipeline_with Als.Triplet in
        check_int "none" 0 (Pipeline.programmed_units pl);
        let pl = Pipeline.set_config pl ~id:icon ~slot:1 (Fu_config.make Opcode.Fabs ~a:Fu_config.From_switch) in
        check_int "one" 1 (Pipeline.programmed_units pl));
  ]

let program_tests =
  [
    case "insert renumbers later pipelines" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline ~label:"a" prog in
        let prog, _ = Program.append_pipeline ~label:"b" prog in
        let prog, at = Program.insert_pipeline prog ~at:2 in
        check_int "inserted at" 2 at;
        check_int "count" 3 (Program.pipeline_count prog);
        check_string "b moved" "b"
          (Option.get (Program.find_pipeline prog 3)).Pipeline.label);
    case "delete renumbers down" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline ~label:"a" prog in
        let prog, _ = Program.append_pipeline ~label:"b" prog in
        let prog = Program.delete_pipeline prog ~index:1 in
        check_int "count" 1 (Program.pipeline_count prog);
        check_string "b is 1" "b" (Option.get (Program.find_pipeline prog 1)).Pipeline.label);
    case "copy inserts after the original" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline ~label:"a" prog in
        let prog, _ = Program.append_pipeline ~label:"b" prog in
        match Program.copy_pipeline prog ~index:1 with
        | Ok (prog, at) ->
            check_int "copy at 2" 2 at;
            check_string "copy label" "a"
              (Option.get (Program.find_pipeline prog 2)).Pipeline.label;
            check_string "b pushed" "b"
              (Option.get (Program.find_pipeline prog 3)).Pipeline.label
        | Error e -> Alcotest.fail e);
    case "move reorders" (fun () ->
        let prog = Program.empty "p" in
        let prog = List.fold_left (fun p l -> fst (Program.append_pipeline ~label:l p)) prog [ "a"; "b"; "c" ] in
        match Program.move_pipeline prog ~index:3 ~to_:1 with
        | Ok prog ->
            check_string "c first" "c" (Option.get (Program.find_pipeline prog 1)).Pipeline.label;
            check_string "a second" "a" (Option.get (Program.find_pipeline prog 2)).Pipeline.label
        | Error e -> Alcotest.fail e);
    case "duplicate declarations are refused" (fun () ->
        let prog = Program.empty "p" in
        let d = { Program.name = "x"; plane = 0; base = 0; length = 4 } in
        let prog = Result.get_ok (Program.declare prog d) in
        check_bool "dup" true (Result.is_error (Program.declare prog d)));
    case "effective control defaults to straight-line execution" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline prog in
        let prog, _ = Program.append_pipeline prog in
        check_bool "default" true
          (Program.effective_control prog
          = [ Program.Exec 1; Program.Exec 2; Program.Halt ]));
    case "referenced pipelines walks nested control" (fun () ->
        let prog = Program.empty "p" in
        let prog = List.fold_left (fun p _ -> fst (Program.append_pipeline p)) prog [ (); (); () ] in
        let prog =
          Program.set_control prog
            [ Program.Repeat { count = 2; body = [ Program.Exec 3; Program.Exec 1 ] } ]
        in
        Alcotest.(check (list int)) "refs" [ 1; 3 ] (Program.referenced_pipelines prog));
  ]

let suite =
  [
    ("diagram:geometry", geometry_tests);
    ("diagram:icon", icon_tests);
    ("diagram:pipeline", pipeline_tests);
    ("diagram:program", program_tests);
  ]
