(* The editor: gestures, menus, forms, incremental checking, rendering,
   session replay. *)

open Nsc_arch
open Nsc_diagram
open Nsc_editor
open Util

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Build the vecadd diagram purely through gestures. *)
let vecadd_by_gestures () =
  let st = State.create ~name:"vecadd" kb in
  let prog =
    List.fold_left
      (fun prog (name, plane) ->
        Result.get_ok (Program.declare prog { Program.name; plane; base = 0; length = 64 }))
      st.State.program
      [ ("x", 0); ("y", 1); ("z", 2) ]
  in
  let st = State.refresh { st with State.program = prog } in
  let st = Actions.press st Layout.B_vlen in
  let st = Actions.fill_and_submit st [ ("length", "64") ] in
  let st, icon = Actions.place st Layout.B_singlet ~x:30 ~y:8 in
  let icon = Option.get icon in
  let st = Actions.set_op st ~icon ~slot:0 Opcode.Fadd in
  let st = Actions.wire_memory_to_pad st ~icon ~pad:(Icon.In_pad (0, Resource.A)) ~plane:0 ~variable:"x" () in
  let st = Actions.wire_memory_to_pad st ~icon ~pad:(Icon.In_pad (0, Resource.B)) ~plane:1 ~variable:"y" () in
  let st = Actions.wire_pad_to_memory st ~icon ~pad:(Icon.Out_pad 0) ~plane:2 ~variable:"z" () in
  (st, icon)

let gesture_tests =
  [
    case "dragging an icon button places an ALS (Figure 6)" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_triplet ~x:20 ~y:5 in
        check_bool "placed" true (icon <> None);
        let pl = State.current_pipeline st in
        check_int "one icon" 1 (List.length pl.Pipeline.icons);
        match Pipeline.icon_kind pl (Option.get icon) with
        | Some (Icon.Als_icon { als; _ }) ->
            check_int "first triplet" (params.Params.n_singlets + params.Params.n_doublets) als
        | _ -> Alcotest.fail "not an ALS icon");
    case "dropping outside the drawing area cancels placement" (fun () ->
        let st = State.create kb in
        let st =
          Editor.run st
            [ Event.Mouse_down (Actions.button_center Layout.B_singlet);
              Event.Mouse_up (Geometry.point 0 0) ]
        in
        check_int "nothing placed" 0 (List.length (State.current_pipeline st).Pipeline.icons));
    case "the supply of ALSs is enforced on drop" (fun () ->
        let st = State.create kb in
        let rec place_n st n =
          if n = 0 then st else place_n (fst (Actions.place st Layout.B_singlet ~x:(n * 12) ~y:4)) (n - 1)
        in
        let st = place_n st 4 in
        let st, _ = Actions.place st Layout.B_singlet ~x:70 ~y:4 in
        check_int "only four" 4 (List.length (State.current_pipeline st).Pipeline.icons);
        check_bool "explains" true
          (contains (State.latest_message st) "already in use"));
    case "vecadd by gestures checks clean and compiles" (fun () ->
        let st, _ = vecadd_by_gestures () in
        let st = Actions.press st Layout.B_check in
        check_bool "clean" true (contains (State.latest_message st) "no findings");
        check_bool "compiles" true
          (Result.is_ok (Nsc_microcode.Codegen.compile kb st.State.program)));
    case "a second writer to a plane is rejected at gesture time" (fun () ->
        let st, icon = vecadd_by_gestures () in
        let before = List.length (State.current_pipeline st).Pipeline.connections in
        let st = Actions.wire_pad_to_memory st ~icon ~pad:(Icon.Out_pad 0) ~plane:2 ~variable:"z" () in
        check_int "wire count unchanged" before
          (List.length (State.current_pipeline st).Pipeline.connections);
        check_bool "explains" true (contains (State.latest_message st) "rejected"));
    case "rubber-band wiring connects two units (Figure 8)" (fun () ->
        let st = State.create kb in
        let st, i0 = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let st, i1 = Actions.place st Layout.B_singlet ~x:50 ~y:4 in
        let i0 = Option.get i0 and i1 = Option.get i1 in
        let st =
          Actions.rubber_connect st ~from_icon:i0 ~from_pad:(Icon.Out_pad 0) ~to_icon:i1
            ~to_pad:(Icon.In_pad (0, Resource.A))
        in
        check_int "one wire" 1 (List.length (State.current_pipeline st).Pipeline.connections));
    case "op menus list only the unit's capabilities (Figure 10)" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let st = Actions.click_unit st ~icon:(Option.get icon) ~slot:0 in
        (match st.State.mode with
        | State.Menu_open menu ->
            check_bool "no iadd" false
              (List.exists (fun (i : Menu.item) -> i.Menu.label = "iadd") menu.Menu.items);
            check_bool "fadd present" true
              (List.exists (fun (i : Menu.item) -> i.Menu.label = "fadd") menu.Menu.items)
        | _ -> Alcotest.fail "no menu opened"));
    case "constants bind through the pad menu" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let icon = Option.get icon in
        let st = Actions.set_op st ~icon ~slot:0 Opcode.Fmul in
        let st = Actions.bind_constant st ~icon ~slot:0 ~port:Resource.B (1.0 /. 6.0) in
        match Pipeline.config_of (State.current_pipeline st) ~id:icon ~slot:0 with
        | Some cfg ->
            check_bool "const" true
              (Fu_config.equal_input_binding cfg.Fu_config.b
                 (Fu_config.From_constant (1.0 /. 6.0)))
        | None -> Alcotest.fail "no config");
    case "feedback binds through the pad menu" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_doublet ~x:20 ~y:4 in
        let icon = Option.get icon in
        let st = Actions.set_op st ~icon ~slot:1 Opcode.Max in
        let st = Actions.bind_feedback st ~icon ~slot:1 ~port:Resource.B 1 in
        match Pipeline.config_of (State.current_pipeline st) ~id:icon ~slot:1 with
        | Some cfg ->
            check_bool "feedback" true
              (Fu_config.equal_input_binding cfg.Fu_config.b (Fu_config.From_feedback 1))
        | None -> Alcotest.fail "no config");
    case "escape cancels menus, forms and placements" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_goto in
        let st = Editor.handle st (Event.Key "Escape") in
        check_bool "idle" true (match st.State.mode with State.Idle -> true | _ -> false));
    case "selected icons are deleted with their wires" (fun () ->
        let st, icon = vecadd_by_gestures () in
        let st = { st with State.selected = Some icon } in
        let st = Editor.handle st (Event.Key "x") in
        let pl = State.current_pipeline st in
        check_int "no icons" 0 (List.length pl.Pipeline.icons);
        check_int "no wires" 0 (List.length pl.Pipeline.connections));
    case "icons can be grabbed and moved" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let icon = Option.get icon in
        (* grab the icon body (not a pad, not the unit box): the frame row *)
        let pl = State.current_pipeline st in
        let ic = Option.get (Pipeline.find_icon pl icon) in
        let grab = Layout.of_drawing (Geometry.add ic.Icon.pos (Geometry.point 0 0)) in
        ignore grab;
        let from = Layout.of_drawing (Geometry.point 20 4) in
        let to_ = Layout.of_drawing (Geometry.point 40 10) in
        let st = Actions.drag st ~from ~to_ in
        let ic = Option.get (Pipeline.find_icon (State.current_pipeline st) icon) in
        check_int "moved x" 40 ic.Icon.pos.Geometry.x);
  ]

let panel_tests =
  [
    case "insert/copy/delete/goto drive the pipeline list" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_insert in
        check_int "two pipelines" 2 (Program.pipeline_count st.State.program);
        check_int "cursor on new" 2 st.State.current;
        let st = Actions.press st Layout.B_copy in
        check_int "three" 3 (Program.pipeline_count st.State.program);
        let st = Actions.press st Layout.B_delete in
        check_int "two again" 2 (Program.pipeline_count st.State.program);
        let st = Actions.press st Layout.B_prev in
        check_int "back to 1" 1 st.State.current;
        let st = Actions.press st Layout.B_goto in
        let st = Actions.fill_and_submit st [ ("pipeline", "2") ] in
        check_int "goto 2" 2 st.State.current);
    case "the only pipeline cannot be deleted" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_delete in
        check_int "still one" 1 (Program.pipeline_count st.State.program));
    case "the balance button inserts alignment queues" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_doublet ~x:20 ~y:4 in
        let icon = Option.get icon in
        let st = Actions.set_op st ~icon ~slot:0 Opcode.Fmul in
        let st = Actions.bind_constant st ~icon ~slot:0 ~port:Resource.B 2.0 in
        let st = Actions.wire_memory_to_pad st ~icon ~pad:(Icon.In_pad (0, Resource.A)) ~plane:0 () in
        let st = Actions.set_op st ~icon ~slot:1 Opcode.Fadd in
        let st = Actions.wire_memory_to_pad st ~icon ~pad:(Icon.In_pad (1, Resource.B)) ~plane:1 () in
        let st = Actions.press st Layout.B_balance in
        (match Pipeline.config_of (State.current_pipeline st) ~id:icon ~slot:1 with
        | Some cfg ->
            check_int "delay inserted" params.Params.latencies.Params.lat_fmul
              cfg.Fu_config.delay_b
        | None -> Alcotest.fail "no config"));
    case "save writes a loadable program" (fun () ->
        let st, _ = vecadd_by_gestures () in
        let path = Filename.temp_file "nsc" ".nsc" in
        let st = Actions.press st Layout.B_save in
        let st = Actions.fill_and_submit st [ ("path", path) ] in
        check_bool "saved" true (contains (State.latest_message st) "saved");
        (match Serialize.load params ~path with
        | Ok prog ->
            check_string "same text"
              (Serialize.to_string st.State.program)
              (Serialize.to_string prog)
        | Error e -> Alcotest.fail e);
        Sys.remove path);
  ]

let render_tests =
  [
    case "the window shows panel, declarations and the message strip" (fun () ->
        let st, _ = vecadd_by_gestures () in
        let s = Render_ascii.render st in
        check_bool "panel" true (contains s "[Singlet]");
        check_bool "declaration" true (contains s "x: p0+0");
        check_bool "op" true (contains s "fadd");
        check_bool "status" true (contains s "vlen 64"));
    case "menus are drawn over the window" (fun () ->
        let st = State.create kb in
        let st, icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let st = Actions.click_unit st ~icon:(Option.get icon) ~slot:0 in
        check_bool "menu title" true (contains (Render_ascii.render st) "operation of"));
    case "forms are drawn with their fields" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_goto in
        check_bool "field" true (contains (Render_ascii.render st) "pipeline"));
    case "SVG output is well-formed enough" (fun () ->
        let st, _ = vecadd_by_gestures () in
        let svg = Render_svg.render_pipeline params (State.current_pipeline st) in
        check_bool "svg" true (contains svg "<svg");
        check_bool "closes" true (contains svg "</svg>");
        check_bool "has units" true (contains svg "fadd"));
    case "the datapath figure renders (Figure 1)" (fun () ->
        let svg = Render_svg.render_datapath params in
        check_bool "router" true (contains svg "Hyperspace router");
        check_bool "planes" true (contains svg "memory planes"));
  ]

let session_tests =
  [
    case "replay applies events and takes snapshots" (fun () ->
        let script =
          "# place a singlet\n"
          ^ Printf.sprintf "down %d %d\n"
              (Actions.button_center Layout.B_singlet).Geometry.x
              (Actions.button_center Layout.B_singlet).Geometry.y
          ^ "move 45 12\nup 45 12\nsnapshot placed\n"
        in
        let r = Session.replay (State.create kb) script in
        check_int "events" 3 r.Session.applied;
        check_int "frames" 1 (List.length r.Session.frames);
        check_int "icon placed" 1
          (List.length (State.current_pipeline r.Session.final).Pipeline.icons);
        check_int "no errors" 0 (List.length r.Session.errors));
    case "bad lines are reported with numbers" (fun () ->
        let r = Session.replay (State.create kb) "gibberish here\n" in
        check_int "one error" 1 (List.length r.Session.errors));
    case "recording produces a replayable script" (fun () ->
        let rec_ = Session.recorder () in
        let st = State.create kb in
        let st = Session.record rec_ st (Event.Mouse_down (Actions.button_center Layout.B_triplet)) in
        let st = Session.record rec_ st (Event.Mouse_up (Layout.of_drawing (Geometry.point 30 6))) in
        let script = Session.script_of rec_ in
        let r = Session.replay (State.create kb) script in
        check_int "same icon count"
          (List.length (State.current_pipeline st).Pipeline.icons)
          (List.length (State.current_pipeline r.Session.final).Pipeline.icons));
    case "event tokens round-trip" (fun () ->
        List.iter
          (fun ev ->
            let tokens = String.split_on_char ' ' (Event.to_tokens ev) in
            match Event.of_tokens tokens with
            | Some ev' -> check_bool "roundtrip" true (Event.equal ev ev')
            | None -> Alcotest.fail "parse failed")
          [
            Event.Mouse_down (Geometry.point 3 4);
            Event.Mouse_move (Geometry.point 0 0);
            Event.Mouse_up (Geometry.point 99 1);
            Event.Key "Escape";
            Event.Menu_select 3;
            Event.Menu_cancel;
            Event.Form_set ("plane", "3");
            Event.Form_submit;
            Event.Form_cancel;
          ]);
  ]

let suite =
  [
    ("editor:gestures", gesture_tests);
    ("editor:panel", panel_tests);
    ("editor:render", render_tests);
    ("editor:session", session_tests);
  ]

(* appended: placed memory/cache icons in the wiring flows *)
let device_icon_tests =
  [
    case "memory icons place through the panel form" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_memory in
        let st = Actions.fill_and_submit st [ ("plane", "3") ] in
        (* the form arms placement; drop it in the drawing area *)
        let st = Editor.run st [ Event.Mouse_up (Layout.of_drawing (Geometry.point 50 20)) ] in
        let pl = State.current_pipeline st in
        (match pl.Pipeline.icons with
        | [ ic ] -> (
            match ic.Icon.kind with
            | Icon.Memory_icon 3 -> ()
            | _ -> Alcotest.fail "wrong icon kind")
        | _ -> Alcotest.fail "expected one icon"));
    case "wiring to a placed memory icon attaches to its pad" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_memory in
        let st = Actions.fill_and_submit st [ ("plane", "2") ] in
        let st = Editor.run st [ Event.Mouse_up (Layout.of_drawing (Geometry.point 50 20)) ] in
        let mem_icon = Option.get st.State.selected in
        let st, als_icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let als_icon = Option.get als_icon in
        let st = Actions.set_op st ~icon:als_icon ~slot:0 Opcode.Fabs in
        (* rubber band from the unit output onto the memory icon's flow-in *)
        let st =
          Actions.rubber_connect st ~from_icon:als_icon ~from_pad:(Icon.Out_pad 0)
            ~to_icon:mem_icon ~to_pad:Icon.Flow_in
        in
        (* the DMA form opens, pre-filled with plane 2 *)
        (match st.State.mode with
        | State.Form_open f ->
            check_bool "prefilled" true (Menu.field_value f "plane" = Some "2")
        | _ -> Alcotest.fail "no form opened");
        let st = Actions.fill_and_submit st [ ("offset", "0") ] in
        let pl = State.current_pipeline st in
        (match pl.Pipeline.connections with
        | [ c ] -> (
            match c.Connection.dst with
            | Connection.Pad { icon; pad = Icon.Flow_in } -> check_int "icon pad" mem_icon icon
            | _ -> Alcotest.fail "wire not attached to the icon")
        | _ -> Alcotest.fail "expected one wire"));
    case "a mismatched device number in the form is refused" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_memory in
        let st = Actions.fill_and_submit st [ ("plane", "2") ] in
        let st = Editor.run st [ Event.Mouse_up (Layout.of_drawing (Geometry.point 50 20)) ] in
        let mem_icon = Option.get st.State.selected in
        let st, als_icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let als_icon = Option.get als_icon in
        let st = Actions.set_op st ~icon:als_icon ~slot:0 Opcode.Fabs in
        let st =
          Actions.rubber_connect st ~from_icon:als_icon ~from_pad:(Icon.Out_pad 0)
            ~to_icon:mem_icon ~to_pad:Icon.Flow_in
        in
        let st = Actions.fill_and_submit st [ ("plane", "7") ] in
        check_int "no wire created" 0
          (List.length (State.current_pipeline st).Pipeline.connections);
        check_bool "explains" true
          (String.length (State.latest_message st) > 0));
    case "a placed memory icon appears in input-pad source menus" (fun () ->
        let st = State.create kb in
        let st = Actions.press st Layout.B_memory in
        let st = Actions.fill_and_submit st [ ("plane", "5") ] in
        let st = Editor.run st [ Event.Mouse_up (Layout.of_drawing (Geometry.point 60 20)) ] in
        let mem_icon = Option.get st.State.selected in
        ignore mem_icon;
        let st, als_icon = Actions.place st Layout.B_singlet ~x:20 ~y:4 in
        let st = Actions.click_pad st ~icon:(Option.get als_icon) ~pad:(Icon.In_pad (0, Resource.A)) in
        match st.State.mode with
        | State.Menu_open menu ->
            check_bool "MEM 5 offered" true
              (List.exists
                 (fun (it : Menu.item) ->
                   String.length it.Menu.label >= 10
                   && String.sub it.Menu.label 0 10 = "from MEM 5")
                 menu.Menu.items)
        | _ -> Alcotest.fail "no menu opened");
  ]

let suite = suite @ [ ("editor:device-icons", device_icon_tests) ]

(* appended: save/load round trip through the panel *)
let load_tests =
  [
    case "load restores a saved program through the panel" (fun () ->
        let st, _ = vecadd_by_gestures () in
        let path = Filename.temp_file "nsc" ".nsc" in
        let st = Actions.press st Layout.B_save in
        let st = Actions.fill_and_submit st [ ("path", path) ] in
        let text = Serialize.to_string st.State.program in
        (* a fresh editor loads it back *)
        let st2 = State.create kb in
        let st2 = Actions.press st2 Layout.B_load in
        let st2 = Actions.fill_and_submit st2 [ ("path", path) ] in
        check_string "same program" text (Serialize.to_string st2.State.program);
        check_bool "announced" true (contains (State.latest_message st2) "loaded");
        Sys.remove path);
    case "loading a missing file reports and keeps the session" (fun () ->
        let st = State.create kb in
        let before = Serialize.to_string st.State.program in
        let st = Actions.press st Layout.B_load in
        let st = Actions.fill_and_submit st [ ("path", "/nonexistent/x.nsc") ] in
        check_bool "reported" true (contains (State.latest_message st) "load failed");
        check_string "unchanged" before (Serialize.to_string st.State.program));
  ]

let suite = suite @ [ ("editor:load", load_tests) ]
