(* Golden-file tests: the ASCII/SVG renders of reference diagrams are
   pinned byte for byte.  Regenerate deliberately with
   `dune exec test/gen_goldens.exe -- test/goldens` after an intentional
   renderer change. *)

open Nsc_arch
open Nsc_diagram
open Util

let read path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden name actual =
  let path = Filename.concat "goldens" name in
  if not (Sys.file_exists path) then
    Alcotest.failf "missing golden %s (run test/gen_goldens.exe)" path
  else begin
    let expected = read path in
    if expected <> actual then
      Alcotest.failf
        "render of %s changed; if intentional, regenerate the goldens" name
  end

let tests =
  [
    case "the icon gallery render is stable" (fun () ->
        let pl = Pipeline.empty 1 in
        let add pl kind bypass x =
          match Pipeline.place_als params pl ~kind ~bypass ~pos:(Geometry.point x 2) () with
          | Ok (_, pl) -> pl
          | Error e -> failwith e
        in
        let pl = add pl Als.Singlet Als.No_bypass 4 in
        let pl = add pl Als.Doublet Als.No_bypass 20 in
        let pl = add pl Als.Doublet Als.Keep_head 36 in
        let pl = add pl Als.Triplet Als.No_bypass 52 in
        golden "icon_gallery.txt" (Nsc_editor.Render_ascii.render_pipeline params pl));
    case "the Jacobi sweep diagram render is stable" (fun () ->
        let b = Nsc_apps.Jacobi.build kb (Nsc_apps.Grid.cube 5) ~tol:1e-6 ~max_iters:10 in
        let sweep = Option.get (Program.find_pipeline b.Nsc_apps.Jacobi.program 2) in
        golden "jacobi_sweep.txt" (Nsc_editor.Render_ascii.render_pipeline params sweep));
    case "the Jacobi sweep SVG is stable" (fun () ->
        let b = Nsc_apps.Jacobi.build kb (Nsc_apps.Grid.cube 5) ~tol:1e-6 ~max_iters:10 in
        let sweep = Option.get (Program.find_pipeline b.Nsc_apps.Jacobi.program 2) in
        golden "jacobi_sweep.svg" (Nsc_editor.Render_svg.render_pipeline params sweep));
  ]

let suite = [ ("golden:renders", tests) ]
