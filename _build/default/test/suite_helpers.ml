(* Coverage for the small plumbing modules: DMA specs, unit configurations,
   connection helpers, diagnostics ordering, editor state queries. *)

open Nsc_arch
open Nsc_diagram
open Util

let dma_spec_tests =
  [
    case "variable specs resolve against the declaration base" (fun () ->
        let spec = Dma_spec.make ~variable:"u" ~offset:5 ~stride:2 (Dma_spec.To_plane 3) in
        match
          Dma_spec.resolve spec ~direction:Dma.Read ~lookup:(function
            | "u" -> Some 100
            | _ -> None)
        with
        | Ok t ->
            check_int "base" 105 t.Dma.base;
            check_int "stride" 2 t.Dma.stride;
            check_bool "channel" true (Dma.equal_channel t.Dma.channel (Dma.Plane 3))
        | Error e -> Alcotest.fail e);
    case "undeclared variables fail resolution" (fun () ->
        let spec = Dma_spec.make ~variable:"ghost" (Dma_spec.To_plane 0) in
        check_bool "error" true
          (Result.is_error
             (Dma_spec.resolve spec ~direction:Dma.Read ~lookup:(fun _ -> None))));
    case "absolute specs use the offset directly" (fun () ->
        let spec = Dma_spec.make ~offset:42 (Dma_spec.To_cache 7) in
        match Dma_spec.resolve spec ~direction:Dma.Write ~lookup:(fun _ -> None) with
        | Ok t ->
            check_int "base" 42 t.Dma.base;
            check_bool "cache channel" true
              (Dma.equal_channel t.Dma.channel (Dma.Cache_chan 7))
        | Error e -> Alcotest.fail e);
    case "spec rendering names its target" (fun () ->
        let s = Dma_spec.to_string (Dma_spec.make ~variable:"x" (Dma_spec.To_plane 2)) in
        check_bool "plane" true (String.length s > 0 && String.sub s 0 7 = "plane 2"));
  ]

let fu_config_tests =
  [
    case "register-file usage counts constants and queues" (fun () ->
        let cfg =
          {
            Fu_config.op = Some Opcode.Fadd;
            a = Fu_config.From_constant 1.5;
            b = Fu_config.From_feedback 3;
            delay_a = 4;
            delay_b = 0;
          }
        in
        let u = Fu_config.register_file_usage cfg in
        check_int "constants" 1 (List.length u.Register_file.constants);
        check_int "delay a includes queue" 4 u.Register_file.delay_a;
        check_int "delay b includes feedback" 3 u.Register_file.delay_b);
    case "unary operations consume only the A port" (fun () ->
        let cfg = Fu_config.make ~a:Fu_config.From_switch Opcode.Fabs in
        check_int "one binding" 1 (List.length (Fu_config.consumed_bindings cfg)));
    case "configuration rendering shows delays" (fun () ->
        let cfg =
          { (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd)
            with Fu_config.delay_b = 6 }
        in
        let s = Fu_config.to_string cfg in
        check_bool "z6" true
          (let rec has i = i + 2 <= String.length s && (String.sub s i 2 = "z6" || has (i + 1)) in
           has 0));
    case "idle units render as idle" (fun () ->
        check_string "idle" "idle" (Fu_config.to_string Fu_config.idle));
  ]

let connection_tests =
  [
    case "mentions and touches work across endpoint kinds" (fun () ->
        let c =
          {
            Connection.id = 0;
            src = Connection.Pad { icon = 3; pad = Icon.Out_pad 0 };
            dst = Connection.Direct_memory 5;
            spec = None;
          }
        in
        check_bool "touches icon 3" true (Connection.touches_icon c 3);
        check_bool "not icon 4" false (Connection.touches_icon c 4);
        check_bool "mentions mem5" true (Connection.mentions c (Connection.Direct_memory 5)));
    case "dma endpoints are classified with icon context" (fun () ->
        let icon_kind = function 7 -> Some (Icon.Memory_icon 2) | _ -> None in
        check_bool "direct" true
          (Connection.is_dma_endpoint ~icon_kind (Connection.Direct_cache 0));
        check_bool "icon pad" true
          (Connection.is_dma_endpoint ~icon_kind
             (Connection.Pad { icon = 7; pad = Icon.Flow_in }));
        check_bool "als pad" false
          (Connection.is_dma_endpoint ~icon_kind
             (Connection.Pad { icon = 9; pad = Icon.In_pad (0, Resource.A) }));
        check_bool "channel" true
          (Connection.dma_channel ~icon_kind (Connection.Pad { icon = 7; pad = Icon.Flow_out })
          = Some (Dma.Plane 2)));
  ]

let diagnostic_tests =
  [
    case "sort puts errors before warnings before infos" (fun () ->
        let open Nsc_checker in
        let mk sev = { Diagnostic.severity = sev; rule = Diagnostic.Binding;
                       location = Diagnostic.nowhere; message = "m" } in
        let sorted = Diagnostic.sort [ mk Diagnostic.Info; mk Diagnostic.Error; mk Diagnostic.Warning ] in
        (match List.map (fun d -> d.Diagnostic.severity) sorted with
        | [ Diagnostic.Error; Diagnostic.Warning; Diagnostic.Info ] -> ()
        | _ -> Alcotest.fail "wrong order"));
    case "locations render in the one-liner" (fun () ->
        let open Nsc_checker in
        let d =
          Diagnostic.error
            ~location:{ Diagnostic.pipeline = Some 2; icon = Some 1; connection = None;
                        unit_ = Some { Resource.als = 4; slot = 1 } }
            Diagnostic.Timing "drifted"
        in
        let s = Diagnostic.to_string d in
        let has needle =
          let rec go i = i + String.length needle <= String.length s
            && (String.sub s i (String.length needle) = needle || go (i + 1)) in
          go 0
        in
        check_bool "pipeline" true (has "pipeline 2");
        check_bool "unit" true (has "als4.u1");
        check_bool "rule" true (has "timing"));
  ]

let state_tests =
  [
    case "goto clamps to the pipeline range" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st = Nsc_editor.State.goto st 99 in
        check_int "clamped" 1 st.Nsc_editor.State.current);
    case "messages stack newest first" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st = Nsc_editor.State.message st "first" in
        let st = Nsc_editor.State.message st "second %d" 2 in
        check_string "latest" "second 2" (Nsc_editor.State.latest_message st));
    case "error_count follows the interactive diagnostics" (fun () ->
        let st = Nsc_editor.State.create kb in
        check_int "clean" 0 (Nsc_editor.State.error_count st));
  ]

let suite =
  [
    ("helpers:dma-spec", dma_spec_tests);
    ("helpers:fu-config", fu_config_tests);
    ("helpers:connection", connection_tests);
    ("helpers:diagnostic", diagnostic_tests);
    ("helpers:editor-state", state_tests);
  ]

(* appended: the shipped program assets stay loadable and sound *)
let asset_dir = "../examples/programs"

let asset_tests =
  [
    case "the shipped Jacobi program loads and checks clean" (fun () ->
        let path = Filename.concat asset_dir "jacobi3d_5.nsc" in
        if Sys.file_exists path then
          match Serialize.load params ~path with
          | Ok prog ->
              check_int "no errors" 0
                (List.length
                   (Nsc_checker.Diagnostic.errors (Nsc_checker.Checker.check_program kb prog)))
          | Error e -> Alcotest.fail e
        else () (* asset dir absent in sandboxed runs: covered by builders *));
    case "the shipped language source compiles" (fun () ->
        let path = Filename.concat asset_dir "jacobi1d.lang" in
        if Sys.file_exists path then begin
          let ic = open_in path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Nsc_lang.Compile.compile kb src with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e.Nsc_lang.Compile.message
        end);
  ]

let suite = suite @ [ ("helpers:assets", asset_tests) ]
