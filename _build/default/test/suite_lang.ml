(* The textual language and compiler. *)

open Nsc_arch
open Nsc_lang
open Util

let parse_ok src =
  match Parser.parse src with Ok ast -> ast | Error e -> Alcotest.fail e

let compile_ok src =
  match Compile.compile kb src with
  | Ok c -> c
  | Error e -> Alcotest.fail e.Compile.message

let compile_err src =
  match Compile.compile kb src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> e.Compile.message

let parser_tests =
  [
    case "declarations, assignment, precedence" (fun () ->
        let ast = parse_ok "array a[8] plane 0\narray b[8] plane 1\nb = a + a * 2.0" in
        check_int "decls" 2 (List.length ast.Ast.decls);
        match ast.Ast.body with
        | [ Ast.Assign { expr = Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)); _ } ] -> ()
        | _ -> Alcotest.fail "precedence wrong");
    case "shifted references parse both signs" (fun () ->
        let ast = parse_ok "array a[8] plane 0\narray b[8] plane 1\nb = a[-1] + a[+2]" in
        match ast.Ast.body with
        | [ Ast.Assign { expr = Ast.Binop (_, Ast.Ref { shift = -1; _ }, Ast.Ref { shift = 2; _ }); _ } ] -> ()
        | _ -> Alcotest.fail "shifts wrong");
    case "maxreduce becomes a scalar assignment" (fun () ->
        let ast = parse_ok "array a[8] plane 0\nscalar r\nr = maxreduce(abs(a))" in
        match ast.Ast.body with
        | [ Ast.Scalar_assign _ ] -> ()
        | _ -> Alcotest.fail "not a scalar assignment");
    case "repeat and while nest" (fun () ->
        let ast =
          parse_ok
            "array a[8] plane 0\narray b[8] plane 1\nscalar r\nrepeat 3 { b = a + 1.0 \
             while r > 0.1 max_iters 9 { r = maxreduce(b) } }"
        in
        match ast.Ast.body with
        | [ Ast.Repeat { count = 3; body = [ Ast.Assign _; Ast.While { max_iters = 9; _ } ] } ] -> ()
        | _ -> Alcotest.fail "nesting wrong");
    case "errors carry line numbers" (fun () ->
        match Parser.parse "array a[8] plane 0\nb = = 3" with
        | Error e -> check_bool "line 2" true (String.length e >= 6 && String.sub e 0 6 = "line 2")
        | Ok _ -> Alcotest.fail "accepted garbage");
    case "comments and floats lex" (fun () ->
        let ast = parse_ok "# heading\narray a[4] plane 0\narray b[4] plane 1\nb = a * 1.5e-3 # trailing" in
        match ast.Ast.body with
        | [ Ast.Assign { expr = Ast.Binop (Ast.Mul, _, Ast.Const c); _ } ] ->
            check_float "float" 1.5e-3 c
        | _ -> Alcotest.fail "float wrong");
  ]

let dag_tests =
  [
    case "common subexpressions are shared" (fun () ->
        let ast = parse_ok "array a[4] plane 0\narray b[4] plane 1\nb = (a + 1.0) * (a + 1.0)" in
        (match ast.Ast.body with
        | [ Ast.Assign { expr; _ } ] ->
            let dag, _ = Dag.of_ast expr in
            (* a, 1.0, a+1.0, mul = 4 nodes; op nodes = 2 *)
            check_int "ops" 2 (Dag.op_count dag)
        | _ -> Alcotest.fail "bad ast"));
    case "constants fold" (fun () ->
        let ast = parse_ok "array a[4] plane 0\narray b[4] plane 1\nb = a * (2.0 + 1.0)" in
        (match ast.Ast.body with
        | [ Ast.Assign { expr; _ } ] ->
            let dag, root = Dag.of_ast expr in
            check_int "one op" 1 (Dag.op_count dag);
            (match (Dag.node dag root).Dag.op with
            | Dag.N_op Opcode.Fmul -> ()
            | _ -> Alcotest.fail "root not mul")
        | _ -> Alcotest.fail "bad ast"));
    case "chains pack up to three single-consumer ops" (fun () ->
        let ast =
          parse_ok "array a[4] plane 0\narray b[4] plane 1\nb = ((a + 1.0) * 2.0) - 3.0"
        in
        (match ast.Ast.body with
        | [ Ast.Assign { expr; _ } ] ->
            let dag, _ = Dag.of_ast expr in
            let chains = Dag.chains dag in
            check_int "one chain" 1 (List.length chains);
            check_int "of three" 3 (List.length (List.hd chains))
        | _ -> Alcotest.fail "bad ast"));
    case "min/max terminate chains" (fun () ->
        let ast =
          parse_ok "array a[4] plane 0\narray b[4] plane 1\nb = max(a, 1.0) + 2.0"
        in
        (match ast.Ast.body with
        | [ Ast.Assign { expr; _ } ] ->
            let dag, _ = Dag.of_ast expr in
            (* max cannot be mid-chain: the + must start a fresh chain *)
            List.iter
              (fun chain ->
                List.iteri
                  (fun i nid ->
                    if i < List.length chain - 1 then
                      check_bool "minmax only at tail" false
                        (Dag.needs_minmax (Dag.node dag nid).Dag.op))
                  chain)
              (Dag.chains dag)
        | _ -> Alcotest.fail "bad ast"));
  ]

let compile_tests =
  [
    case "a simple program compiles and the units count matches" (fun () ->
        let c = compile_ok "array a[8] plane 0\narray b[8] plane 1\nb = (a + 1.0) * 0.5" in
        check_int "pipelines" 1 (Nsc_diagram.Program.pipeline_count c.Compile.program);
        Alcotest.(check (list (pair int int))) "units" [ (1, 2) ] c.Compile.units_per_pipeline);
    case "compiled stencils execute correctly on the node" (fun () ->
        let c =
          compile_ok
            "array a[8] plane 0\narray b[8] plane 1\nb = (a[-1] + a[+1]) * 0.5"
        in
        let compiled = Result.get_ok (Nsc_microcode.Codegen.compile kb c.Compile.program) in
        let node = Nsc_sim.Node.create params in
        (* pad = 1: element 0 at base 1 *)
        Nsc_sim.Node.load_array node ~plane:0 ~base:1 (Array.init 8 (fun i -> float_of_int i));
        ignore (Result.get_ok (Nsc_sim.Sequencer.run node compiled));
        let b = Nsc_sim.Node.dump_array node ~plane:1 ~base:1 ~len:8 in
        (* interior: (i-1 + i+1)/2 = i *)
        for i = 1 to 6 do
          check_float "avg" (float_of_int i) b.(i)
        done);
    case "in-place updates are refused with a helpful message" (fun () ->
        let m = compile_err "array a[8] plane 0\na = a + 1.0" in
        check_bool "mentions the race" true
          (String.length m > 0
          &&
          let rec has i =
            i + 4 <= String.length m && (String.sub m i 4 = "race" || has (i + 1))
          in
          has 0));
    case "mismatched lengths are refused" (fun () ->
        let m =
          compile_err "array a[8] plane 0\narray b[4] plane 1\nb = a + 1.0"
        in
        check_bool "mentions length" true (String.length m > 0));
    case "undeclared names are refused" (fun () ->
        ignore (compile_err "array a[8] plane 0\nb = a + 1.0");
        ignore (compile_err "array a[8] plane 0\narray b[8] plane 1\nb = c + 1.0"));
    case "while without a maxreduce in its body is refused" (fun () ->
        ignore
          (compile_err
             "array a[8] plane 0\narray b[8] plane 1\nscalar r\nwhile r > 0.1 max_iters 3 \
              { b = a + 1.0 }"));
    case "too many streams on one plane is a compile error" (fun () ->
        (* five arrays on plane 0 referenced in one statement: engines exhausted *)
        ignore
          (compile_err
             "array a[8] plane 0\narray b[8] plane 0\narray c[8] plane 0\narray d[8] \
              plane 0\narray e[8] plane 0\narray z[8] plane 1\nz = a + b + c + d + e"));
    case "an expression too large for the machine is refused" (fun () ->
        (* 40+ operations exceed the 32 units *)
        let big =
          let rec build n = if n = 0 then "a" else Printf.sprintf "(%s + a[%d]) * 2.0" (build (n - 1)) n in
          Printf.sprintf "array a[64] plane 0\narray z[64] plane 1\nz = %s" (build 20)
        in
        ignore (compile_err big));
    case "a convergence loop compiles and terminates in simulation" (fun () ->
        let c =
          compile_ok
            "array x[8] plane 0\narray y[8] plane 1\narray d[8] plane 2\narray y2[8] plane 3\n\
             scalar r\n\
             while r > 0.5 max_iters 10 {\n\
             d = (x - y) * 0.5\n\
             y2 = y + d\n\
             y = y2 + 0.0\n\
             r = maxreduce(abs(d))\n\
             }"
        in
        let compiled = Result.get_ok (Nsc_microcode.Codegen.compile kb c.Compile.program) in
        let node = Nsc_sim.Node.create params in
        Nsc_sim.Node.load_array node ~plane:0 ~base:1 (Array.make 8 10.0);
        (match Nsc_sim.Sequencer.run node compiled with
        | Ok o ->
            (* y converges halfway to x each pass: |d| halves every
               iteration; 10.0/2^k <= 0.5 within the bound *)
            check_bool "terminated early" true
              (o.Nsc_sim.Sequencer.stats.Nsc_sim.Sequencer.instructions_executed < 30)
        | Error e -> Alcotest.fail e));
    case "compiled programs pass the checker with zero errors" (fun () ->
        let c =
          compile_ok
            "array u[32] plane 0\narray g[32] plane 2\narray unew[32] plane 1\narray \
             mask[32] plane 3\n\
             unew = mask * ((u[-1] + u[+1] - g) * 0.5)"
        in
        check_int "no errors" 0
          (List.length (Nsc_checker.Diagnostic.errors c.Compile.diagnostics)));
  ]

let suite =
  [
    ("lang:parser", parser_tests);
    ("lang:dag", dag_tests);
    ("lang:compile", compile_tests);
  ]
