(* Microcode: words, field layout, encode/decode round trips, codegen. *)

open Nsc_arch
open Nsc_diagram
open Nsc_microcode
open Util

let layout = Fields.make params

let word_tests =
  [
    case "bit set/get round-trips at arbitrary offsets" (fun () ->
        let w = Word.create 100 in
        Word.set_int w ~offset:13 ~width:7 97;
        check_int "value" 97 (Word.get_int w ~offset:13 ~width:7);
        check_int "neighbours untouched" 0 (Word.get_int w ~offset:0 ~width:13));
    case "values too wide for their field are rejected" (fun () ->
        let w = Word.create 64 in
        Alcotest.check_raises "overflow"
          (Invalid_argument "Word.set: value 256 does not fit in 8 bits") (fun () ->
            Word.set w ~offset:0 ~width:8 256L));
    case "signed fields bias around zero" (fun () ->
        let w = Word.create 64 in
        Word.set_signed w ~offset:3 ~width:17 (-5);
        check_int "neg" (-5) (Word.get_signed w ~offset:3 ~width:17);
        Word.set_signed w ~offset:3 ~width:17 1000;
        check_int "pos" 1000 (Word.get_signed w ~offset:3 ~width:17));
    case "floats are stored bit-exactly" (fun () ->
        let w = Word.create 128 in
        Word.set_float w ~offset:17 (1.0 /. 6.0);
        check_bool "exact" true (Word.get_float w ~offset:17 = 1.0 /. 6.0));
    case "popcount counts live bits" (fun () ->
        let w = Word.create 32 in
        Word.set_int w ~offset:0 ~width:8 0xFF;
        check_int "8 bits" 8 (Word.popcount w));
    case "hex dump covers every byte" (fun () ->
        let w = Word.create 40 in
        let hex = Word.to_hex w in
        check_int "5 bytes = 14 chars" 14 (String.length hex));
    qcheck "random field writes read back" ~count:500
      QCheck2.Gen.(tup3 (int_range 0 900) (int_range 1 63) (int_range 0 1000000))
      (fun (offset, width, v) ->
        let w = Word.create 1024 in
        let v = v land ((1 lsl width) - 1) in
        Word.set_int w ~offset ~width v;
        Word.get_int w ~offset ~width = v);
  ]

let fields_tests =
  [
    case "the instruction is a few thousand bits in hundreds of fields" (fun () ->
        check_bool ">= 2000 bits" true (layout.Fields.total_bits >= 2000);
        check_bool ">= 100 field instances" true (Fields.field_count layout >= 100);
        check_bool ">= 24 distinct kinds" true (Fields.kind_count layout >= 24));
    case "fields do not overlap and cover the word" (fun () ->
        let sorted =
          List.sort (fun a b -> compare a.Fields.offset b.Fields.offset) layout.Fields.fields
        in
        let rec walk expected = function
          | [] -> check_int "total" layout.Fields.total_bits expected
          | f :: rest ->
              check_int ("offset of " ^ f.Fields.name) expected f.Fields.offset;
              walk (expected + f.Fields.width) rest
        in
        walk 0 sorted);
    case "every unit has its control fields" (fun () ->
        List.iter
          (fun fu ->
            let g = Resource.fu_global_index params fu in
            check_bool "op" true (Fields.mem layout (Printf.sprintf "fu%d.op" g));
            check_bool "const" true (Fields.mem layout (Printf.sprintf "fu%d.const_val" g)))
          (Resource.all_fus params));
    case "every switch sink has a selector" (fun () ->
        List.iter
          (fun snk ->
            check_bool "sink field" true
              (Fields.mem layout ("snk." ^ Resource.sink_to_string snk)))
          (Knowledge.all_sinks kb));
    case "unknown fields raise" (fun () ->
        Alcotest.check_raises "find" (Invalid_argument "Fields.find: no field 'nope'")
          (fun () -> ignore (Fields.find layout "nope")));
    case "a smaller machine yields a smaller word" (fun () ->
        let small = Fields.make Params.subset_model in
        check_bool "smaller" true (small.Fields.total_bits < layout.Fields.total_bits));
  ]

let roundtrip prog index =
  let sem, issues = semantic_of_program prog index in
  check_int "no issues" 0 (List.length issues);
  match Encode.encode layout sem with
  | Error e -> Alcotest.fail ("encode: " ^ e)
  | Ok instr -> (
      match Decode.decode layout instr.Encode.word with
      | Error e -> Alcotest.fail ("decode: " ^ e)
      | Ok sem' ->
          let n = Encode.normalize sem in
          if not (Semantic.equal n sem') then begin
            print_endline (Semantic.show n);
            print_endline (Semantic.show sem');
            Alcotest.fail "round trip changed the semantics"
          end)

let encode_tests =
  [
    case "vecadd round-trips through machine code" (fun () ->
        let prog, _ = vecadd_program () in
        roundtrip prog 1);
    case "the full Jacobi program round-trips" (fun () ->
        let b = Nsc_apps.Jacobi.build kb (Nsc_apps.Grid.cube 5) ~tol:1e-6 ~max_iters:10 in
        List.iter
          (fun (pl : Pipeline.t) -> roundtrip b.Nsc_apps.Jacobi.program pl.Pipeline.index)
          b.Nsc_apps.Jacobi.program.Program.pipelines);
    case "the red-black program round-trips" (fun () ->
        let b = Nsc_apps.Redblack.build kb (Nsc_apps.Grid.cube 5) ~tol:1e-6 ~max_iters:10 in
        List.iter
          (fun (pl : Pipeline.t) -> roundtrip b.Nsc_apps.Redblack.program pl.Pipeline.index)
          b.Nsc_apps.Redblack.program.Program.pipelines);
    case "the multigrid program round-trips" (fun () ->
        let b =
          Nsc_apps.Multigrid.build kb (Nsc_apps.Multigrid.grid1 17) ~cycles:1 ~nu1:1 ~nu2:1
            ~nu_coarse:2
        in
        List.iter
          (fun (pl : Pipeline.t) ->
            roundtrip b.Nsc_apps.Multigrid.program pl.Pipeline.index)
          b.Nsc_apps.Multigrid.program.Program.pipelines);
    case "decoding a non-instruction fails on the magic number" (fun () ->
        let w = Fields.fresh_word layout in
        match Decode.decode layout w with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "decoded garbage");
    case "two constants on one unit are unencodable" (fun () ->
        let pl, icon = pipeline_with Nsc_arch.Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) ~b:(Fu_config.From_constant 2.0)
               Nsc_arch.Opcode.Fadd)
        in
        let sem, _ = Semantic.of_pipeline params pl in
        match Encode.encode layout sem with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "encoded two constants");
  ]

let codegen_tests =
  [
    case "compile produces one instruction per pipeline" (fun () ->
        let prog, _ = vecadd_program () in
        match Codegen.compile kb prog with
        | Ok c ->
            check_int "instrs" 1 (List.length c.Codegen.instructions);
            check_bool "bits" true (Codegen.code_bits c >= 2000)
        | Error _ -> Alcotest.fail "compile failed");
    case "compile refuses a program with errors" (fun () ->
        let pl, icon = pipeline_with Nsc_arch.Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) ~b:(Fu_config.From_constant 1.0)
               Nsc_arch.Opcode.Iadd)
        in
        let prog = { (Program.empty "bad") with Program.pipelines = [ pl ] } in
        check_bool "refused" true (Result.is_error (Codegen.compile kb prog)));
    case "the listing names the operations and streams" (fun () ->
        let prog, _ = vecadd_program () in
        let c = Result.get_ok (Codegen.compile kb prog) in
        let listing = Listing.compiled_to_string c in
        let contains needle =
          let nh = String.length listing and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub listing i nn = needle || go (i + 1)) in
          go 0
        in
        check_bool "fadd" true (contains "fadd");
        check_bool "mem0" true (contains "mem0");
        check_bool "control" true (contains "control:"));
    case "hex listings dump the words" (fun () ->
        let prog, _ = vecadd_program () in
        let c = Result.get_ok (Codegen.compile kb prog) in
        check_bool "longer with hex" true
          (String.length (Listing.compiled_to_string ~hex:true c)
          > String.length (Listing.compiled_to_string c)));
  ]

let suite =
  [
    ("microcode:word", word_tests);
    ("microcode:fields", fields_tests);
    ("microcode:roundtrip", encode_tests);
    ("microcode:codegen", codegen_tests);
  ]
