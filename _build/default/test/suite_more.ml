(* Further coverage: scalar instructions, the subset machine, cache/SD
   icons in projection, serializer edge cases, listing rendering, editor
   boundary behaviour, language corner cases. *)

open Nsc_arch
open Nsc_diagram
open Util

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let scalar_tests =
  [
    case "scalars are treated as vectors of length one (paper, section 2)" (fun () ->
        (* a vlen-1 instruction computing one scalar product *)
        let pl, icon = pipeline_with Als.Singlet in
        let pl = Pipeline.with_vector_length pl 1 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 3.0)
               Opcode.Fmul)
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 1)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ()
        in
        let node = Nsc_sim.Node.create params in
        Nsc_sim.Node.write_plane node ~plane:0 ~addr:0 7.0;
        let sem, _ = Semantic.of_pipeline params pl in
        let r = Nsc_sim.Engine.run node sem in
        check_int "one element" 1 r.Nsc_sim.Engine.elements;
        check_int "one write" 1 r.Nsc_sim.Engine.writes;
        check_float "product" 21.0 (Nsc_sim.Node.read_plane node ~plane:1 ~addr:0);
        (* fill-dominated: one element costs the full pipeline depth *)
        check_int "fill cycles" params.Params.latencies.Params.lat_fmul
          r.Nsc_sim.Engine.cycles);
    case "a scalar condition drives the sequencer" (fun () ->
        (* run a scalar pipeline under a While watching it *)
        let prog, _ = vecadd_program ~n:1 () in
        let prog =
          Program.set_control prog
            [
              Program.While
                {
                  condition =
                    {
                      Interrupt.unit_watched = { Resource.als = 0; slot = 0 };
                      relation = Interrupt.Rlt;
                      threshold = 100.0;
                    };
                  max_iterations = 7;
                  body = [ Program.Exec 1 ];
                };
              Program.Halt;
            ]
        in
        let c = Result.get_ok (Nsc_microcode.Codegen.compile kb prog) in
        let node = Nsc_sim.Node.create params in
        (* x + y = 5 < 100 forever: the bound stops it *)
        Nsc_sim.Node.write_plane node ~plane:0 ~addr:0 2.0;
        Nsc_sim.Node.write_plane node ~plane:1 ~addr:0 3.0;
        let o = Result.get_ok (Nsc_sim.Sequencer.run node c) in
        check_int "bounded" 7 o.Nsc_sim.Sequencer.stats.Nsc_sim.Sequencer.instructions_executed);
  ]

let subset_tests =
  [
    case "the subset machine has a smaller instruction word" (fun () ->
        let full = Nsc_microcode.Fields.make Params.default in
        let sub = Nsc_microcode.Fields.make Params.subset_model in
        check_bool "smaller" true
          (sub.Nsc_microcode.Fields.total_bits < full.Nsc_microcode.Fields.total_bits));
    case "programs compile and run on the subset machine" (fun () ->
        let kb' = Knowledge.subset in
        match
          Nsc_lang.Compile.compile kb'
            "array a[8] plane 0\narray b[8] plane 1\nb = (a[-1] + a[+1]) * 0.5"
        with
        | Error e -> Alcotest.fail e.Nsc_lang.Compile.message
        | Ok c -> (
            let compiled =
              Result.get_ok (Nsc_microcode.Codegen.compile kb' c.Nsc_lang.Compile.program)
            in
            let node = Nsc_sim.Node.create (Knowledge.params kb') in
            Nsc_sim.Node.load_array node ~plane:0 ~base:1
              (Array.init 8 (fun i -> float_of_int (2 * i)));
            match Nsc_sim.Sequencer.run node compiled with
            | Ok _ -> check_float "stencil" 2.0 (Nsc_sim.Node.read_plane node ~plane:1 ~addr:2)
            | Error e -> Alcotest.fail e));
    case "triplet-shaped programs are refused by the subset machine" (fun () ->
        (* a 3-op chain forces a triplet request somewhere; the subset has
           none, but the allocator can split chains across doublets, so
           instead exhaust it: 15 operations need more units than the
           subset's 20-in-14-ALS layout can host as chains+singletons *)
        let deep =
          let rec build k = if k = 0 then "a" else Printf.sprintf "abs(%s + a[%d])" (build (k - 1)) k in
          Printf.sprintf "array a[32] plane 0\narray z[32] plane 1\nz = %s" (build 19)
        in
        match Nsc_lang.Compile.compile Knowledge.subset deep with
        | Error _ -> ()
        | Ok _ -> (
            (* acceptable if it fits; then the full machine must also fit *)
            match Nsc_lang.Compile.compile kb deep with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "full machine refused what the subset accepted"));
  ]

let projection_tests =
  [
    case "cache icons project to slotted cache endpoints" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let cache_icon, pl =
          Pipeline.add_icon params pl ~kind:(Icon.Cache_icon 4) ~pos:(Geometry.point 50 4)
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon = cache_icon; pad = Icon.Flow_out })
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_cache 4)) ()
        in
        let sem, issues = Semantic.of_pipeline params pl in
        check_int "no issues" 0 (List.length issues);
        match Semantic.read_streams sem with
        | [ (Resource.Src_cache (4, 0), _) ] -> ()
        | _ -> Alcotest.fail "expected one cache stream");
    case "shift/delay icons project to programmes and routes" (fun () ->
        let pl = Pipeline.empty 1 in
        let sd_icon, pl =
          Build.fail_on_error
            (Pipeline.place_shift_delay params pl ~mode:(Shift_delay.Delay 4)
               ~pos:(Geometry.point 10 4))
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon = sd_icon; pad = Icon.Flow_in })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let sem, issues = Semantic.of_pipeline params pl in
        check_int "no issues" 0 (List.length issues);
        check_int "one sd" 1 (List.length sem.Semantic.sds);
        check_bool "route in" true
          (Semantic.source_feeding sem (Resource.Snk_shift_delay 0) <> None));
    case "a bypassed doublet executes end to end" (fun () ->
        let pl = Pipeline.empty 1 in
        let pl = Pipeline.with_vector_length pl 4 in
        let icon, pl =
          Build.fail_on_error
            (Pipeline.place_als params pl ~kind:Als.Doublet ~bypass:Als.Keep_head
               ~pos:(Geometry.point 10 2) ())
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 5.0)
               Opcode.Iadd)
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 1)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ()
        in
        (* integer op on the double-box head is legal *)
        let ds = Nsc_checker.Checker.check_pipeline kb ~level:`Complete pl in
        check_int "no errors" 0 (List.length (Nsc_checker.Diagnostic.errors ds));
        let node = Nsc_sim.Node.create params in
        Nsc_sim.Node.load_array node ~plane:0 ~base:0 [| 1.; 2.; 3.; 4. |];
        let sem, _ = Semantic.of_pipeline params pl in
        ignore (Nsc_sim.Engine.run node sem);
        check_float "iadd" 8.0 (Nsc_sim.Node.read_plane node ~plane:1 ~addr:2));
  ]

let serializer_edge_tests =
  [
    case "labels with spaces and percent signs round-trip" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline ~label:"100% of a + b" prog in
        let text = Serialize.to_string prog in
        match Serialize.of_string params text with
        | Ok prog' ->
            check_string "label" "100% of a + b"
              (Option.get (Program.find_pipeline prog' 1)).Pipeline.label
        | Error e -> Alcotest.fail e);
    case "negative offsets and strides round-trip" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~offset:(-3) ~stride:(-2) ~count:5 (Dma_spec.To_plane 0))
            ()
        in
        let prog = { (Program.empty "p") with Program.pipelines = [ pl ] } in
        let text = Serialize.to_string prog in
        match Serialize.of_string params text with
        | Ok prog' -> check_string "stable" text (Serialize.to_string prog')
        | Error e -> Alcotest.fail e);
    case "constants round-trip bit-exactly (hex floats)" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant (1.0 /. 6.0)) Opcode.Fabs)
        in
        let prog = { (Program.empty "p") with Program.pipelines = [ pl ] } in
        match Serialize.of_string params (Serialize.to_string prog) with
        | Ok prog' -> (
            let pl' = Option.get (Program.find_pipeline prog' 1) in
            match Pipeline.config_of pl' ~id:icon ~slot:0 with
            | Some cfg ->
                check_bool "bit exact" true
                  (Fu_config.equal_input_binding cfg.Fu_config.a
                     (Fu_config.From_constant (1.0 /. 6.0)))
            | None -> Alcotest.fail "config lost")
        | Error e -> Alcotest.fail e);
    case "nested repeat/while control round-trips" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline prog in
        let prog =
          Program.set_control prog
            [
              Program.Repeat
                {
                  count = 3;
                  body =
                    [
                      Program.While
                        {
                          condition =
                            {
                              Interrupt.unit_watched = { Resource.als = 4; slot = 1 };
                              relation = Interrupt.Rle;
                              threshold = 1e-9;
                            };
                          max_iterations = 12;
                          body = [ Program.Exec 1 ];
                        };
                    ];
                };
              Program.Halt;
            ]
        in
        let text = Serialize.to_string prog in
        match Serialize.of_string params text with
        | Ok prog' ->
            check_bool "control equal" true
              (List.for_all2
                 (fun a b -> Program.equal_control a b)
                 prog.Program.control prog'.Program.control)
        | Error e -> Alcotest.fail e);
    case "truncated files fail cleanly" (fun () ->
        check_bool "error" true
          (Result.is_error (Serialize.of_string params "pipeline")));
  ]

let listing_tests =
  [
    case "control listings render nesting with indentation" (fun () ->
        let lines =
          Nsc_microcode.Listing.control_to_lines ~indent:0
            [
              Program.Repeat
                { count = 2; body = [ Program.Exec 1; Program.Halt ] };
            ]
        in
        check_int "three lines" 3 (List.length lines);
        check_bool "indented" true (contains (List.nth lines 1) "  exec 1"));
    case "semantic listings name feedback and delays" (fun () ->
        let pl, icon = pipeline_with Als.Doublet in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:1
            { Fu_config.op = Some Opcode.Max; a = Fu_config.From_chain;
              b = Fu_config.From_feedback 2; delay_a = 5; delay_b = 0 }
        in
        let pl =
          Pipeline.set_config pl ~id:icon ~slot:0
            (Fu_config.make ~a:(Fu_config.From_constant 1.0) Opcode.Fabs)
        in
        let sem, _ = Semantic.of_pipeline params pl in
        let s = Nsc_microcode.Listing.semantic_to_string sem in
        check_bool "feedback" true (contains s "feedback[2]");
        check_bool "delay" true (contains s "(z^5)"));
  ]

let editor_bounds_tests =
  [
    case "prev at the first pipeline stays put" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st = Nsc_editor.Actions.press st Nsc_editor.Layout.B_prev in
        check_int "still 1" 1 st.Nsc_editor.State.current);
    case "next at the last pipeline stays put" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st = Nsc_editor.Actions.press st Nsc_editor.Layout.B_next in
        check_int "still 1" 1 st.Nsc_editor.State.current);
    case "renumber moves the current pipeline" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st = Nsc_editor.Actions.press st Nsc_editor.Layout.B_insert in
        let st = Nsc_editor.Actions.press st Nsc_editor.Layout.B_renumber in
        let st = Nsc_editor.Actions.fill_and_submit st [ ("to", "1") ] in
        check_int "moved" 1 st.Nsc_editor.State.current;
        check_int "two pipelines" 2 (Program.pipeline_count st.Nsc_editor.State.program));
    case "the bypassed-doublet button places the figure-4 variant" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st, icon = Nsc_editor.Actions.place st Nsc_editor.Layout.B_doublet_bypass ~x:20 ~y:4 in
        match
          Pipeline.icon_kind (Nsc_editor.State.current_pipeline st) (Option.get icon)
        with
        | Some (Icon.Als_icon { bypass = Als.Keep_head; _ }) -> ()
        | _ -> Alcotest.fail "wrong bypass");
    case "check button reports errors in the strip" (fun () ->
        let st = Nsc_editor.State.create kb in
        let st, icon = Nsc_editor.Actions.place st Nsc_editor.Layout.B_singlet ~x:20 ~y:4 in
        let st = Nsc_editor.Actions.set_op st ~icon:(Option.get icon) ~slot:0 Opcode.Fadd in
        let st = Nsc_editor.Actions.press st Nsc_editor.Layout.B_check in
        check_bool "counts errors" true
          (contains (Nsc_editor.State.latest_message st) "error"));
  ]

let lang_edge_tests =
  [
    case "unary minus binds tighter than multiplication" (fun () ->
        match Nsc_lang.Parser.parse "array a[4] plane 0\narray b[4] plane 1\nb = -a * 2.0" with
        | Ok { Nsc_lang.Ast.body = [ Nsc_lang.Ast.Assign { expr = Nsc_lang.Ast.Binop (Nsc_lang.Ast.Mul, Nsc_lang.Ast.Unop (Nsc_lang.Ast.Neg, _), _); _ } ]; _ } -> ()
        | Ok _ -> Alcotest.fail "wrong precedence"
        | Error e -> Alcotest.fail e);
    case "commutative operand swap preserves numerics" (fun () ->
        (* max(const, chainable) swaps operands to enable chaining; the
           executed result must be the same *)
        let src =
          "array a[8] plane 0\narray z[8] plane 1\nz = max(1.5, abs(a) * 2.0)"
        in
        match Nsc_lang.Compile.compile kb src with
        | Error e -> Alcotest.fail e.Nsc_lang.Compile.message
        | Ok c -> (
            let compiled =
              Result.get_ok (Nsc_microcode.Codegen.compile kb c.Nsc_lang.Compile.program)
            in
            let node = Nsc_sim.Node.create params in
            Nsc_sim.Node.load_array node ~plane:0 ~base:1
              [| -3.; 0.; 0.5; 1.; -0.1; 2.; 0.2; -9. |];
            match Nsc_sim.Sequencer.run node compiled with
            | Ok _ ->
                let z = Nsc_sim.Node.dump_array node ~plane:1 ~base:1 ~len:8 in
                Array.iteri
                  (fun i v ->
                    let a = [| -3.; 0.; 0.5; 1.; -0.1; 2.; 0.2; -9. |].(i) in
                    check_float "max" (Float.max 1.5 (Float.abs a *. 2.0)) v)
                  z
            | Error e -> Alcotest.fail e));
    case "division compiles to the slow unit and executes" (fun () ->
        let src = "array a[4] plane 0\narray z[4] plane 1\nz = 1.0 / a" in
        match Nsc_lang.Compile.compile kb src with
        | Error e -> Alcotest.fail e.Nsc_lang.Compile.message
        | Ok c -> (
            let compiled =
              Result.get_ok (Nsc_microcode.Codegen.compile kb c.Nsc_lang.Compile.program)
            in
            let node = Nsc_sim.Node.create params in
            Nsc_sim.Node.load_array node ~plane:0 ~base:0 [| 2.; 4.; 8.; 16. |];
            match Nsc_sim.Sequencer.run node compiled with
            | Ok _ -> check_float "recip" 0.25 (Nsc_sim.Node.read_plane node ~plane:1 ~addr:1)
            | Error e -> Alcotest.fail e));
    case "empty programs are legal (declarations only)" (fun () ->
        match Nsc_lang.Compile.compile kb "array a[4] plane 0" with
        | Ok c -> check_int "no pipelines" 0 (Program.pipeline_count c.Nsc_lang.Compile.program)
        | Error e -> Alcotest.fail e.Nsc_lang.Compile.message);
  ]

let suite =
  [
    ("more:scalars", scalar_tests);
    ("more:subset", subset_tests);
    ("more:projection", projection_tests);
    ("more:serializer", serializer_edge_tests);
    ("more:listing", listing_tests);
    ("more:editor-bounds", editor_bounds_tests);
    ("more:lang-edges", lang_edge_tests);
  ]
