(* Semantic projection and serialization. *)

open Nsc_arch
open Nsc_diagram
open Util

let semantic_tests =
  [
    case "vecadd projects to 1 unit, 3 routes, 3 streams" (fun () ->
        let prog, _ = vecadd_program () in
        let sem, issues = semantic_of_program prog 1 in
        check_int "issues" 0 (List.length issues);
        check_int "units" 1 (List.length sem.Semantic.units);
        check_int "routes" 3 (List.length sem.Semantic.routes);
        check_int "streams" 3 (List.length sem.Semantic.streams);
        check_int "flops/elem" 1 (Semantic.flops_per_element sem));
    case "identical specs share a DMA engine (broadcast)" (fun () ->
        let pl, i0 = pipeline_with Als.Singlet in
        let i1, pl =
          Build.fail_on_error
            (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 40 4) ())
        in
        let wire pl icon =
          Build.mem_to_pad pl ~plane:0 ~var:"" ~offset:5 ~icon
            ~pad:(Icon.In_pad (0, Resource.A)) ()
        in
        (* var "" resolves as absolute via no variable: use explicit spec *)
        ignore wire;
        let spec = Dma_spec.make ~offset:5 (Dma_spec.To_plane 0) in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon = i0; pad = Icon.In_pad (0, Resource.A) })
            ~spec ()
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon = i1; pad = Icon.In_pad (0, Resource.A) })
            ~spec ()
        in
        let sem, issues = Semantic.of_pipeline params pl in
        check_int "issues" 0 (List.length issues);
        check_int "one stream" 1 (List.length sem.Semantic.streams);
        check_int "two routes" 2 (List.length sem.Semantic.routes));
    case "distinct specs get distinct engine slots" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~offset:0 (Dma_spec.To_plane 0)) ()
        in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.B) })
            ~spec:(Dma_spec.make ~offset:2 (Dma_spec.To_plane 0)) ()
        in
        let sem, _ = Semantic.of_pipeline params pl in
        let slots =
          List.filter_map
            (fun (src, _) ->
              match src with Resource.Src_memory (0, e) -> Some e | _ -> None)
            (Semantic.read_streams sem)
          |> List.sort compare
        in
        Alcotest.(check (list int)) "slots" [ 0; 1 ] slots);
    case "a missing DMA spec is an issue" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ()
        in
        let _, issues = Semantic.of_pipeline params pl in
        check_bool "flagged" true (issues <> []));
    case "spec channel must match the wire's device" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 5)) ()
        in
        let _, issues = Semantic.of_pipeline params pl in
        check_bool "flagged" true (issues <> []));
    case "device-to-device wires are refused" (fun () ->
        let pl = Pipeline.empty 1 in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Direct_memory 1)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let _, issues = Semantic.of_pipeline params pl in
        check_bool "flagged" true (issues <> []));
    case "a bypassed slot cannot be tapped" (fun () ->
        let pl = Pipeline.empty 1 in
        let icon, pl =
          Build.fail_on_error
            (Pipeline.place_als params pl ~kind:Als.Doublet ~bypass:Als.Keep_tail
               ~pos:(Geometry.point 0 0) ())
        in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 1)
            ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ()
        in
        let _, issues = Semantic.of_pipeline params pl in
        check_bool "flagged" true (issues <> []));
    case "undeclared variables are issues" (fun () ->
        let pl, icon = pipeline_with Als.Singlet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
            ~spec:(Dma_spec.make ~variable:"ghost" (Dma_spec.To_plane 0)) ()
        in
        let _, issues = Semantic.of_pipeline params pl in
        check_bool "flagged" true (issues <> []));
    case "chained-port wires are issues" (fun () ->
        let pl, icon = pipeline_with Als.Triplet in
        let _, pl =
          Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
            ~dst:(Connection.Pad { icon; pad = Icon.In_pad (1, Resource.A) })
            ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()
        in
        let _, issues = Semantic.of_pipeline params pl in
        check_bool "flagged" true (issues <> []));
  ]

let serialize_tests =
  [
    case "vecadd round-trips through the text format" (fun () ->
        let prog, _ = vecadd_program () in
        let text = Serialize.to_string prog in
        match Serialize.of_string params text with
        | Ok prog' -> check_string "stable" text (Serialize.to_string prog')
        | Error e -> Alcotest.fail e);
    case "the Jacobi program round-trips (icons, configs, control)" (fun () ->
        let b = Nsc_apps.Jacobi.build kb (Nsc_apps.Grid.cube 5) ~tol:1e-6 ~max_iters:10 in
        let text = Serialize.to_string b.Nsc_apps.Jacobi.program in
        match Serialize.of_string params text with
        | Ok prog' -> check_string "stable" text (Serialize.to_string prog')
        | Error e -> Alcotest.fail e);
    case "unknown directives are reported with their line" (fun () ->
        match Serialize.of_string params "program p\nfrobnicate 3\n" with
        | Error e -> check_bool "line 2" true (String.length e > 0 && String.sub e 0 6 = "line 2")
        | Ok _ -> Alcotest.fail "accepted garbage");
    case "bindings survive the text format" (fun () ->
        List.iter
          (fun b ->
            match Serialize.binding_of_string (Serialize.binding_to_string b) with
            | Some b' -> check_bool "roundtrip" true (Fu_config.equal_input_binding b b')
            | None -> Alcotest.fail "parse failed")
          [ Fu_config.From_switch; Fu_config.From_chain; Fu_config.From_constant 0.1666;
            Fu_config.From_feedback 3; Fu_config.Unbound ]);
    case "endpoints survive the text format" (fun () ->
        List.iter
          (fun ep ->
            match Serialize.endpoint_of_string (Serialize.endpoint_to_string ep) with
            | Some ep' -> check_bool "roundtrip" true (Connection.equal_endpoint ep ep')
            | None -> Alcotest.fail "parse failed")
          [ Connection.Direct_memory 3; Connection.Direct_cache 1;
            Connection.Pad { icon = 2; pad = Icon.In_pad (1, Resource.B) };
            Connection.Pad { icon = 0; pad = Icon.Out_pad 2 } ]);
  ]

let validate_tests =
  [
    case "an ALS bound twice is structural" (fun () ->
        let pl = Pipeline.empty 1 in
        let _, pl = Pipeline.add_icon params pl ~kind:(Icon.Als_icon { als = 0; bypass = Als.No_bypass }) ~pos:(Geometry.point 0 0) in
        let _, pl = Pipeline.add_icon params pl ~kind:(Icon.Als_icon { als = 0; bypass = Als.No_bypass }) ~pos:(Geometry.point 20 0) in
        check_bool "flagged" true (Validate.pipeline params pl <> []));
    case "nonexistent hardware is structural" (fun () ->
        let pl = Pipeline.empty 1 in
        let _, pl = Pipeline.add_icon params pl ~kind:(Icon.Memory_icon 99) ~pos:(Geometry.point 0 0) in
        check_bool "flagged" true (Validate.pipeline params pl <> []));
    case "dangling connection endpoints are structural" (fun () ->
        let pl = Pipeline.empty 1 in
        let _, pl =
          Pipeline.add_connection pl
            ~src:(Connection.Pad { icon = 7; pad = Icon.Out_pad 0 })
            ~dst:(Connection.Direct_memory 0) ()
        in
        check_bool "flagged" true (Validate.pipeline params pl <> []));
    case "overlapping declarations are structural" (fun () ->
        let prog = Program.empty "p" in
        let prog = Result.get_ok (Program.declare prog { Program.name = "a"; plane = 0; base = 0; length = 10 }) in
        let prog = Result.get_ok (Program.declare prog { Program.name = "b"; plane = 0; base = 5; length = 10 }) in
        check_bool "flagged" true (Validate.program params prog <> []));
    case "control referencing a missing pipeline is structural" (fun () ->
        let prog = Program.empty "p" in
        let prog, _ = Program.append_pipeline prog in
        let prog = Program.set_control prog [ Program.Exec 9 ] in
        check_bool "flagged" true (Validate.program params prog <> []));
    case "a valid program has no structural findings" (fun () ->
        let prog, _ = vecadd_program () in
        check_int "clean" 0 (List.length (Validate.program params prog)));
  ]

let suite =
  [
    ("diagram:semantic", semantic_tests);
    ("diagram:serialize", serialize_tests);
    ("diagram:validate", validate_tests);
  ]
