(* The programmable switch network, DMA descriptors, interrupts, router. *)

open Nsc_arch
open Util

let fu0 = { Resource.als = 0; slot = 0 }
let fu1 = { Resource.als = 1; slot = 0 }

let route src snk = { Switch.src; snk }

let switch_tests =
  [
    case "adding a route succeeds on an empty table" (fun () ->
        let t = Switch.empty params in
        match Switch.add t (route (Resource.Src_memory (0, 0)) (Resource.Snk_fu (fu0, Resource.A))) with
        | Ok t -> check_int "one route" 1 (Switch.route_count t)
        | Error _ -> Alcotest.fail "rejected");
    case "a sink may be driven only once" (fun () ->
        let t = Switch.empty params in
        let snk = Resource.Snk_fu (fu0, Resource.A) in
        let t = Result.get_ok (Switch.add t (route (Resource.Src_memory (0, 0)) snk)) in
        match Switch.add t (route (Resource.Src_memory (1, 0)) snk) with
        | Error (Switch.Sink_already_driven _) -> ()
        | _ -> Alcotest.fail "second driver accepted");
    case "fanout is bounded" (fun () ->
        let src = Resource.Src_fu fu0 in
        let rec fill t i =
          if i > params.Params.switch_fanout then t
          else
            match
              Switch.add t (route src (Resource.Snk_fu ({ Resource.als = 4; slot = 0 },
                (if i mod 2 = 0 then Resource.A else Resource.B))))
            with
            | Ok t -> fill t (i + 1)
            | Error (Switch.Fanout_exceeded _) ->
                check_int "at limit" params.Params.switch_fanout (Switch.fanout t src);
                t
            | Error e -> Alcotest.fail (Switch.error_to_string e)
        in
        (* drive distinct sinks: plane writes have plenty of slots *)
        let t = ref (Switch.empty params) in
        for i = 0 to params.Params.switch_fanout - 1 do
          t := Result.get_ok (Switch.add !t (route src (Resource.Snk_memory (i, 0))))
        done;
        (match Switch.add !t (route src (Resource.Snk_memory (9, 0))) with
        | Error (Switch.Fanout_exceeded _) -> ()
        | _ -> Alcotest.fail "fanout not enforced");
        ignore fill);
    case "self loops through the switch are rejected" (fun () ->
        let t = Switch.empty params in
        match Switch.add t (route (Resource.Src_fu fu0) (Resource.Snk_fu (fu0, Resource.B))) with
        | Error (Switch.Self_loop _) -> ()
        | _ -> Alcotest.fail "self loop accepted");
    case "capacity is enforced" (fun () ->
        let small = { params with Params.switch_capacity = 2 } in
        let t = Switch.empty small in
        let t = Result.get_ok (Switch.add t (route (Resource.Src_memory (0, 0)) (Resource.Snk_fu (fu0, Resource.A)))) in
        let t = Result.get_ok (Switch.add t (route (Resource.Src_memory (1, 0)) (Resource.Snk_fu (fu0, Resource.B)))) in
        match Switch.add t (route (Resource.Src_memory (2, 0)) (Resource.Snk_fu (fu1, Resource.A))) with
        | Error (Switch.Capacity_exceeded _) -> ()
        | _ -> Alcotest.fail "capacity not enforced");
    case "remove deletes exactly the given route" (fun () ->
        let r1 = route (Resource.Src_memory (0, 0)) (Resource.Snk_fu (fu0, Resource.A)) in
        let r2 = route (Resource.Src_memory (1, 0)) (Resource.Snk_fu (fu0, Resource.B)) in
        let t = Switch.empty params in
        let t = Result.get_ok (Switch.add t r1) in
        let t = Result.get_ok (Switch.add t r2) in
        let t = Switch.remove t r1 in
        check_int "one left" 1 (Switch.route_count t);
        check_bool "r2 intact" true (Switch.source_of_sink t r2.Switch.snk <> None));
    case "plane_writers and plane_readers see slotted endpoints" (fun () ->
        let t = Switch.empty params in
        let t = Result.get_ok (Switch.add t (route (Resource.Src_fu fu0) (Resource.Snk_memory (3, 0)))) in
        let t = Result.get_ok (Switch.add t (route (Resource.Src_memory (3, 1)) (Resource.Snk_fu (fu1, Resource.A)))) in
        check_int "writers" 1 (List.length (Switch.plane_writers t 3));
        check_int "readers" 1 (List.length (Switch.plane_readers t 3)));
  ]

let dma_tests =
  [
    case "addresses follow base and stride" (fun () ->
        let t =
          { Dma.channel = Dma.Plane 0; direction = Dma.Read; base = 10; stride = 3; count = 4 }
        in
        Alcotest.(check (list int)) "addrs" [ 10; 13; 16; 19 ]
          (Dma.addresses t ~vector_length:99));
    case "count 0 defers to the vector length" (fun () ->
        let t =
          { Dma.channel = Dma.Plane 0; direction = Dma.Read; base = 0; stride = 1; count = 0 }
        in
        check_int "len" 5 (List.length (Dma.addresses t ~vector_length:5)));
    case "validation flags a nonexistent plane" (fun () ->
        let t =
          { Dma.channel = Dma.Plane 99; direction = Dma.Read; base = 0; stride = 1; count = 1 }
        in
        check_bool "flagged" true (Dma.validate params t ~vector_length:1 <> []));
    case "validation flags running off the end of a plane" (fun () ->
        let t =
          {
            Dma.channel = Dma.Plane 0;
            direction = Dma.Write;
            base = params.Params.memory_plane_words - 2;
            stride = 1;
            count = 4;
          }
        in
        check_bool "flagged" true (Dma.validate params t ~vector_length:4 <> []));
    case "validation flags negative-stride underflow" (fun () ->
        let t =
          { Dma.channel = Dma.Plane 0; direction = Dma.Read; base = 2; stride = -1; count = 5 }
        in
        check_bool "flagged" true (Dma.validate params t ~vector_length:5 <> []));
    case "cache transfers are bounded by the buffer" (fun () ->
        let t =
          {
            Dma.channel = Dma.Cache_chan 0;
            direction = Dma.Read;
            base = params.Params.cache_words - 1;
            stride = 1;
            count = 2;
          }
        in
        check_bool "flagged" true (Dma.validate params t ~vector_length:2 <> []));
  ]

let interrupt_tests =
  [
    case "relations evaluate correctly" (fun () ->
        check_bool "<" true (Interrupt.relation_holds Interrupt.Rlt 1.0 2.0);
        check_bool "<=" true (Interrupt.relation_holds Interrupt.Rle 2.0 2.0);
        check_bool "=" false (Interrupt.relation_holds Interrupt.Req 1.0 2.0);
        check_bool "<>" true (Interrupt.relation_holds Interrupt.Rne 1.0 2.0);
        check_bool ">=" false (Interrupt.relation_holds Interrupt.Rge 1.0 2.0);
        check_bool ">" true (Interrupt.relation_holds Interrupt.Rgt 3.0 2.0));
    case "classify traps division by zero" (fun () ->
        check_bool "div0" true
          (Interrupt.classify ~op_is_divide:true ~divisor:(Some 0.0) Float.infinity
          = Some Interrupt.Divide_by_zero));
    case "classify traps NaN and overflow" (fun () ->
        check_bool "nan" true
          (Interrupt.classify ~op_is_divide:false ~divisor:None Float.nan
          = Some Interrupt.Invalid_operand);
        check_bool "inf" true
          (Interrupt.classify ~op_is_divide:false ~divisor:None Float.neg_infinity
          = Some Interrupt.Overflow);
        check_bool "finite ok" true
          (Interrupt.classify ~op_is_divide:false ~divisor:None 1.0 = None));
  ]

let router_tests =
  [
    case "dim_for_nodes is the ceiling log" (fun () ->
        check_int "1" 0 (Router.dim_for_nodes 1);
        check_int "2" 1 (Router.dim_for_nodes 2);
        check_int "63" 6 (Router.dim_for_nodes 63);
        check_int "64" 6 (Router.dim_for_nodes 64));
    case "every node has dim neighbours, each one bit away" (fun () ->
        let dim = 4 in
        List.iter
          (fun id ->
            let ns = Router.neighbours ~dim id in
            check_int "count" dim (List.length ns);
            List.iter (fun n -> check_int "distance" 1 (Router.distance id n)) ns)
          (List.init (Router.nodes_of_dim dim) (fun i -> i)));
    case "e-cube routes have Hamming-distance length and end at the target" (fun () ->
        let dim = 5 in
        let check_route src dst =
          let path = Router.route ~dim ~src ~dst in
          check_int "length" (Router.distance src dst) (List.length path);
          if src <> dst then
            check_int "ends at dst" dst (List.nth path (List.length path - 1))
        in
        check_route 0 31;
        check_route 7 7;
        check_route 12 19);
    case "gray code inverse round-trips" (fun () ->
        for i = 0 to 255 do
          check_int "roundtrip" i (Router.gray_inverse (Router.gray i))
        done);
    case "gray-embedded chain neighbours are hypercube neighbours" (fun () ->
        let dim = 4 in
        for r = 0 to Router.nodes_of_dim dim - 2 do
          check_int "one hop" 1
            (Router.distance (Router.chain_to_node ~dim r) (Router.chain_to_node ~dim (r + 1)))
        done);
    case "transfer cycles: zero to self, bandwidth-dominated when large" (fun () ->
        check_int "self" 0 (Router.transfer_cycles params ~src:3 ~dst:3 ~words:100);
        let one_hop = Router.transfer_cycles params ~src:0 ~dst:1 ~words:1000 in
        let two_hop = Router.transfer_cycles params ~src:0 ~dst:3 ~words:1000 in
        check_int "cut-through adds latency only"
          params.Params.hop_latency (two_hop - one_hop));
  ]

let suite =
  [
    ("arch:switch", switch_tests);
    ("arch:dma", dma_tests);
    ("arch:interrupt", interrupt_tests);
    ("arch:router", router_tests);
  ]
