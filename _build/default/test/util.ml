(* Shared helpers for the test suites. *)

open Nsc_arch
open Nsc_diagram

let kb = Knowledge.default
let params = Knowledge.params kb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float msg a b = Alcotest.(check (float 1e-9)) msg a b

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* A minimal valid one-instruction program: z = x + y on a singlet. *)
let vecadd_program ?(n = 16) () =
  let prog = Program.empty "vecadd" in
  let prog =
    List.fold_left
      (fun prog (name, plane) ->
        match Program.declare prog { Program.name; plane; base = 0; length = n } with
        | Ok p -> p
        | Error e -> failwith e)
      prog
      [ ("x", 0); ("y", 1); ("z", 2) ]
  in
  let prog, _ = Program.append_pipeline ~label:"z = x + y" prog in
  let pl = Option.get (Program.find_pipeline prog 1) in
  let pl = Pipeline.with_vector_length pl n in
  let icon, pl =
    Build.fail_on_error
      (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 30 8) ())
  in
  let pl =
    Build.mem_to_pad pl ~plane:0 ~var:"x" ~offset:0 ~icon
      ~pad:(Icon.In_pad (0, Resource.A)) ()
  in
  let pl =
    Build.mem_to_pad pl ~plane:1 ~var:"y" ~offset:0 ~icon
      ~pad:(Icon.In_pad (0, Resource.B)) ()
  in
  let pl = Build.pad_to_mem pl ~icon ~pad:(Icon.Out_pad 0) ~plane:2 ~var:"z" ~offset:0 () in
  let pl =
    Pipeline.set_config pl ~id:icon ~slot:0
      (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd)
  in
  (Program.update_pipeline prog pl, icon)

let semantic_of_program prog index =
  let pl = Option.get (Program.find_pipeline prog index) in
  Semantic.of_pipeline params ~lookup:(Program.variable_base prog) pl

(* Fresh pipeline with one placed ALS of the given kind. *)
let pipeline_with kind =
  let pl = Pipeline.empty 1 in
  let icon, pl =
    Build.fail_on_error (Pipeline.place_als params pl ~kind ~pos:(Geometry.point 20 4) ())
  in
  (pl, icon)
