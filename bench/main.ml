(* The benchmark harness: regenerates every figure and quantitative claim
   of the paper (see DESIGN.md's per-experiment index), then measures the
   tool chain itself with Bechamel microbenchmarks.

   The paper's evaluation is a prototype walkthrough, so the "tables" here
   are the reproduction targets DESIGN.md enumerates: F1-F11 (figures) and
   C1-C11 (quantitative claims).  Simulated-machine metrics (cycles,
   MFLOPS, utilization) come from the NSC simulator; host-time throughput
   of the editor/checker/codegen comes from Bechamel. *)

open Nsc_arch
open Nsc_diagram
open Nsc_sim
open Nsc_apps

let kb = Knowledge.default
let params = Knowledge.params kb

module Metrics = Nsc_metrics.Metrics

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s  %s\n" id title;
  Printf.printf "================================================================\n"

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* machine-readable results: collected as experiments run, written to  *)
(* BENCH_sim.json at the end                                           *)
(* ------------------------------------------------------------------ *)

(* sustained simulated MFLOPS per experiment, in run order *)
let mflops_results : (string * float) list ref = ref []
let record_mflops name mflops = mflops_results := (name, mflops) :: !mflops_results

(* Engine timings are best-of-[timing_reps] over a warmed, shared
   plan/kernel cache: the warm-up repetition pays every compile, each
   timed repetition reloads a fresh node outside the timed window, so the
   numbers measure simulator execution — the cost a hot solve loop
   actually pays — rather than one cold compile. *)
let timing_reps = 5

type engine_perf = {
  legacy_seconds : float;
  plan_seconds : float;
  perf_sweeps : int;
  perf_final_change : float;
  perf_plan_compiles : int;
  perf_plan_cache_hits : int;
}

let engine_perf_result : engine_perf option ref = ref None

type kernel_perf = {
  kernel_seconds : float;
  kernel_v2_seconds : float;
  kernel_plan_seconds : float;
  kernel_sweeps : int;
  kernel_final_change : float;
  kernel_compiles : int;
  kernel_cache_hits : int;
  kernel_pool_hits : int;
  kernel_pool_misses : int;
  kernel_residual_match : bool;
  kernel_faulted_match : bool;
}

let kernel_perf_result : kernel_perf option ref = ref None

type throughput_perf = {
  tp_batch : int;  (** replica count K *)
  tp_domains : int;
  tp_batch_seconds : float;
  tp_problems_per_sec : float;
  tp_single_seconds : float;  (** K independent [solve] calls *)
  tp_batch_runs : int;
  tp_batch_replicas : int;
  tp_batch_fallbacks : int;
  tp_pool_hits : int;
  tp_pool_misses : int;
  tp_residual_match : bool;
}

let throughput_perf_result : throughput_perf option ref = ref None

type trace_perf = {
  trace_disabled_seconds : float;
  trace_enabled_seconds : float;
  disabled_gate_ns : float;
  instrumentation_sites : int;
  projected_overhead_pct : float;
  trace_counter_values : (string * int * string) list;
}

let trace_perf_result : trace_perf option ref = ref None

type profile_perf = {
  prof_sweeps : int;
  prof_exec_samples : int;
  prof_p50_exec : int;
  prof_p99_exec : int;
  prof_hotspot : Stats.hotspot;
  prof_gate_ns : float;
  prof_sites : int;
  prof_projected_pct : float;
}

let profile_perf_result : profile_perf option ref = ref None

type fault_perf = {
  fault_clean_cycles : int;
  fault_faulted_cycles : int;
  fault_cycle_overhead_pct : float;
  fault_residual_match : bool;
  fault_gate_ns : float;
  fault_sites : int;
  fault_projected_pct : float;
  fault_ledger : (string * int) list;
  fault_ft_rollbacks : int;
  fault_ft_detected : int;
  fault_ft_sweeps : int;
}

let fault_perf_result : fault_perf option ref = ref None

type service_perf = {
  svc_submitted : int;
  svc_completed : int;
  svc_rejected : int;
  svc_domains : int;
  svc_queue_bound : int;
  svc_cache_bound : int;
  svc_elapsed_seconds : float;
  svc_jobs_per_sec : float;
  svc_p50_usec : int;
  svc_p99_usec : int;
  svc_cache_evictions : int;
  svc_residual_match : bool;
}

let service_perf_result : service_perf option ref = ref None

type resilience_perf = {
  res_gate_ns : float;  (** one disabled Budget.check_opt None *)
  res_sites : int;  (** armed boundary checks of the reference solve *)
  res_clean_seconds : float;
  res_projected_pct : float;
  res_deadline_spent : int;  (** cycles charged when the mid-run kill fired *)
  res_chaos_jobs : int;
  res_chaos_lost : int;  (** acked jobs missing after kill + recover *)
  res_chaos_match : bool;  (** recovery responses bit-equal to uninterrupted *)
}

let resilience_perf_result : resilience_perf option ref = ref None

type scaling_curve_point = {
  sc_dim : int;
  sc_nodes : int;
  sc_gflops : float;
  sc_efficiency : float;
  sc_comm_fraction : float;
  sc_overlap_ratio : float;
  sc_contention_per_iter : float;
  sc_cycles_per_iter : float;
}

type scaling_perf = {
  sc_n : int;  (** per-node slab side *)
  sc_iters : int;
  sc_points : scaling_curve_point list;  (** asynchronous campaign *)
  sc_sync_cycles_per_iter : float;  (** dim-6 synchronous baseline *)
  sc_async_cycles_per_iter : float;
  sc_exchange_visible_sync : float;  (** visible exchange cycles / iter *)
  sc_exchange_visible_async : float;
  sc_exchange_reduction_pct : float;
  sc_residual_match : bool;  (** async field bit-equal to sync, clean *)
  sc_faulted_residual_match : bool;  (** same under a seeded fault model *)
}

let scaling_perf_result : scaling_perf option ref = ref None

let write_bench_json path =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"experiments\": [\n";
  let exps = List.rev !mflops_results in
  List.iteri
    (fun i (name, mflops) ->
      out "    {\"name\": %S, \"sustained_mflops\": %.3f}%s\n" name mflops
        (if i = List.length exps - 1 then "" else ","))
    exps;
  out "  ]";
  (match !engine_perf_result with
  | None -> ()
  | Some p ->
      out ",\n  \"jacobi_n9\": {\n";
      out "    \"timing_reps\": %d,\n" timing_reps;
      out "    \"legacy_seconds\": %.4f,\n" p.legacy_seconds;
      out "    \"plan_seconds\": %.4f,\n" p.plan_seconds;
      out "    \"speedup\": %.2f,\n" (p.legacy_seconds /. p.plan_seconds);
      out "    \"sweeps\": %d,\n" p.perf_sweeps;
      out "    \"final_change\": %.17e,\n" p.perf_final_change;
      out "    \"plan_compiles\": %d,\n" p.perf_plan_compiles;
      out "    \"plan_cache_hits\": %d\n" p.perf_plan_cache_hits;
      out "  }");
  (match !kernel_perf_result with
  | None -> ()
  | Some k ->
      out ",\n  \"kernel\": {\n";
      out "    \"timing_reps\": %d,\n" timing_reps;
      out "    \"kernel_seconds\": %.4f,\n" k.kernel_seconds;
      out "    \"v2_seconds\": %.4f,\n" k.kernel_v2_seconds;
      out "    \"plan_seconds\": %.4f,\n" k.kernel_plan_seconds;
      out "    \"speedup\": %.2f,\n" (k.kernel_plan_seconds /. k.kernel_seconds);
      out "    \"speedup_vs_v2\": %.2f,\n" (k.kernel_v2_seconds /. k.kernel_seconds);
      out "    \"sweeps\": %d,\n" k.kernel_sweeps;
      out "    \"final_change\": %.17e,\n" k.kernel_final_change;
      out "    \"kernel_compiles\": %d,\n" k.kernel_compiles;
      out "    \"kernel_cache_hits\": %d,\n" k.kernel_cache_hits;
      out "    \"pool_hits\": %d,\n" k.kernel_pool_hits;
      out "    \"pool_misses\": %d,\n" k.kernel_pool_misses;
      out "    \"residual_match\": %b,\n" k.kernel_residual_match;
      out "    \"faulted_residual_match\": %b\n" k.kernel_faulted_match;
      out "  }");
  (match !throughput_perf_result with
  | None -> ()
  | Some t ->
      out ",\n  \"throughput\": {\n";
      out "    \"batch\": %d,\n" t.tp_batch;
      out "    \"domains\": %d,\n" t.tp_domains;
      out "    \"batch_seconds\": %.4f,\n" t.tp_batch_seconds;
      out "    \"problems_per_sec\": %.2f,\n" t.tp_problems_per_sec;
      out "    \"single_seconds\": %.4f,\n" t.tp_single_seconds;
      out "    \"speedup_vs_sequential\": %.2f,\n"
        (t.tp_single_seconds /. t.tp_batch_seconds);
      out "    \"batch_runs\": %d,\n" t.tp_batch_runs;
      out "    \"batch_replicas\": %d,\n" t.tp_batch_replicas;
      out "    \"batch_fallbacks\": %d,\n" t.tp_batch_fallbacks;
      out "    \"pool_hits\": %d,\n" t.tp_pool_hits;
      out "    \"pool_misses\": %d,\n" t.tp_pool_misses;
      out "    \"residual_match\": %b\n" t.tp_residual_match;
      out "  }");
  (match !trace_perf_result with
  | None -> ()
  | Some t ->
      out ",\n  \"trace\": {\n";
      out "    \"disabled_seconds\": %.4f,\n" t.trace_disabled_seconds;
      out "    \"enabled_seconds\": %.4f,\n" t.trace_enabled_seconds;
      out "    \"disabled_gate_ns\": %.3f,\n" t.disabled_gate_ns;
      out "    \"instrumentation_sites\": %d,\n" t.instrumentation_sites;
      out "    \"projected_disabled_overhead_pct\": %.4f,\n" t.projected_overhead_pct;
      out "    \"counters\": {\n";
      let nonzero = List.filter (fun (_, v, _) -> v > 0) t.trace_counter_values in
      List.iteri
        (fun i (name, v, _) ->
          out "      %S: %d%s\n" name v (if i = List.length nonzero - 1 then "" else ","))
        nonzero;
      out "    }\n";
      out "  }");
  (match !profile_perf_result with
  | None -> ()
  | Some p ->
      out ",\n  \"profile\": {\n";
      out "    \"sweeps\": %d,\n" p.prof_sweeps;
      out "    \"exec_samples\": %d,\n" p.prof_exec_samples;
      out "    \"p50_exec_cycles\": %d,\n" p.prof_p50_exec;
      out "    \"p99_exec_cycles\": %d,\n" p.prof_p99_exec;
      let h = p.prof_hotspot in
      out
        "    \"top_hotspot\": {\"instr\": %S, \"unit\": %S, \"cycles\": %d, \
         \"mflops\": %.2f, \"peak_pct\": %.2f},\n"
        h.Stats.hs_instr h.Stats.hs_unit h.Stats.hs_share_cycles
        h.Stats.hs_mflops h.Stats.hs_peak_pct;
      out "    \"disabled_gate_ns\": %.3f,\n" p.prof_gate_ns;
      out "    \"instrumentation_sites\": %d,\n" p.prof_sites;
      out "    \"projected_disabled_overhead_pct\": %.4f\n" p.prof_projected_pct;
      out "  }");
  (match !fault_perf_result with
  | None -> ()
  | Some f ->
      out ",\n  \"fault\": {\n";
      out "    \"clean_cycles\": %d,\n" f.fault_clean_cycles;
      out "    \"faulted_cycles\": %d,\n" f.fault_faulted_cycles;
      out "    \"cycle_overhead_pct\": %.4f,\n" f.fault_cycle_overhead_pct;
      out "    \"residual_match\": %b,\n" f.fault_residual_match;
      out "    \"disabled_gate_ns\": %.3f,\n" f.fault_gate_ns;
      out "    \"injection_sites\": %d,\n" f.fault_sites;
      out "    \"projected_disabled_overhead_pct\": %.4f,\n" f.fault_projected_pct;
      out "    \"ft_rollbacks\": %d,\n" f.fault_ft_rollbacks;
      out "    \"ft_faults_detected\": %d,\n" f.fault_ft_detected;
      out "    \"ft_sweeps\": %d,\n" f.fault_ft_sweeps;
      out "    \"ledger\": {\n";
      let nonzero = List.filter (fun (_, v) -> v > 0) f.fault_ledger in
      List.iteri
        (fun i (name, v) ->
          out "      %S: %d%s\n" name v (if i = List.length nonzero - 1 then "" else ","))
        nonzero;
      out "    }\n";
      out "  }");
  (match !service_perf_result with
  | None -> ()
  | Some s ->
      out ",\n  \"service\": {\n";
      out "    \"jobs_submitted\": %d,\n" s.svc_submitted;
      out "    \"jobs_completed\": %d,\n" s.svc_completed;
      out "    \"queue_rejections\": %d,\n" s.svc_rejected;
      out "    \"domains\": %d,\n" s.svc_domains;
      out "    \"queue_bound\": %d,\n" s.svc_queue_bound;
      out "    \"cache_bound\": %d,\n" s.svc_cache_bound;
      out "    \"elapsed_seconds\": %.4f,\n" s.svc_elapsed_seconds;
      out "    \"jobs_per_sec\": %.2f,\n" s.svc_jobs_per_sec;
      out "    \"p50_usec\": %d,\n" s.svc_p50_usec;
      out "    \"p99_usec\": %d,\n" s.svc_p99_usec;
      out "    \"cache_evictions\": %d,\n" s.svc_cache_evictions;
      out "    \"residual_match\": %b\n" s.svc_residual_match;
      out "  }");
  (match !resilience_perf_result with
  | None -> ()
  | Some r ->
      out ",\n  \"resilience\": {\n";
      out "    \"disabled_gate_ns\": %.3f,\n" r.res_gate_ns;
      out "    \"guard_sites\": %d,\n" r.res_sites;
      out "    \"clean_seconds\": %.4f,\n" r.res_clean_seconds;
      out "    \"projected_disabled_overhead_pct\": %.4f,\n" r.res_projected_pct;
      out "    \"deadline_spent_cycles\": %d,\n" r.res_deadline_spent;
      out "    \"chaos_jobs\": %d,\n" r.res_chaos_jobs;
      out "    \"chaos_lost\": %d,\n" r.res_chaos_lost;
      out "    \"chaos_match\": %b\n" r.res_chaos_match;
      out "  }");
  (match !scaling_perf_result with
  | None -> ()
  | Some s ->
      out ",\n  \"scaling\": {\n";
      out "    \"n\": %d,\n" s.sc_n;
      out "    \"iters\": %d,\n" s.sc_iters;
      out "    \"sync_dim6_cycles_per_iter\": %.1f,\n" s.sc_sync_cycles_per_iter;
      out "    \"async_dim6_cycles_per_iter\": %.1f,\n" s.sc_async_cycles_per_iter;
      out "    \"exchange_visible_sync\": %.1f,\n" s.sc_exchange_visible_sync;
      out "    \"exchange_visible_async\": %.1f,\n" s.sc_exchange_visible_async;
      out "    \"exchange_visible_reduction_pct\": %.1f,\n" s.sc_exchange_reduction_pct;
      out "    \"residual_match\": %b,\n" s.sc_residual_match;
      out "    \"faulted_residual_match\": %b,\n" s.sc_faulted_residual_match;
      out "    \"points\": [\n";
      List.iteri
        (fun i p ->
          out
            "      {\"dim\": %d, \"nodes\": %d, \"gflops\": %.3f, \"efficiency\": \
             %.4f, \"comm_fraction\": %.4f, \"overlap_ratio\": %.4f, \
             \"contention_per_iter\": %.1f, \"cycles_per_iter\": %.1f}%s\n"
            p.sc_dim p.sc_nodes p.sc_gflops p.sc_efficiency p.sc_comm_fraction
            p.sc_overlap_ratio p.sc_contention_per_iter p.sc_cycles_per_iter
            (if i = List.length s.sc_points - 1 then "" else ","))
        s.sc_points;
      out "    ]\n";
      out "  }");
  out "\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* F1 + C1: the machine and its datapath                               *)
(* ------------------------------------------------------------------ *)

let fig1_datapath () =
  section "F1/C1" "machine knowledge base (paper figure 1 and section 2)";
  row "%s\n" (Knowledge.summary kb);
  row "functional units total      : %d (paper: 32)\n" (Params.n_functional_units params);
  row "node memory                 : %d MB (paper: 2 Gbytes)\n"
    (Params.node_memory_bytes params / (1024 * 1024));
  row "peak per node               : %.0f MFLOPS (paper: 640)\n" (Params.peak_mflops params);
  row "64-node machine             : %.1f GFLOPS peak (paper: 40), %d GB memory (paper: 128)\n"
    (Params.peak_gflops_machine params)
    (Params.node_memory_bytes params / (1024 * 1024 * 1024) * 64)

(* ------------------------------------------------------------------ *)
(* F2/F11 + C10: the Jacobi example, diagrams and convergence          *)
(* ------------------------------------------------------------------ *)

let run_jacobi n =
  let prob = Poisson.manufactured n in
  let tol = 1e-6 and max_iters = 4000 in
  let u_host, host_iters, _ = Poisson.host_solve prob ~tol ~max_iters in
  match Jacobi.solve kb prob ~tol ~max_iters with
  | Error e -> failwith e
  | Ok o ->
      let diff = Grid.max_diff prob.Poisson.grid o.Jacobi.u u_host in
      (prob, host_iters, o, diff)

let fig2_jacobi () =
  section "F2/F11/C10" "point Jacobi for 3-D Poisson with residual check (eq. 1)";
  let b = Jacobi.build kb (Grid.cube 9) ~tol:1e-6 ~max_iters:100 in
  List.iter
    (fun (pl : Pipeline.t) ->
      row "instruction %d: %-28s %2d unit(s)  %2d wire(s)\n" pl.Pipeline.index
        pl.Pipeline.label
        (Pipeline.programmed_units pl)
        (List.length pl.Pipeline.connections))
    b.Jacobi.program.Program.pipelines;
  row "\n%4s  %11s  %10s  %14s  %12s\n" "n" "host sweeps" "NSC sweeps" "max|nsc-host|"
    "sust. MFLOPS";
  List.iter
    (fun n ->
      let _, host_iters, o, diff = run_jacobi n in
      let s =
        Stats.summarize params ~cycles:o.Jacobi.stats.Sequencer.total_cycles
          ~flops:o.Jacobi.stats.Sequencer.total_flops
      in
      record_mflops (Printf.sprintf "jacobi_n%d" n) s.Stats.mflops;
      row "%4d  %11d  %10d  %14.2e  %12.1f\n" n host_iters o.Jacobi.sweeps diff s.Stats.mflops)
    [ 5; 7; 9 ]

(* ------------------------------------------------------------------ *)
(* C2: the planar memory organisation - copies versus contention       *)
(* ------------------------------------------------------------------ *)

let c2_contention () =
  section "C2" "memory-plane layout ablation (copies vs. contention stalls)";
  let prob = Poisson.manufactured 7 in
  let measure name layout =
    match Jacobi.solve kb ~layout prob ~tol:1e-5 ~max_iters:500 with
    | Error e -> failwith e
    | Ok o ->
        let per_sweep =
          float_of_int o.Jacobi.stats.Sequencer.total_cycles
          /. float_of_int (max 1 o.Jacobi.sweeps)
        in
        let s =
          Stats.summarize params ~cycles:o.Jacobi.stats.Sequencer.total_cycles
            ~flops:o.Jacobi.stats.Sequencer.total_flops
        in
        record_mflops (Printf.sprintf "layout_%s" name) s.Stats.mflops;
        row "%-22s  %6d u-planes  %9.0f cycles/sweep  %6.1f MFLOPS  %5.1f%% util\n" name
          (List.length (Jacobi.u_planes layout))
          per_sweep s.Stats.mflops (100.0 *. s.Stats.utilization)
  in
  measure "distributed (4 copies)" Jacobi.distributed;
  measure "packed (2 copies)" Jacobi.packed;
  row "shape: fewer copies -> plane port contention -> stalls every element\n"

(* ------------------------------------------------------------------ *)
(* C3: sustained node rate versus the 640 MFLOPS peak                  *)
(* ------------------------------------------------------------------ *)

let run_lang src =
  match Nsc_lang.Compile.compile kb src with
  | Error e -> failwith e.Nsc_lang.Compile.message
  | Ok c -> (
      match Nsc_microcode.Codegen.compile kb c.Nsc_lang.Compile.program with
      | Error _ -> failwith "codegen"
      | Ok compiled -> (
          let node = Node.create params in
          match Sequencer.run node compiled with
          | Ok o ->
              (o.Sequencer.stats.Sequencer.total_flops,
               o.Sequencer.stats.Sequencer.total_cycles)
          | Error e -> failwith e))

let c3_node_rate () =
  section "C3" "sustained single-node MFLOPS vs. the 640 peak";
  let saturation_src =
    (* 8 stencil terms + a 7-add summing chain = 23 flops/element, packing
       onto 8 doublets, 2 triplets and a singlet *)
    let arrays = [ "a"; "b"; "c"; "d"; "e"; "f2"; "g"; "h" ] in
    String.concat "\n"
      (List.mapi (fun i a -> Printf.sprintf "array %s[4096] plane %d" a i) arrays
      @ [ "array z[4096] plane 8" ]
      @ [
          "z = "
          ^ String.concat " + "
              (List.mapi
                 (fun i a -> Printf.sprintf "(%s[-1] + %s[+1]) * 0.1%d" a a i)
                 arrays);
        ])
  in
  let bench name (flops, cycles) =
    let s = Stats.summarize params ~cycles ~flops in
    record_mflops name s.Stats.mflops;
    row "%-30s %9d flops %9d cycles  %7.1f MFLOPS  %5.1f%% of peak\n" name flops cycles
      s.Stats.mflops (100.0 *. s.Stats.utilization)
  in
  bench "vecadd (1 flop/elem)"
    (run_lang "array a[4096] plane 0\narray b[4096] plane 1\narray z[4096] plane 2\nz = a + b");
  (let prob = Poisson.manufactured 9 in
   match Jacobi.solve kb prob ~tol:1e-6 ~max_iters:300 with
   | Ok o ->
       bench "Jacobi solve loop (11 fl/el)"
         (o.Jacobi.stats.Sequencer.total_flops, o.Jacobi.stats.Sequencer.total_cycles)
   | Error e -> failwith e);
  bench "saturation expression" (run_lang saturation_src);
  row "shape: utilization rises with flops/element; fill, refresh copies and\n";
  row "reconfiguration keep sustained rates well under peak, as expected\n"

(* ------------------------------------------------------------------ *)
(* C4: hypercube weak scaling toward the 40 GFLOPS machine             *)
(* ------------------------------------------------------------------ *)

let c4_scaling ~domains () =
  section "C4" "hypercube weak scaling (slab-decomposed Jacobi)";
  if domains > 1 then
    row "(per-node simulation fanned across %d OCaml domains)\n" domains;
  let series n iters =
    row "per-node slab %dx%dx%d:\n" n n n;
    row "%6s  %8s  %11s  %8s\n" "nodes" "GFLOPS" "efficiency" "comm %";
    match Parallel.scaling params ~domains ~n ~iters ~dims:[ 0; 1; 2; 3; 4; 5; 6 ] with
    | Error e -> failwith e
    | Ok pts ->
        List.iter
          (fun (pt : Parallel.point) ->
            row "%6d  %8.3f  %10.1f%%  %7.1f%%\n" pt.Parallel.nodes pt.Parallel.gflops
              (100.0 *. pt.Parallel.efficiency)
              (100.0 *. pt.Parallel.comm_fraction))
          pts
  in
  series 9 2;
  row "\n";
  series 15 2;
  row "shape: near-linear weak scaling; the communication share flattens\n";
  row "(nearest-neighbour Gray-embedded exchange) and shrinks with slab size\n";
  row "(surface-to-volume)\n"

(* ------------------------------------------------------------------ *)
(* SCALING: asynchronous halo exchange, weak scaling to 1024 nodes     *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled line chart: efficiency, visible communication share and
   overlap ratio against the node count, GFLOPS annotated per point. *)
let write_scaling_svg path (points : scaling_curve_point list) =
  let w = 680 and h = 420 in
  let left = 64 and right = 24 and top = 48 and bottom = 56 in
  let plot_w = w - left - right and plot_h = h - top - bottom in
  let np = List.length points in
  let x i =
    left
    + if np <= 1 then plot_w / 2 else i * plot_w / (np - 1)
  in
  let y pct = top + int_of_float (float_of_int plot_h *. (1.0 -. pct)) in
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
       viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n"
    w h w h;
  out "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" w h;
  out
    "<text x=\"%d\" y=\"22\" text-anchor=\"middle\" font-size=\"14\">Weak \
     scaling with asynchronous halo exchange (slab Jacobi)</text>\n"
    (w / 2);
  (* horizontal gridlines every 25% *)
  List.iter
    (fun pct ->
      let yy = y (float_of_int pct /. 100.0) in
      out
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>\n\
         <text x=\"%d\" y=\"%d\" text-anchor=\"end\">%d%%</text>\n"
        left yy (w - right) yy (left - 8) (yy + 4) pct)
    [ 0; 25; 50; 75; 100 ];
  (* x tick labels: node counts *)
  List.iteri
    (fun i p ->
      out "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">%d</text>\n" (x i)
        (h - bottom + 18) p.sc_nodes)
    points;
  out "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">nodes</text>\n" (w / 2)
    (h - 14);
  let series color value =
    let pts =
      String.concat " "
        (List.mapi (fun i p -> Printf.sprintf "%d,%d" (x i) (y (value p))) points)
    in
    out "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n"
      pts color;
    List.iteri
      (fun i p ->
        out "<circle cx=\"%d\" cy=\"%d\" r=\"3\" fill=\"%s\"/>\n" (x i)
          (y (value p)) color)
      points
  in
  series "#2563eb" (fun p -> p.sc_efficiency);
  series "#dc2626" (fun p -> p.sc_comm_fraction);
  series "#16a34a" (fun p -> p.sc_overlap_ratio);
  (* sustained GFLOPS annotated above the efficiency curve *)
  List.iteri
    (fun i p ->
      out
        "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" font-size=\"10\" \
         fill=\"#2563eb\">%.1f</text>\n"
        (x i)
        (y p.sc_efficiency - 8)
        p.sc_gflops)
    points;
  let legend yy color label =
    out
      "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
       stroke-width=\"2\"/>\n\
       <text x=\"%d\" y=\"%d\">%s</text>\n"
      (left + 10) yy (left + 34) yy color (left + 40) (yy + 4) label
  in
  legend (top + 14) "#2563eb" "parallel efficiency (GFLOPS annotated)";
  legend (top + 32) "#dc2626" "visible communication share";
  legend (top + 50) "#16a34a" "overlap ratio (exchange cycles hidden)";
  out "</svg>\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let scaling_campaign ~domains () =
  section "SCALING" "asynchronous halo exchange: overlap and the 1024-node campaign";
  let module F = Nsc_fault.Fault in
  let n = 5 and iters = 2 in
  let run ?(overlap = false) dim =
    match Parallel.run params ~domains ~overlap ~n ~iters ~dim with
    | Error e -> failwith ("SCALING: " ^ e)
    | Ok pt -> pt
  in
  let field ?(overlap = false) dim =
    match Parallel.run_field params ~domains ~overlap ~n ~iters ~dim with
    | Error e -> failwith ("SCALING: " ^ e)
    | Ok f -> f
  in
  (* dim-6 head-to-head: the overlapped schedule must hide enough of the
     exchange to cut its visible cycles, without perturbing a single bit *)
  let sync6 = run 6 and async6 = run ~overlap:true 6 in
  let visible (pt : Parallel.point) =
    pt.Parallel.comm_fraction *. pt.Parallel.cycles_per_iter
  in
  let vis_sync = visible sync6 and vis_async = visible async6 in
  let reduction_pct = 100.0 *. (vis_sync -. vis_async) /. vis_sync in
  let residual_match = field 6 = field ~overlap:true 6 in
  let faulted_field overlap =
    let spec =
      match F.parse "transient-link:p=0.2:retries=2" with
      | Ok s -> s
      | Error e -> failwith ("SCALING: " ^ e)
    in
    F.install (F.make ~seed:7 spec);
    Fun.protect ~finally:F.clear (fun () -> field ~overlap 6)
  in
  let faulted_match = faulted_field false = faulted_field true in
  row "dim 6 (64 nodes), per-node slab %dx%dx%d, %d iterations:\n" n n n iters;
  row "  synchronous:  %7.0f cycles/iter, %5.1f%% in exchange\n"
    sync6.Parallel.cycles_per_iter
    (100.0 *. sync6.Parallel.comm_fraction);
  row "  asynchronous: %7.0f cycles/iter, %5.1f%% visible, %5.1f%% hidden\n"
    async6.Parallel.cycles_per_iter
    (100.0 *. async6.Parallel.comm_fraction)
    (100.0 *. async6.Parallel.overlap_ratio);
  row "  exchange-visible cycles: %.0f -> %.0f (-%.1f%%)\n" vis_sync vis_async
    reduction_pct;
  row "  residuals bit-identical: clean %b, faulted %b\n" residual_match
    faulted_match;
  if reduction_pct < 20.0 then
    failwith "SCALING: overlap hides less than 20% of exchange-visible cycles";
  if not (residual_match && faulted_match) then
    failwith "SCALING: overlapped schedule diverged from the synchronous one";
  (* the campaign: weak scaling with overlap, 64 -> 1024 nodes *)
  let dims = [ 0; 6; 7; 8; 9; 10 ] in
  row "\ncampaign (asynchronous exchange):\n";
  row "%6s  %8s  %11s  %8s  %9s  %11s\n" "nodes" "GFLOPS" "efficiency" "comm %"
    "overlap %" "cycles/iter";
  let campaign =
    match Parallel.scaling params ~domains ~overlap:true ~n ~iters ~dims with
    | Error e -> failwith ("SCALING: " ^ e)
    | Ok pts -> pts
  in
  let points =
    List.map2
      (fun dim (pt : Parallel.point) ->
        row "%6d  %8.3f  %10.1f%%  %7.1f%%  %8.1f%%  %11.0f\n" pt.Parallel.nodes
          pt.Parallel.gflops
          (100.0 *. pt.Parallel.efficiency)
          (100.0 *. pt.Parallel.comm_fraction)
          (100.0 *. pt.Parallel.overlap_ratio)
          pt.Parallel.cycles_per_iter;
        {
          sc_dim = dim;
          sc_nodes = pt.Parallel.nodes;
          sc_gflops = pt.Parallel.gflops;
          sc_efficiency = pt.Parallel.efficiency;
          sc_comm_fraction = pt.Parallel.comm_fraction;
          sc_overlap_ratio = pt.Parallel.overlap_ratio;
          sc_contention_per_iter = pt.Parallel.contention_per_iter;
          sc_cycles_per_iter = pt.Parallel.cycles_per_iter;
        })
      dims campaign
  in
  let last = List.nth points (List.length points - 1) in
  row
    "at %d nodes the machine sustains %.1f GFLOPS at %.1f%% efficiency with \
     %.1f%% of exchange cycles hidden\n"
    last.sc_nodes last.sc_gflops
    (100.0 *. last.sc_efficiency)
    (100.0 *. last.sc_overlap_ratio);
  (try
     write_scaling_svg "figures/fig12-scaling.svg" points;
     row "figure written: figures/fig12-scaling.svg\n"
   with Sys_error e -> row "figure skipped (%s)\n" e);
  scaling_perf_result :=
    Some
      {
        sc_n = n;
        sc_iters = iters;
        sc_points = points;
        sc_sync_cycles_per_iter = sync6.Parallel.cycles_per_iter;
        sc_async_cycles_per_iter = async6.Parallel.cycles_per_iter;
        sc_exchange_visible_sync = vis_sync;
        sc_exchange_visible_async = vis_async;
        sc_exchange_reduction_pct = reduction_pct;
        sc_residual_match = residual_match;
        sc_faulted_residual_match = faulted_match;
      }

(* ------------------------------------------------------------------ *)
(* C5: microcode scale                                                 *)
(* ------------------------------------------------------------------ *)

let c5_microcode () =
  section "C5" "microinstruction scale ('a few thousand bits ... dozens of fields')";
  let layout = Nsc_microcode.Fields.make params in
  row "bits per instruction   : %d\n" layout.Nsc_microcode.Fields.total_bits;
  row "field instances        : %d\n" (Nsc_microcode.Fields.field_count layout);
  row "distinct field kinds   : %d\n" (Nsc_microcode.Fields.kind_count layout);
  let b = Jacobi.build kb (Grid.cube 9) ~tol:1e-6 ~max_iters:10 in
  match Nsc_microcode.Codegen.compile kb b.Jacobi.program with
  | Ok c ->
      row "Jacobi program         : %d instructions = %d bits of microcode\n"
        (List.length c.Nsc_microcode.Codegen.instructions)
        (Nsc_microcode.Codegen.code_bits c)
  | Error _ -> failwith "codegen"

(* ------------------------------------------------------------------ *)
(* C6: authoring-effort comparison across the three routes             *)
(* ------------------------------------------------------------------ *)

let c6_authoring () =
  section "C6" "authoring effort: raw microcode vs. visual editor vs. compiler";
  let lang_src =
    "array u[64] plane 0\narray g[64] plane 1\narray mask[64] plane 2\narray unew[64] \
     plane 3\nunew = mask * ((u[-1] + u[+1] - g) * 0.5)"
  in
  let c =
    match Nsc_lang.Compile.compile kb lang_src with
    | Ok c -> c
    | Error e -> failwith e.Nsc_lang.Compile.message
  in
  let compiled =
    match Nsc_microcode.Codegen.compile kb c.Nsc_lang.Compile.program with
    | Ok c -> c
    | Error _ -> failwith "codegen"
  in
  let instr = List.hd compiled.Nsc_microcode.Codegen.instructions in
  let live_bits = Nsc_microcode.Word.popcount instr.Nsc_microcode.Encode.word in
  let layout = compiled.Nsc_microcode.Codegen.layout in
  row "raw microcode  : %5d bits to author across %d fields (%d live bits)\n"
    layout.Nsc_microcode.Fields.total_bits
    (Nsc_microcode.Fields.field_count layout)
    live_bits;
  let pl = List.hd c.Nsc_lang.Compile.program.Program.pipelines in
  let gestures =
    (3 * List.length pl.Pipeline.icons)
    + (4 * List.length pl.Pipeline.connections)
    + (2 * Pipeline.programmed_units pl)
  in
  row "visual editor  : %5d mouse/menu events (%d icons, %d wires, %d units)\n" gestures
    (List.length pl.Pipeline.icons)
    (List.length pl.Pipeline.connections)
    (Pipeline.programmed_units pl);
  row "compiler       : %5d characters of source (%d lines)\n" (String.length lang_src)
    (List.length (String.split_on_char '\n' lang_src));
  row "shape: each level drops the specification burden by about an order of\n";
  row "magnitude - hand microcoding is 'clearly not practical'\n"

(* ------------------------------------------------------------------ *)
(* C7: the checker catches every seeded violation                      *)
(* ------------------------------------------------------------------ *)

let c7_checker () =
  section "C7" "checker coverage: seeded violations per rule";
  let catch name build rule =
    let pl = build () in
    let ds = Nsc_checker.Checker.check_pipeline kb ~level:`Complete pl in
    let hit =
      List.exists
        (fun d -> Nsc_checker.Diagnostic.equal_rule d.Nsc_checker.Diagnostic.rule rule)
        ds
    in
    row "  %-30s %s\n" name (if hit then "caught" else "MISSED")
  in
  let place kind =
    let pl = Pipeline.empty 1 in
    Build.fail_on_error (Pipeline.place_als params pl ~kind ~pos:(Geometry.point 10 2) ())
  in
  catch "integer op on a singlet"
    (fun () ->
      let icon, pl = place Als.Singlet in
      Pipeline.set_config pl ~id:icon ~slot:0
        (Fu_config.make ~a:(Fu_config.From_constant 1.0) ~b:(Fu_config.From_constant 2.0)
           Opcode.Iadd))
    Nsc_checker.Diagnostic.Capability;
  catch "second writer to one plane"
    (fun () ->
      let i0, pl = place Als.Singlet in
      let i1, pl =
        Build.fail_on_error
          (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 40 2) ())
      in
      let out pl icon off =
        snd
          (Pipeline.add_connection pl
             ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
             ~dst:(Connection.Direct_memory 5)
             ~spec:(Dma_spec.make ~offset:off (Dma_spec.To_plane 5)) ())
      in
      out (out pl i0 0) i1 512)
    Nsc_checker.Diagnostic.Plane_write_exclusive;
  catch "misaligned operand streams"
    (fun () ->
      let icon, pl = place Als.Doublet in
      let pl =
        snd
          (Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
             ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
             ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ())
      in
      let pl =
        snd
          (Pipeline.add_connection pl ~src:(Connection.Direct_memory 1)
             ~dst:(Connection.Pad { icon; pad = Icon.In_pad (1, Resource.B) })
             ~spec:(Dma_spec.make (Dma_spec.To_plane 1)) ())
      in
      let pl =
        Pipeline.set_config pl ~id:icon ~slot:0
          (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant 1.0)
             Opcode.Fmul)
      in
      Pipeline.set_config pl ~id:icon ~slot:1
        (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd))
    Nsc_checker.Diagnostic.Timing;
  catch "in-place plane update"
    (fun () ->
      let icon, pl = place Als.Singlet in
      let pl =
        snd
          (Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
             ~dst:(Connection.Pad { icon; pad = Icon.In_pad (0, Resource.A) })
             ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ())
      in
      snd
        (Pipeline.add_connection pl
           ~src:(Connection.Pad { icon; pad = Icon.Out_pad 0 })
           ~dst:(Connection.Direct_memory 0)
           ~spec:(Dma_spec.make (Dma_spec.To_plane 0)) ()))
    Nsc_checker.Diagnostic.Plane_hazard;
  catch "combinational switch loop"
    (fun () ->
      let i0, pl = place Als.Singlet in
      let i1, pl =
        Build.fail_on_error
          (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 40 2) ())
      in
      let pl = Build.pad_to_pad pl ~from_icon:i0 ~from_pad:(Icon.Out_pad 0) ~to_icon:i1 ~to_pad:(Icon.In_pad (0, Resource.A)) in
      let pl = Build.pad_to_pad pl ~from_icon:i1 ~from_pad:(Icon.Out_pad 0) ~to_icon:i0 ~to_pad:(Icon.In_pad (0, Resource.A)) in
      let pl = Pipeline.set_config pl ~id:i0 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch Opcode.Fabs) in
      Pipeline.set_config pl ~id:i1 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch Opcode.Fabs))
    Nsc_checker.Diagnostic.Switch_cycle;
  catch "DMA engines exhausted"
    (fun () ->
      let icon, pl = place Als.Triplet in
      let i1, pl =
        Build.fail_on_error
          (Pipeline.place_als params pl ~kind:Als.Triplet ~pos:(Geometry.point 40 2) ())
      in
      let wire pl icon pad off =
        snd
          (Pipeline.add_connection pl ~src:(Connection.Direct_memory 0)
             ~dst:(Connection.Pad { icon; pad })
             ~spec:(Dma_spec.make ~offset:off (Dma_spec.To_plane 0)) ())
      in
      let pl = wire pl icon (Icon.In_pad (0, Resource.A)) 0 in
      let pl = wire pl icon (Icon.In_pad (0, Resource.B)) 1 in
      let pl = wire pl icon (Icon.In_pad (1, Resource.B)) 2 in
      let pl = wire pl icon (Icon.In_pad (2, Resource.B)) 3 in
      wire pl i1 (Icon.In_pad (0, Resource.A)) 4)
    Nsc_checker.Diagnostic.Dma_range

(* ------------------------------------------------------------------ *)
(* C8: the visual debugger                                             *)
(* ------------------------------------------------------------------ *)

let c8_debugger () =
  section "C8" "visual debugger: annotated values through the Jacobi pipeline";
  let prob = Poisson.manufactured 5 in
  let b = Jacobi.build kb prob.Poisson.grid ~tol:1e-3 ~max_iters:2 in
  match Nsc_microcode.Codegen.compile kb b.Jacobi.program with
  | Error _ -> failwith "codegen"
  | Ok compiled -> (
      let node = Node.create params in
      Jacobi.load node b prob;
      match Nsc_debug.Stepper.run node ~limit:2 compiled b.Jacobi.program with
      | Error e -> failwith e
      | Ok run ->
          let f = List.nth run.Nsc_debug.Stepper.frames 1 in
          let centre = Grid.index prob.Poisson.grid ~i:2 ~j:2 ~k:2 - Grid.pad prob.Poisson.grid in
          let values = Nsc_debug.Stepper.values_at f ~element:centre in
          row "frame 1 (%s) at the grid centre element:\n" f.Nsc_debug.Stepper.label;
          List.iter
            (fun (fu, v) -> row "  %-10s = %.6g\n" (Resource.fu_to_string fu) v)
            values;
          row "anomalies found: %d\n" (List.length (Nsc_debug.Stepper.anomalies f)))

(* ------------------------------------------------------------------ *)
(* C9: the simpler architectural subset                                *)
(* ------------------------------------------------------------------ *)

let c9_subset () =
  section "C9" "programmability vs. performance: full machine vs. subset model";
  let src =
    "array u[256] plane 0\narray g[256] plane 1\narray mask[256] plane 2\narray unew[256] \
     plane 3\nrepeat 20 { unew = mask * ((u[-1] + u[+1] - g) * 0.5)\nu = unew + 0.0 }"
  in
  let measure name kb' =
    match Nsc_lang.Compile.compile kb' src with
    | Error e -> row "%-16s compile error: %s\n" name e.Nsc_lang.Compile.message
    | Ok c -> (
        match Nsc_microcode.Codegen.compile kb' c.Nsc_lang.Compile.program with
        | Error _ -> row "%-16s codegen failed\n" name
        | Ok compiled -> (
            let p' = Knowledge.params kb' in
            let node = Node.create p' in
            match Sequencer.run node compiled with
            | Ok o ->
                let st = o.Sequencer.stats in
                let layout = Nsc_microcode.Fields.make p' in
                row
                  "%-16s %6d cycles  %6d flops  %6.1f MFLOPS (%4.1f%% of its %4.0f peak)  %5d-bit instr\n"
                  name st.Sequencer.total_cycles st.Sequencer.total_flops
                  (Stats.mflops p' ~cycles:st.Sequencer.total_cycles
                     ~flops:st.Sequencer.total_flops)
                  (100.0
                  *. Stats.utilization p' ~cycles:st.Sequencer.total_cycles
                       ~flops:st.Sequencer.total_flops)
                  (Params.peak_mflops p')
                  layout.Nsc_microcode.Fields.total_bits
            | Error e -> row "%-16s run error: %s\n" name e))
  in
  measure "full machine" Knowledge.default;
  measure "subset model" Knowledge.subset;
  row "shape: the subset is easier to target (smaller instruction, fewer\n";
  row "asymmetries) at a lower absolute peak - the paper's stated tradeoff\n"

(* ------------------------------------------------------------------ *)
(* C11: multigrid versus Jacobi                                        *)
(* ------------------------------------------------------------------ *)

let c11_multigrid () =
  section "C11" "multigrid vs. plain relaxation (paper reference [6])";
  let prob = Multigrid.manufactured 65 in
  let target = 1.0 in
  let rec mg_cycles k =
    if k > 30 then None
    else
      let u = Multigrid.host_solve prob ~cycles:k ~nu1:2 ~nu2:2 ~nu_coarse:40 in
      if Multigrid.host_residual_norm prob u <= target then Some k else mg_cycles (k + 1)
  in
  let rec smooth_sweeps k =
    if k > 8192 then None
    else
      let u = Multigrid.host_solve prob ~cycles:1 ~nu1:k ~nu2:0 ~nu_coarse:0 in
      if Multigrid.host_residual_norm prob u <= target then Some k
      else smooth_sweeps (k * 2)
  in
  (match (mg_cycles 1, smooth_sweeps 8) with
  | Some mgc, Some js ->
      row "to reach residual <= %.1f on a 65-point line:\n" target;
      row "  two-grid cycles        : %d (each: 4 fine sweeps + 40 half-cost coarse)\n" mgc;
      row "  fine-sweep equivalents : ~%d\n" (mgc * (4 + (40 / 2)));
      row "  plain weighted Jacobi  : between %d and %d sweeps\n" (js / 2) js
  | _ -> row "targets not reached within bounds\n");
  match Multigrid.solve kb prob ~cycles:1 ~nu1:2 ~nu2:2 ~nu_coarse:40 with
  | Ok o ->
      row "NSC cost of one V-cycle: %d instructions, %d cycles\n"
        o.Multigrid.stats.Sequencer.instructions_executed
        o.Multigrid.stats.Sequencer.total_cycles
  | Error e -> failwith e

(* ------------------------------------------------------------------ *)
(* A1/A2: ablations over the design choices DESIGN.md calls out        *)
(* ------------------------------------------------------------------ *)

let a1_reconfig () =
  section "A1" "ablation: sequencer reconfiguration cost";
  let prob = Poisson.manufactured 7 in
  row "%10s  %14s  %12s\n" "cycles/cfg" "cycles/sweep" "sust. MFLOPS";
  List.iter
    (fun rc ->
      let p' = { params with Params.reconfig_cycles = rc } in
      let kb' = Knowledge.make_exn p' in
      match Jacobi.solve kb' prob ~tol:1e-5 ~max_iters:300 with
      | Ok o ->
          let st = o.Jacobi.stats in
          row "%10d  %14.0f  %12.1f\n" rc
            (float_of_int st.Sequencer.total_cycles /. float_of_int (max 1 o.Jacobi.sweeps))
            (Stats.mflops p' ~cycles:st.Sequencer.total_cycles
               ~flops:st.Sequencer.total_flops)
      | Error e -> failwith e)
    [ 0; 16; 64; 256; 1024 ];
  row "shape: reconfiguration is amortised over the vector length; it only\n";
  row "bites when switching costs approach the sweep length itself\n"

let a2_sor () =
  section "A2" "ablation: red-black relaxation factor (SOR)";
  let prob = Poisson.manufactured 9 in
  row "%8s  %10s  %14s\n" "omega" "iterations" "final change";
  List.iter
    (fun omega ->
      match Redblack.solve kb ~omega prob ~tol:1e-6 ~max_iters:3000 with
      | Ok o -> row "%8.2f  %10d  %14.3e\n" omega o.Redblack.iterations o.Redblack.final_change
      | Error e -> failwith e)
    [ 1.0; 1.25; 1.5; 1.7; 1.9 ];
  row "shape: the classic SOR sweet spot (omega ~ 2/(1+sin pi*h)) minimises\n";
  row "iterations; the relaxation factor costs nothing on the NSC - it rides\n";
  row "in the colour-mask plane\n"

(* ------------------------------------------------------------------ *)
(* PERF: host wall-clock of the simulator itself                       *)
(* ------------------------------------------------------------------ *)

let perf_engine () =
  section "PERF"
    "simulator host time: v3 kernels vs. v2 kernels vs. plans vs. legacy dispatch";
  let prob = Poisson.manufactured 9 in
  let tol = 1e-6 and max_iters = 4000 in
  let b = Jacobi.build kb prob.Poisson.grid ~tol ~max_iters in
  let compiled =
    match Nsc_microcode.Codegen.compile kb b.Jacobi.program with
    | Error _ -> failwith "PERF: codegen failed"
    | Ok c -> c
  in
  let sweeps_of (o : Sequencer.outcome) =
    (o.Sequencer.stats.Sequencer.instructions_executed - 1) / 2
  in
  let change_of (o : Sequencer.outcome) =
    Option.value ~default:Float.nan
      (List.assoc_opt b.Jacobi.residual_unit o.Sequencer.last_values)
  in
  let run_once ~engine ~plan_cache ~kernel_cache () =
    let node = Node.create params in
    Jacobi.load node b prob;
    let t0 = Unix.gettimeofday () in
    match Sequencer.run node ~engine ~plan_cache ~kernel_cache compiled with
    | Error e -> failwith ("PERF: " ^ e)
    | Ok o -> (Unix.gettimeofday () -. t0, o)
  in
  (* warm-up pays every plan/kernel compile into the shared caches, then
     best-of-[timing_reps] with a fresh node reloaded outside each timed
     window: the repetitions measure execution, not compilation *)
  let time_engine engine =
    let plan_cache = Plan.make_cache () and kernel_cache = Kernel.make_cache () in
    let _, warm = run_once ~engine ~plan_cache ~kernel_cache () in
    let best = ref infinity in
    for _ = 1 to timing_reps do
      let dt, o = run_once ~engine ~plan_cache ~kernel_cache () in
      if sweeps_of o <> sweeps_of warm || change_of o <> change_of warm then
        failwith "PERF: a timing repetition diverged from its warm-up run";
      if dt < !best then best := dt
    done;
    (!best, warm)
  in
  let legacy_seconds, legacy_o = time_engine `Legacy in
  Stats.reset_plan_counters ();
  let plan_seconds, plan_o = time_engine `Plan in
  let compiles = Stats.plan_compiles () and hits = Stats.plan_cache_hits () in
  let v2_seconds, v2_o = time_engine `Kernel_v2 in
  Stats.reset_kernel_counters ();
  let kernel_seconds, kernel_o = time_engine `Kernel in
  let kcompiles = Stats.kernel_compiles ()
  and khits = Stats.kernel_cache_hits ()
  and kpool_hits = Stats.kernel_pool_hits ()
  and kpool_misses = Stats.kernel_pool_misses () in
  (* bit equality on the residual: a faulted run can legitimately end on
     NaN, which [=] would call unequal to itself *)
  let agrees a b =
    sweeps_of a = sweeps_of b
    && Int64.bits_of_float (change_of a) = Int64.bits_of_float (change_of b)
  in
  if not (agrees legacy_o plan_o) then failwith "PERF: plan and legacy engines disagree";
  if not (agrees v2_o plan_o) then failwith "PERF: v2 kernel and plan engines disagree";
  let residual_match = agrees kernel_o plan_o in
  if not residual_match then failwith "PERF: kernel and plan engines disagree";
  (* the same four paths must also agree instruction-for-instruction under
     a seeded fault model: faults draw from one deterministic stream, so a
     freshly installed same-seed model must yield one bit-identical
     outcome whichever engine executes it (this exercises the latch
     materialisation of elided pass-through units too) *)
  let faulted_outcome engine =
    let module F = Nsc_fault.Fault in
    let spec =
      match F.parse "fu-fault:p=0.02" with
      | Ok s -> s
      | Error e -> failwith ("PERF: " ^ e)
    in
    F.install (F.make ~seed:1234 spec);
    let node = Node.create params in
    Jacobi.load node b prob;
    let r = Sequencer.run node ~engine compiled in
    F.clear ();
    match r with Error e -> failwith ("PERF: " ^ e) | Ok o -> o
  in
  let f_kernel = faulted_outcome `Kernel in
  let faulted_match =
    agrees (faulted_outcome `Legacy) f_kernel
    && agrees (faulted_outcome `Plan) f_kernel
    && agrees (faulted_outcome `Kernel_v2) f_kernel
  in
  if not faulted_match then
    failwith "PERF: engines disagree under a seeded fault model";
  let kernel_speedup = plan_seconds /. kernel_seconds in
  let v2_speedup = v2_seconds /. kernel_seconds in
  row "repeated-sweep Jacobi, n=9, tol 1e-6 (%d sweeps, final change %.3e):\n"
    (sweeps_of plan_o) (change_of plan_o);
  row "compiled once, caches shared; best of %d runs per engine:\n" timing_reps;
  row "  legacy per-dispatch engine : %8.3f s host time\n" legacy_seconds;
  row "  compiled-plan engine       : %8.3f s host time\n" plan_seconds;
  row "  v2 float-array kernels     : %8.3f s host time\n" v2_seconds;
  row "  v3 fused-kernel engine     : %8.3f s host time\n" kernel_seconds;
  row "  plan over legacy           : %8.1fx\n" (legacy_seconds /. plan_seconds);
  row "  v3 over plan               : %8.1fx\n" kernel_speedup;
  row "  v3 over v2                 : %8.1fx\n" v2_speedup;
  row "  plan compiles / cache hits : %d / %d\n" compiles hits;
  row "  kernel compiles / hits     : %d / %d\n" kcompiles khits;
  row "  buffer pool hits / misses  : %d / %d\n" kpool_hits kpool_misses;
  row "  four-path residual match   : clean %b, seeded faults %b\n" residual_match
    faulted_match;
  row "shape: three compiles serve the whole solve; the v3 stage gathers each\n";
  row "stream once, runs opcode-specialised fused loops over pooled buffers\n";
  row "and elides pass-through copies entirely\n";
  if kernel_speedup < 10.0 then
    failwith
      (Printf.sprintf "PERF: v3 kernels only %.2fx over the plan engine (need >= 10x)"
         kernel_speedup);
  if v2_speedup < 2.0 then
    failwith
      (Printf.sprintf "PERF: v3 kernels only %.2fx over the v2 backend (need >= 2x)"
         v2_speedup);
  engine_perf_result :=
    Some
      {
        legacy_seconds;
        plan_seconds;
        perf_sweeps = sweeps_of plan_o;
        perf_final_change = change_of plan_o;
        perf_plan_compiles = compiles;
        perf_plan_cache_hits = hits;
      };
  kernel_perf_result :=
    Some
      {
        kernel_seconds;
        kernel_v2_seconds = v2_seconds;
        kernel_plan_seconds = plan_seconds;
        kernel_sweeps = sweeps_of kernel_o;
        kernel_final_change = change_of kernel_o;
        kernel_compiles = kcompiles;
        kernel_cache_hits = khits;
        kernel_pool_hits = kpool_hits;
        kernel_pool_misses = kpool_misses;
        kernel_residual_match = residual_match;
        kernel_faulted_match = faulted_match;
      }

(* ------------------------------------------------------------------ *)
(* THROUGHPUT: batched K-replica execution vs. one-at-a-time solves    *)
(* ------------------------------------------------------------------ *)

let perf_throughput () =
  section "THROUGHPUT" "batched K-replica kernels vs. sequential solves";
  let k = 64 in
  let prob = Poisson.manufactured 9 in
  let tol = 1e-6 and max_iters = 4000 in
  let probs = Array.make k prob in
  let single =
    match Jacobi.solve kb prob ~tol ~max_iters with
    | Error e -> failwith ("THROUGHPUT: " ^ e)
    | Ok o -> o
  in
  (* one domain: batching pays off through shared compiles and interleaved
     slabs even without parallelism, and this host may be single-core —
     worker-domain fan-out is covered by the property tests *)
  let domains = 1 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* warm the buffer pool and domain state before either measurement *)
  ignore (Jacobi.solve_batch kb ~domains probs ~tol ~max_iters);
  Stats.reset_batch_counters ();
  Stats.reset_kernel_counters ();
  let batch_seconds, outcomes =
    time (fun () ->
        match Jacobi.solve_batch kb ~domains probs ~tol ~max_iters with
        | Error e -> failwith ("THROUGHPUT: " ^ e)
        | Ok os -> os)
  in
  let batch_runs = Stats.batch_runs ()
  and batch_replicas = Stats.batch_replicas ()
  and batch_fallbacks = Stats.batch_fallbacks ()
  and pool_hits = Stats.kernel_pool_hits ()
  and pool_misses = Stats.kernel_pool_misses () in
  let single_seconds, _ =
    time (fun () ->
        Array.iter
          (fun p ->
            match Jacobi.solve kb p ~tol ~max_iters with
            | Error e -> failwith ("THROUGHPUT: " ^ e)
            | Ok _ -> ())
          probs)
  in
  let residual_match =
    Array.for_all
      (fun (o : Jacobi.outcome) ->
        o.Jacobi.sweeps = single.Jacobi.sweeps
        && o.Jacobi.final_change = single.Jacobi.final_change)
      outcomes
  in
  if not residual_match then
    failwith "THROUGHPUT: a batched replica diverged from the single solve";
  let problems_per_sec = float_of_int k /. batch_seconds in
  row "K = %d replicas of the n=9 Jacobi solve, %d worker domain(s):\n" k domains;
  row "  batched (one compile, interleaved slabs): %8.3f s  (%.1f problems/s)\n"
    batch_seconds problems_per_sec;
  row "  sequential independent solves           : %8.3f s  (%.1f problems/s)\n"
    single_seconds
    (float_of_int k /. single_seconds);
  row "  batch over sequential                   : %8.2fx\n"
    (single_seconds /. batch_seconds);
  row "  batch runs / replicas / fallbacks       : %d / %d / %d\n" batch_runs
    batch_replicas batch_fallbacks;
  row "  buffer pool hits / misses               : %d / %d\n" pool_hits pool_misses;
  row "  replica residuals match the single solve: %b\n" residual_match;
  throughput_perf_result :=
    Some
      {
        tp_batch = k;
        tp_domains = domains;
        tp_batch_seconds = batch_seconds;
        tp_problems_per_sec = problems_per_sec;
        tp_single_seconds = single_seconds;
        tp_batch_runs = batch_runs;
        tp_batch_replicas = batch_replicas;
        tp_batch_fallbacks = batch_fallbacks;
        tp_pool_hits = pool_hits;
        tp_pool_misses = pool_misses;
        tp_residual_match = residual_match;
      }

(* ------------------------------------------------------------------ *)
(* TRACE: the instrument's counters and its disabled-path budget       *)
(* ------------------------------------------------------------------ *)

(* The <2% budget for the disabled path cannot be read off two wall-clock
   runs alone (run-to-run noise on a multi-second solve swamps a branch
   per instruction), so it is asserted by projection: measure the cost of
   one disabled gate in a tight loop, count the instrumentation sites an
   enabled run actually crosses, and bound the disabled-path share of the
   disabled runtime.  The measured enabled/disabled seconds are reported
   alongside for the honest end-to-end picture. *)
let trace_overhead () =
  section "TRACE" "trace instrument: run counters and the disabled-path budget";
  let module T = Nsc_trace.Trace in
  let prob = Poisson.manufactured 9 in
  let solve () =
    match Jacobi.solve kb prob ~tol:1e-6 ~max_iters:4000 with
    | Error e -> failwith e
    | Ok o -> o
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  T.disable ();
  T.reset ();
  (* cost of one disabled instrumentation site: the flag read + branch *)
  let gate_ns =
    let probe =
      T.counter ~name:"bench.gate_probe" ~units:"calls"
        ~desc:"disabled-path timing probe (bench only)"
    in
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      T.add probe 1
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let disabled_seconds, o_off = time solve in
  T.reset ();
  T.enable ();
  let enabled_seconds, o_on = time solve in
  T.disable ();
  if
    o_off.Jacobi.sweeps <> o_on.Jacobi.sweeps
    || o_off.Jacobi.final_change <> o_on.Jacobi.final_change
  then failwith "TRACE: tracing changed the computation";
  (* sites crossed while enabled: every counter bump, every histogram/
     attribution observation, and every recorded (or evicted) span or
     instant.  Gates guarding several bumps at once are counted per bump,
     so the projection over-counts — a conservative upper bound. *)
  let sites =
    T.total_bumps ()
    + Metrics.total_observations Metrics.default
    + List.length (T.events ())
    + T.dropped ()
  in
  let projected_pct =
    float_of_int sites *. gate_ns /. (disabled_seconds *. 1e9) *. 100.0
  in
  let counters =
    List.map (fun c -> (T.name c, T.value c, T.units c)) (T.counters ())
  in
  row "repeated-sweep Jacobi, n=9, tol 1e-6 (%d sweeps):\n" o_on.Jacobi.sweeps;
  row "  tracing disabled           : %8.3f s host time\n" disabled_seconds;
  row "  tracing enabled            : %8.3f s host time\n" enabled_seconds;
  row "  disabled gate cost         : %8.2f ns/site\n" gate_ns;
  row "  instrumentation sites      : %8d crossed while enabled\n" sites;
  row "  projected disabled overhead: %8.4f %% of the disabled solve\n" projected_pct;
  row "  non-zero counters after the enabled solve:\n";
  List.iter
    (fun (name, v, units) -> if v > 0 then row "    %-28s %12d %s\n" name v units)
    counters;
  if projected_pct >= 2.0 then
    failwith
      (Printf.sprintf "TRACE: disabled-path projection %.3f%% breaches the 2%% budget"
         projected_pct);
  trace_perf_result :=
    Some
      {
        trace_disabled_seconds = disabled_seconds;
        trace_enabled_seconds = enabled_seconds;
        disabled_gate_ns = gate_ns;
        instrumentation_sites = sites;
        projected_overhead_pct = projected_pct;
        trace_counter_values = counters;
      };
  T.reset ()

(* ------------------------------------------------------------------ *)
(* PROFILE: the hotspot view in a scoped metric context                *)
(* ------------------------------------------------------------------ *)

(* Same n=9 solve, but isolated in its own metric context — nothing
   touches the global instrument — and read back through the profile
   layer: exec-latency percentiles, the per-unit hotspot table, and the
   same disabled-path projection now covering histogram and attribution
   observations too. *)
let profile_hotspots () =
  section "PROFILE" "hotspot profile in a scoped metric context (n=9 Jacobi)";
  let prob = Poisson.manufactured 9 in
  let solve () =
    match Jacobi.solve kb prob ~tol:1e-6 ~max_iters:4000 with
    | Error e -> failwith e
    | Ok o -> o
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let ctx = Metrics.create ~label:"bench-profile" () in
  (* one disabled site against a scoped context: the same flag read and
     branch as the global instrument's gate *)
  let gate_ns =
    let probe =
      Metrics.counter ~name:"bench.gate_probe" ~units:"calls"
        ~desc:"disabled-path timing probe (bench only)"
    in
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      Metrics.add ctx probe 1
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let disabled_seconds, _ = time (fun () -> Metrics.with_ctx ctx solve) in
  Metrics.reset ctx;
  Metrics.enable ctx;
  let _, o = time (fun () -> Metrics.with_ctx ctx solve) in
  Metrics.disable ctx;
  let sites =
    Metrics.total_bumps ctx
    + Metrics.total_observations ctx
    + List.length (Metrics.events ctx)
    + Metrics.dropped ctx
  in
  let projected_pct =
    float_of_int sites *. gate_ns /. (disabled_seconds *. 1e9) *. 100.0
  in
  let exec =
    match Metrics.find_histogram "hist.exec_cycles" with
    | Some h -> Metrics.hist_summary ctx h
    | None -> failwith "PROFILE: hist.exec_cycles is not registered"
  in
  let top =
    match Stats.hotspots params ctx with
    | [] -> failwith "PROFILE: no cycles attributed to any unit"
    | h :: _ -> h
  in
  row "repeated-sweep Jacobi, n=9, tol 1e-6 (%d sweeps), context \"bench-profile\":\n"
    o.Jacobi.sweeps;
  row "  exec latency               : p50 %d / p99 %d cycles over %d instruction(s)\n"
    exec.Metrics.p50 exec.Metrics.p99 exec.Metrics.hcount;
  row "  top hotspot                : %s %s — %d cycles, %.1f MFLOPS (%.1f%% of peak)\n"
    top.Stats.hs_instr top.Stats.hs_unit top.Stats.hs_share_cycles
    top.Stats.hs_mflops top.Stats.hs_peak_pct;
  row "  global instrument          : untouched (%d bumps in the default context)\n"
    (Metrics.total_bumps Metrics.default);
  row "  instrumentation sites      : %8d crossed while enabled\n" sites;
  row "  projected disabled overhead: %8.4f %% of the disabled solve\n" projected_pct;
  if projected_pct >= 2.0 then
    failwith
      (Printf.sprintf
         "PROFILE: disabled-path projection %.3f%% breaches the 2%% budget"
         projected_pct);
  if exec.Metrics.hcount = 0 then failwith "PROFILE: no exec-latency samples";
  profile_perf_result :=
    Some
      {
        prof_sweeps = o.Jacobi.sweeps;
        prof_exec_samples = exec.Metrics.hcount;
        prof_p50_exec = exec.Metrics.p50;
        prof_p99_exec = exec.Metrics.p99;
        prof_hotspot = top;
        prof_gate_ns = gate_ns;
        prof_sites = sites;
        prof_projected_pct = projected_pct;
      }

(* ------------------------------------------------------------------ *)
(* FAULT: seeded fault injection, recovery and the zero-fault budget   *)
(* ------------------------------------------------------------------ *)

(* Two claims from the fault layer, plus a recovery demonstration:

   1. With no model installed, every injection site is one atomic read
      and a branch.  As with the trace budget, run-to-run noise swamps a
      direct wall-clock comparison, so the <2% budget is asserted by
      projection: gate cost x sites crossed, over the clean solve.
   2. Under seed-42 transient link faults (p=0.01) the n=9 Jacobi solve
      reaches the *same* final residual as the clean run — transients
      cost retry/backoff cycles, never answers — and every injected
      fault is booked recovered.
   3. solve_ft under memory corruption detects via parity scrub, rolls
      back to the sweep checkpoint, and still converges. *)
let fault_injection () =
  section "FAULT" "fault injection: recovery, determinism and the zero-fault budget";
  let module F = Nsc_fault.Fault in
  let prob = Poisson.manufactured 9 in
  let tol = 1e-6 and max_iters = 4000 in
  let solve () =
    match Jacobi.solve kb prob ~tol ~max_iters with
    | Error e -> failwith e
    | Ok o -> o
  in
  F.clear ();
  (* cost of one disabled injection site: the atomic read + branch *)
  let gate_ns =
    let sink = ref 0 in
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      match F.active () with
      | Some _ -> incr sink
      | None -> ()
    done;
    ignore (Sys.opaque_identity !sink);
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let t0 = Unix.gettimeofday () in
  let clean = solve () in
  let clean_seconds = Unix.gettimeofday () -. t0 in
  let clean_cycles = clean.Jacobi.stats.Sequencer.total_cycles in
  (* the engine consults the model twice per dispatched instruction
     (FU draw + stream overhead) *)
  let sites = 2 * clean.Jacobi.stats.Sequencer.instructions_executed in
  let projected_pct =
    float_of_int sites *. gate_ns /. (clean_seconds *. 1e9) *. 100.0
  in
  let spec =
    match F.parse "transient-link:p=0.01" with
    | Ok s -> s
    | Error e -> failwith ("FAULT: " ^ e)
  in
  F.install (F.make ~seed:42 spec);
  let faulted = solve () in
  let outstanding = F.reconcile () in
  let ledger = F.ledger () in
  F.clear ();
  let faulted_cycles = faulted.Jacobi.stats.Sequencer.total_cycles in
  let overhead_pct =
    100.0 *. float_of_int (faulted_cycles - clean_cycles) /. float_of_int clean_cycles
  in
  let residual_match =
    faulted.Jacobi.final_change = clean.Jacobi.final_change
    && faulted.Jacobi.sweeps = clean.Jacobi.sweeps
  in
  let lv name = Option.value ~default:0 (List.assoc_opt name ledger) in
  row "repeated-sweep Jacobi, n=9, tol 1e-6 (%d sweeps):\n" clean.Jacobi.sweeps;
  row "  disabled gate cost          : %8.2f ns/site\n" gate_ns;
  row "  injection sites (clean run) : %8d\n" sites;
  row "  projected zero-fault cost   : %8.4f %% of the clean solve\n" projected_pct;
  row "  clean simulated cycles      : %8d\n" clean_cycles;
  row "  seed-42 transient-link run  : %8d cycles (%+.3f%%), residual %s\n"
    faulted_cycles overhead_pct
    (if residual_match then "identical" else "DIVERGED");
  row "  injected / recovered        : %8d / %d (unrecovered %d)\n"
    (lv "fault.injected") (lv "fault.recovered") (lv "fault.unrecovered");
  if not residual_match then
    failwith "FAULT: transient link faults changed the computed answer";
  if outstanding > 0 || lv "fault.unrecovered" > 0 then
    failwith "FAULT: transient link faults left unrecovered entries";
  if lv "fault.injected" <> lv "fault.recovered" + lv "fault.unrecovered" then
    failwith "FAULT: ledger does not balance";
  if projected_pct >= 2.0 then
    failwith
      (Printf.sprintf "FAULT: zero-fault projection %.3f%% breaches the 2%% budget"
         projected_pct);
  (* checkpointed recovery under memory corruption *)
  let ft_spec =
    match F.parse "mem-corrupt:p=0.2" with
    | Ok s -> s
    | Error e -> failwith ("FAULT: " ^ e)
  in
  F.install (F.make ~seed:7 ft_spec);
  let ft =
    match Jacobi.solve_ft kb prob ~tol ~max_iters with
    | Error e -> failwith ("FAULT solve_ft: " ^ e)
    | Ok ft -> ft
  in
  let ft_outstanding = F.reconcile () in
  let ft_ledger = F.ledger () in
  F.clear ();
  let flv name = Option.value ~default:0 (List.assoc_opt name ft_ledger) in
  row "  solve_ft under mem-corrupt p=0.2 (seed 7):\n";
  row "    sweeps / rollbacks        : %8d / %d\n"
    ft.Jacobi.outcome.Jacobi.sweeps ft.Jacobi.rollbacks;
  row "    faults detected           : %8d (injected %d, recovered %d)\n"
    ft.Jacobi.faults_detected (flv "fault.injected") (flv "fault.recovered");
  row "    final change              : %12.3e (tol %.0e)\n"
    ft.Jacobi.outcome.Jacobi.final_change tol;
  if ft_outstanding > 0 || flv "fault.unrecovered" > 0 then
    failwith "FAULT: solve_ft left unrecovered entries";
  if ft.Jacobi.outcome.Jacobi.final_change > tol then
    failwith "FAULT: solve_ft failed to converge under memory corruption";
  fault_perf_result :=
    Some
      {
        fault_clean_cycles = clean_cycles;
        fault_faulted_cycles = faulted_cycles;
        fault_cycle_overhead_pct = overhead_pct;
        fault_residual_match = residual_match;
        fault_gate_ns = gate_ns;
        fault_sites = sites;
        fault_projected_pct = projected_pct;
        fault_ledger = ledger;
        fault_ft_rollbacks = ft.Jacobi.rollbacks;
        fault_ft_detected = ft.Jacobi.faults_detected;
        fault_ft_sweeps = ft.Jacobi.outcome.Jacobi.sweeps;
      }

(* ------------------------------------------------------------------ *)
(* SERVICE: the serve daemon under a 1000-job burst                    *)
(* ------------------------------------------------------------------ *)

(* The daemon is driven in-process through [Serve.handle_line] — the same
   entry point the stdin/socket front-ends use — so the measured path is
   admission, wave dispatch across the domain pool, per-job metric
   contexts and the shared bounded caches, without pipe noise.

   The burst never interleaves [drain] requests, so admission control is
   exercised for real: every 65th submit finds the 64-slot queue full,
   is rejected, and triggers the dispatch of the queued wave.  The job
   mix alternates two problem sizes over a cache bound smaller than the
   mix's plan footprint (2 sizes x 3 plans > 4), so LRU eviction is
   exercised too.  Every ok response must carry exactly the sweeps and
   residual of a direct [Jacobi.solve] of the same problem. *)
let perf_service () =
  section "SERVICE" "serve daemon: jobs/sec and latency under a 1100-job burst";
  let module Serve = Nsc_serve.Serve in
  let module Json = Nsc_metrics.Json in
  let domains = 4 and queue_bound = 64 and cache_bound = 4 in
  let total_jobs = 1100 in
  let tol = 1e-4 and max_iters = 400 in
  let size i = if i mod 5 = 4 then 7 else 5 in
  let reference n =
    match Jacobi.solve kb (Poisson.manufactured n) ~tol ~max_iters with
    | Error e -> failwith ("SERVICE reference solve: " ^ e)
    | Ok o -> (o.Jacobi.sweeps, o.Jacobi.final_change)
  in
  let ref5 = reference 5 and ref7 = reference 7 in
  let config =
    { Serve.default_config with domains; queue_bound; cache_bound }
  in
  let t = Serve.create ~config () in
  let submit_line i =
    Printf.sprintf
      "{\"op\":\"submit\",\"id\":\"job-%04d\",\"workload\":{\"kind\":\"jacobi\",\
       \"n\":%d,\"tol\":%g,\"max_iters\":%d}}"
      i (size i) tol max_iters
  in
  let responses = ref [] in
  let t0 = Unix.gettimeofday () in
  for i = 0 to total_jobs - 1 do
    responses := List.rev_append (Serve.handle_line t (submit_line i)) !responses
  done;
  responses := List.rev_append (Serve.drain t) !responses;
  let elapsed = Unix.gettimeofday () -. t0 in
  let responses = List.rev !responses in
  (* audit every response against the reference solves *)
  let ok_count = ref 0 and rejected = ref 0 and mismatches = ref 0 in
  List.iter
    (fun line ->
      let obj = match Json.parse line with Ok o -> o | Error e -> failwith e in
      let str name = Option.bind (Json.member name obj) Json.to_str in
      let num name = Option.bind (Json.member name obj) Json.to_num in
      match str "status" with
      | Some "ok" ->
          incr ok_count;
          let n = int_of_float (Option.get (num "n")) in
          let sweeps = int_of_float (Option.get (num "sweeps")) in
          let residual = Option.get (num "residual") in
          let want = if n = 5 then ref5 else ref7 in
          if (sweeps, residual) <> want then incr mismatches
      | Some "rejected" -> incr rejected
      | Some s -> failwith (Printf.sprintf "SERVICE: unexpected response status %S" s)
      | None -> ())
    responses;
  let summary =
    let line = Serve.summary_response t in
    match Json.parse line with
    | Ok o -> Option.get (Json.member "summary" o)
    | Error e -> failwith ("SERVICE summary: " ^ e)
  in
  let sv name =
    match Option.bind (Json.member name summary) Json.to_num with
    | Some x -> int_of_float x
    | None -> failwith ("SERVICE summary lacks " ^ name)
  in
  let completed = sv "completed" and failed = sv "failed" in
  let p50 = sv "p50_usec" and p99 = sv "p99_usec" in
  let evictions = sv "cache_evictions" in
  let jobs_per_sec = float_of_int completed /. elapsed in
  let residual_match = !mismatches = 0 in
  row "burst of %d submits (no client-side drains), %d domains:\n" total_jobs domains;
  row "  queue bound / cache bound   : %8d / %d\n" queue_bound cache_bound;
  row "  completed / rejected        : %8d / %d (failed %d)\n" completed !rejected failed;
  row "  elapsed                     : %8.3f s (%.0f jobs/s)\n" elapsed jobs_per_sec;
  row "  latency p50 / p99           : %8d / %d usec\n" p50 p99;
  row "  shared-cache LRU evictions  : %8d\n" evictions;
  row "  responses match direct solve: %8s\n" (if residual_match then "yes" else "NO");
  if completed < 1000 then
    failwith (Printf.sprintf "SERVICE: only %d jobs completed (need >= 1000)" completed);
  if completed <> !ok_count then
    failwith "SERVICE: summary completed count disagrees with ok responses";
  if failed > 0 then failwith "SERVICE: jobs failed";
  if !rejected < 1 || sv "rejected" <> !rejected then
    failwith "SERVICE: admission control produced no queue-full rejection";
  if evictions < 1 then
    failwith "SERVICE: bounded caches never evicted under the mixed job sizes";
  if not residual_match then
    failwith "SERVICE: a served response diverged from the direct solve";
  service_perf_result :=
    Some
      {
        svc_submitted = sv "submitted";
        svc_completed = completed;
        svc_rejected = !rejected;
        svc_domains = domains;
        svc_queue_bound = queue_bound;
        svc_cache_bound = cache_bound;
        svc_elapsed_seconds = elapsed;
        svc_jobs_per_sec = jobs_per_sec;
        svc_p50_usec = p50;
        svc_p99_usec = p99;
        svc_cache_evictions = evictions;
        svc_residual_match = residual_match;
      }

(* ------------------------------------------------------------------ *)
(* RESILIENCE: the guard layer's disabled cost and the chaos scenario  *)
(* ------------------------------------------------------------------ *)

(* The supervision layer (lib/guard, docs/RESILIENCE.md) must be free
   when unused: its boundary checks compile to one branch on a [None]
   budget.  This section measures that gate the way the trace and fault
   gates are measured, counts the armed boundary checks of the reference
   n=9 solve, and holds the projection under the same 2% bar.  It then
   re-runs the chaos harness's kill-mid-wave scenario in-process: a
   journalled burst abandoned after acknowledgement must recover with
   zero acked-job loss and responses bit-identical to an uninterrupted
   run (host-only fields aside: wall-clock latency and the
   process-global buffer-pool warmth split). *)
let perf_resilience () =
  section "RESILIENCE" "guard layer: disabled-path cost, deadline kill, chaos recovery";
  let module Guard = Nsc_guard.Guard in
  let module Serve = Nsc_serve.Serve in
  let module Json = Nsc_metrics.Json in
  let prob = Poisson.manufactured 9 in
  let tol = 1e-6 and max_iters = 4000 in
  let solve ?budget () =
    match Jacobi.solve kb ?budget prob ~tol ~max_iters with
    | Error e -> failwith ("RESILIENCE: " ^ e)
    | Ok o -> o
  in
  (* cost of one disabled boundary check: the branch on [None] *)
  let gate_ns =
    let n = 20_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      Guard.Budget.check_opt (Sys.opaque_identity None)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let t0 = Unix.gettimeofday () in
  let clean = solve () in
  let clean_seconds = Unix.gettimeofday () -. t0 in
  let clean_cycles = clean.Jacobi.stats.Sequencer.total_cycles in
  (* armed-site count: every boundary check of the same solve under a
     budget too generous to fire *)
  let counter = Guard.Budget.create ~deadline_cycles:max_int () in
  let armed = solve ~budget:counter () in
  if armed.Jacobi.sweeps <> clean.Jacobi.sweeps then
    failwith "RESILIENCE: arming a generous budget changed the solve";
  let sites = Guard.Budget.polls counter in
  let projected_pct =
    float_of_int sites *. gate_ns /. (clean_seconds *. 1e9) *. 100.0
  in
  (* a mid-run deadline must kill cooperatively and leave the node pool
     serviceable: the next unbudgeted solve reproduces the clean run *)
  let killer = Guard.Budget.create ~deadline_cycles:(clean_cycles / 2) () in
  let deadline_spent =
    match Jacobi.solve kb ~budget:killer prob ~tol ~max_iters with
    | exception Guard.Budget.Deadline_exceeded { spent_cycles; _ } -> spent_cycles
    | Ok _ | Error _ -> failwith "RESILIENCE: mid-run deadline never fired"
  in
  let after = solve () in
  if
    after.Jacobi.sweeps <> clean.Jacobi.sweeps
    || after.Jacobi.final_change <> clean.Jacobi.final_change
  then failwith "RESILIENCE: a deadline kill perturbed the following solve";
  (* chaos scenario 1, in-process: kill a journalled daemon mid-wave,
     recover, and diff against an uninterrupted twin.  Host-only fields
     are stripped before the comparison: wall-clock latency, and the
     buffer-pool warmth counters (the pool is process-global state, so
     its hit/miss split legitimately differs across daemon instances). *)
  let strip line =
    match Json.parse line with
    | Ok (Json.Obj fields) ->
        Json.to_string
          (Json.Obj
             (List.filter_map
                (fun (k, v) ->
                  match (k, v) with
                  | "latency_usec", _ -> None
                  | "counters", Json.Obj cs ->
                      Some
                        ( k,
                          Json.Obj
                            (List.filter
                               (fun (ck, _) ->
                                 ck <> "kernel.pool_hits"
                                 && ck <> "kernel.pool_misses")
                               cs) )
                  | _ -> Some (k, v))
                fields))
    | Ok _ | Error _ -> line
  in
  let chaos_jobs = 6 in
  let lines =
    List.init chaos_jobs (fun i ->
        Printf.sprintf
          "{\"op\":\"submit\",\"id\":\"chaos-%02d\",\"workload\":{\"kind\":\
           \"jacobi\",\"n\":%d,\"tol\":1e-4,\"max_iters\":400}}"
          i (if i mod 2 = 0 then 5 else 7))
  in
  let journal = Filename.temp_file "bench-chaos" ".journal" in
  Sys.remove journal;
  let jconfig = { Serve.default_config with journal = Some journal } in
  (* the doomed daemon: acks every submit, then is abandoned mid-wave *)
  let doomed = Serve.create ~config:jconfig () in
  List.iter (fun l -> ignore (Serve.handle_line doomed l)) lines;
  (* the recovered daemon replays the journal's unfinished suffix *)
  let recovered = Serve.create ~config:jconfig () in
  ignore (Serve.recover recovered);
  let replayed = List.map strip (Serve.drain recovered) in
  (* the uninterrupted twin *)
  let twin = Serve.create ~config:Serve.default_config () in
  List.iter (fun l -> ignore (Serve.handle_line twin l)) lines;
  let straight = List.map strip (Serve.drain twin) in
  let chaos_lost = chaos_jobs - List.length replayed in
  let chaos_match =
    List.length replayed = List.length straight
    && List.for_all2 String.equal replayed straight
  in
  let pending_after = List.length (Guard.Journal.load ~path:journal) in
  Sys.remove journal;
  row "disabled-path projection (n=9 Jacobi, tol 1e-6, %d sweeps):\n"
    clean.Jacobi.sweeps;
  row "  disabled gate cost          : %8.2f ns/site\n" gate_ns;
  row "  armed boundary checks       : %8d\n" sites;
  row "  projected disabled cost     : %8.4f %% of the clean solve\n" projected_pct;
  row "  mid-run deadline kill       : %8d of %d cycles spent, pool live\n"
    deadline_spent clean_cycles;
  row "chaos: kill mid-wave + recover (%d journalled jobs):\n" chaos_jobs;
  row "  acked jobs lost             : %8d\n" chaos_lost;
  row "  replay vs uninterrupted     : %8s\n"
    (if chaos_match then "bit-identical" else "DIVERGED");
  row "  journal pending after wave  : %8d\n" pending_after;
  if projected_pct >= 2.0 then
    failwith
      (Printf.sprintf
         "RESILIENCE: disabled-path projection %.3f%% breaches the 2%% budget"
         projected_pct);
  if chaos_lost <> 0 then
    failwith (Printf.sprintf "RESILIENCE: %d acked jobs lost" chaos_lost);
  if not chaos_match then
    failwith "RESILIENCE: recovery responses diverged from the uninterrupted run";
  if pending_after <> 0 then
    failwith "RESILIENCE: the journal ledger did not balance after recovery";
  resilience_perf_result :=
    Some
      {
        res_gate_ns = gate_ns;
        res_sites = sites;
        res_clean_seconds = clean_seconds;
        res_projected_pct = projected_pct;
        res_deadline_spent = deadline_spent;
        res_chaos_jobs = chaos_jobs;
        res_chaos_lost = chaos_lost;
        res_chaos_match = chaos_match;
      }

(* ------------------------------------------------------------------ *)
(* Tool-chain microbenchmarks (Bechamel)                               *)
(* ------------------------------------------------------------------ *)

let vecadd_program () =
  let prog = Program.empty "vecadd" in
  let prog =
    List.fold_left
      (fun prog (name, plane) ->
        Result.get_ok (Program.declare prog { Program.name; plane; base = 0; length = 4096 }))
      prog
      [ ("x", 0); ("y", 1); ("z", 2) ]
  in
  let prog, _ = Program.append_pipeline prog in
  let pl = Option.get (Program.find_pipeline prog 1) in
  let pl = Pipeline.with_vector_length pl 4096 in
  let icon, pl =
    Build.fail_on_error
      (Pipeline.place_als params pl ~kind:Als.Singlet ~pos:(Geometry.point 30 8) ())
  in
  let pl = Build.mem_to_pad pl ~plane:0 ~var:"x" ~offset:0 ~icon ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = Build.mem_to_pad pl ~plane:1 ~var:"y" ~offset:0 ~icon ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = Build.pad_to_mem pl ~icon ~pad:(Icon.Out_pad 0) ~plane:2 ~var:"z" ~offset:0 () in
  let pl =
    Pipeline.set_config pl ~id:icon ~slot:0
      (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd)
  in
  Program.update_pipeline prog pl

let toolchain_benchmarks () =
  section "TOOL" "host-side tool-chain throughput (Bechamel, ns per operation)";
  let open Bechamel in
  let prog = vecadd_program () in
  let vec_pl = Option.get (Program.find_pipeline prog 1) in
  let jacobi_build = Jacobi.build kb (Grid.cube 9) ~tol:1e-6 ~max_iters:10 in
  let jacobi_sweep = Option.get (Program.find_pipeline jacobi_build.Jacobi.program 2) in
  let lookup = Program.variable_base jacobi_build.Jacobi.program in
  let layout = Nsc_microcode.Fields.make params in
  let sweep_sem, _ = Semantic.of_pipeline params ~lookup jacobi_sweep in
  let sweep_instr =
    match Nsc_microcode.Encode.encode layout sweep_sem with
    | Ok i -> i
    | Error e -> failwith e
  in
  let lang_src =
    "array u[64] plane 0\narray g[64] plane 1\narray mask[64] plane 2\narray unew[64] \
     plane 3\nunew = mask * ((u[-1] + u[+1] - g) * 0.5)"
  in
  let node = Node.create params in
  Node.load_array node ~plane:0 ~base:0 (Array.make 4096 1.5);
  Node.load_array node ~plane:1 ~base:0 (Array.make 4096 2.5);
  let vec_sem, _ = Semantic.of_pipeline params ~lookup:(Program.variable_base prog) vec_pl in
  let jacobi_text = Serialize.to_string jacobi_build.Jacobi.program in
  let editor_state =
    Nsc_editor.State.of_program kb jacobi_build.Jacobi.program
  in
  let pad_pos =
    Nsc_editor.Layout.of_drawing (Geometry.point 1 1)
  in
  let tests =
    [
      Test.make ~name:"checker interactive (vecadd)"
        (Staged.stage (fun () ->
             ignore (Nsc_checker.Checker.check_pipeline kb ~level:`Interactive vec_pl)));
      Test.make ~name:"checker complete (Jacobi sweep)"
        (Staged.stage (fun () ->
             ignore
               (Nsc_checker.Checker.check_pipeline kb ~lookup ~level:`Complete jacobi_sweep)));
      Test.make ~name:"semantic projection (Jacobi sweep)"
        (Staged.stage (fun () -> ignore (Semantic.of_pipeline params ~lookup jacobi_sweep)));
      Test.make ~name:"timing analysis (Jacobi sweep)"
        (Staged.stage (fun () -> ignore (Nsc_checker.Timing.analyse params sweep_sem)));
      Test.make ~name:"microcode encode (Jacobi sweep)"
        (Staged.stage (fun () -> ignore (Nsc_microcode.Encode.encode layout sweep_sem)));
      Test.make ~name:"microcode decode (Jacobi sweep)"
        (Staged.stage (fun () ->
             ignore
               (Nsc_microcode.Decode.decode layout sweep_instr.Nsc_microcode.Encode.word)));
      Test.make ~name:"language compile (1-D Jacobi stmt)"
        (Staged.stage (fun () -> ignore (Nsc_lang.Compile.compile kb lang_src)));
      Test.make ~name:"serialize+parse (Jacobi program)"
        (Staged.stage (fun () -> ignore (Serialize.of_string params jacobi_text)));
      Test.make ~name:"editor event (mouse move)"
        (Staged.stage (fun () ->
             ignore (Nsc_editor.Editor.handle editor_state (Nsc_editor.Event.Mouse_move pad_pos))));
      Test.make ~name:"engine run (4096-elem vecadd)"
        (Staged.stage (fun () -> ignore (Engine.run node vec_sem)));
      Test.make ~name:"window render (ASCII)"
        (Staged.stage (fun () -> ignore (Nsc_editor.Render_ascii.render editor_state)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"toolchain" tests) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> row "  %-44s %14.0f ns/op\n" name est
      | Some _ | None -> row "  %-44s (no estimate)\n" name)
    (List.sort compare rows)

(* --domains N fans per-node simulation of the scaling experiments across
   OCaml domains (default 1 — fully sequential, bit-identical results). *)
let domains_of_argv () =
  let d = ref 1 in
  let argv = Sys.argv in
  Array.iteri
    (fun i a ->
      if a = "--domains" && i + 1 < Array.length argv then
        match int_of_string_opt argv.(i + 1) with
        | Some n when n >= 1 -> d := n
        | _ ->
            prerr_endline ("bench: bad --domains value " ^ argv.(i + 1));
            exit 2)
    argv;
  !d

let () =
  let domains = domains_of_argv () in
  let t0 = Unix.gettimeofday () in
  fig1_datapath ();
  fig2_jacobi ();
  c2_contention ();
  c3_node_rate ();
  c4_scaling ~domains ();
  scaling_campaign ~domains ();
  c5_microcode ();
  c6_authoring ();
  c7_checker ();
  c8_debugger ();
  c9_subset ();
  c11_multigrid ();
  a1_reconfig ();
  a2_sor ();
  perf_engine ();
  perf_throughput ();
  trace_overhead ();
  profile_hotspots ();
  fault_injection ();
  perf_service ();
  perf_resilience ();
  toolchain_benchmarks ();
  write_bench_json "BENCH_sim.json";
  Printf.printf "\nall experiments completed in %.1f s (BENCH_sim.json written)\n"
    (Unix.gettimeofday () -. t0)
