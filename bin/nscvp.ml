(* nscvp — the Navier-Stokes Computer visual-programming tool chain.

   Subcommands cover the full flow of the paper's Figure 3:
     info          machine knowledge-base summary
     check         validate a saved visual program
     codegen       generate microcode (listing and/or hex)
     disasm        disassemble a hex microcode file
     run           execute a program on the simulated node
     render        ASCII/SVG renderings of diagrams and the datapath
     replay        replay an editor session script
     compile       compile textual pipeline-language source to a program
     debug         run with tracing and print annotated diagram frames
     stats         run under the trace instrument and print its counters
     profile       run under a fresh metric context; print the hotspot profile
     inject        run clean and under a seeded fault model; print the report
     serve         long-running simulation service over an NDJSON job protocol *)

open Nsc_arch
open Nsc_diagram
open Cmdliner
module Fault = Nsc_fault.Fault

let kb_of_subset subset = if subset then Knowledge.subset else Knowledge.default

let subset_flag =
  Arg.(value & flag & info [ "subset" ] ~doc:"Use the restricted (subset) machine model.")

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Saved visual program.")

(* A malformed or truncated input must exit 2 with a one-line diagnostic,
   never escape as a raw OCaml exception with a backtrace. *)
let guarded f =
  try f () with
  | Sys_error e | Failure e | Invalid_argument e ->
      prerr_endline ("error: " ^ e);
      exit 2
  | Unix.Unix_error (err, fn, arg) ->
      (* a bind/connect/unlink failure (socket already bound, permission
         denied, ...) is an environment problem, not a crash *)
      prerr_endline
        (Printf.sprintf "error: %s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message err));
      exit 2

let load_program kb path =
  guarded (fun () ->
      match Serialize.load (Knowledge.params kb) ~path with
      | Ok prog -> prog
      | Error e ->
          prerr_endline ("error: " ^ e);
          exit 2)

let print_diagnostics ds =
  List.iter (fun d -> print_endline ("  " ^ Nsc_checker.Diagnostic.to_string d)) ds

(* -- info ------------------------------------------------------------- *)

let info_cmd =
  let run subset =
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    print_endline (Knowledge.summary kb);
    Printf.printf "hypercube: up to %d nodes (%.1f GFLOPS, %d GB total memory)\n"
      (1 lsl p.Params.hypercube_dim)
      (Params.peak_gflops_machine p)
      (Params.node_memory_bytes p * (1 lsl p.Params.hypercube_dim) / (1024 * 1024 * 1024));
    let layout = Nsc_microcode.Fields.make p in
    Printf.printf "microinstruction: %d bits, %d fields (%d kinds)\n"
      layout.Nsc_microcode.Fields.total_bits
      (Nsc_microcode.Fields.field_count layout)
      (Nsc_microcode.Fields.kind_count layout)
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe the machine knowledge base.")
    Term.(const run $ subset_flag)

(* -- check ------------------------------------------------------------ *)

let check_cmd =
  let run subset path =
    let kb = kb_of_subset subset in
    let prog = load_program kb path in
    let ds = Nsc_checker.Checker.check_program kb prog in
    if ds = [] then print_endline "no findings: the program is valid"
    else begin
      Printf.printf "%d finding(s):\n" (List.length ds);
      print_diagnostics ds
    end;
    if Nsc_checker.Diagnostic.has_errors ds then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc:"Run the thorough checker pass over a program.")
    Term.(const run $ subset_flag $ program_arg)

(* -- codegen / disasm -------------------------------------------------- *)

let compile_or_die kb prog =
  match Nsc_microcode.Codegen.compile kb prog with
  | Ok c -> c
  | Error ds ->
      prerr_endline "code generation blocked:";
      List.iter (fun d -> prerr_endline ("  " ^ Nsc_checker.Diagnostic.to_string d)) ds;
      exit 1

let write_hex (c : Nsc_microcode.Codegen.compiled) path =
  let oc = open_out path in
  Printf.fprintf oc "NSCMC %d\n" c.Nsc_microcode.Codegen.layout.Nsc_microcode.Fields.total_bits;
  List.iter
    (fun (i : Nsc_microcode.Encode.instruction) ->
      Printf.fprintf oc "instr %d\n%s\n" i.Nsc_microcode.Encode.index
        (Nsc_microcode.Word.to_hex i.Nsc_microcode.Encode.word))
    c.Nsc_microcode.Codegen.instructions;
  close_out oc

let codegen_cmd =
  let hex_out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write hex microcode.")
  in
  let show_hex = Arg.(value & flag & info [ "hex" ] ~doc:"Include hex dumps in the listing.") in
  let run subset path hex_path show_hex =
    let kb = kb_of_subset subset in
    let c = compile_or_die kb (load_program kb path) in
    print_string (Nsc_microcode.Listing.compiled_to_string ~hex:show_hex c);
    match hex_path with
    | Some out ->
        write_hex c out;
        Printf.printf "wrote %s (%d bits of microcode)\n" out (Nsc_microcode.Codegen.code_bits c)
    | None -> ()
  in
  Cmd.v (Cmd.info "codegen" ~doc:"Generate microcode and print the listing.")
    Term.(const run $ subset_flag $ program_arg $ hex_out $ show_hex)

let disasm_cmd =
  let hex_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HEX" ~doc:"Hex microcode file.")
  in
  let run subset path =
    guarded @@ fun () ->
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    let layout = Nsc_microcode.Fields.make p in
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    (match lines with
    | header :: _ when String.length header >= 5 && String.sub header 0 5 = "NSCMC" -> ()
    | _ ->
        prerr_endline "error: not an NSCMC hex file";
        exit 2);
    (* gather hex bytes per instruction *)
    let word_bytes = (layout.Nsc_microcode.Fields.total_bits + 7) / 8 in
    let current = Buffer.create 1024 in
    let flush_instr () =
      if Buffer.length current > 0 then begin
        let hex = Buffer.contents current in
        let w = Nsc_microcode.Word.create layout.Nsc_microcode.Fields.total_bits in
        let n = min word_bytes (String.length hex / 2) in
        for i = 0 to n - 1 do
          let byte = int_of_string ("0x" ^ String.sub hex (2 * i) 2) in
          for b = 0 to 7 do
            if (i * 8) + b < layout.Nsc_microcode.Fields.total_bits then
              Nsc_microcode.Word.set_bit w ((i * 8) + b) ((byte lsr b) land 1 = 1)
          done
        done;
        (match Nsc_microcode.Decode.decode layout w with
        | Ok sem -> print_string (Nsc_microcode.Listing.semantic_to_string sem)
        | Error e -> Printf.printf "  (undecodable: %s)\n" e);
        Buffer.clear current
      end
    in
    List.iteri
      (fun i line ->
        if i = 0 then ()
        else if String.length line >= 5 && String.sub line 0 5 = "instr" then flush_instr ()
        else
          String.iter
            (fun ch -> if ch <> ' ' && ch <> '\n' then Buffer.add_char current ch)
            line)
      lines;
    flush_instr ()
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble hex microcode back to its pseudo-code.")
    Term.(const run $ subset_flag $ hex_arg)

(* -- run ---------------------------------------------------------------- *)

let parse_load s =
  (* plane:base:file *)
  match String.split_on_char ':' s with
  | [ plane; base; file ] -> (
      match (int_of_string_opt plane, int_of_string_opt base) with
      | Some plane, Some base -> Some (plane, base, file)
      | _ -> None)
  | _ -> None

let parse_dump s =
  match String.split_on_char ':' s with
  | [ plane; base; len ] -> (
      match (int_of_string_opt plane, int_of_string_opt base, int_of_string_opt len) with
      | Some plane, Some base, Some len -> Some (plane, base, len)
      | _ -> None)
  | _ -> None

let read_floats file =
  let ic = open_in file in
  let xs = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match float_of_string_opt line with
         | Some v -> xs := v :: !xs
         | None -> ()
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !xs)

(* -- fault injection options ------------------------------------------- *)

let faults_opt =
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
         ~doc:"Install the seeded fault model for the run.  $(docv) is a \
               comma-separated list of clauses: $(b,transient-link:p=F), \
               $(b,dead-link:A-B), $(b,mem-corrupt:p=F), $(b,dma-stall:p=F), \
               $(b,fu-fault:p=F).  See docs/FAULTS.md for the full grammar.")

let fault_seed_arg =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed of the deterministic fault schedule (default 1); the same \
               seed and spec reproduce the same faults.")

let parse_faults_or_die spec =
  match Fault.parse spec with
  | Ok s -> s
  | Error e ->
      prerr_endline ("bad --faults: " ^ e);
      exit 2

(* Install the model for the coming run; true when one is installed, so
   the caller knows to print the fault report afterwards. *)
let install_faults spec seed =
  match spec with
  | None -> false
  | Some s ->
      Fault.install (Fault.make ~seed (parse_faults_or_die s));
      true

(* End-of-run fault report, from the always-on ledger (works without
   --trace).  Reconciles first so no injected fault is silently dropped. *)
let fault_report () =
  let reconciled = Fault.reconcile () in
  print_endline "fault report:";
  List.iter (fun (name, v) -> Printf.printf "  %-24s %d\n" name v) (Fault.ledger ());
  if reconciled > 0 then
    Printf.printf "  (%d outstanding fault(s) reconciled as unrecovered)\n" reconciled

(* -- engine selection --------------------------------------------------- *)

let engine_arg =
  let engine_conv =
    Arg.enum
      [ ("kernel", `Kernel); ("kernel-v2", `Kernel_v2); ("plan", `Plan);
        ("legacy", `Legacy) ]
  in
  Arg.(value & opt engine_conv `Kernel
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Simulator path: $(b,kernel) (specialised vector kernels \
                 over pooled buffers, the default), $(b,kernel-v2) (the \
                 previous float-array kernel backend), $(b,plan) (the plan \
                 interpreter) or $(b,legacy) (the per-dispatch seed path).  \
                 All four are bit-identical wherever the fused body applies \
                 — the slower paths are kept for benchmarking and \
                 differential debugging.")

(* -- Domain fan-out ----------------------------------------------------- *)

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Fan the run across $(docv) OCaml domains (default 1): the \
               program is replicated on every node of a hypercube machine \
               just large enough for $(docv) domains and executed through \
               the machine's persistent domain pool; the replicas are \
               checked bit-identical and node 0 is reported.  Ignored when \
               a fault model is installed — the seeded fault schedule is \
               consumed sequentially to stay reproducible.")

(* smallest hypercube dimension giving at least [n] nodes *)
let dim_for_domains n =
  let rec go d = if 1 lsl d >= n || d >= 10 then d else go (d + 1) in
  go 0

(* Execute [exec node] on every node of a fresh [2^dim]-node machine
   (each prepared by [prepare]), fanned over [domains] domains from the
   machine's pool; all replicas must agree bit-identically (they run the
   same program on identical data), and node 0's result is returned. *)
let run_replicated p ~domains ~prepare ~exec =
  let machine = Nsc_sim.Multinode.create ~dim:(dim_for_domains domains) p in
  Array.iter prepare machine.Nsc_sim.Multinode.nodes;
  let results =
    Nsc_sim.Multinode.parallel_iter ~domains machine (fun _ node -> exec node)
  in
  Nsc_sim.Multinode.shutdown machine;
  let agree = Array.for_all (fun r -> compare results.(0) r = 0) results in
  Printf.printf "replicated on %d node(s) across %d domain(s): %s\n"
    (Array.length results) domains
    (if agree then "replicas bit-identical" else "REPLICA MISMATCH");
  (Nsc_sim.Multinode.node machine 0, results.(0))

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a structured trace of the execution and write it as Chrome \
               trace-event JSON to $(docv) (loadable in Perfetto or chrome://tracing); \
               the counter summary is printed as well.")

(* Run [f] under the trace instrument when [trace] names an output file.
   Input loading happens before this, so the counters see exactly the
   execution; the JSON export and the printed digest both read the same
   counter registry, so their totals always agree. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some out ->
      Nsc_trace.Trace.reset ();
      Nsc_trace.Trace.enable ();
      f ();
      Nsc_trace.Trace.disable ();
      let oc = open_out out in
      output_string oc (Nsc_trace.Trace.to_chrome ());
      close_out oc;
      Printf.printf "wrote %s\n" out;
      print_string (Nsc_trace.Trace.summary ())

let run_cmd =
  let loads =
    Arg.(value & opt_all string [] & info [ "load" ] ~docv:"PLANE:BASE:FILE"
           ~doc:"Load floats (one per line) into a memory plane before the run.")
  in
  let dumps =
    Arg.(value & opt_all string [] & info [ "dump" ] ~docv:"PLANE:BASE:LEN"
           ~doc:"Print a memory range after the run.")
  in
  let events = Arg.(value & flag & info [ "events" ] ~doc:"Print the interrupt log.") in
  let batch_arg =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"K"
             ~doc:"Run $(docv) replicas of the program in lock-step through \
                   the batched kernel executor: one compiled kernel per \
                   instruction shared across replicas, over interleaved \
                   buffer slabs.  Combine with $(b,--domains) to fan clean \
                   replicas across worker domains.  Replicas are checked \
                   bit-identical and replica 0 is reported.")
  in
  let run subset path loads dumps events trace faults seed domains engine batch =
    guarded @@ fun () ->
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    let c = compile_or_die kb (load_program kb path) in
    let apply_loads node =
      List.iter
        (fun s ->
          match parse_load s with
          | Some (plane, base, file) ->
              Nsc_sim.Node.load_array node ~plane ~base (read_floats file)
          | None ->
              prerr_endline ("bad --load: " ^ s);
              exit 2)
        loads
    in
    let faulted = install_faults faults seed in
    let domains =
      if domains > 1 && faulted then begin
        print_endline
          "note: --domains ignored under --faults (the seeded fault schedule is \
           consumed sequentially)";
        1
      end
      else domains
    in
    if batch > 1 && engine <> `Kernel then
      print_endline "note: --batch always runs the batched kernel executor";
    let node = ref (Nsc_sim.Node.create p) in
    if batch <= 1 && domains <= 1 then apply_loads !node;
    with_trace trace (fun () ->
        let result =
          if batch > 1 then begin
            let nodes = Array.init batch (fun _ -> Nsc_sim.Node.create p) in
            Array.iter apply_loads nodes;
            node := nodes.(0);
            match Nsc_sim.Sequencer.run_batch nodes ~domains c with
            | Error e -> Error e
            | Ok outs ->
                let agree = Array.for_all (fun o -> compare outs.(0) o = 0) outs in
                Printf.printf "batched %d replica(s) across %d domain(s): %s\n"
                  batch domains
                  (if faulted then "fault draws interleave across replicas"
                   else if agree then "replicas bit-identical"
                   else "REPLICA MISMATCH");
                Ok outs.(0)
          end
          else if domains <= 1 then Nsc_sim.Sequencer.run !node ~engine c
          else begin
            let n0, r =
              run_replicated p ~domains ~prepare:apply_loads
                ~exec:(fun node -> Nsc_sim.Sequencer.run node ~engine c)
            in
            node := n0;
            r
          end
        in
        match result with
        | Error e ->
            prerr_endline ("run error: " ^ e);
            exit 1
        | Ok o ->
            let stats = o.Nsc_sim.Sequencer.stats in
            Printf.printf "executed %d instruction(s)%s\n"
              stats.Nsc_sim.Sequencer.instructions_executed
              (if o.Nsc_sim.Sequencer.halted then " (halted)" else "");
            let s =
              Nsc_sim.Stats.summarize p ~cycles:stats.Nsc_sim.Sequencer.total_cycles
                ~flops:stats.Nsc_sim.Sequencer.total_flops
            in
            Printf.printf "%s\n" (Nsc_sim.Stats.summary_to_string s);
            if events then
              List.iter
                (fun e -> print_endline ("  " ^ Interrupt.event_to_string e))
                stats.Nsc_sim.Sequencer.events);
    if faulted then begin
      fault_report ();
      Fault.clear ()
    end;
    List.iter
      (fun s ->
        match parse_dump s with
        | Some (plane, base, len) ->
            Printf.printf "plane %d [%d..%d):\n" plane base (base + len);
            Array.iter
              (fun v -> Printf.printf "  %.17g\n" v)
              (Nsc_sim.Node.dump_array !node ~plane ~base ~len)
        | None ->
            prerr_endline ("bad --dump: " ^ s);
            exit 2)
      dumps
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a program on the simulated node.")
    Term.(const run $ subset_flag $ program_arg $ loads $ dumps $ events $ trace_out
          $ faults_opt $ fault_seed_arg $ domains_arg $ engine_arg $ batch_arg)

(* -- render ------------------------------------------------------------- *)

let render_cmd =
  let what =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WHAT"
           ~doc:"'datapath', 'icons', or a program file.")
  in
  let pipeline_n =
    Arg.(value & opt int 1 & info [ "pipeline" ] ~docv:"N" ~doc:"Pipeline to render.")
  in
  let svg = Arg.(value & flag & info [ "svg" ] ~doc:"Emit SVG instead of ASCII.") in
  let run subset what n svg =
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    match what with
    | "datapath" ->
        if svg then print_string (Nsc_editor.Render_svg.render_datapath p)
        else begin
          (* a compact ASCII datapath summary (the Figure 1 content) *)
          Printf.printf "%s\n" (Knowledge.summary kb);
          Printf.printf
            "  hyperspace router <-> caches (%d) <-> FLONET switch <-> memory planes (%d)\n"
            p.Params.n_caches p.Params.n_memory_planes;
          Printf.printf "  FLONET <-> %d singlets | %d doublets | %d triplets | %d shift/delay\n"
            p.Params.n_singlets p.Params.n_doublets p.Params.n_triplets p.Params.n_shift_delay
        end
    | "icons" ->
        (* the Figure 4 gallery: one of each ALS icon form *)
        let pl = Pipeline.empty 1 in
        let add pl kind bypass x =
          match Pipeline.place_als p pl ~kind ~bypass ~pos:(Geometry.point x 2) () with
          | Ok (_, pl) -> pl
          | Error e -> failwith e
        in
        let pl = add pl Als.Singlet Als.No_bypass 4 in
        let pl = add pl Als.Doublet Als.No_bypass 20 in
        let pl = add pl Als.Doublet Als.Keep_head 36 in
        let pl = add pl Als.Triplet Als.No_bypass 52 in
        if svg then print_string (Nsc_editor.Render_svg.render_pipeline p pl)
        else print_string (Nsc_editor.Render_ascii.render_pipeline p pl)
    | path -> (
        let prog = load_program kb path in
        match Program.find_pipeline prog n with
        | None ->
            prerr_endline "no such pipeline";
            exit 2
        | Some pl ->
            if svg then print_string (Nsc_editor.Render_svg.render_pipeline p pl)
            else print_string (Nsc_editor.Render_ascii.render_pipeline p pl))
  in
  Cmd.v (Cmd.info "render" ~doc:"Render diagrams, the icon gallery, or the datapath.")
    Term.(const run $ subset_flag $ what $ pipeline_n $ svg)

(* -- replay -------------------------------------------------------------- *)

let replay_cmd =
  let script_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Editor session script.")
  in
  let run subset path =
    let kb = kb_of_subset subset in
    let ic = open_in path in
    let n = in_channel_length ic in
    let script = really_input_string ic n in
    close_in ic;
    let r = Nsc_editor.Session.replay (Nsc_editor.State.create kb) script in
    List.iter
      (fun (f : Nsc_editor.Session.frame) ->
        Printf.printf "===== %s =====\n%s\n" f.Nsc_editor.Session.name
          f.Nsc_editor.Session.render)
      r.Nsc_editor.Session.frames;
    Printf.printf "%d event(s) applied; final message: %s\n" r.Nsc_editor.Session.applied
      (Nsc_editor.State.latest_message r.Nsc_editor.Session.final);
    List.iter
      (fun (lineno, m) -> Printf.printf "  line %d: %s\n" lineno m)
      r.Nsc_editor.Session.errors
  in
  Cmd.v (Cmd.info "replay" ~doc:"Replay an editor session script.")
    Term.(const run $ subset_flag $ script_arg)

(* -- compile (textual language) ------------------------------------------ *)

let compile_cmd =
  let src_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"Pipeline-language source.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Save the visual program.")
  in
  let render = Arg.(value & flag & info [ "render" ] ~doc:"Render the generated diagrams (ASCII).") in
  let run subset path out render =
    let kb = kb_of_subset subset in
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    match Nsc_lang.Compile.compile kb src with
    | Error e ->
        Printf.eprintf "compile error%s: %s\n"
          (match e.Nsc_lang.Compile.at_statement with
          | Some n -> Printf.sprintf " (statement %d)" n
          | None -> "")
          e.Nsc_lang.Compile.message;
        exit 1
    | Ok c ->
        Printf.printf "compiled: %d pipeline instruction(s)\n"
          (Program.pipeline_count c.Nsc_lang.Compile.program);
        (* the paper's section-6 idea: the visual environment "as a back
           end to a compiler, displaying the results of the compilation" *)
        if render then
          List.iter
            (fun (pl : Pipeline.t) ->
              Printf.printf "\n-- instruction %d: %s --\n%s" pl.Pipeline.index
                pl.Pipeline.label
                (Nsc_editor.Render_ascii.render_pipeline (Knowledge.params kb) pl))
            c.Nsc_lang.Compile.program.Program.pipelines;
        (match out with
        | Some out ->
            Serialize.save c.Nsc_lang.Compile.program ~path:out;
            Printf.printf "wrote %s\n" out
        | None -> ())
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile pipeline-language source to a visual program.")
    Term.(const run $ subset_flag $ src_arg $ out $ render)

(* -- debug ----------------------------------------------------------------- *)

let debug_cmd =
  let element =
    Arg.(value & opt int 0 & info [ "element" ] ~docv:"E" ~doc:"Vector element to annotate.")
  in
  let loads =
    Arg.(value & opt_all string [] & info [ "load" ] ~docv:"PLANE:BASE:FILE"
           ~doc:"Load floats before the run.")
  in
  let limit = Arg.(value & opt int 8 & info [ "frames" ] ~doc:"Frames to display.") in
  let run subset path element loads limit trace engine =
    guarded @@ fun () ->
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    let prog = load_program kb path in
    let c = compile_or_die kb prog in
    let node = Nsc_sim.Node.create p in
    List.iter
      (fun s ->
        match parse_load s with
        | Some (plane, base, file) -> Nsc_sim.Node.load_array node ~plane ~base (read_floats file)
        | None ->
            prerr_endline ("bad --load: " ^ s);
            exit 2)
      loads;
    with_trace trace (fun () ->
        match Nsc_debug.Stepper.run node ~limit ~engine c prog with
        | Error e ->
            prerr_endline ("run error: " ^ e);
            exit 1
        | Ok run ->
            List.iter
              (fun f ->
                print_string (Nsc_debug.Stepper.render_frame p run f ~element);
                print_newline ())
              run.Nsc_debug.Stepper.frames)
  in
  Cmd.v
    (Cmd.info "debug" ~doc:"Execute with tracing; print annotated pipeline diagrams.")
    Term.(const run $ subset_flag $ program_arg $ element $ loads $ limit $ trace_out
          $ engine_arg)

(* -- stats ----------------------------------------------------------------- *)

let stats_cmd =
  let loads =
    Arg.(value & opt_all string [] & info [ "load" ] ~docv:"PLANE:BASE:FILE"
           ~doc:"Load floats (one per line) into a memory plane before the run.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Also write the Chrome trace-event JSON to $(docv).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the run's metric snapshot as JSON instead of the \
                 plain-text summary (machine-readable; schema in \
                 docs/OBSERVABILITY.md).")
  in
  let run subset path loads out json =
    guarded @@ fun () ->
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    let c = compile_or_die kb (load_program kb path) in
    let node = Nsc_sim.Node.create p in
    List.iter
      (fun s ->
        match parse_load s with
        | Some (plane, base, file) -> Nsc_sim.Node.load_array node ~plane ~base (read_floats file)
        | None ->
            prerr_endline ("bad --load: " ^ s);
            exit 2)
      loads;
    (* the run gets its own metric context, isolated from everything else
       in the process — the new-world form of reset/enable/disable *)
    let module Metrics = Nsc_metrics.Metrics in
    let ctx = Metrics.create ~label:"stats" () in
    Metrics.enable ctx;
    (match Nsc_sim.Sequencer.run node ~metrics:ctx c with
    | Error e ->
        prerr_endline ("run error: " ^ e);
        exit 1
    | Ok _ -> ());
    Metrics.disable ctx;
    if json then
      print_endline
        (Nsc_metrics.Json.to_string (Metrics.snapshot_to_json (Metrics.snapshot ctx)))
    else print_string (Metrics.summary ctx);
    match out with
    | Some file ->
        let oc = open_out file in
        output_string oc (Metrics.to_chrome ctx);
        close_out oc;
        Printf.printf "wrote %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a program under the trace instrument and print its counters.")
    Term.(const run $ subset_flag $ program_arg $ loads $ out $ json)

(* -- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let module Metrics = Nsc_metrics.Metrics in
  let program_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM"
           ~doc:"Saved visual program to profile (omit with $(b,--jacobi)).")
  in
  let jacobi =
    Arg.(value & opt (some int) None & info [ "jacobi" ] ~docv:"N"
           ~doc:"Profile the built-in 3-D Jacobi/Poisson solve on an N-point \
                 grid edge (the paper's programming example; the manufactured \
                 problem, tol 1e-6, at most 4000 sweeps) instead of a saved \
                 program.")
  in
  let loads =
    Arg.(value & opt_all string [] & info [ "load" ] ~docv:"PLANE:BASE:FILE"
           ~doc:"Load floats (one per line) into a memory plane before the run.")
  in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable profile document to $(docv) \
                 (schema in docs/OBSERVABILITY.md).")
  in
  let folded_out =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"Write folded-stacks output ($(b,instruction;unit cycles) \
                 lines) to $(docv) — flamegraph.pl input.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"Rows to keep in the printed hotspot table (default 10).")
  in
  let run subset program jacobi loads json_out folded_out top engine =
    guarded @@ fun () ->
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    (* a fresh context per profiled run: nothing from this process's past
       (or a concurrent run) bleeds into the report *)
    let ctx = Metrics.create ~label:"profile" () in
    Metrics.enable ctx;
    (match (program, jacobi) with
    | Some path, _ ->
        let c = compile_or_die kb (load_program kb path) in
        let node = Nsc_sim.Node.create p in
        List.iter
          (fun s ->
            match parse_load s with
            | Some (plane, base, file) ->
                Nsc_sim.Node.load_array node ~plane ~base (read_floats file)
            | None ->
                prerr_endline ("bad --load: " ^ s);
                exit 2)
          loads;
        (match Nsc_sim.Sequencer.run node ~engine ~metrics:ctx c with
        | Error e ->
            prerr_endline ("run error: " ^ e);
            exit 1
        | Ok _ -> ())
    | None, Some n ->
        let prob = Nsc_apps.Poisson.manufactured n in
        Metrics.with_ctx ctx (fun () ->
            match Nsc_apps.Jacobi.solve kb ~engine prob ~tol:1e-6 ~max_iters:4000 with
            | Error e ->
                prerr_endline ("run error: " ^ e);
                exit 1
            | Ok o ->
                Printf.printf "jacobi n=%d: %d sweep(s), final change %.3g\n" n
                  o.Nsc_apps.Jacobi.sweeps o.Nsc_apps.Jacobi.final_change)
    | None, None ->
        prerr_endline "error: give a PROGRAM or --jacobi N";
        exit 2);
    Metrics.disable ctx;
    print_string (Nsc_sim.Stats.profile_report ~top p ctx);
    let write file s =
      let oc = open_out file in
      output_string oc s;
      close_out oc;
      Printf.printf "wrote %s\n" file
    in
    Option.iter
      (fun file ->
        write file (Nsc_metrics.Json.to_string (Nsc_sim.Stats.profile_json p ctx)))
      json_out;
    Option.iter (fun file -> write file (Nsc_sim.Stats.profile_folded ctx)) folded_out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Execute under a fresh metric context and print the hotspot \
             profile: latency percentiles, per-unit cycle/FLOP attribution \
             with sustained MFLOPS against the paper's per-node peak, and \
             optional JSON / folded-stacks output.")
    Term.(const run $ subset_flag $ program_opt $ jacobi $ loads $ json_out
          $ folded_out $ top $ engine_arg)

(* -- inject ----------------------------------------------------------------- *)

let inject_cmd =
  let loads =
    Arg.(value & opt_all string [] & info [ "load" ] ~docv:"PLANE:BASE:FILE"
           ~doc:"Load floats (one per line) into a memory plane before each run.")
  in
  let faults_req =
    Arg.(required & opt (some string) None & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault specification to inject (required); same grammar as \
                 $(b,run --faults).  See docs/FAULTS.md.")
  in
  let run subset path loads spec seed domains =
    guarded @@ fun () ->
    let kb = kb_of_subset subset in
    let p = Knowledge.params kb in
    let c = compile_or_die kb (load_program kb path) in
    let fspec = parse_faults_or_die spec in
    let apply_loads node =
      List.iter
        (fun s ->
          match parse_load s with
          | Some (plane, base, file) ->
              Nsc_sim.Node.load_array node ~plane ~base (read_floats file)
          | None ->
              prerr_endline ("bad --load: " ^ s);
              exit 2)
        loads
    in
    let fresh_node () =
      let node = Nsc_sim.Node.create p in
      apply_loads node;
      node
    in
    let stats_of = function
      | Error e ->
          prerr_endline ("run error: " ^ e);
          exit 1
      | Ok o -> o.Nsc_sim.Sequencer.stats
    in
    let run_once node = stats_of (Nsc_sim.Sequencer.run node c) in
    (* reference run on a perfect machine (optionally replicated across
       domains), then the same program under the seeded fault model on a
       fresh node — always sequential, so the seeded schedule is stable *)
    let clean =
      if domains <= 1 then run_once (fresh_node ())
      else
        let _node0, r =
          run_replicated p ~domains ~prepare:apply_loads
            ~exec:(fun node -> Nsc_sim.Sequencer.run node c)
        in
        stats_of r
    in
    if domains > 1 then
      print_endline "note: the faulted run stays sequential (seeded fault schedule)";
    Fault.install (Fault.make ~seed fspec);
    let faulted = run_once (fresh_node ()) in
    let cc = clean.Nsc_sim.Sequencer.total_cycles in
    let fc = faulted.Nsc_sim.Sequencer.total_cycles in
    Printf.printf "fault injection: %s (seed %d)\n" (Fault.spec_to_string fspec) seed;
    Printf.printf "  clean run:   %d instruction(s), %d cycles\n"
      clean.Nsc_sim.Sequencer.instructions_executed cc;
    Printf.printf "  faulted run: %d instruction(s), %d cycles (%+.2f%% cycle overhead)\n"
      faulted.Nsc_sim.Sequencer.instructions_executed fc
      (if cc = 0 then 0.0 else 100.0 *. float_of_int (fc - cc) /. float_of_int cc);
    fault_report ();
    let unrecovered =
      Option.value ~default:0 (List.assoc_opt "fault.unrecovered" (Fault.ledger ()))
    in
    Fault.clear ();
    if unrecovered > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Execute a program clean and under a seeded fault model; print the \
             fault/recovery report (exit 1 if any fault went unrecovered).")
    Term.(const run $ subset_flag $ program_arg $ loads $ faults_req $ fault_seed_arg
          $ domains_arg)

(* -- serve ------------------------------------------------------------------ *)

let serve_cmd =
  let module Serve = Nsc_serve.Serve in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission-queue capacity (default 64).  A submit that \
                   finds the queue full is rejected with $(b,queue-full) \
                   and the queue is drained; clients that interleave \
                   $(b,drain) requests never see rejections.")
  in
  let cache_bound_arg =
    Arg.(value & opt int 0
         & info [ "cache-bound" ] ~docv:"N"
             ~doc:"Cap the shared plan and kernel caches at $(docv) entries \
                   each, evicting least-recently-used compiled instructions \
                   (the $(b,cache.evictions) counter).  0 (the default) \
                   leaves them unbounded.")
  in
  let serve_domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Fan each dispatch wave's clean jobs across $(docv) worker \
                   domains of the persistent pool (default 1: sequential).  \
                   Jobs carrying a fault spec always run sequentially after \
                   the clean jobs of their wave.")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) (one client at \
                   a time; queue, caches and counters are shared across \
                   connections) instead of serving stdin/stdout.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"PATH"
             ~doc:"Write-ahead journal: every admitted submission is \
                   appended (and flushed) to $(docv) before it is \
                   acknowledged, and completions are marked, so a crashed \
                   daemon restarted with $(b,--recover) replays exactly the \
                   accepted-but-unfinished jobs.")
  in
  let recover_arg =
    Arg.(value & flag
         & info [ "recover" ]
             ~doc:"Before serving traffic, replay the \
                   accepted-but-unfinished jobs of the $(b,--journal) file \
                   (in admission order) through the ordinary admission \
                   path.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed or deadline-killed job up to $(docv) \
                   times (exponential backoff with seed-deterministic \
                   jitter; see $(b,--backoff-ms)) before it escalates.  \
                   Default 0: failures answer immediately.")
  in
  let backoff_ms_arg =
    Arg.(value & opt float 0.0
         & info [ "backoff-ms" ] ~docv:"MS"
             ~doc:"First retry backoff in milliseconds, doubling per retry \
                   (default 0: retries are immediate).")
  in
  let degraded_arg =
    Arg.(value & flag
         & info [ "degraded" ]
             ~doc:"After the retries are exhausted, make one degraded-mode \
                   attempt — a quartered Jacobi sweep budget, or the \
                   kernel-v2 engine for source jobs — before failing the \
                   job permanently.")
  in
  let shed_at_arg =
    Arg.(value & opt int 0
         & info [ "shed-at" ] ~docv:"N"
             ~doc:"Open the overload breaker once the admission queue \
                   reaches $(docv) jobs and shed low-priority submissions \
                   (code $(b,shed)) until it drains back to half that \
                   (hysteresis).  Default 0: no shedding.")
  in
  let run subset queue cache_bound domains engine socket journal recover
      retries backoff_ms degraded shed_at =
    guarded @@ fun () ->
    let config =
      {
        Serve.default_config with
        domains;
        queue_bound = queue;
        cache_bound;
        engine;
        subset;
        retries;
        backoff_ms;
        degraded;
        journal;
        shed_open = shed_at;
      }
    in
    let t = Serve.create ~config () in
    Sys.catch_break true;
    (* SIGTERM gets the SIGINT treatment: stop admission, drain the
       queue, emit the session summary, exit 0 *)
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> raise Sys.Break))
     with Invalid_argument _ | Sys_error _ -> ());
    if recover then
      List.iter print_endline (Serve.recover t);
    match socket with
    | None -> Serve.serve_channels t stdin stdout
    | Some path -> Serve.listen t ~path
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the simulation-as-a-service daemon: accept NDJSON job \
             submissions (built-in Jacobi solves or inline pipeline-language \
             source, optionally under a seeded fault model) on stdin or a \
             Unix socket, schedule them across the persistent domain pool, \
             and stream per-job results back as NDJSON.  Protocol: \
             docs/SERVICE.md; resilience (deadlines, retries, journal, \
             shedding): docs/RESILIENCE.md.")
    Term.(const run $ subset_flag $ queue_arg $ cache_bound_arg
          $ serve_domains_arg $ engine_arg $ socket_arg $ journal_arg
          $ recover_arg $ retries_arg $ backoff_ms_arg $ degraded_arg
          $ shed_at_arg)

(* -- chaos ------------------------------------------------------------------ *)

(* Seeded in-process chaos harness over the serve daemon's resilience
   layer.  Three scenarios, all deterministic for a fixed seed:

     1. a burst killed mid-wave, recovered from the write-ahead journal
        and replayed bit-identically to an uninterrupted run;
     2. a stalled job hitting its deadline — structured error, pool
        domain still live for the next job;
     3. a fault storm driven through the retry ladder to the degraded
        attempt and the permanent verdict.

   Asserts zero acked-job loss and a balanced ledger; exits 0 iff every
   check held. *)
let chaos_cmd =
  let module Serve = Nsc_serve.Serve in
  let module Json = Nsc_metrics.Json in
  let module Journal = Nsc_guard.Guard.Journal in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed of the deterministic chaos schedule (default 42).")
  in
  let run seed =
    guarded @@ fun () ->
    let failures = ref 0 in
    let check name ok =
      Printf.printf "%-52s %s\n" name (if ok then "ok" else "FAIL");
      if not ok then incr failures
    in
    let parse line =
      match Json.parse line with Ok o -> o | Error _ -> Json.Null
    in
    let str o k = Option.bind (Json.member k (parse o)) Json.to_str in
    let inum o k =
      Option.map int_of_float (Option.bind (Json.member k (parse o)) Json.to_num)
    in
    (* host-side observability can never replay identically — wall-clock
       latency, and the domain-local buffer pool's hit/miss split (pool
       warmth is process state, not job state).  Every simulated field —
       sweeps, residual, cycles, flops, the sim.* and dma.* counters —
       must. *)
    let strip line =
      let host_only k = k = "latency_usec" in
      let pool_only k = k = "kernel.pool_hits" || k = "kernel.pool_misses" in
      match parse line with
      | Json.Obj kvs ->
          Json.to_string
            (Json.Obj
               (List.filter_map
                  (fun (k, v) ->
                    if host_only k then None
                    else
                      match (k, v) with
                      | "counters", Json.Obj cs ->
                          Some
                            ( k,
                              Json.Obj
                                (List.filter (fun (c, _) -> not (pool_only c)) cs)
                            )
                      | _ -> Some (k, v))
                  kvs))
      | _ -> line
    in
    let submit_line i n =
      Printf.sprintf
        {|{"op":"submit","id":"c%d","workload":{"kind":"jacobi","n":%d,"tol":1e-4,"max_iters":50},"fault_seed":%d}|}
        i n seed
    in
    (* --- scenario 1: kill mid-wave, recover, replay ------------------- *)
    let journal = Filename.temp_file "nscvp-chaos" ".journal" in
    Sys.remove journal;
    let jcfg = { Serve.default_config with journal = Some journal } in
    let a = Serve.create ~config:jcfg () in
    for i = 1 to 3 do
      ignore (Serve.handle_line a (submit_line i (3 + (2 * (i mod 3)))))
    done;
    ignore (Serve.drain a);
    (* the second wave is acked (journalled) and then the daemon "dies"
       before dispatching it: server [a] is simply abandoned *)
    let wave2 = List.init 5 (fun k -> submit_line (4 + k) (5 + (2 * (k mod 3)))) in
    List.iter (fun l -> ignore (Serve.handle_line a l)) wave2;
    check "acked-but-unfinished jobs survive the crash"
      (List.length (Journal.load ~path:journal) = 5);
    let b = Serve.create ~config:jcfg () in
    ignore (Serve.recover b);
    let replayed = Serve.drain b in
    let reference = Serve.create ~config:Serve.default_config () in
    List.iter (fun l -> ignore (Serve.handle_line reference l)) wave2;
    let expected = Serve.drain reference in
    check "recovery replays every acked job (lost 0)"
      (List.length replayed = 5);
    check "replay is bit-identical to the uninterrupted run"
      (List.map strip replayed = List.map strip expected);
    check "journal is balanced after the recovery wave"
      (Journal.load ~path:journal = []);
    let bal =
      let s = Option.value ~default:Json.Null (Json.member "summary" (parse (Serve.summary_response b))) in
      let v k = Option.map int_of_float (Option.bind (Json.member k s) Json.to_num) in
      v "submitted" = Some 5 && v "completed" = Some 5 && v "failed" = Some 0
    in
    check "recovery ledger balances (submitted = completed)" bal;
    Sys.remove journal;
    (* --- scenario 2: a stalled job hits its deadline ------------------ *)
    let d = Serve.create ~config:Serve.default_config () in
    ignore
      (Serve.handle_line d
         {|{"op":"submit","id":"stall","workload":{"kind":"jacobi","n":9,"tol":1e-30,"max_iters":100000},"deadline_cycles":5000}|});
    let dl = Serve.drain d in
    let dl0 = match dl with [ l ] -> l | _ -> "" in
    check "stalled job answers a structured deadline error"
      (str dl0 "code" = Some "deadline" && str dl0 "status" = Some "error");
    check "deadline error reports the cycles it spent"
      (match inum dl0 "spent_cycles" with Some c -> c >= 5000 | None -> false);
    let after = Serve.handle_line d (submit_line 100 5) in
    let ok_after =
      after = []
      && match Serve.drain d with
         | [ l ] -> str l "status" = Some "ok"
         | _ -> false
    in
    check "pool domain survives the kill (next job runs clean)" ok_after;
    (* --- scenario 3: fault storm through the retry ladder ------------- *)
    let e =
      Serve.create
        ~config:
          {
            Serve.default_config with
            retries = 2;
            degraded = true;
            backoff_ms = 0.05;
          }
        ()
    in
    ignore
      (Serve.handle_line e
         (Printf.sprintf
            {|{"op":"submit","id":"storm","workload":{"kind":"jacobi","n":5,"tol":1e-30,"max_iters":100000},"deadline_cycles":0,"faults":"transient-link:p=0.05","fault_seed":%d}|}
            seed));
    let st = match Serve.drain e with [ l ] -> l | _ -> "" in
    check "fault storm walks the full ladder"
      (inum st "attempts" = Some 4 && str st "code" = Some "deadline");
    check "ladder's last rung was the degraded attempt"
      (Json.member "degraded" (parse st) = Some (Json.Bool true));
    Printf.printf "chaos: %s (lost 0 acked jobs)\n"
      (if !failures = 0 then "all scenarios held" else "FAILURES");
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the seeded chaos harness against the in-process serve \
             daemon: a burst killed mid-wave and replayed from the \
             write-ahead journal, a stalled job cancelled by its deadline, \
             and a fault storm driven through the retry ladder.  Exits 0 \
             iff no acked job was lost and every scenario held.")
    Term.(const run $ seed_arg)

let scale_cmd =
  let module Parallel = Nsc_apps.Parallel in
  let dim_arg =
    Arg.(value & opt int 6
         & info [ "dim" ] ~docv:"D"
             ~doc:"Hypercube dimension: the machine has 2^D nodes, 0-10 \
                   (default 6, the paper's 64-node machine).")
  in
  let n_arg =
    Arg.(value & opt int 5
         & info [ "n" ] ~docv:"N" ~doc:"Per-node slab side (default 5).")
  in
  let iters_arg =
    Arg.(value & opt int 2
         & info [ "iters" ] ~docv:"K" ~doc:"Jacobi iterations (default 2).")
  in
  let faults_arg =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Also verify sync/async equivalence under this fault model \
                   (e.g. transient-link:p=0.2:retries=2).")
  in
  let seed_arg =
    Arg.(value & opt int 7
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed of the fault model installed by --faults (default 7).")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Fan per-node simulation across N OCaml domains \
                   (bit-identical results; default 1).")
  in
  let run dim n iters faults seed domains =
    guarded @@ fun () ->
    let p = Knowledge.params Knowledge.default in
    let point overlap =
      match Parallel.run p ~domains ~overlap ~n ~iters ~dim with
      | Ok pt -> pt
      | Error e -> failwith e
    in
    let rec field ?model overlap =
      match model with
      | None -> (
          match Parallel.run_field p ~domains ~overlap ~n ~iters ~dim with
          | Ok f -> f
          | Error e -> failwith e)
      | Some spec ->
          Fault.install (Fault.make ~seed spec);
          Fun.protect ~finally:Fault.clear (fun () -> field ?model:None overlap)
    in
    let sync = point false and async = point true in
    (* efficiency relative to a one-node machine on the same slab *)
    let base =
      match Parallel.run p ~domains ~n ~iters ~dim:0 with
      | Ok pt -> pt.Parallel.gflops
      | Error e -> failwith e
    in
    Printf.printf
      "%d nodes, per-node slab %dx%dx%d, %d iteration(s)\n\n" (1 lsl dim) n n n
      iters;
    let show label (pt : Parallel.point) =
      let eff =
        if base <= 0.0 then 0.0
        else pt.Parallel.gflops /. (base *. float_of_int pt.Parallel.nodes)
      in
      Printf.printf
        "%-13s %8.3f GFLOPS  %5.1f%% efficiency  %5.1f%% comm visible  \
         %5.1f%% hidden  %8.0f cycles/iter\n"
        label pt.Parallel.gflops (100.0 *. eff)
        (100.0 *. pt.Parallel.comm_fraction)
        (100.0 *. pt.Parallel.overlap_ratio)
        pt.Parallel.cycles_per_iter
    in
    show "synchronous" sync;
    show "asynchronous" async;
    let failures = ref 0 in
    let check name ok =
      Printf.printf "%-52s %s\n" name (if ok then "ok" else "FAIL");
      if not ok then incr failures
    in
    Printf.printf "\n";
    if dim > 0 then
      check "overlapped schedule hides exchange cycles"
        (async.Parallel.overlap_ratio > 0.0);
    check "async residuals bit-identical to sync (clean)"
      (field false = field true);
    (match faults with
    | None -> ()
    | Some str ->
        let spec =
          match Fault.parse str with Ok s -> s | Error e -> failwith e
        in
        check
          (Printf.sprintf "async matches sync under %s" str)
          (field ~model:spec false = field ~model:spec true));
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Run the weak-scaling Jacobi experiment on a 2^D-node hypercube \
             with both the synchronous and the asynchronous overlapped halo \
             exchange, and verify the overlapped schedule hides exchange \
             cycles while staying bit-identical to the synchronous one \
             (optionally also under a seeded fault model).  Exits 0 iff \
             every check holds.")
    Term.(const run $ dim_arg $ n_arg $ iters_arg $ faults_arg $ seed_arg
          $ domains_arg)

let () =
  let doc = "A visual programming environment for the Navier-Stokes Computer." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "nscvp" ~doc)
          [
            info_cmd; check_cmd; codegen_cmd; disasm_cmd; run_cmd; render_cmd; replay_cmd;
            compile_cmd; debug_cmd; stats_cmd; profile_cmd; inject_cmd; serve_cmd;
            chaos_cmd; scale_cmd;
          ]))
