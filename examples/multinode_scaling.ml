(* Hypercube scaling: the paper's machine-level claims exercised.

   "A 64-node NSC would have a total memory of 128 Gbytes and maximum
   performance of 40 GFLOPS."  We run the slab-decomposed Jacobi iteration
   over machines of 1..64 nodes (weak scaling: a fixed slab per node) and
   report sustained GFLOPS, parallel efficiency, and the communication
   share of machine time.

   Usage: multinode_scaling [n-per-side] [iterations] [max-dim] [sync|overlap]  *)

open Nsc_arch
open Nsc_apps

let () =
  let arg i d = try int_of_string Sys.argv.(i) with _ -> d in
  let n = arg 1 9 and iters = arg 2 3 and max_dim = arg 3 6 in
  let overlap = Array.length Sys.argv > 4 && Sys.argv.(4) = "overlap" in
  let p = Params.default in
  Printf.printf "machine: %.0f MFLOPS peak per node; %d-node peak %.1f GFLOPS\n"
    (Params.peak_mflops p)
    (1 lsl max_dim)
    (Params.peak_mflops p *. float_of_int (1 lsl max_dim) /. 1000.0);
  Printf.printf "workload: per-node slab of %dx%dx%d, %d Jacobi iteration(s), %s exchange\n\n"
    n n n iters
    (if overlap then "asynchronous overlapped" else "synchronous");
  Printf.printf "%6s  %10s  %11s  %10s  %11s  %13s\n" "nodes" "GFLOPS" "efficiency"
    "comm %" "overlap %" "cycles/iter";
  match
    Parallel.scaling p ~overlap ~n ~iters ~dims:(List.init (max_dim + 1) (fun d -> d))
  with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
  | Ok points ->
      List.iter
        (fun (pt : Parallel.point) ->
          Printf.printf "%6d  %10.3f  %10.1f%%  %9.1f%%  %10.1f%%  %13.0f\n"
            pt.Parallel.nodes pt.Parallel.gflops
            (100.0 *. pt.Parallel.efficiency)
            (100.0 *. pt.Parallel.comm_fraction)
            (100.0 *. pt.Parallel.overlap_ratio)
            pt.Parallel.cycles_per_iter)
        points;
      (* a converging run with the hypercube all-reduce residual check *)
      (match Parallel.solve p ~n ~tol:1e-4 ~max_iters:2000 ~dim:2 with
      | Ok o ->
          Printf.printf
            "\nglobal convergence on 4 nodes: %d iterations to max change <= 1e-4 \
             (all-reduced over the hypercube; %.1f%% of time in communication)\n"
            o.Parallel.iterations
            (100.0 *. o.Parallel.point.Parallel.comm_fraction)
      | Error e -> prerr_endline ("solve error: " ^ e));
      let last = List.nth points (List.length points - 1) in
      Printf.printf
        "\nat %d nodes the machine sustains %.2f GFLOPS (%.1f%% of its %.1f GFLOPS peak)\n"
        last.Parallel.nodes last.Parallel.gflops
        (100.0 *. last.Parallel.gflops
        /. (Params.peak_mflops p *. float_of_int last.Parallel.nodes /. 1000.0))
        (Params.peak_mflops p *. float_of_int last.Parallel.nodes /. 1000.0)
