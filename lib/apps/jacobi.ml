(** The paper's programming example as an NSC visual program: the point
    Jacobi update for the 3-D Poisson equation with a residual convergence
    check (Equation 1, Figures 2 and 11).

    The program has three instructions:

    + {b setup} — g = h²·f, run once;
    + {b sweep} — unew = mask · (Σ neighbours − g)/6 over the whole grid,
      with the running maximum of |unew − u| accumulated through a
      register-file feedback loop on a min/max unit (the residual check);
    + {b refresh} — copy unew back over the planes holding u.

    Copies of u are spread over several memory planes so each plane serves
    at most two stencil streams — the paper's "maintain multiple copies of
    arrays" answer to the planar memory organisation; the refresh
    instruction is its "relocate them between phases".  A [`Packed] layout
    places more streams per plane to expose the contention cost, and a
    [`Ping_pong] strategy trades the refresh instruction for a second,
    mirrored sweep. *)

open Nsc_arch
open Nsc_diagram
open Nsc_checker

(** Where the fields live.  [u_planes] maps each stencil-stream group to
    the plane (and variable) serving it. *)
type layout = {
  sx : int;      (** plane serving the u[i±1] streams *)
  sy : int;      (** plane serving the u[j±1] streams *)
  sz : int;      (** plane serving the u[k±1] streams *)
  center : int;  (** plane serving the centred u stream (residual) *)
  g : int;       (** h²·f *)
  mask : int;
  unew : int;
  f : int;
}

let distributed = { sx = 0; sy = 1; sz = 2; center = 6; g = 3; mask = 5; unew = 4; f = 7 }

(** Two planes hold u: exposes read-port contention (4 and 3 streams on a
    dual-ported plane). *)
let packed = { sx = 0; sy = 0; sz = 1; center = 1; g = 3; mask = 5; unew = 4; f = 7 }

(** Planes holding copies of u under a layout, without duplicates. *)
let u_planes l = List.sort_uniq compare [ l.sx; l.sy; l.sz; l.center ]

let u_var plane = Printf.sprintf "u%d" plane

type build = {
  program : Program.t;
  residual_unit : Resource.fu_id;  (** the max unit the while-loop watches *)
  layout : layout;
}

let fail_on_error = Builder.fail_on_error
let mem_to_pad = Builder.mem_to_pad
let pad_to_mem = Builder.pad_to_mem
let als_of_icon = Builder.als_of_icon

(* The sweep pipeline shared by both strategies: reads u copies from
   [src_l] planes, writes the update to [dst] (var [dst_var], one or more
   planes), accumulates the max change.  Returns the residual unit. *)
let build_sweep (p : Params.t) (grid : Grid.t) (l : layout) ~index ~label
    ~(dsts : (int * string) list) : Pipeline.t * Resource.fu_id =
  let off1, offy, offz = Grid.offsets grid in
  let pad = Grid.pad grid in
  let pl = Pipeline.empty ~label index in
  let pl = Pipeline.with_vector_length pl (Grid.points grid) in
  let t0, pl = fail_on_error (Pipeline.place_als p pl ~kind:Als.Triplet ~pos:(Geometry.point 16 2) ()) in
  let t1, pl = fail_on_error (Pipeline.place_als p pl ~kind:Als.Triplet ~pos:(Geometry.point 34 2) ()) in
  let d0, pl = fail_on_error (Pipeline.place_als p pl ~kind:Als.Doublet ~pos:(Geometry.point 52 2) ()) in
  let t2, pl = fail_on_error (Pipeline.place_als p pl ~kind:Als.Triplet ~pos:(Geometry.point 52 14) ()) in
  (* neighbour sums: t0 then t1 chain *)
  let pl = mem_to_pad pl ~plane:l.sx ~var:(u_var l.sx) ~offset:(pad - off1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let pl = mem_to_pad pl ~plane:l.sx ~var:(u_var l.sx) ~offset:(pad + off1) ~icon:t0 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = mem_to_pad pl ~plane:l.sy ~var:(u_var l.sy) ~offset:(pad - offy) ~icon:t0 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = mem_to_pad pl ~plane:l.sy ~var:(u_var l.sy) ~offset:(pad + offy) ~icon:t0 ~pad:(Icon.In_pad (2, Resource.B)) () in
  let pl = Pipeline.set_config pl ~id:t0 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd) in
  let pl = Pipeline.set_config pl ~id:t0 ~slot:1 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd) in
  let pl = Pipeline.set_config pl ~id:t0 ~slot:2 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd) in
  let pl =
    let _, pl =
      Pipeline.add_connection pl
        ~src:(Connection.Pad { icon = t0; pad = Icon.Out_pad 2 })
        ~dst:(Connection.Pad { icon = t1; pad = Icon.In_pad (0, Resource.A) })
        ()
    in
    pl
  in
  let pl = mem_to_pad pl ~plane:l.sz ~var:(u_var l.sz) ~offset:(pad - offz) ~icon:t1 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = mem_to_pad pl ~plane:l.sz ~var:(u_var l.sz) ~offset:(pad + offz) ~icon:t1 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = mem_to_pad pl ~plane:l.g ~var:"g" ~offset:pad ~icon:t1 ~pad:(Icon.In_pad (2, Resource.B)) () in
  let pl = Pipeline.set_config pl ~id:t1 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fadd) in
  let pl = Pipeline.set_config pl ~id:t1 ~slot:1 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fadd) in
  let pl = Pipeline.set_config pl ~id:t1 ~slot:2 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fsub) in
  (* scale by 1/6 and mask *)
  let pl =
    let _, pl =
      Pipeline.add_connection pl
        ~src:(Connection.Pad { icon = t1; pad = Icon.Out_pad 2 })
        ~dst:(Connection.Pad { icon = d0; pad = Icon.In_pad (0, Resource.A) })
        ()
    in
    pl
  in
  let pl = mem_to_pad pl ~plane:l.mask ~var:"mask" ~offset:pad ~icon:d0 ~pad:(Icon.In_pad (1, Resource.B)) () in
  let pl = Pipeline.set_config pl ~id:d0 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant (1.0 /. 6.0)) Opcode.Fmul) in
  let pl = Pipeline.set_config pl ~id:d0 ~slot:1 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fmul) in
  (* write the update; a pass singlet extends the fanout when the update
     must reach several destination planes *)
  let pl =
    match dsts with
    | [ (plane, var) ] -> pad_to_mem pl ~icon:d0 ~pad:(Icon.Out_pad 1) ~plane ~var ~offset:pad ()
    | dsts ->
        let s0, pl =
          fail_on_error
            (Pipeline.place_als p pl ~kind:Als.Singlet ~pos:(Geometry.point 70 2) ())
        in
        let pl =
          let _, pl =
            Pipeline.add_connection pl
              ~src:(Connection.Pad { icon = d0; pad = Icon.Out_pad 1 })
              ~dst:(Connection.Pad { icon = s0; pad = Icon.In_pad (0, Resource.A) })
              ()
          in
          pl
        in
        let pl = Pipeline.set_config pl ~id:s0 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch Opcode.Pass) in
        List.fold_left
          (fun pl (plane, var) ->
            pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane ~var ~offset:pad ())
          pl dsts
  in
  (* residual: max of mask·|unew − u| through a feedback loop.  Masking
     keeps frozen points (boundaries, and halo layers in a multi-node
     slab) out of the convergence measure. *)
  let pl =
    let _, pl =
      Pipeline.add_connection pl
        ~src:(Connection.Pad { icon = d0; pad = Icon.Out_pad 1 })
        ~dst:(Connection.Pad { icon = t2; pad = Icon.In_pad (0, Resource.A) })
        ()
    in
    pl
  in
  let pl = mem_to_pad pl ~plane:l.center ~var:(u_var l.center) ~offset:pad ~icon:t2 ~pad:(Icon.In_pad (0, Resource.B)) () in
  let pl = mem_to_pad pl ~plane:l.mask ~var:"mask" ~offset:pad ~icon:t2 ~pad:(Icon.In_pad (2, Resource.B)) () in
  let pl = Pipeline.set_config pl ~id:t2 ~slot:0 (Fu_config.make ~a:Fu_config.From_switch ~b:Fu_config.From_switch Opcode.Fsub) in
  let pl = Pipeline.set_config pl ~id:t2 ~slot:1 (Fu_config.make ~a:Fu_config.From_chain Opcode.Fabs) in
  let pl = Pipeline.set_config pl ~id:t2 ~slot:2 (Fu_config.make ~a:Fu_config.From_chain ~b:Fu_config.From_switch Opcode.Fmul) in
  let d1, pl =
    fail_on_error (Pipeline.place_als p pl ~kind:Als.Doublet ~bypass:Als.Keep_tail ~pos:(Geometry.point 70 14) ())
  in
  let pl =
    let _, pl =
      Pipeline.add_connection pl
        ~src:(Connection.Pad { icon = t2; pad = Icon.Out_pad 2 })
        ~dst:(Connection.Pad { icon = d1; pad = Icon.In_pad (1, Resource.A) })
        ()
    in
    pl
  in
  let pl = Pipeline.set_config pl ~id:d1 ~slot:1 (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_feedback 1) Opcode.Max) in
  (pl, { Resource.als = als_of_icon pl d1; slot = 1 })

(* The one-shot setup instruction: g = h² · f over the padded field. *)
let build_setup (p : Params.t) (grid : Grid.t) (l : layout) ~index : Pipeline.t =
  let pl = Pipeline.empty ~label:"setup: g = h^2 * f" index in
  let pl = Pipeline.with_vector_length pl (Grid.padded_words grid) in
  let s0, pl =
    fail_on_error (Pipeline.place_als p pl ~kind:Als.Singlet ~pos:(Geometry.point 30 6) ())
  in
  let pl = mem_to_pad pl ~plane:l.f ~var:"f" ~offset:0 ~icon:s0 ~pad:(Icon.In_pad (0, Resource.A)) () in
  let h2 = grid.Grid.h *. grid.Grid.h in
  let pl =
    Pipeline.set_config pl ~id:s0 ~slot:0
      (Fu_config.make ~a:Fu_config.From_switch ~b:(Fu_config.From_constant h2) Opcode.Fmul)
  in
  pad_to_mem pl ~icon:s0 ~pad:(Icon.Out_pad 0) ~plane:l.g ~var:"g" ~offset:0 ()

(* The refresh instruction: copy unew over every plane holding u. *)
let build_refresh (p : Params.t) (grid : Grid.t) (l : layout) ~index : Pipeline.t =
  let pad = Grid.pad grid in
  let pl = Pipeline.empty ~label:"refresh u copies" index in
  let pl = Pipeline.with_vector_length pl (Grid.points grid) in
  List.fold_left
    (fun pl plane ->
      let s, pl =
        fail_on_error
          (Pipeline.place_als p pl ~kind:Als.Singlet
             ~pos:(Geometry.point (12 + (18 * (plane mod 4))) 6)
             ())
      in
      let pl = mem_to_pad pl ~plane:l.unew ~var:"unew" ~offset:pad ~icon:s ~pad:(Icon.In_pad (0, Resource.A)) () in
      let pl = Pipeline.set_config pl ~id:s ~slot:0 (Fu_config.make ~a:Fu_config.From_switch Opcode.Pass) in
      pad_to_mem pl ~icon:s ~pad:(Icon.Out_pad 0) ~plane ~var:(u_var plane) ~offset:pad ())
    pl (u_planes l)

(** Build the complete visual program.

    [`Refresh] (the default) is the three-instruction broadcast form;
    [`Ping_pong] mirrors the sweep between two sets of u copies (planes
    8-11 hold the mirror) and needs no refresh, at the cost of doubling the
    memory footprint and checking convergence every second sweep. *)
let build (kb : Knowledge.t) ?(layout = distributed) ?(strategy = `Refresh)
    (grid : Grid.t) ~tol ~max_iters : build =
  let p = Knowledge.params kb in
  let words = Grid.padded_words grid in
  let prog = Program.empty "jacobi3d" in
  let declare prog (name, plane) =
    match Program.declare prog { Program.name; plane; base = 0; length = words } with
    | Ok prog -> prog
    | Error e -> failwith e
  in
  let base_vars =
    List.map (fun plane -> (u_var plane, plane)) (u_planes layout)
    @ [ ("g", layout.g); ("mask", layout.mask); ("unew", layout.unew); ("f", layout.f) ]
  in
  match strategy with
  | `Refresh ->
      let prog = List.fold_left declare prog base_vars in
      let setup = build_setup p grid layout ~index:1 in
      let sweep, residual_unit =
        build_sweep p grid layout ~index:2 ~label:"jacobi sweep (eq. 1)"
          ~dsts:[ (layout.unew, "unew") ]
      in
      let refresh = build_refresh p grid layout ~index:3 in
      let prog = { prog with Program.pipelines = [ setup; sweep; refresh ] } in
      let prog =
        Program.set_control prog
          [
            Program.Exec 1;
            Program.While
              {
                condition =
                  { Interrupt.unit_watched = residual_unit; relation = Interrupt.Rgt; threshold = tol };
                max_iterations = max_iters;
                body = [ Program.Exec 2; Program.Exec 3 ];
              };
            Program.Halt;
          ]
      in
      let prog = Balance.balance_program kb prog in
      { program = prog; residual_unit; layout }
  | `Ping_pong ->
      (* mirror copies on planes 8..: same geometry as the primary set *)
      let mirror_of =
        let next = ref 8 in
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun plane ->
            Hashtbl.replace tbl plane !next;
            incr next)
          (u_planes layout);
        fun plane -> Hashtbl.find tbl plane
      in
      let mirror =
        {
          layout with
          sx = mirror_of layout.sx;
          sy = mirror_of layout.sy;
          sz = mirror_of layout.sz;
          center = mirror_of layout.center;
        }
      in
      let mirror_vars = List.map (fun plane -> (u_var plane, plane)) (u_planes mirror) in
      let prog = List.fold_left declare prog (base_vars @ mirror_vars) in
      let setup = build_setup p grid layout ~index:1 in
      let dsts_b = List.map (fun plane -> (plane, u_var plane)) (u_planes mirror) in
      let dsts_a = List.map (fun plane -> (plane, u_var plane)) (u_planes layout) in
      let sweep_ab, _ =
        build_sweep p grid layout ~index:2 ~label:"jacobi sweep A->B" ~dsts:dsts_b
      in
      let sweep_ba, residual_unit =
        build_sweep p grid mirror ~index:3 ~label:"jacobi sweep B->A" ~dsts:dsts_a
      in
      let prog = { prog with Program.pipelines = [ setup; sweep_ab; sweep_ba ] } in
      let prog =
        Program.set_control prog
          [
            Program.Exec 1;
            Program.While
              {
                condition =
                  { Interrupt.unit_watched = residual_unit; relation = Interrupt.Rgt; threshold = tol };
                max_iterations = max_iters;
                body = [ Program.Exec 2; Program.Exec 3 ];
              };
            Program.Halt;
          ]
      in
      let prog = Balance.balance_program kb prog in
      { program = prog; residual_unit; layout }

(** Load a problem's fields into a node per the build's layout (u starts at
    zero everywhere, which the padded fields already are). *)
let load (node : Nsc_sim.Node.t) (b : build) (prob : Poisson.problem) =
  Nsc_sim.Node.load_array node ~plane:b.layout.f ~base:0 prob.Poisson.f;
  Nsc_sim.Node.load_array node ~plane:b.layout.mask ~base:0 prob.Poisson.mask

(** Read the computed solution back out of the node. *)
let solution (node : Nsc_sim.Node.t) (b : build) (grid : Grid.t) =
  Nsc_sim.Node.dump_array node ~plane:b.layout.unew ~base:0 ~len:(Grid.padded_words grid)

type outcome = {
  u : float array;             (** padded solution field *)
  sweeps : int;                (** Jacobi sweeps executed *)
  final_change : float;        (** last max |unew - u| captured *)
  stats : Nsc_sim.Sequencer.stats;
}

(** Compile and execute the Jacobi program for [prob] on a fresh node.
    [engine] selects the simulator path (specialised fused-kernel by
    default; [`Kernel_v2] the previous float-array kernel, [`Plan] the
    plan interpreter, [`Legacy] the per-dispatch seed path, all kept for
    benchmarking — the four are bit-identical). *)
let solve (kb : Knowledge.t) ?layout ?strategy ?(engine = `Kernel) ?plan_cache
    ?kernel_cache ?budget (prob : Poisson.problem) ~tol ~max_iters :
    (outcome, string) result =
  let b = build kb ?layout ?strategy prob.Poisson.grid ~tol ~max_iters in
  match Nsc_microcode.Codegen.compile kb b.program with
  | Error ds ->
      Error
        (String.concat "; " (List.map Diagnostic.to_string (Diagnostic.errors ds)))
  | Ok compiled -> (
      let node = Nsc_sim.Node.create (Knowledge.params kb) in
      load node b prob;
      match
        Nsc_sim.Sequencer.run node ~engine ?plan_cache ?kernel_cache ?budget
          compiled
      with
      | Error e -> Error e
      | Ok outcome ->
          let stats = outcome.Nsc_sim.Sequencer.stats in
          let sweeps =
            (* instructions 2 and 3 alternate inside the loop after setup *)
            match Option.value ~default:`Refresh strategy with
            | `Refresh -> (stats.Nsc_sim.Sequencer.instructions_executed - 1) / 2
            | `Ping_pong -> stats.Nsc_sim.Sequencer.instructions_executed - 1
          in
          let final_change =
            List.assoc_opt b.residual_unit outcome.Nsc_sim.Sequencer.last_values
            |> Option.value ~default:Float.nan
          in
          (* the latest field: the refresh strategy leaves it in unew; the
             ping-pong strategy's final B->A sweep leaves it in the primary
             u copies *)
          let result_plane =
            match Option.value ~default:`Refresh strategy with
            | `Refresh -> b.layout.unew
            | `Ping_pong -> b.layout.center
          in
          Ok
            {
              u =
                Nsc_sim.Node.dump_array node ~plane:result_plane ~base:0
                  ~len:(Grid.padded_words prob.Poisson.grid);
              sweeps;
              final_change;
              stats;
            })

(** Compile once and execute the Jacobi program for K problems on K fresh
    nodes through the lock-step batched sequencer ({!Nsc_sim.Sequencer.run_batch}):
    one decode pass, one compiled plan and kernel per instruction shared
    by every replica, clean replicas fanned across [domains] worker
    domains.  Replicas converge independently — each watches its own
    residual — so the problems may take different sweep counts.  All
    problems must share one grid shape (the program is built from
    [probs.(0)]'s grid); [outcomes.(r)] is bit-identical to [solve] of
    [probs.(r)] with the default engine. *)
let solve_batch (kb : Knowledge.t) ?layout ?(domains = 1) ?budget
    (probs : Poisson.problem array) ~tol ~max_iters :
    (outcome array, string) result =
  if Array.length probs = 0 then Ok [||]
  else begin
    let grid = probs.(0).Poisson.grid in
    if Array.exists (fun (p : Poisson.problem) -> p.Poisson.grid <> grid) probs
    then Error "solve_batch: all problems must share one grid"
    else
      let b = build kb ?layout ~strategy:`Refresh grid ~tol ~max_iters in
      match Nsc_microcode.Codegen.compile kb b.program with
      | Error ds ->
          Error
            (String.concat "; "
               (List.map Diagnostic.to_string (Diagnostic.errors ds)))
      | Ok compiled -> (
          let nodes =
            Array.map
              (fun prob ->
                let node = Nsc_sim.Node.create (Knowledge.params kb) in
                load node b prob;
                node)
              probs
          in
          match Nsc_sim.Sequencer.run_batch nodes ~domains ?budget compiled with
          | Error e -> Error e
          | Ok outs ->
              Ok
                (Array.mapi
                   (fun r (o : Nsc_sim.Sequencer.outcome) ->
                     let stats = o.Nsc_sim.Sequencer.stats in
                     let sweeps =
                       (stats.Nsc_sim.Sequencer.instructions_executed - 1) / 2
                     in
                     let final_change =
                       List.assoc_opt b.residual_unit
                         o.Nsc_sim.Sequencer.last_values
                       |> Option.value ~default:Float.nan
                     in
                     {
                       u =
                         Nsc_sim.Node.dump_array nodes.(r) ~plane:b.layout.unew
                           ~base:0 ~len:(Grid.padded_words grid);
                       sweeps;
                       final_change;
                       stats;
                     })
                   outs))
  end

(* --- the fault-tolerant solver ------------------------------------------ *)

module Fault = Nsc_fault.Fault

type ft_outcome = {
  outcome : outcome;
  rollbacks : int;        (** checkpoint restores performed *)
  faults_detected : int;  (** parity errors and trapped exceptions seen *)
}

(** Checkpointed Jacobi solve (the [`Refresh] strategy): each sweep runs
    against a checkpoint of the node taken at the last good state, and a
    sweep whose scrub finds bad parity — or whose interrupt stream trapped
    an exception while a fault model is installed — is rolled back and
    redone, up to [max_attempts] times, instead of iterating on poisoned
    data.  With no faults firing this executes the exact instruction
    sequence of {!solve} (same plans, same residual series, same result);
    the checkpoint copies are host-side bookkeeping and cost no simulated
    cycles.

    Under an installed fault model the per-sweep memory-corruption draw
    fires here (the victim word lands in one of the sweep's input or
    output planes); recovery is booked against the whole ledger via
    {!Fault.outstanding}, so run one solver at a time.  Corruption that a
    sweep overwrites with fresh data before the scrub is booked as
    recovered by the rewrite — a parity model detects on access, not on
    the flip itself. *)
let solve_ft (kb : Knowledge.t) ?layout ?(max_attempts = 8) ?budget
    (prob : Poisson.problem) ~tol ~max_iters : (ft_outcome, string) result =
  let b = build kb ?layout ~strategy:`Refresh prob.Poisson.grid ~tol ~max_iters in
  match Nsc_microcode.Codegen.compile kb b.program with
  | Error ds ->
      Error
        (String.concat "; " (List.map Diagnostic.to_string (Diagnostic.errors ds)))
  | Ok compiled -> (
      let node = Nsc_sim.Node.create (Knowledge.params kb) in
      load node b prob;
      let plan_cache = Nsc_sim.Plan.make_cache () in
      let kernel_cache = Nsc_sim.Kernel.make_cache () in
      let c_setup =
        { compiled with Nsc_microcode.Codegen.control = [ Program.Exec 1; Program.Halt ] }
      in
      let c_sweep =
        {
          compiled with
          Nsc_microcode.Codegen.control = [ Program.Exec 2; Program.Exec 3; Program.Halt ];
        }
      in
      (* accumulated run accounting across setup and every sweep attempt
         (redone sweeps included: the machine did that work) *)
      let instructions = ref 0 and cycles = ref 0 and flops = ref 0 in
      let writes = ref 0 and all_events = ref [] in
      let rollbacks = ref 0 and faults_detected = ref 0 in
      let sweeps = ref 0 in
      let accumulate (s : Nsc_sim.Sequencer.stats) =
        instructions := !instructions + s.Nsc_sim.Sequencer.instructions_executed;
        cycles := !cycles + s.Nsc_sim.Sequencer.total_cycles;
        flops := !flops + s.Nsc_sim.Sequencer.total_flops;
        writes := !writes + s.Nsc_sim.Sequencer.total_writes;
        all_events := List.rev_append s.Nsc_sim.Sequencer.events !all_events
      in
      (* one budget token across setup and every sweep: it accumulates
         charged cycles itself, so a cycle ceiling spans the whole solve *)
      let run_step c =
        match
          Nsc_sim.Sequencer.run node ~engine:`Kernel ~plan_cache ~kernel_cache
            ?budget c
        with
        | Error e -> Error e
        | Ok o ->
            accumulate o.Nsc_sim.Sequencer.stats;
            Ok o
      in
      let inject_corruption () =
        match Fault.active () with
        | Some f when Fault.draw_mem_corrupt f ->
            let victims =
              List.sort_uniq compare (b.layout.g :: b.layout.unew :: u_planes b.layout)
            in
            let plane = List.nth victims (Fault.rand f (List.length victims)) in
            let addr = Fault.rand f (Grid.padded_words prob.Poisson.grid) in
            ignore (Memory.corrupt (Nsc_sim.Node.plane node plane) addr);
            Fault.note_mem_corrupt 1
        | _ -> ()
      in
      (* one sweep, redone from the checkpoint until it runs clean *)
      let protected_sweep () =
        let ckpt = Nsc_sim.Checkpoint.capture node in
        let rec attempt a =
          inject_corruption ();
          match run_step c_sweep with
          | Error e -> Error e
          | Ok o ->
              let parity = List.length (Nsc_sim.Checkpoint.scrub node) in
              let traps =
                if Fault.enabled () then
                  Interrupt.trapped_exceptions o.Nsc_sim.Sequencer.stats.Nsc_sim.Sequencer.events
                else 0
              in
              if parity + traps = 0 then begin
                (* anything injected this attempt was overwritten with
                   fresh data before the scrub: recovered by the rewrite *)
                let n = Fault.outstanding () in
                if n > 0 then Fault.note_recovered n;
                Ok o
              end
              else begin
                Fault.note_mem_detected parity;
                faults_detected := !faults_detected + parity + traps;
                if a < max_attempts then begin
                  Nsc_sim.Checkpoint.restore node ckpt;
                  incr rollbacks;
                  let n = Fault.outstanding () in
                  if n > 0 then Fault.note_recovered n;
                  attempt (a + 1)
                end
                else begin
                  let n = Fault.outstanding () in
                  if n > 0 then Fault.note_unrecovered n;
                  Error
                    (Printf.sprintf
                       "sweep still corrupt after %d attempts (%d faults detected)"
                       max_attempts !faults_detected)
                end
              end
        in
        attempt 1
      in
      let residual_of (o : Nsc_sim.Sequencer.outcome) =
        Option.value ~default:Float.nan
          (List.assoc_opt b.residual_unit o.Nsc_sim.Sequencer.last_values)
      in
      (* the sequencer's while-loop semantics, with a checkpoint per body:
         run the body, then continue while the residual exceeds [tol] *)
      let rec sweep_loop i last =
        if max_iters > 0 && i >= max_iters then Ok last
        else
          match protected_sweep () with
          | Error e -> Error e
          | Ok o ->
              incr sweeps;
              let r = residual_of o in
              if (not (Float.is_nan r)) && r > tol then sweep_loop (i + 1) (Some o)
              else Ok (Some o)
      in
      match run_step c_setup with
      | Error e -> Error e
      | Ok _ -> (
          match sweep_loop 0 None with
          | Error e -> Error e
          | Ok last ->
              let final_change =
                match last with Some o -> residual_of o | None -> Float.nan
              in
              Ok
                {
                  outcome =
                    {
                      u =
                        Nsc_sim.Node.dump_array node ~plane:b.layout.unew ~base:0
                          ~len:(Grid.padded_words prob.Poisson.grid);
                      sweeps = !sweeps;
                      final_change;
                      stats =
                        {
                          Nsc_sim.Sequencer.instructions_executed = !instructions;
                          total_cycles = !cycles;
                          total_flops = !flops;
                          total_writes = !writes;
                          events = List.rev !all_events;
                        };
                    };
                  rollbacks = !rollbacks;
                  faults_detected = !faults_detected;
                }))
