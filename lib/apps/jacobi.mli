(** The paper's programming example as an NSC visual program: the point
    Jacobi update for the 3-D Poisson equation with a residual convergence
    check (Equation 1, Figures 2 and 11).

    The program has three instructions:

    + {b setup} — g = h²·f, run once;
    + {b sweep} — unew = mask · (Σ neighbours − g)/6 over the whole grid,
      with the running maximum of |unew − u| accumulated through a
      register-file feedback loop on a min/max unit (the residual check);
    + {b refresh} — copy unew back over the planes holding u.

    Copies of u are spread over several memory planes so each plane serves
    at most two stencil streams — the paper's "maintain multiple copies of
    arrays" answer to the planar memory organisation; the refresh
    instruction is its "relocate them between phases".  A [`Packed] layout
    places more streams per plane to expose the contention cost, and a
    [`Ping_pong] strategy trades the refresh instruction for a second,
    mirrored sweep. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type layout = {
  sx : int;
  sy : int;
  sz : int;
  center : int;
  g : int;
  mask : int;
  unew : int;
  f : int;
}
val distributed : layout
val packed : layout
val u_planes : layout -> int list
val u_var : int -> string
type build = {
  program : Nsc_diagram.Program.t;
  residual_unit : Nsc_arch.Resource.fu_id;
  layout : layout;
}
val fail_on_error : ('a, string) result -> 'a
val mem_to_pad :
  Nsc_diagram.Pipeline.t ->
  plane:Nsc_arch.Resource.plane_id ->
  var:string ->
  offset:int ->
  ?stride:int ->
  icon:Nsc_diagram.Icon.id ->
  pad:Nsc_diagram.Icon.pad -> unit -> Nsc_diagram.Pipeline.t
val pad_to_mem :
  Nsc_diagram.Pipeline.t ->
  icon:Nsc_diagram.Icon.id ->
  pad:Nsc_diagram.Icon.pad ->
  plane:Nsc_arch.Resource.plane_id ->
  var:string -> offset:int -> ?stride:int -> unit -> Nsc_diagram.Pipeline.t
val als_of_icon :
  Nsc_diagram.Pipeline.t -> Nsc_diagram.Icon.id -> Nsc_arch.Resource.als_id
(** Build the complete visual program for Equation 1: setup (g = h²f),
    the sweep with its running-max residual, and — under [`Refresh] —
    the copy-back instruction; [`Ping_pong] mirrors the sweep instead.
    Streams are auto-balanced. *)
val build_sweep :
  Nsc_arch.Params.t ->
  Grid.t ->
  layout ->
  index:int ->
  label:string ->
  dsts:(int * string) list ->
  Nsc_diagram.Pipeline.t * Nsc_arch.Resource.fu_id
val build_setup :
  Nsc_arch.Params.t ->
  Grid.t -> layout -> index:int -> Nsc_diagram.Pipeline.t
val build_refresh :
  Nsc_arch.Params.t ->
  Grid.t -> layout -> index:int -> Nsc_diagram.Pipeline.t
val build :
  Nsc_arch.Knowledge.t ->
  ?layout:layout ->
  ?strategy:[< `Ping_pong | `Refresh > `Refresh ] ->
  Grid.t -> tol:float -> max_iters:int -> build
val load : Nsc_sim.Node.t -> build -> Poisson.problem -> unit
val solution : Nsc_sim.Node.t -> build -> Grid.t -> float array
type outcome = {
  u : float array;
  sweeps : int;
  final_change : float;
  stats : Nsc_sim.Sequencer.stats;
}
(** Compile and execute the program for a problem on a fresh node.
    [engine] selects the simulator path (fused-kernel by default;
    [`Plan] stops at the plan interpreter, [`Legacy] is the per-dispatch
    seed path — both kept for benchmarking, all three bit-identical). *)
val solve :
  Nsc_arch.Knowledge.t ->
  ?layout:layout ->
  ?strategy:[< `Ping_pong | `Refresh > `Refresh ] ->
  ?engine:[ `Kernel | `Kernel_v2 | `Plan | `Legacy ] ->
  ?plan_cache:Nsc_sim.Plan.cache ->
  ?kernel_cache:Nsc_sim.Kernel.cache ->
  ?budget:Nsc_guard.Guard.Budget.t ->
  Poisson.problem ->
  tol:float -> max_iters:int -> (outcome, string) result
(** [plan_cache]/[kernel_cache] let a long-lived caller (the serve
    daemon, a bench loop) reuse compiled plans and kernels across
    solves; fresh per-run caches are used when omitted.  [budget] arms a
    deadline/cancellation token checked at every sweep boundary, which
    unwinds with [Nsc_guard.Guard.Budget.Deadline_exceeded]. *)

(** Compile once, solve K problems on K fresh nodes through the
    lock-step batched sequencer (one shared plan/kernel per instruction;
    clean replicas fan across [domains] worker domains).  Replicas
    converge independently; all problems must share one grid shape.
    [outcomes.(r)] is bit-identical to {!solve} of [probs.(r)]. *)
val solve_batch :
  Nsc_arch.Knowledge.t ->
  ?layout:layout ->
  ?domains:int ->
  ?budget:Nsc_guard.Guard.Budget.t ->
  Poisson.problem array ->
  tol:float -> max_iters:int -> (outcome array, string) result

type ft_outcome = {
  outcome : outcome;
  rollbacks : int;        (** checkpoint restores performed *)
  faults_detected : int;  (** parity errors and trapped exceptions seen *)
}

(** Checkpointed [`Refresh] solve: each sweep runs against a checkpoint of
    the node, and a sweep whose parity scrub or interrupt stream reports
    corruption is rolled back and redone (up to [max_attempts] times per
    sweep).  With no faults firing this executes the exact instruction
    sequence of {!solve}; under an installed {!Nsc_fault.Fault} model the
    per-sweep memory-corruption draw fires here. *)
val solve_ft :
  Nsc_arch.Knowledge.t ->
  ?layout:layout ->
  ?max_attempts:int ->
  ?budget:Nsc_guard.Guard.Budget.t ->
  Poisson.problem ->
  tol:float -> max_iters:int -> (ft_outcome, string) result
