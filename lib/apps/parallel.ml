(** Multi-node Jacobi: slab decomposition over the hypercube.

    The paper quotes the machine-level figures — 64 nodes, 40 GFLOPS — and
    leaves multi-node programming to "techniques similar to those used in
    Poker".  This module supplies the experiment: the global cube is cut
    into z-slabs, one per node, embedded on the hypercube with a Gray code
    so slab neighbours are single-hop neighbours; each iteration every node
    runs its local sweep and refresh, then exchanges one face (n² words)
    with each neighbour through the hyperspace router. *)

open Nsc_arch
open Nsc_sim

type point = {
  nodes : int;
  gflops : float;
  efficiency : float;   (** sustained fraction of linear scaling from 1 node *)
  comm_fraction : float;(** share of machine cycles spent in exchanges *)
  overlap_ratio : float;(** share of exchange cycles hidden behind compute *)
  contention_per_iter : float;  (** serialisation surplus cycles per iteration *)
  cycles_per_iter : float;
}

(* Local slab: n x n x (nz_local + 2 halo layers). *)
let local_grid ~n ~nz_local = Grid.slab ~of_:(Grid.cube n) ~nz:(nz_local + 2)

(* Mask for a slab: physical boundaries in x/y always; the k faces only at
   the machine's ends — interior k faces are halos, frozen locally and
   refreshed by exchange. *)
let slab_mask grid ~first ~last =
  Grid.field_of grid (fun ~i ~j ~k ->
      let phys_x = i = 0 || i = grid.Grid.nx - 1 in
      let phys_y = j = 0 || j = grid.Grid.ny - 1 in
      let halo = k = 0 || k = grid.Grid.nz - 1 in
      (* the machine's physical z walls live on the first and last slabs *)
      let phys_z = (first && k = 1) || (last && k = grid.Grid.nz - 2) in
      if phys_x || phys_y || halo || phys_z then 0.0 else 1.0)

(* One face of the slab (all i, j at layer k), read from a u plane. *)
let read_face node ~plane ~grid ~k =
  let face = Array.make (grid.Grid.nx * grid.Grid.ny) 0.0 in
  Grid.iter grid (fun ~i ~j ~k:kk ->
      if kk = k then
        face.((grid.Grid.nx * j) + i) <-
          Node.read_plane node ~plane ~addr:(Grid.index grid ~i ~j ~k));
  face

(* Base address of layer k within the padded field. *)
let layer_base grid ~k = Grid.index grid ~i:0 ~j:0 ~k

(* The halo messages of one iteration: every rank sends its outermost
   interior layers to the chain neighbours' halo layers (n² words each
   way), Gray-embedded so each transfer is a single hop. *)
let halo_messages machine b grid ~dim ~nodes =
  let face_words = grid.Grid.nx * grid.Grid.ny in
  let plane = b.Jacobi.layout.Jacobi.center in
  List.concat_map
    (fun rank ->
      let node_id = Router.chain_to_node ~dim rank in
      let node = Multinode.node machine node_id in
      let up =
        if rank + 1 < nodes then begin
          let dst = Router.chain_to_node ~dim (rank + 1) in
          (* my last interior layer becomes their k=0 halo *)
          let payload = read_face node ~plane ~grid ~k:(grid.Grid.nz - 2) in
          [ ({ Multinode.src = node_id; dst; words = face_words },
             (payload, plane, layer_base grid ~k:0)) ]
        end
        else []
      in
      let down =
        if rank > 0 then begin
          let dst = Router.chain_to_node ~dim (rank - 1) in
          let payload = read_face node ~plane ~grid ~k:1 in
          [ ({ Multinode.src = node_id; dst; words = face_words },
             (payload, plane, layer_base grid ~k:(grid.Grid.nz - 1))) ]
        end
        else []
      in
      up @ down)
    (List.init nodes (fun r -> r))

(* Replicate the refreshed halo layers into the other u copies locally
   (an on-node plane-to-plane copy, charged as one face write). *)
let replicate_halo machine b grid u_planes =
  Array.iter
    (fun node ->
      List.iter
        (fun k ->
          let face = read_face node ~plane:b.Jacobi.layout.Jacobi.center ~grid ~k in
          List.iter
            (fun plane ->
              if plane <> b.Jacobi.layout.Jacobi.center then
                Node.load_array node ~plane ~base:(layer_base grid ~k) face)
            u_planes)
        [ 0; grid.Grid.nz - 1 ])
    machine.Multinode.nodes

(* Interior share of a sweep's cycles: the slab's nz_local layers all
   sweep, but only the two outermost read a halo layer, so (nz - 2) / nz
   of the sweep can legally overlap an in-flight exchange.  The overlap
   credit only reshapes the cycle accounting — payloads are delivered at
   post time, before any layer reads them, so the numerics are identical
   to the synchronous schedule either way. *)
let interior_credit ~nz_local sweep_cycles =
  if nz_local <= 2 then 0 else sweep_cycles * (nz_local - 2) / nz_local

(** Run [iters] Jacobi iterations of an n x n x (n·P) problem on a
    [dim]-dimensional hypercube (P = 2^dim nodes), returning the scaling
    measurements.  The per-node slab thickness is [n], so this is weak
    scaling: the global problem grows with the machine.  [domains] fans
    the per-node simulation across OCaml domains (results are
    bit-identical to the sequential run).  [overlap] posts each
    iteration's halo exchange asynchronously and completes it only after
    the next sweep, crediting the sweep's interior-layer cycles as
    overlapped compute — machine time per step becomes
    [max (compute, comm)] instead of [compute + comm], with residuals
    and delivered payloads bit-identical to the synchronous schedule. *)
let run_machine ?(domains = 1) ?(overlap = false) (p : Params.t) ~n ~iters ~dim :
    (point * Multinode.t * Jacobi.build * Grid.t, string) result =
  let machine = Multinode.create ~dim p in
  let nodes = Multinode.n_nodes machine in
  (* one persistent plan cache per node: setup runs instruction 1, the
     iteration body instructions 2 and 3 — disjoint, so a single cache
     serves both programmes across all iterations *)
  let caches = Array.init nodes (fun _ -> Plan.make_cache ()) in
  let kcaches = Array.init nodes (fun _ -> Kernel.make_cache ()) in
  let kb = Knowledge.make_exn p in
  let grid = local_grid ~n ~nz_local:n in
  let b = Jacobi.build kb grid ~tol:0.0 ~max_iters:1 in
  match Nsc_microcode.Codegen.compile kb b.Jacobi.program with
  | Error ds ->
      Error
        (String.concat "; "
           (List.map Nsc_checker.Diagnostic.to_string (Nsc_checker.Diagnostic.errors ds)))
  | Ok compiled ->
      let open Nsc_diagram in
      let c_setup =
        { compiled with Nsc_microcode.Codegen.control = [ Program.Exec 1; Program.Halt ] }
      in
      let c_iter =
        {
          compiled with
          Nsc_microcode.Codegen.control = [ Program.Exec 2; Program.Exec 3; Program.Halt ];
        }
      in
      let u_planes = Jacobi.u_planes b.Jacobi.layout in
      (* load per-node problem data: a smooth forcing that spans slabs *)
      let pi = 4.0 *. atan 1.0 in
      let global_nz = n * nodes in
      let hz rank k = float_of_int ((rank * n) + k) /. float_of_int (global_nz - 1) in
      Array.iteri
        (fun node_id node ->
          let rank = Router.node_to_chain ~dim node_id in
          let f =
            Grid.field_of grid (fun ~i ~j ~k ->
                let x = float_of_int i *. grid.Grid.h
                and y = float_of_int j *. grid.Grid.h
                and z = hz rank (k - 1) in
                -3.0 *. pi *. pi *. sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z))
          in
          Node.load_array node ~plane:b.Jacobi.layout.Jacobi.f ~base:0 f;
          Node.load_array node ~plane:b.Jacobi.layout.Jacobi.mask ~base:0
            (slab_mask grid ~first:(rank = 0) ~last:(rank = nodes - 1)))
        machine.Multinode.nodes;
      (* setup phase on every node *)
      Multinode.compute_step ~domains machine (fun i node ->
          match Sequencer.run node ~plan_cache:caches.(i) ~kernel_cache:kcaches.(i) c_setup with
          | Ok o ->
              (o.Sequencer.stats.Sequencer.total_cycles,
               o.Sequencer.stats.Sequencer.total_flops)
          | Error _ -> (0, 0));
      Multinode.reset_counters machine;
      (* iterate: sweep + refresh, then halo exchange — posted in flight
         and completed behind the next sweep when [overlap] is on *)
      let sweep () =
        let before = machine.Multinode.cycles in
        Multinode.compute_step ~domains machine (fun i node ->
            match Sequencer.run node ~plan_cache:caches.(i) ~kernel_cache:kcaches.(i) c_iter with
            | Ok o ->
                (o.Sequencer.stats.Sequencer.total_cycles,
                 o.Sequencer.stats.Sequencer.total_flops)
            | Error _ -> (0, 0));
        machine.Multinode.cycles - before
      in
      let pending = ref None in
      for _ = 1 to iters do
        let sweep_cycles = sweep () in
        (match !pending with
        | Some h ->
            Multinode.exchange_finish
              ~overlapped_cycles:(interior_credit ~nz_local:n sweep_cycles)
              machine h;
            pending := None
        | None -> ());
        if nodes > 1 then begin
          let messages = halo_messages machine b grid ~dim ~nodes in
          if overlap then pending := Some (Multinode.exchange_start machine messages)
          else Multinode.exchange machine messages;
          replicate_halo machine b grid u_planes
        end
      done;
      (* the final exchange has no following sweep to hide behind *)
      (match !pending with
      | Some h -> Multinode.exchange_finish machine h
      | None -> ());
      let cycles = machine.Multinode.cycles in
      let gflops = Multinode.gflops machine in
      Ok
        ( {
            nodes;
            gflops;
            efficiency = 0.0 (* filled in by [scaling] relative to 1 node *);
            comm_fraction =
              (if cycles = 0 then 0.0
               else float_of_int machine.Multinode.comm_cycles /. float_of_int cycles);
            overlap_ratio = Multinode.overlap_ratio machine;
            contention_per_iter =
              (if iters = 0 then 0.0
               else
                 float_of_int machine.Multinode.contention_cycles
                 /. float_of_int iters);
            cycles_per_iter =
              (if iters = 0 then 0.0
               else float_of_int cycles /. float_of_int iters);
          },
          machine,
          b,
          grid )

(** Run and return just the scaling point. *)
let run ?domains ?overlap (p : Params.t) ~n ~iters ~dim : (point, string) result =
  Result.map (fun (pt, _, _, _) -> pt) (run_machine ?domains ?overlap p ~n ~iters ~dim)

(** Run and assemble the global field (interior z-layers of every node's
    centred u copy, in rank order) — used to verify that the decomposed
    iteration equals the single-machine iteration, and that the
    overlapped schedule is bit-identical to the synchronous one. *)
let run_field ?domains ?overlap (p : Params.t) ~n ~iters ~dim :
    (float array, string) result =
  match run_machine ?domains ?overlap p ~n ~iters ~dim with
  | Error e -> Error e
  | Ok (_, machine, b, grid) ->
      let nodes = Multinode.n_nodes machine in
      let layer_words = grid.Grid.nx * grid.Grid.ny in
      let global = Array.make (layer_words * n * nodes) 0.0 in
      List.iter
        (fun rank ->
          let node = Multinode.node machine (Router.chain_to_node ~dim rank) in
          for k = 1 to n do
            let face = read_face node ~plane:b.Jacobi.layout.Jacobi.center ~grid ~k in
            Array.blit face 0 global (layer_words * ((rank * n) + k - 1)) layer_words
          done)
        (List.init nodes (fun r -> r));
      Ok global

(** Weak-scaling sweep over hypercube dimensions, with efficiency relative
    to the single-node machine.  [overlap] runs every point with the
    asynchronous interleaved exchange. *)
let scaling ?domains ?overlap (p : Params.t) ~n ~iters ~dims : (point list, string) result =
  let rec go acc base = function
    | [] -> Ok (List.rev acc)
    | dim :: rest -> (
        match run ?domains ?overlap p ~n ~iters ~dim with
        | Error e -> Error e
        | Ok pt ->
            let base = match base with None -> Some pt.gflops | s -> s in
            let eff =
              match base with
              | Some g1 when g1 > 0.0 ->
                  pt.gflops /. (g1 *. float_of_int pt.nodes)
              | _ -> 0.0
            in
            go ({ pt with efficiency = eff } :: acc) base rest)
  in
  go [] None dims

(* ------------------------------------------------------------------ *)
(* global convergence: hypercube all-reduce + iterate-to-tolerance     *)
(* ------------------------------------------------------------------ *)

(** Tree all-reduce of one scalar per node (maximum), in [dim] stages of
    single-word nearest-neighbour exchanges — the standard hypercube
    recursive doubling.  Returns the global maximum and charges the
    machine the router time of the longest stage chain. *)
let allreduce_max (machine : Multinode.t) (values : float array) : float =
  let dim = machine.Multinode.dim in
  let v = Array.copy values in
  let total_cycles = ref 0 in
  for bit = 0 to dim - 1 do
    (* every node exchanges one word with its partner across [bit]; the
       stage costs one single-word transfer (all pairs in parallel) *)
    let next = Array.copy v in
    for id = 0 to Array.length v - 1 do
      let partner = id lxor (1 lsl bit) in
      next.(id) <- Float.max v.(id) v.(partner)
    done;
    Array.blit next 0 v 0 (Array.length v);
    if dim > 0 then
      total_cycles :=
        !total_cycles
        + Router.transfer_cycles machine.Multinode.params ~src:0 ~dst:(1 lsl bit)
            ~words:1
  done;
  machine.Multinode.cycles <- machine.Multinode.cycles + !total_cycles;
  machine.Multinode.comm_cycles <- machine.Multinode.comm_cycles + !total_cycles;
  if Array.length v = 0 then 0.0 else v.(0)

type solve_outcome = {
  iterations : int;
  final_residual : float;
  point : point;
}

(** Iterate the slab-decomposed Jacobi to global convergence: every
    iteration runs the local sweep and refresh on each node, exchanges
    halos, all-reduces the per-node residual maxima over the hypercube,
    and stops when the global maximum change falls to [tol]. *)
let solve ?(domains = 1) (p : Params.t) ~n ~tol ~max_iters ~dim :
    (solve_outcome, string) result =
  let machine = Multinode.create ~dim p in
  let nodes = Multinode.n_nodes machine in
  let caches = Array.init nodes (fun _ -> Plan.make_cache ()) in
  let kcaches = Array.init nodes (fun _ -> Kernel.make_cache ()) in
  let kb = Knowledge.make_exn p in
  let grid = local_grid ~n ~nz_local:n in
  let b = Jacobi.build kb grid ~tol:0.0 ~max_iters:1 in
  match Nsc_microcode.Codegen.compile kb b.Jacobi.program with
  | Error ds ->
      Error
        (String.concat "; "
           (List.map Nsc_checker.Diagnostic.to_string (Nsc_checker.Diagnostic.errors ds)))
  | Ok compiled ->
      let open Nsc_diagram in
      let c_setup =
        { compiled with Nsc_microcode.Codegen.control = [ Program.Exec 1; Program.Halt ] }
      in
      let c_iter =
        {
          compiled with
          Nsc_microcode.Codegen.control = [ Program.Exec 2; Program.Exec 3; Program.Halt ];
        }
      in
      let u_planes = Jacobi.u_planes b.Jacobi.layout in
      let pi = 4.0 *. atan 1.0 in
      let global_nz = n * nodes in
      let hz rank k = float_of_int ((rank * n) + k) /. float_of_int (global_nz - 1) in
      Array.iteri
        (fun node_id node ->
          let rank = Router.node_to_chain ~dim node_id in
          let f =
            Grid.field_of grid (fun ~i ~j ~k ->
                let x = float_of_int i *. grid.Grid.h
                and y = float_of_int j *. grid.Grid.h
                and z = hz rank (k - 1) in
                -3.0 *. pi *. pi *. sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z))
          in
          Node.load_array node ~plane:b.Jacobi.layout.Jacobi.f ~base:0 f;
          Node.load_array node ~plane:b.Jacobi.layout.Jacobi.mask ~base:0
            (slab_mask grid ~first:(rank = 0) ~last:(rank = nodes - 1)))
        machine.Multinode.nodes;
      Multinode.compute_step ~domains machine (fun i node ->
          match Sequencer.run node ~plan_cache:caches.(i) ~kernel_cache:kcaches.(i) c_setup with
          | Ok o ->
              (o.Sequencer.stats.Sequencer.total_cycles,
               o.Sequencer.stats.Sequencer.total_flops)
          | Error _ -> (0, 0));
      Multinode.reset_counters machine;
      let halo_exchange () =
        if nodes > 1 then begin
          Multinode.exchange machine (halo_messages machine b grid ~dim ~nodes);
          replicate_halo machine b grid u_planes
        end
      in
      let residuals = Array.make nodes 0.0 in
      let iterations = ref 0 in
      let global = ref Float.infinity in
      while !iterations < max_iters && !global > tol do
        (* one local iteration per node, collecting the captured residual;
           counters accumulate in node order after the fan-in so a
           domain-parallel run is bit-identical to a sequential one *)
        let per_node =
          Multinode.parallel_iter ~domains machine (fun id node ->
              match Sequencer.run node ~plan_cache:caches.(id) ~kernel_cache:kcaches.(id) c_iter with
              | Ok o ->
                  let st = o.Sequencer.stats in
                  ( st.Sequencer.total_cycles,
                    st.Sequencer.total_flops,
                    Option.value ~default:Float.infinity
                      (List.assoc_opt b.Jacobi.residual_unit o.Sequencer.last_values) )
              | Error _ -> (0, 0, Float.infinity))
        in
        let worst = ref 0 in
        Array.iteri
          (fun id (cycles, flops, residual) ->
            if cycles > !worst then worst := cycles;
            machine.Multinode.flops <- machine.Multinode.flops + flops;
            residuals.(id) <- residual)
          per_node;
        machine.Multinode.cycles <- machine.Multinode.cycles + !worst;
        halo_exchange ();
        global := allreduce_max machine residuals;
        incr iterations
      done;
      let cycles = machine.Multinode.cycles in
      Ok
        {
          iterations = !iterations;
          final_residual = !global;
          point =
            {
              nodes;
              gflops = Multinode.gflops machine;
              efficiency = 0.0;
              comm_fraction =
                (if cycles = 0 then 0.0
                 else
                   float_of_int machine.Multinode.comm_cycles /. float_of_int cycles);
              overlap_ratio = Multinode.overlap_ratio machine;
              contention_per_iter =
                float_of_int machine.Multinode.contention_cycles
                /. float_of_int (max 1 !iterations);
              cycles_per_iter =
                float_of_int cycles /. float_of_int (max 1 !iterations);
            };
        }
