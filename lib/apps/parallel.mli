(** Multi-node Jacobi: slab decomposition over the hypercube.

    The paper quotes the machine-level figures — 64 nodes, 40 GFLOPS — and
    leaves multi-node programming to "techniques similar to those used in
    Poker".  This module supplies the experiment: the global cube is cut
    into z-slabs, one per node, embedded on the hypercube with a Gray code
    so slab neighbours are single-hop neighbours; each iteration every node
    runs its local sweep and refresh, then exchanges one face (n² words)
    with each neighbour through the hyperspace router. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type point = {
  nodes : int;
  gflops : float;
  efficiency : float;
  comm_fraction : float;
  overlap_ratio : float;
  contention_per_iter : float;
  cycles_per_iter : float;
}
val local_grid : n:int -> nz_local:int -> Grid.t
val slab_mask : Grid.t -> first:bool -> last:bool -> float array
val read_face :
  Nsc_sim.Node.t -> plane:int -> grid:Grid.t -> k:int -> float array
val layer_base : Grid.t -> k:int -> int
(** Interior share of a sweep's cycles — the portion that can legally
    overlap an in-flight halo exchange ((nz - 2) / nz of the slab's
    layers read no halo). *)
val interior_credit : nz_local:int -> int -> int
(** [domains] (on every runner below) fans per-node simulation across
    OCaml domains; results are bit-identical to the sequential run.
    [overlap] posts each iteration's halo exchange asynchronously and
    completes it behind the next sweep's interior layers — machine time
    per step becomes [max (compute, comm)] — with residuals and
    delivered payloads bit-identical to the synchronous schedule. *)
val run_machine :
  ?domains:int ->
  ?overlap:bool ->
  Nsc_arch.Params.t ->
  n:int ->
  iters:int ->
  dim:int ->
  (point * Nsc_sim.Multinode.t * Jacobi.build * Grid.t,
   string)
  result
(** Fixed-iteration weak-scaling run; returns the scaling point. *)
val run :
  ?domains:int ->
  ?overlap:bool ->
  Nsc_arch.Params.t ->
  n:int -> iters:int -> dim:int -> (point, string) result
(** Like {!run} but returns the assembled global field, for verifying
    the decomposition against a single-machine iteration (and the
    overlapped schedule against the synchronous one). *)
val run_field :
  ?domains:int ->
  ?overlap:bool ->
  Nsc_arch.Params.t ->
  n:int -> iters:int -> dim:int -> (float array, string) result
(** Weak-scaling sweep over hypercube dimensions, efficiency relative to
    one node. *)
val scaling :
  ?domains:int ->
  ?overlap:bool ->
  Nsc_arch.Params.t ->
  n:int -> iters:int -> dims:int list -> (point list, string) result
(** Hypercube recursive-doubling all-reduce (maximum) of one scalar per
    node; charges the machine the router time of the stage chain. *)
val allreduce_max : Nsc_sim.Multinode.t -> float array -> float
type solve_outcome = {
  iterations : int;
  final_residual : float;
  point : point;
}
(** Iterate to global convergence: local sweeps, halo exchange, and an
    all-reduced residual check per iteration. *)
val solve :
  ?domains:int ->
  Nsc_arch.Params.t ->
  n:int ->
  tol:float -> max_iters:int -> dim:int -> (solve_outcome, string) result
