(** Double-buffered data caches.

    Each node carries 16 double-buffered caches used to stage vector data
    between memory planes and pipelines.  Double buffering means one buffer
    can be filled or drained by DMA while the other feeds a pipeline; a
    buffer swap occurs between instructions. *)

type buffer = Front | Back [@@deriving show { with_path = false }, eq]

let other = function Front -> Back | Back -> Front

(* Observability: staging effectiveness of the double-buffered caches.  A
   pipeline-side read of a word that was written (staged) since the buffer
   was last cleared is a hit; reading a never-staged word returns the
   priming zero — a miss.  Staleness is tracked in per-buffer bitmaps that
   are only maintained while tracing is enabled, so the disabled path costs
   one flag check per access (bulk paths: one per call). *)
let c_reads =
  Nsc_trace.Trace.counter ~name:"cache.reads" ~units:"words"
    ~desc:"pipeline-side words read from cache buffers"

let c_writes =
  Nsc_trace.Trace.counter ~name:"cache.writes" ~units:"words"
    ~desc:"pipeline-side words written to cache buffers"

let c_hits =
  Nsc_trace.Trace.counter ~name:"cache.hits" ~units:"words"
    ~desc:"pipeline-side reads of previously staged words"

let c_misses =
  Nsc_trace.Trace.counter ~name:"cache.misses" ~units:"words"
    ~desc:"pipeline-side reads of never-staged (priming-zero) words"

let c_swaps =
  Nsc_trace.Trace.counter ~name:"cache.swaps" ~units:"swaps"
    ~desc:"double-buffer swaps between pipeline and DMA sides"

(** Dynamic cache state: two word-addressed buffers plus the identity of the
    buffer currently attached to the pipeline side. *)
type t = {
  id : Resource.cache_id;
  words : int;
  front : float array;
  back : float array;
  staged_front : Bytes.t;  (** bitmap of staged words, tracing only *)
  staged_back : Bytes.t;
  mutable pipeline_side : buffer;
}

let make (p : Params.t) id =
  if id < 0 || id >= p.n_caches then invalid_arg "Cache.make: bad cache id";
  let bitmap_bytes = (p.cache_words + 7) / 8 in
  {
    id;
    words = p.cache_words;
    front = Array.make p.cache_words 0.0;
    back = Array.make p.cache_words 0.0;
    staged_front = Bytes.make bitmap_bytes '\000';
    staged_back = Bytes.make bitmap_bytes '\000';
    pipeline_side = Front;
  }

let buf t = function Front -> t.front | Back -> t.back
let staged t = function Front -> t.staged_front | Back -> t.staged_back

let mark_staged bm addr =
  let i = addr lsr 3 and bit = addr land 7 in
  Bytes.set bm i (Char.chr (Char.code (Bytes.get bm i) lor (1 lsl bit)))

let is_staged bm addr =
  Char.code (Bytes.get bm (addr lsr 3)) land (1 lsl (addr land 7)) <> 0

let check_addr t addr =
  if addr < 0 || addr >= t.words then
    invalid_arg
      (Printf.sprintf "Cache %d: address %d outside buffer of %d words" t.id addr t.words)

(** Pipeline-side access (the buffer currently wired into the datapath). *)
let read_pipeline t addr =
  check_addr t addr;
  if Nsc_trace.Trace.enabled () then begin
    Nsc_trace.Trace.add c_reads 1;
    if is_staged (staged t t.pipeline_side) addr then Nsc_trace.Trace.add c_hits 1
    else Nsc_trace.Trace.add c_misses 1
  end;
  (buf t t.pipeline_side).(addr)

let write_pipeline t addr v =
  check_addr t addr;
  if Nsc_trace.Trace.enabled () then begin
    Nsc_trace.Trace.add c_writes 1;
    mark_staged (staged t t.pipeline_side) addr
  end;
  (buf t t.pipeline_side).(addr) <- v

(** DMA-side access (the buffer being staged behind the pipeline's back). *)
let read_dma t addr =
  check_addr t addr;
  (buf t (other t.pipeline_side)).(addr)

let write_dma t addr v =
  check_addr t addr;
  if Nsc_trace.Trace.enabled () then mark_staged (staged t (other t.pipeline_side)) addr;
  (buf t (other t.pipeline_side)).(addr) <- v

(* --- bulk pipeline-side paths ------------------------------------------ *)

(* One bounds check per strided run; the extremes are the endpoints. *)
let check_strided t ~base ~stride ~count =
  if count > 0 then begin
    check_addr t base;
    check_addr t (base + (stride * (count - 1)))
  end

(** Bulk strided read from the pipeline-side buffer: one bounds check for
    the whole run instead of one per word. *)
let read_pipeline_strided t ~base ~stride ~count =
  check_strided t ~base ~stride ~count;
  if count <= 0 then [||]
  else begin
    (if Nsc_trace.Trace.enabled () then begin
       Nsc_trace.Trace.add c_reads count;
       let bm = staged t t.pipeline_side in
       let hits = ref 0 in
       for i = 0 to count - 1 do
         if is_staged bm (base + (i * stride)) then incr hits
       done;
       Nsc_trace.Trace.add c_hits !hits;
       Nsc_trace.Trace.add c_misses (count - !hits)
     end);
    let b = buf t t.pipeline_side in
    Array.init count (fun i -> b.(base + (i * stride)))
  end

(** Bulk strided write to the pipeline-side buffer. *)
let write_pipeline_strided t ~base ~stride (xs : float array) =
  check_strided t ~base ~stride ~count:(Array.length xs);
  (if Nsc_trace.Trace.enabled () then begin
     Nsc_trace.Trace.add c_writes (Array.length xs);
     let bm = staged t t.pipeline_side in
     Array.iteri (fun i _ -> mark_staged bm (base + (i * stride))) xs
   end);
  let b = buf t t.pipeline_side in
  Array.iteri (fun i v -> b.(base + (i * stride)) <- v) xs

(** Bulk strided read from the pipeline-side buffer directly into [dst]
    at [pos]: {!read_pipeline_strided} without the intermediate array.
    Every element of the destination range is written. *)
let read_pipeline_strided_into t ~base ~stride ~count (dst : Memory.vec) ~pos =
  check_strided t ~base ~stride ~count;
  Memory.check_vec_range dst ~pos ~count "Cache.read_pipeline_strided_into";
  if count > 0 then begin
    (if Nsc_trace.Trace.enabled () then begin
       Nsc_trace.Trace.add c_reads count;
       let bm = staged t t.pipeline_side in
       let hits = ref 0 in
       for i = 0 to count - 1 do
         if is_staged bm (base + (i * stride)) then incr hits
       done;
       Nsc_trace.Trace.add c_hits !hits;
       Nsc_trace.Trace.add c_misses (count - !hits)
     end);
    let b = buf t t.pipeline_side in
    for i = 0 to count - 1 do
      Bigarray.Array1.unsafe_set dst (pos + i) (Array.unsafe_get b (base + (i * stride)))
    done
  end

(** Bulk strided write of [count] words taken from [src] at [pos] to the
    pipeline-side buffer. *)
let write_pipeline_strided_from t ~base ~stride (src : Memory.vec) ~pos ~count =
  check_strided t ~base ~stride ~count;
  Memory.check_vec_range src ~pos ~count "Cache.write_pipeline_strided_from";
  if count > 0 then begin
    (if Nsc_trace.Trace.enabled () then begin
       Nsc_trace.Trace.add c_writes count;
       let bm = staged t t.pipeline_side in
       for i = 0 to count - 1 do
         mark_staged bm (base + (i * stride))
       done
     end);
    let b = buf t t.pipeline_side in
    for i = 0 to count - 1 do
      Array.unsafe_set b (base + (i * stride)) (Bigarray.Array1.unsafe_get src (pos + i))
    done
  end

(** Swap buffers between instructions. *)
let swap t =
  Nsc_trace.Trace.add c_swaps 1;
  t.pipeline_side <- other t.pipeline_side

let clear t =
  Array.fill t.front 0 t.words 0.0;
  Array.fill t.back 0 t.words 0.0;
  Bytes.fill t.staged_front 0 (Bytes.length t.staged_front) '\000';
  Bytes.fill t.staged_back 0 (Bytes.length t.staged_back) '\000';
  t.pipeline_side <- Front

(* --- snapshots ----------------------------------------------------------- *)

(** A deep copy of both buffers, staging bitmaps and the pipeline side,
    taken by the checkpoint layer.  Geometry-stamped via the buffer
    length so a restore into a different cache shape is rejected. *)
type snapshot = {
  s_front : float array;
  s_back : float array;
  s_staged_front : Bytes.t;
  s_staged_back : Bytes.t;
  s_side : buffer;
}

let snapshot t =
  {
    s_front = Array.copy t.front;
    s_back = Array.copy t.back;
    s_staged_front = Bytes.copy t.staged_front;
    s_staged_back = Bytes.copy t.staged_back;
    s_side = t.pipeline_side;
  }

let restore t snap =
  if Array.length snap.s_front <> t.words then
    invalid_arg "Cache.restore: snapshot geometry does not match cache";
  Array.blit snap.s_front 0 t.front 0 t.words;
  Array.blit snap.s_back 0 t.back 0 t.words;
  Bytes.blit snap.s_staged_front 0 t.staged_front 0 (Bytes.length t.staged_front);
  Bytes.blit snap.s_staged_back 0 t.staged_back 0 (Bytes.length t.staged_back);
  t.pipeline_side <- snap.s_side
