(** Double-buffered data caches.

    Each node carries 16 double-buffered caches used to stage vector data
    between memory planes and pipelines.  Double buffering means one buffer
    can be filled or drained by DMA while the other feeds a pipeline; a
    buffer swap occurs between instructions. *)

type buffer = Front | Back [@@deriving show { with_path = false }, eq]

let other = function Front -> Back | Back -> Front

(** Dynamic cache state: two word-addressed buffers plus the identity of the
    buffer currently attached to the pipeline side. *)
type t = {
  id : Resource.cache_id;
  words : int;
  front : float array;
  back : float array;
  mutable pipeline_side : buffer;
}

let make (p : Params.t) id =
  if id < 0 || id >= p.n_caches then invalid_arg "Cache.make: bad cache id";
  {
    id;
    words = p.cache_words;
    front = Array.make p.cache_words 0.0;
    back = Array.make p.cache_words 0.0;
    pipeline_side = Front;
  }

let buf t = function Front -> t.front | Back -> t.back

let check_addr t addr =
  if addr < 0 || addr >= t.words then
    invalid_arg
      (Printf.sprintf "Cache %d: address %d outside buffer of %d words" t.id addr t.words)

(** Pipeline-side access (the buffer currently wired into the datapath). *)
let read_pipeline t addr =
  check_addr t addr;
  (buf t t.pipeline_side).(addr)

let write_pipeline t addr v =
  check_addr t addr;
  (buf t t.pipeline_side).(addr) <- v

(** DMA-side access (the buffer being staged behind the pipeline's back). *)
let read_dma t addr =
  check_addr t addr;
  (buf t (other t.pipeline_side)).(addr)

let write_dma t addr v =
  check_addr t addr;
  (buf t (other t.pipeline_side)).(addr) <- v

(* --- bulk pipeline-side paths ------------------------------------------ *)

(* One bounds check per strided run; the extremes are the endpoints. *)
let check_strided t ~base ~stride ~count =
  if count > 0 then begin
    check_addr t base;
    check_addr t (base + (stride * (count - 1)))
  end

(** Bulk strided read from the pipeline-side buffer: one bounds check for
    the whole run instead of one per word. *)
let read_pipeline_strided t ~base ~stride ~count =
  check_strided t ~base ~stride ~count;
  if count <= 0 then [||]
  else
    let b = buf t t.pipeline_side in
    Array.init count (fun i -> b.(base + (i * stride)))

(** Bulk strided write to the pipeline-side buffer. *)
let write_pipeline_strided t ~base ~stride (xs : float array) =
  check_strided t ~base ~stride ~count:(Array.length xs);
  let b = buf t t.pipeline_side in
  Array.iteri (fun i v -> b.(base + (i * stride)) <- v) xs

(** Swap buffers between instructions. *)
let swap t = t.pipeline_side <- other t.pipeline_side

let clear t =
  Array.fill t.front 0 t.words 0.0;
  Array.fill t.back 0 t.words 0.0;
  t.pipeline_side <- Front
