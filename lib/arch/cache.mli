(** Double-buffered data caches.

    Each node carries 16 double-buffered caches used to stage vector data
    between memory planes and pipelines.  Double buffering means one buffer
    can be filled or drained by DMA while the other feeds a pipeline; a
    buffer swap occurs between instructions. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type buffer = Front | Back
val pp_buffer :
  Format.formatter ->
  buffer -> unit
val show_buffer : buffer -> string
val equal_buffer : buffer -> buffer -> bool
val other : buffer -> buffer
type t = {
  id : Resource.cache_id;
  words : int;
  front : float array;
  back : float array;
  staged_front : Bytes.t;
      (** bitmap of staged words (hit/miss accounting, tracing only) *)
  staged_back : Bytes.t;
  mutable pipeline_side : buffer;
}
val make : Params.t -> Resource.cache_id -> t
val buf : t -> buffer -> float array
val check_addr : t -> int -> unit
val read_pipeline : t -> int -> float
val write_pipeline : t -> int -> float -> unit

(** Bulk strided pipeline-side access: one bounds check per run. *)
val read_pipeline_strided :
  t -> base:int -> stride:int -> count:int -> float array
val write_pipeline_strided :
  t -> base:int -> stride:int -> float array -> unit

(** Bigarray-direct bulk strided pipeline-side access: the same transfers
    without the intermediate array (see {!Memory.vec}). *)
val read_pipeline_strided_into :
  t -> base:int -> stride:int -> count:int -> Memory.vec -> pos:int -> unit
val write_pipeline_strided_from :
  t -> base:int -> stride:int -> Memory.vec -> pos:int -> count:int -> unit
val read_dma : t -> int -> float
val write_dma : t -> int -> float -> unit
val swap : t -> unit
val clear : t -> unit

(** A deep copy of both buffers, staging bitmaps and the pipeline side. *)
type snapshot

val snapshot : t -> snapshot

(** Restore a snapshot; rejects a geometry mismatch with [Invalid_argument]. *)
val restore : t -> snapshot -> unit
