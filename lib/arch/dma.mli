(** DMA controllers.

    Independent DMA controllers associated with each memory plane and cache
    "pump data through the pipelines".  One transfer descriptor corresponds
    to the information the prototype collects in its popup subwindow for a
    cache or memory connection: plane/cache number, starting address (or a
    variable name resolved to one), stride, and element count. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type channel =
    Plane of Resource.plane_id
  | Cache_chan of Resource.cache_id
val pp_channel :
  Format.formatter ->
  channel -> unit
val show_channel : channel -> string
val equal_channel : channel -> channel -> bool
val compare_channel : channel -> channel -> int
type direction = Read | Write
val pp_direction :
  Format.formatter ->
  direction -> unit
val show_direction : direction -> string
val equal_direction : direction -> direction -> bool
val compare_direction : direction -> direction -> int
type transfer = {
  channel : channel;
  direction : direction;
  base : int;
  stride : int;
  count : int;
}
val pp_transfer :
  Format.formatter ->
  transfer -> unit
val show_transfer : transfer -> string
val equal_transfer : transfer -> transfer -> bool
val channel_to_string : channel -> string
val transfer_to_string : transfer -> string
(** Element count of a transfer for a vector of [vector_length] elements
    (a descriptor count of 0 means "the instruction's vector length"). *)
val effective_count : transfer -> vector_length:int -> int

val addresses : transfer -> vector_length:int -> int list
val validate :
  Params.t -> transfer -> vector_length:int -> string list

(** Note an executed read stream of [words] elements on the trace
    counters ([dma.transfers], [dma.read_words]).  No-op unless tracing
    is enabled. *)
val note_read : words:int -> unit

(** Note an executed write stream of [words] elements on the trace
    counters ([dma.transfers], [dma.write_words]).  No-op unless tracing
    is enabled. *)
val note_write : words:int -> unit
