(** The interrupt scheme.

    "An elaborate interrupt scheme is used to signal pipeline completions,
    evaluate conditional expressions, and trap exceptions."  The sequencer
    never inspects data directly: conditional control flow is expressed as a
    predicate over a scalar captured at a pipeline completion interrupt. *)

(** Arithmetic exceptions a functional unit can trap. *)
type exception_kind =
  | Divide_by_zero
  | Overflow
  | Invalid_operand  (** NaN produced or consumed *)
[@@deriving show { with_path = false }, eq, ord]

(** Relations available to condition-evaluation interrupts. *)
type relation = Rlt | Rle | Req | Rne | Rge | Rgt
[@@deriving show { with_path = false }, eq, ord]

let relation_holds r x y =
  match r with
  | Rlt -> x < y
  | Rle -> x <= y
  | Req -> x = y
  | Rne -> x <> y
  | Rge -> x >= y
  | Rgt -> x > y

let relation_to_string = function
  | Rlt -> "<" | Rle -> "<=" | Req -> "=" | Rne -> "<>" | Rge -> ">=" | Rgt -> ">"

(** A condition the sequencer can branch on: compare the scalar captured
    from a named functional unit's final output against a constant. *)
type condition = {
  unit_watched : Resource.fu_id; (** unit whose last output is captured *)
  relation : relation;
  threshold : float;
}
[@@deriving show { with_path = false }, eq]

let condition_to_string c =
  Printf.sprintf "last(%s) %s %g"
    (Resource.fu_to_string c.unit_watched)
    (relation_to_string c.relation)
    c.threshold

(** Interrupt records raised during execution, consumed by the sequencer and
    surfaced to the visual debugger. *)
type event =
  | Pipeline_complete of { instruction : int; cycles : int }
  | Condition_evaluated of { instruction : int; condition : condition; value : float; holds : bool }
  | Exception_trapped of {
      instruction : int;
      unit_ : Resource.fu_id;
      kind : exception_kind;
      element : int;  (** vector-element index at which the fault occurred *)
    }
[@@deriving show { with_path = false }, eq]

let event_to_string = function
  | Pipeline_complete { instruction; cycles } ->
      Printf.sprintf "pipeline %d complete after %d cycles" instruction cycles
  | Condition_evaluated { instruction; condition; value; holds } ->
      Printf.sprintf "instruction %d: %s evaluated with value %g -> %b" instruction
        (condition_to_string condition)
        value holds
  | Exception_trapped { instruction; unit_; kind; element } ->
      Printf.sprintf "instruction %d: %s trapped %s at element %d" instruction
        (Resource.fu_to_string unit_)
        (show_exception_kind kind) element

(** Number of [Exception_trapped] records in an event stream — the
    detection signal the fault-tolerant solvers poll after each sweep. *)
let trapped_exceptions events =
  List.fold_left
    (fun acc e -> match e with Exception_trapped _ -> acc + 1 | _ -> acc)
    0 events

(** Classify an arithmetic result for exception trapping. *)
let classify ~(op_is_divide : bool) ~(divisor : float option) (result : float) :
    exception_kind option =
  match divisor with
  | Some d when op_is_divide && d = 0.0 -> Some Divide_by_zero
  | _ ->
      if Float.is_nan result then Some Invalid_operand
      else if Float.abs result = Float.infinity then Some Overflow
      else None
