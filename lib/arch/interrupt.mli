(** The interrupt scheme.

    "An elaborate interrupt scheme is used to signal pipeline completions,
    evaluate conditional expressions, and trap exceptions."  The sequencer
    never inspects data directly: conditional control flow is expressed as a
    predicate over a scalar captured at a pipeline completion interrupt. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type exception_kind = Divide_by_zero | Overflow | Invalid_operand
val pp_exception_kind :
  Format.formatter ->
  exception_kind -> unit
val show_exception_kind : exception_kind -> string
val equal_exception_kind :
  exception_kind -> exception_kind -> bool
val compare_exception_kind :
  exception_kind -> exception_kind -> int
type relation = Rlt | Rle | Req | Rne | Rge | Rgt
val pp_relation :
  Format.formatter ->
  relation -> unit
val show_relation : relation -> string
val equal_relation : relation -> relation -> bool
val compare_relation : relation -> relation -> int
val relation_holds : relation -> 'a -> 'a -> bool
val relation_to_string : relation -> string
type condition = {
  unit_watched : Resource.fu_id;
  relation : relation;
  threshold : float;
}
val pp_condition :
  Format.formatter ->
  condition -> unit
val show_condition : condition -> string
val equal_condition : condition -> condition -> bool
val condition_to_string : condition -> string
type event =
    Pipeline_complete of { instruction : int; cycles : int; }
  | Condition_evaluated of { instruction : int; condition : condition;
      value : float; holds : bool;
    }
  | Exception_trapped of { instruction : int;
      unit_ : Resource.fu_id; kind : exception_kind; element : int;
    }
val pp_event :
  Format.formatter -> event -> unit
val show_event : event -> string
val equal_event : event -> event -> bool
val event_to_string : event -> string

(** Number of [Exception_trapped] records in an event stream. *)
val trapped_exceptions : event list -> int
val classify :
  op_is_divide:bool -> divisor:float option -> float -> exception_kind option
