(** Memory planes.

    A node's memory is organised into independent planes (16 x 128 MB by
    default).  The planar organisation is the architectural feature the
    paper singles out as hardest on compilers: during one instruction a
    functional unit may stream from or to only a single plane, and multiple
    units working in one plane contend for its ports.

    Addresses are 64-bit-word indices within a plane. *)

(** A half-open word range [lo, hi) within one plane. *)
type extent = { plane : Resource.plane_id; lo : int; hi : int }
[@@deriving show { with_path = false }, eq]

let extent_words e = e.hi - e.lo

let extents_overlap a b =
  a.plane = b.plane && a.lo < b.hi && b.lo < a.hi

(** Validate that an extent lies inside a plane. *)
let validate_extent (p : Params.t) (e : extent) =
  let problems = ref [] in
  let need cond msg = if not cond then problems := msg :: !problems in
  need (e.plane >= 0 && e.plane < p.n_memory_planes)
    (Printf.sprintf "plane %d does not exist (machine has %d planes)" e.plane
       p.n_memory_planes);
  need (e.lo >= 0) "extent start must be non-negative";
  need (e.lo <= e.hi) "extent must be non-descending";
  need (e.hi <= p.memory_plane_words)
    (Printf.sprintf "extent end %d exceeds plane size %d words" e.hi
       p.memory_plane_words);
  List.rev !problems

(** Word range touched by a strided access of [count] elements starting at
    [base] with step [stride] (stride may be negative). *)
let strided_extent ~plane ~base ~stride ~count =
  if count <= 0 then { plane; lo = base; hi = base }
  else
    let last = base + (stride * (count - 1)) in
    { plane; lo = min base last; hi = max base last + 1 }

(* Observability: word traffic through the planes and the resident-page
   footprint.  Counters accumulate only while tracing is enabled; every
   site is gated on one flag check (bulk paths check once per run). *)
let c_reads =
  Nsc_trace.Trace.counter ~name:"mem.reads" ~units:"words"
    ~desc:"words read from memory planes (streams, scalars and host dumps)"

let c_writes =
  Nsc_trace.Trace.counter ~name:"mem.writes" ~units:"words"
    ~desc:"words written to memory planes (streams, scalars and host loads)"

let c_pages =
  Nsc_trace.Trace.counter ~name:"mem.pages_touched" ~units:"pages"
    ~desc:"sparse plane pages materialised by a first write"

(** Backing store for one plane: a paged sparse array so that 128 MB planes
    cost only what is touched.  Reads of untouched words return 0.0.

    [parity_bad] models the plane's per-word parity/ECC check bits: the
    fault model marks a word bad when it flips its stored bits, and a
    rewrite of the word scrubs the mark (fresh data arrives with fresh
    parity).  The set is almost always empty, and every scrub site guards
    on that, so the clean path pays one [Hashtbl.length] per bulk write. *)

(** Unboxed float64 vector: the representation of both the plane pages and
    the kernel executor's buffers, C-layout so page<->buffer transfers are
    single [memcpy] blits (and a later C-stub path can take the data
    pointer directly). *)
type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

module A1 = Bigarray.Array1

let copy_vec (v : vec) : vec =
  let c = A1.create Bigarray.float64 Bigarray.c_layout (A1.dim v) in
  A1.blit v c;
  c

(* placeholder for a lazily-bound page ref: the walk always rebinds before
   the first access (page keys are non-negative, the sentinel key is not) *)
let no_page : vec = A1.create Bigarray.float64 Bigarray.c_layout 0

type store = {
  words : int;
  page_words : int;
  pages : (int, vec) Hashtbl.t;
  parity_bad : (int, unit) Hashtbl.t;
}

let make_store ?(page_words = 4096) words =
  if words <= 0 then invalid_arg "Memory.make_store";
  { words; page_words; pages = Hashtbl.create 64; parity_bad = Hashtbl.create 4 }

let check_addr st addr =
  if addr < 0 || addr >= st.words then
    invalid_arg (Printf.sprintf "Memory: address %d outside plane of %d words" addr st.words)

let read st addr =
  check_addr st addr;
  Nsc_trace.Trace.add c_reads 1;
  match Hashtbl.find_opt st.pages (addr / st.page_words) with
  | None -> 0.0
  | Some page -> A1.get page (addr mod st.page_words)

let page_for st key =
  match Hashtbl.find_opt st.pages key with
  | Some page -> page
  | None ->
      let page = A1.create Bigarray.float64 Bigarray.c_layout st.page_words in
      A1.fill page 0.0;
      Hashtbl.add st.pages key page;
      Nsc_trace.Trace.add c_pages 1;
      page

let write st addr v =
  check_addr st addr;
  Nsc_trace.Trace.add c_writes 1;
  if Hashtbl.length st.parity_bad > 0 then Hashtbl.remove st.parity_bad addr;
  A1.set (page_for st (addr / st.page_words)) (addr mod st.page_words) v

(* --- the parity/ECC fault-detection model ------------------------------- *)

(** Corrupt the word at [addr]: flip one stored mantissa bit and mark the
    word's parity bad.  Returns the corrupted value.  Detection is by
    {!parity_errors} (a scrub pass over the check bits), matching ECC
    hardware that flags on access rather than fixing silently. *)
let corrupt st addr =
  check_addr st addr;
  let page = page_for st (addr / st.page_words) in
  let off = addr mod st.page_words in
  let flipped =
    Int64.float_of_bits
      (Int64.logxor (Int64.bits_of_float (A1.get page off)) 0x0008_0000_0000_0000L)
  in
  A1.set page off flipped;
  Hashtbl.replace st.parity_bad addr ();
  flipped

(** Addresses whose parity is currently bad (corrupted and not yet
    rewritten), sorted.  Empty on a healthy plane. *)
let parity_errors st =
  List.sort compare (Hashtbl.fold (fun addr () acc -> addr :: acc) st.parity_bad [])

(* --- bulk strided paths ------------------------------------------------ *)

(* Bounds of a strided run, checked once instead of once per word; with a
   constant stride the extreme addresses are the two endpoints. *)
let check_strided st ~base ~stride ~count =
  if count > 0 then begin
    check_addr st base;
    check_addr st (base + (stride * (count - 1)))
  end

(** Read [count] words starting at [base] with step [stride] into a fresh
    array, touching each page's hashtable entry once per page crossing
    rather than once per word (unit-stride runs are blitted page by page).
    Reads of untouched words return 0.0. *)
let read_strided st ~base ~stride ~count =
  check_strided st ~base ~stride ~count;
  if count <= 0 then [||]
  else begin
    Nsc_trace.Trace.add c_reads count;
    let out = Array.make count 0.0 in
    if stride = 1 then begin
      let i = ref 0 in
      while !i < count do
        let addr = base + !i in
        let off = addr mod st.page_words in
        let n = min (st.page_words - off) (count - !i) in
        (match Hashtbl.find_opt st.pages (addr / st.page_words) with
        | Some page ->
            for j = 0 to n - 1 do
              Array.unsafe_set out (!i + j) (A1.unsafe_get page (off + j))
            done
        | None -> ());
        i := !i + n
      done
    end
    else begin
      let key = ref min_int and page = ref None in
      for i = 0 to count - 1 do
        let addr = base + (i * stride) in
        let k = addr / st.page_words in
        if k <> !key then begin
          key := k;
          page := Hashtbl.find_opt st.pages k
        end;
        match !page with
        | Some pg -> out.(i) <- A1.get pg (addr mod st.page_words)
        | None -> ()
      done
    end;
    out
  end

(** Write [xs] to the words starting at [base] with step [stride],
    materialising and touching each page once per page crossing (unit
    stride blits whole page spans). *)
let write_strided st ~base ~stride (xs : float array) =
  let count = Array.length xs in
  check_strided st ~base ~stride ~count;
  Nsc_trace.Trace.add c_writes count;
  if Hashtbl.length st.parity_bad > 0 then
    for i = 0 to count - 1 do
      Hashtbl.remove st.parity_bad (base + (i * stride))
    done;
  if stride = 1 then begin
    let i = ref 0 in
    while !i < count do
      let addr = base + !i in
      let off = addr mod st.page_words in
      let n = min (st.page_words - off) (count - !i) in
      let page = page_for st (addr / st.page_words) in
      for j = 0 to n - 1 do
        A1.unsafe_set page (off + j) (Array.unsafe_get xs (!i + j))
      done;
      i := !i + n
    done
  end
  else begin
    let key = ref min_int and page = ref no_page in
    for i = 0 to count - 1 do
      let addr = base + (i * stride) in
      let k = addr / st.page_words in
      if k <> !key then begin
        key := k;
        page := page_for st k
      end;
      A1.set !page (addr mod st.page_words) xs.(i)
    done
  end

(* --- Bigarray-direct strided paths -------------------------------------- *)

let check_vec_range (dst : vec) ~pos ~count who =
  if pos < 0 || count < 0 || pos + count > Bigarray.Array1.dim dst then
    invalid_arg
      (Printf.sprintf "Memory.%s: range [%d, %d) outside vector of %d" who pos
         (pos + count) (Bigarray.Array1.dim dst))

(** Read [count] words from [base] stepping by [stride] directly into
    [dst.{pos} .. dst.{pos + count - 1}] — the same page-batched walk as
    {!read_strided} without the intermediate array.  Every element of the
    destination range is written (untouched words store 0.0), so a reused
    buffer needs no zeroing over the gathered span. *)
let read_strided_into st ~base ~stride ~count (dst : vec) ~pos =
  check_strided st ~base ~stride ~count;
  check_vec_range dst ~pos ~count "read_strided_into";
  if count > 0 then begin
    Nsc_trace.Trace.add c_reads count;
    if stride = 1 then begin
      let i = ref 0 in
      while !i < count do
        let addr = base + !i in
        let off = addr mod st.page_words in
        let n = min (st.page_words - off) (count - !i) in
        (match Hashtbl.find_opt st.pages (addr / st.page_words) with
        | Some page -> A1.blit (A1.sub page off n) (A1.sub dst (pos + !i) n)
        | None -> A1.fill (A1.sub dst (pos + !i) n) 0.0);
        i := !i + n
      done
    end
    else begin
      let key = ref min_int and page = ref None in
      for i = 0 to count - 1 do
        let addr = base + (i * stride) in
        let k = addr / st.page_words in
        if k <> !key then begin
          key := k;
          page := Hashtbl.find_opt st.pages k
        end;
        A1.unsafe_set dst (pos + i)
          (match !page with
          | Some pg -> A1.unsafe_get pg (addr mod st.page_words)
          | None -> 0.0)
      done
    end
  end

(** Write [src.{pos} .. src.{pos + count - 1}] to the words starting at
    [base] with step [stride]: {!write_strided} without the intermediate
    array. *)
let write_strided_from st ~base ~stride (src : vec) ~pos ~count =
  check_strided st ~base ~stride ~count;
  check_vec_range src ~pos ~count "write_strided_from";
  if count > 0 then begin
    Nsc_trace.Trace.add c_writes count;
    if Hashtbl.length st.parity_bad > 0 then
      for i = 0 to count - 1 do
        Hashtbl.remove st.parity_bad (base + (i * stride))
      done;
    if stride = 1 then begin
      let i = ref 0 in
      while !i < count do
        let addr = base + !i in
        let off = addr mod st.page_words in
        let n = min (st.page_words - off) (count - !i) in
        let page = page_for st (addr / st.page_words) in
        A1.blit (A1.sub src (pos + !i) n) (A1.sub page off n);
        i := !i + n
      done
    end
    else begin
      let key = ref min_int and page = ref no_page in
      for i = 0 to count - 1 do
        let addr = base + (i * stride) in
        let k = addr / st.page_words in
        if k <> !key then begin
          key := k;
          page := page_for st k
        end;
        A1.unsafe_set !page (addr mod st.page_words)
          (A1.unsafe_get src (pos + i))
      done
    end
  end

(** Number of pages ever materialised (for footprint reporting).  Each
    page spans [page_words] words: this counts resident pages, not
    distinct written words — see {!touched_words}. *)
let touched_pages st = Hashtbl.length st.pages

(** Resident footprint in words (materialised pages × page size) — an
    upper bound on the number of distinct words ever written. *)
let touched_words st = Hashtbl.length st.pages * st.page_words

let clear st =
  Hashtbl.reset st.pages;
  Hashtbl.reset st.parity_bad

(* --- snapshots ----------------------------------------------------------- *)

(** A deep copy of a plane's contents and parity state, taken by the
    checkpoint layer.  Snapshots are geometry-stamped so a restore into a
    differently-shaped store is rejected rather than silently wrong. *)
type snapshot = {
  s_words : int;
  s_page_words : int;
  s_pages : (int * vec) list;
  s_parity : int list;
}

let snapshot st =
  {
    s_words = st.words;
    s_page_words = st.page_words;
    s_pages = Hashtbl.fold (fun k page acc -> (k, copy_vec page) :: acc) st.pages [];
    s_parity = Hashtbl.fold (fun addr () acc -> addr :: acc) st.parity_bad [];
  }

let restore st snap =
  if snap.s_words <> st.words || snap.s_page_words <> st.page_words then
    invalid_arg "Memory.restore: snapshot geometry does not match store";
  Hashtbl.reset st.pages;
  List.iter (fun (k, page) -> Hashtbl.replace st.pages k (copy_vec page)) snap.s_pages;
  Hashtbl.reset st.parity_bad;
  List.iter (fun addr -> Hashtbl.replace st.parity_bad addr ()) snap.s_parity
