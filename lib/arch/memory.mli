(** Memory planes.

    A node's memory is organised into independent planes (16 x 128 MB by
    default).  The planar organisation is the architectural feature the
    paper singles out as hardest on compilers: during one instruction a
    functional unit may stream from or to only a single plane, and multiple
    units working in one plane contend for its ports.

    Addresses are 64-bit-word indices within a plane. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type extent = { plane : Resource.plane_id; lo : int; hi : int; }
val pp_extent :
  Format.formatter ->
  extent -> unit
val show_extent : extent -> string
val equal_extent : extent -> extent -> bool
val extent_words : extent -> int
val extents_overlap : extent -> extent -> bool
val validate_extent : Params.t -> extent -> string list
val strided_extent :
  plane:Resource.plane_id ->
  base:int -> stride:int -> count:int -> extent
(** Unboxed float64 vector (c_layout): the representation of both plane
    pages and the kernel executor's buffers, so page<->buffer transfers
    are single [memcpy] blits. *)
type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type store = {
  words : int;
  page_words : int;
  pages : (int, vec) Hashtbl.t;
  parity_bad : (int, unit) Hashtbl.t;
      (** per-word parity/ECC check bits: marked by {!corrupt}, scrubbed
          by a rewrite of the word *)
}
val make_store : ?page_words:int -> int -> store
val check_addr : store -> int -> unit
val read : store -> int -> float
val write : store -> int -> float -> unit

(** Corrupt the word at [addr]: flip a stored mantissa bit and mark its
    parity bad; returns the corrupted value. *)
val corrupt : store -> int -> float

(** Addresses whose parity is currently bad, sorted; empty when healthy. *)
val parity_errors : store -> int list

(** Bulk strided read: [count] words from [base] stepping by [stride],
    touching each backing page once per page crossing instead of once per
    word.  Untouched words read as 0.0. *)
val read_strided : store -> base:int -> stride:int -> count:int -> float array

(** Bulk strided write of a whole array, one page lookup per page
    crossing. *)
val write_strided : store -> base:int -> stride:int -> float array -> unit

(** Validate that [pos, pos + count) lies inside the vector; raises
    [Invalid_argument] naming the caller otherwise. *)
val check_vec_range : vec -> pos:int -> count:int -> string -> unit

(** Bulk strided read directly into [dst] at [pos]: {!read_strided}
    without the intermediate array.  Writes every element of the
    destination range (untouched words store 0.0). *)
val read_strided_into :
  store -> base:int -> stride:int -> count:int -> vec -> pos:int -> unit

(** Bulk strided write of [count] words taken from [src] at [pos]:
    {!write_strided} without the intermediate array. *)
val write_strided_from :
  store -> base:int -> stride:int -> vec -> pos:int -> count:int -> unit

(** Pages ever materialised; each spans [page_words] words. *)
val touched_pages : store -> int

(** Resident footprint in words (pages × page size) — an upper bound on
    distinct words ever written. *)
val touched_words : store -> int

val clear : store -> unit

(** A deep copy of a plane's contents and parity state, geometry-stamped. *)
type snapshot

val snapshot : store -> snapshot

(** Restore a snapshot; rejects a geometry mismatch with [Invalid_argument]. *)
val restore : store -> snapshot -> unit
