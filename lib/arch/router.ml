(** The hyperspace router and hypercube topology.

    Communication between nodes is handled by a hyperspace router; nodes are
    arranged in a hypercube.  This module provides the topology algebra —
    neighbours, dimension-ordered routes, Gray-code embeddings of process
    grids — used by the multi-node simulator. *)

type node_id = int [@@deriving show, eq, ord]

(** Number of nodes in a hypercube of dimension [d]. *)
let nodes_of_dim d =
  if d < 0 then invalid_arg "Router.nodes_of_dim";
  1 lsl d

(** Smallest dimension whose hypercube holds at least [n] nodes. *)
let dim_for_nodes n =
  if n <= 0 then invalid_arg "Router.dim_for_nodes";
  let rec go d = if 1 lsl d >= n then d else go (d + 1) in
  go 0

let valid_node ~dim id = id >= 0 && id < nodes_of_dim dim

(** Hypercube neighbours of [id] (one per dimension). *)
let neighbours ~dim id =
  if not (valid_node ~dim id) then invalid_arg "Router.neighbours";
  List.init dim (fun bit -> id lxor (1 lsl bit))

(** Hamming distance = hop count between two nodes. *)
let distance a b =
  let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1)) in
  popcount (a lxor b) 0

(** Dimension-ordered (e-cube) route from [src] to [dst]: the sequence of
    intermediate nodes visited, excluding [src], including [dst]. *)
let route ~dim ~src ~dst =
  if not (valid_node ~dim src && valid_node ~dim dst) then invalid_arg "Router.route";
  let rec go cur bit acc =
    if bit >= dim then List.rev acc
    else
      let want = dst land (1 lsl bit) in
      let have = cur land (1 lsl bit) in
      if want = have then go cur (bit + 1) acc
      else
        let nxt = cur lxor (1 lsl bit) in
        go nxt (bit + 1) (nxt :: acc)
  in
  go src 0 []

(** Standard binary-reflected Gray code and its inverse, used to embed rings
    and grids so that grid neighbours are hypercube neighbours. *)
let gray i = i lxor (i lsr 1)

let gray_inverse g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

(** Embed a 1-D chain of [n] ranks into a hypercube: rank [r] lives on node
    [gray r].  Adjacent ranks are then exactly one hop apart. *)
let chain_to_node ~dim rank =
  if rank < 0 || rank >= nodes_of_dim dim then invalid_arg "Router.chain_to_node";
  gray rank

let node_to_chain ~dim node =
  if not (valid_node ~dim node) then invalid_arg "Router.node_to_chain";
  gray_inverse node

(* Observability: inter-node traffic.  [router.contention_cycles] is
   incremented by the multi-node machine when messages leaving one source
   serialise on its links; the per-transfer counters accumulate here. *)
let c_transfers =
  Nsc_trace.Trace.counter ~name:"router.transfers" ~units:"messages"
    ~desc:"inter-node messages costed by the hyperspace router"

let c_hops =
  Nsc_trace.Trace.counter ~name:"router.hops" ~units:"hops"
    ~desc:"hypercube hops traversed, summed over messages"

let c_words =
  Nsc_trace.Trace.counter ~name:"router.words" ~units:"words"
    ~desc:"payload words carried between nodes"

let c_contention =
  Nsc_trace.Trace.counter ~name:"router.contention_cycles" ~units:"cycles"
    ~desc:"extra cycles from messages serialising on a shared source node"

(** Cycles to move [words] 64-bit words between [src] and [dst]:
    per-hop latency plus bandwidth-limited transmission (cut-through — the
    payload streams behind the header, so distance adds latency only). *)
let transfer_cycles (p : Params.t) ~src ~dst ~words =
  if src = dst then 0
  else begin
    let hops = distance src dst in
    if Nsc_trace.Trace.enabled () then begin
      Nsc_trace.Trace.add c_transfers 1;
      Nsc_trace.Trace.add c_hops hops;
      Nsc_trace.Trace.add c_words words
    end;
    (hops * p.hop_latency)
    + int_of_float (ceil (float_of_int words /. p.link_words_per_cycle))
  end
