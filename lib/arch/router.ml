(** The hyperspace router and hypercube topology.

    Communication between nodes is handled by a hyperspace router; nodes are
    arranged in a hypercube.  This module provides the topology algebra —
    neighbours, dimension-ordered routes, Gray-code embeddings of process
    grids — used by the multi-node simulator. *)

type node_id = int [@@deriving show, eq, ord]

(** Number of nodes in a hypercube of dimension [d]. *)
let nodes_of_dim d =
  if d < 0 then invalid_arg "Router.nodes_of_dim";
  1 lsl d

(** Smallest dimension whose hypercube holds at least [n] nodes. *)
let dim_for_nodes n =
  if n <= 0 then invalid_arg "Router.dim_for_nodes";
  let rec go d = if 1 lsl d >= n then d else go (d + 1) in
  go 0

let valid_node ~dim id = id >= 0 && id < nodes_of_dim dim

(** Hypercube neighbours of [id] (one per dimension). *)
let neighbours ~dim id =
  if not (valid_node ~dim id) then invalid_arg "Router.neighbours";
  List.init dim (fun bit -> id lxor (1 lsl bit))

(** Hamming distance = hop count between two nodes. *)
let distance a b =
  let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1)) in
  popcount (a lxor b) 0

(** Dimension-ordered (e-cube) route from [src] to [dst]: the sequence of
    intermediate nodes visited, excluding [src], including [dst]. *)
let route ~dim ~src ~dst =
  if not (valid_node ~dim src && valid_node ~dim dst) then invalid_arg "Router.route";
  let rec go cur bit acc =
    if bit >= dim then List.rev acc
    else
      let want = dst land (1 lsl bit) in
      let have = cur land (1 lsl bit) in
      if want = have then go cur (bit + 1) acc
      else
        let nxt = cur lxor (1 lsl bit) in
        go nxt (bit + 1) (nxt :: acc)
  in
  go src 0 []

(** Shortest route from [src] to [dst] using only links [link_ok] accepts,
    or [None] if the healthy sub-cube disconnects the pair.  Breadth-first
    over the hypercube, so the result is minimal in hops over the surviving
    links; like {!route}, the path excludes [src] and includes [dst]. *)
let route_avoiding ~dim ~src ~dst ~link_ok =
  if not (valid_node ~dim src && valid_node ~dim dst) then
    invalid_arg "Router.route_avoiding";
  if src = dst then Some []
  else begin
    let n = nodes_of_dim dim in
    let prev = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let cur = Queue.pop q in
      List.iter
        (fun nxt ->
          if (not seen.(nxt)) && link_ok cur nxt then begin
            seen.(nxt) <- true;
            prev.(nxt) <- cur;
            if nxt = dst then found := true else Queue.add nxt q
          end)
        (neighbours ~dim cur)
    done;
    if not !found then None
    else begin
      let rec walk node acc =
        if node = src then acc else walk prev.(node) (node :: acc)
      in
      Some (walk dst [])
    end
  end

(** Whether a route (as returned by {!route}: excluding [src]) uses only
    links [link_ok] accepts. *)
let path_ok ~link_ok ~src path =
  let rec go cur = function
    | [] -> true
    | nxt :: rest -> link_ok cur nxt && go nxt rest
  in
  go src path

(** Fault-aware routing: the dimension-ordered route when it is healthy,
    otherwise the shortest adaptive detour over surviving links.  Returns
    [Some (path, detoured)] — [detoured] marks the adaptive fallback — or
    [None] when the healthy sub-cube disconnects [src] from [dst]. *)
let route_fault_aware ~dim ~src ~dst ~link_ok =
  let ecube = route ~dim ~src ~dst in
  if path_ok ~link_ok ~src ecube then Some (ecube, false)
  else
    match route_avoiding ~dim ~src ~dst ~link_ok with
    | Some path -> Some (path, true)
    | None -> None

(** Standard binary-reflected Gray code and its inverse, used to embed rings
    and grids so that grid neighbours are hypercube neighbours. *)
let gray i = i lxor (i lsr 1)

let gray_inverse g =
  let rec go acc g = if g = 0 then acc else go (acc lxor g) (g lsr 1) in
  go 0 g

(** Embed a 1-D chain of [n] ranks into a hypercube: rank [r] lives on node
    [gray r].  Adjacent ranks are then exactly one hop apart. *)
let chain_to_node ~dim rank =
  if rank < 0 || rank >= nodes_of_dim dim then invalid_arg "Router.chain_to_node";
  gray rank

let node_to_chain ~dim node =
  if not (valid_node ~dim node) then invalid_arg "Router.node_to_chain";
  gray_inverse node

(* Observability: inter-node traffic.  [router.contention_cycles] is
   incremented by the multi-node machine when messages leaving one source
   serialise on its links; the per-transfer counters accumulate here. *)
let c_transfers =
  Nsc_trace.Trace.counter ~name:"router.transfers" ~units:"messages"
    ~desc:"inter-node messages costed by the hyperspace router"

let c_hops =
  Nsc_trace.Trace.counter ~name:"router.hops" ~units:"hops"
    ~desc:"hypercube hops traversed, summed over messages"

let c_words =
  Nsc_trace.Trace.counter ~name:"router.words" ~units:"words"
    ~desc:"payload words carried between nodes"

let c_contention =
  Nsc_trace.Trace.counter ~name:"router.contention_cycles" ~units:"cycles"
    ~desc:"extra cycles from messages serialising on a shared source node"

(** Serialised cost of a communication phase, as [(src, dst, cycles)] per
    routed transfer.  Transfers between distinct pairs proceed in parallel;
    transfers leaving one source node queue on its links, so the phase
    costs the slowest source's serialised total.  Returns
    [(phase_cycles, contention_cycles)], where contention is the queueing
    surplus — each source's total minus its longest single transfer,
    summed over sources.  Self-transfers and zero-cost entries are free.
    Pure: the caller decides whether to book the contention on
    {!c_contention}. *)
let phase_cost (costed : (node_id * node_id * int) list) =
  let per_source = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, c) ->
      if src <> dst && c > 0 then begin
        let sum, longest =
          Option.value ~default:(0, 0) (Hashtbl.find_opt per_source src)
        in
        Hashtbl.replace per_source src (sum + c, max longest c)
      end)
    costed;
  let phase = Hashtbl.fold (fun _ (sum, _) acc -> max sum acc) per_source 0 in
  let contention =
    Hashtbl.fold (fun _ (sum, longest) acc -> acc + (sum - longest)) per_source 0
  in
  (phase, contention)

(** Cycles to move [words] 64-bit words along a route of [hops] hops:
    per-hop latency plus bandwidth-limited transmission (cut-through — the
    payload streams behind the header, so distance adds latency only).
    Used directly by the fault-aware exchange, whose detours can be longer
    than the Hamming distance. *)
let transfer_cycles_hops (p : Params.t) ~hops ~words =
  if hops = 0 then 0
  else begin
    if Nsc_trace.Trace.enabled () then begin
      Nsc_trace.Trace.add c_transfers 1;
      Nsc_trace.Trace.add c_hops hops;
      Nsc_trace.Trace.add c_words words
    end;
    (hops * p.hop_latency)
    + int_of_float (ceil (float_of_int words /. p.link_words_per_cycle))
  end

(** Cycles to move [words] 64-bit words between [src] and [dst] along the
    minimal (dimension-ordered) route. *)
let transfer_cycles (p : Params.t) ~src ~dst ~words =
  transfer_cycles_hops p ~hops:(distance src dst) ~words
