(** The hyperspace router and hypercube topology.

    Communication between nodes is handled by a hyperspace router; nodes are
    arranged in a hypercube.  This module provides the topology algebra —
    neighbours, dimension-ordered routes, Gray-code embeddings of process
    grids — used by the multi-node simulator. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type node_id = int
val pp_node_id :
  Format.formatter ->
  node_id -> unit
val show_node_id : node_id -> string
val equal_node_id : node_id -> node_id -> bool
val compare_node_id : node_id -> node_id -> int
val nodes_of_dim : int -> int
val dim_for_nodes : int -> int
val valid_node : dim:int -> int -> bool
val neighbours : dim:int -> int -> int list
val distance : int -> int -> int
val route : dim:int -> src:int -> dst:int -> int list

(** Shortest route using only links [link_ok] accepts, or [None] if the
    healthy sub-cube disconnects the pair. *)
val route_avoiding :
  dim:int -> src:int -> dst:int -> link_ok:(int -> int -> bool) -> int list option

(** Whether a route (excluding [src]) uses only links [link_ok] accepts. *)
val path_ok : link_ok:(int -> int -> bool) -> src:int -> int list -> bool

(** The dimension-ordered route when healthy, else the shortest adaptive
    detour; [Some (path, detoured)] or [None] when disconnected. *)
val route_fault_aware :
  dim:int -> src:int -> dst:int -> link_ok:(int -> int -> bool) ->
  (int list * bool) option
val gray : int -> int
val gray_inverse : int -> int
val chain_to_node : dim:int -> int -> int
val node_to_chain : dim:int -> int -> int
(** Serialised cost of a phase of [(src, dst, cycles)] transfers:
    distinct pairs proceed in parallel, transfers sharing a source queue
    on its links.  Returns [(phase_cycles, contention_cycles)]; pure —
    the caller books the contention on {!c_contention} if it traces. *)
val phase_cost : (node_id * node_id * int) list -> int * int

val transfer_cycles :
  Params.t -> src:int -> dst:int -> words:int -> int

(** [transfer_cycles] by explicit hop count — for fault-aware detours
    longer than the Hamming distance. *)
val transfer_cycles_hops : Params.t -> hops:int -> words:int -> int

(** Trace counter for serialisation delay on a shared source node;
    bumped by the multi-node exchange when messages leaving one node
    queue on its links. *)
val c_contention : Nsc_trace.Trace.counter
