(** The hyperspace router and hypercube topology.

    Communication between nodes is handled by a hyperspace router; nodes are
    arranged in a hypercube.  This module provides the topology algebra —
    neighbours, dimension-ordered routes, Gray-code embeddings of process
    grids — used by the multi-node simulator. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type node_id = int
val pp_node_id :
  Format.formatter ->
  node_id -> unit
val show_node_id : node_id -> string
val equal_node_id : node_id -> node_id -> bool
val compare_node_id : node_id -> node_id -> int
val nodes_of_dim : int -> int
val dim_for_nodes : int -> int
val valid_node : dim:int -> int -> bool
val neighbours : dim:int -> int -> int list
val distance : int -> int -> int
val route : dim:int -> src:int -> dst:int -> int list
val gray : int -> int
val gray_inverse : int -> int
val chain_to_node : dim:int -> int -> int
val node_to_chain : dim:int -> int -> int
val transfer_cycles :
  Params.t -> src:int -> dst:int -> words:int -> int

(** Trace counter for serialisation delay on a shared source node;
    bumped by the multi-node exchange when messages leaving one node
    queue on its links. *)
val c_contention : Nsc_trace.Trace.counter
