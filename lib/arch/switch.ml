(** The programmable switch network (the diagrams' "FLONET").

    The switch routes data among ALSs, memory planes, caches and shift/delay
    units.  A pipeline configuration is a set of (source, sink) routes; the
    hardware constrains each sink to a single source, bounds the fanout of
    any source, and bounds the total number of simultaneous routes.

    The table built here is consulted by the checker during editing and
    interrogated by the microcode generator to derive switch settings (the
    paper: "the microcode generator would later derive switch settings by
    interrogating the connection tables built by the graphical editor"). *)

type route = { src : Resource.source; snk : Resource.sink }
[@@deriving show { with_path = false }, eq]

(* Observability: how often the network is reprogrammed at run time.  The
   table in this module is built at edit time; the sequencer notes each
   between-instruction reconfiguration here as it dispatches. *)
let c_reconfigs =
  Nsc_trace.Trace.counter ~name:"switch.reconfigurations" ~units:"events"
    ~desc:"switch reprogrammings charged between dispatched instructions"

let c_routes =
  Nsc_trace.Trace.counter ~name:"switch.routes_programmed" ~units:"routes"
    ~desc:"(source, sink) routes loaded across all reconfigurations"

(** Note one run-time reconfiguration installing [routes] routes
    (tracing only; called by the sequencer per dispatched instruction). *)
let note_reconfig ~routes =
  if Nsc_trace.Trace.enabled () then begin
    Nsc_trace.Trace.add c_reconfigs 1;
    Nsc_trace.Trace.add c_routes routes
  end

type error =
  | Sink_already_driven of Resource.sink * Resource.source
      (** the sink is already fed, and by which source *)
  | Fanout_exceeded of Resource.source * int  (** source at its fanout limit *)
  | Capacity_exceeded of int                  (** network already holds n routes *)
  | Self_loop of Resource.fu_id
      (** direct output-to-own-input route; feedback must go through a
          register file, not the switch *)
[@@deriving show { with_path = false }, eq]

let error_to_string = function
  | Sink_already_driven (snk, src) ->
      Printf.sprintf "sink %s is already driven by %s"
        (Resource.sink_to_string snk)
        (Resource.source_to_string src)
  | Fanout_exceeded (src, n) ->
      Printf.sprintf "source %s already feeds %d sinks (fanout limit)"
        (Resource.source_to_string src)
        n
  | Capacity_exceeded n -> Printf.sprintf "switch capacity exhausted at %d routes" n
  | Self_loop fu ->
      Printf.sprintf
        "unit %s cannot feed its own input through the switch; use a register-file \
         feedback loop"
        (Resource.fu_to_string fu)

(** An immutable routing table. *)
type t = { params : Params.t; routes : route list }

let empty params = { params; routes = [] }
let routes t = List.rev t.routes
let route_count t = List.length t.routes

let source_of_sink t snk =
  let rec find = function
    | [] -> None
    | r :: rest -> if Resource.equal_sink r.snk snk then Some r.src else find rest
  in
  find t.routes

let sinks_of_source t src =
  List.filter_map
    (fun r -> if Resource.equal_source r.src src then Some r.snk else None)
    t.routes

let fanout t src = List.length (sinks_of_source t src)

(** [check t route] reports why adding [route] would be illegal, if it would. *)
let check t { src; snk } : error option =
  match source_of_sink t snk with
  | Some existing -> Some (Sink_already_driven (snk, existing))
  | None ->
      if route_count t >= t.params.switch_capacity then
        Some (Capacity_exceeded (route_count t))
      else if fanout t src >= t.params.switch_fanout then
        Some (Fanout_exceeded (src, fanout t src))
      else begin
        match (src, snk) with
        | Resource.Src_fu fu, Resource.Snk_fu (fu', _) when Resource.equal_fu_id fu fu' ->
            Some (Self_loop fu)
        | _ -> None
      end

let add t route : (t, error) result =
  match check t route with
  | Some e -> Error e
  | None -> Ok { t with routes = route :: t.routes }

let remove t route =
  { t with routes = List.filter (fun r -> not (equal_route r route)) t.routes }

(** Memory-plane writers in the table (at most one is legal per plane; the
    checker turns a second into an error the editor surfaces immediately). *)
let plane_writers t plane =
  List.filter_map
    (fun r ->
      match r.snk with
      | Resource.Snk_memory (pl, _) when pl = plane -> Some r.src
      | _ -> None)
    t.routes

(** Memory-plane readers: routes whose source streams from [plane]. *)
let plane_readers t plane =
  List.filter_map
    (fun r ->
      match r.src with
      | Resource.Src_memory (pl, _) when pl = plane -> Some r.snk
      | _ -> None)
    t.routes
