(** The programmable switch network (the diagrams' "FLONET").

    The switch routes data among ALSs, memory planes, caches and
    shift/delay units.  A pipeline configuration is a set of
    (source, sink) routes; the hardware constrains each sink to a single
    source, bounds the fanout of any source, and bounds the total number
    of simultaneous routes.

    The table built here is consulted by the checker during editing and
    interrogated by the microcode generator to derive switch settings. *)

type route = { src : Resource.source; snk : Resource.sink }

val pp_route : Format.formatter -> route -> unit
val show_route : route -> string
val equal_route : route -> route -> bool

(** Note one run-time switch reconfiguration installing [routes] routes
    on the trace counters ([switch.reconfigurations],
    [switch.routes_programmed]).  Called by the sequencer per dispatched
    instruction; no-op unless tracing is enabled. *)
val note_reconfig : routes:int -> unit

(** Reasons a route is illegal. *)
type error =
  | Sink_already_driven of Resource.sink * Resource.source
      (** the sink is already fed, and by which source *)
  | Fanout_exceeded of Resource.source * int
      (** the source is at its fanout limit *)
  | Capacity_exceeded of int  (** the network already holds n routes *)
  | Self_loop of Resource.fu_id
      (** direct output-to-own-input route; feedback must go through a
          register file, not the switch *)

val pp_error : Format.formatter -> error -> unit
val show_error : error -> string
val equal_error : error -> error -> bool
val error_to_string : error -> string

(** An immutable routing table under a machine's limits. *)
type t = { params : Params.t; routes : route list }

val empty : Params.t -> t

(** Routes in insertion order. *)
val routes : t -> route list

val route_count : t -> int

(** The source driving [snk], if routed. *)
val source_of_sink : t -> Resource.sink -> Resource.source option

(** Sinks fed by [src]. *)
val sinks_of_source : t -> Resource.source -> Resource.sink list

val fanout : t -> Resource.source -> int

(** [check t route] reports why adding [route] would be illegal, if it
    would — the question the editor asks before accepting a rubber-band
    gesture. *)
val check : t -> route -> error option

val add : t -> route -> (t, error) result
val remove : t -> route -> t

(** Sources writing into memory plane [plane] (at most one is legal; the
    checker turns a second into an error the editor surfaces
    immediately). *)
val plane_writers : t -> Resource.plane_id -> Resource.source list

(** Sinks fed from plane [plane]'s read streams. *)
val plane_readers : t -> Resource.plane_id -> Resource.sink list
