(** Pipeline timing analysis.

    Vector operands must arrive at a functional unit in step; the NSC aligns
    them by routing the early stream "into a circular queue in a register
    file".  This module computes, for a semantic pipeline, when each
    operand arrives at each engaged unit, which binary units see misaligned
    operands (and by how much), the fill depth of the whole pipeline, and
    the delay corrections that would balance it — used both to report
    {!Diagnostic.Timing} errors and by the compiler to auto-balance
    generated diagrams. *)

open Nsc_arch
open Nsc_diagram

(** Operand arrival time in cycles after stream start; [None] when the
    operand is a constant or a feedback value, which is always available and
    never constrains alignment. *)
type arrival = int option

type unit_timing = {
  fu : Resource.fu_id;
  arrival_a : arrival;  (** raw arrival at port A, before the alignment delay *)
  arrival_b : arrival;
  ready : int;          (** cycle at which the unit's first result emerges *)
  misaligned : int option;
      (** [Some d] when the effective A and B arrivals differ by [d]
          (positive: A arrives later) *)
}

type t = {
  units : unit_timing list;
  depth : int;  (** pipeline fill: the latest [ready] over all units *)
  cyclic : Resource.fu_id list;
      (** units on a combinational cycle through switch or chain routing —
          illegal; feedback must use the register file *)
}

(* Global count of analyses performed.  The plan compiler promises to
   analyse each instruction exactly once per compiled plan; tests and the
   bench harness observe this counter to hold it to that. *)
let analysis_runs = Atomic.make 0

let analysis_count () = Atomic.get analysis_runs

let find_unit (sem : Semantic.t) fu = Semantic.unit_for sem fu

let sd_mode (sem : Semantic.t) sd =
  List.find_map
    (fun (s : Semantic.sd_program) -> if s.Semantic.sd = sd then Some s.Semantic.mode else None)
    sem.Semantic.sds

(** Analyse a semantic pipeline under parameters [p]. *)
let analyse (p : Params.t) (sem : Semantic.t) : t =
  Atomic.incr analysis_runs;
  let lat = p.latencies in
  let memo : (Resource.fu_id, int) Hashtbl.t = Hashtbl.create 16 in
  let visiting : (Resource.fu_id, unit) Hashtbl.t = Hashtbl.create 16 in
  let cyclic = ref [] in
  (* ready time of a switch source *)
  let rec source_time (src : Resource.source) : int =
    match src with
    | Resource.Src_memory _ | Resource.Src_cache _ -> 0
    | Resource.Src_shift_delay sd -> (
        match sd_mode sem sd with
        | Some (Shift_delay.Delay d) -> d
        | Some (Shift_delay.Shift _) | None -> 0)
    | Resource.Src_fu fu -> ready fu
  (* raw arrival at one port of [fu] *)
  and port_arrival (u : Semantic.unit_program) (port : Resource.port) : arrival =
    let binding =
      match port with Resource.A -> u.Semantic.a | Resource.B -> u.Semantic.b
    in
    match binding with
    | Fu_config.From_constant _ | Fu_config.From_feedback _ -> None
    | Fu_config.Unbound -> Some 0
    | Fu_config.From_chain -> (
        let size = Resource.als_size p u.Semantic.fu.Resource.als in
        let bypass =
          match List.assoc_opt u.Semantic.fu.Resource.als sem.Semantic.bypasses with
          | Some b -> b
          | None -> Als.No_bypass
        in
        match Als.chain_predecessor ~size bypass ~slot:u.Semantic.fu.Resource.slot with
        | None -> Some 0
        | Some pred_slot ->
            Some (ready { Resource.als = u.Semantic.fu.Resource.als; slot = pred_slot }))
    | Fu_config.From_switch -> (
        match
          Semantic.source_feeding sem (Resource.Snk_fu (u.Semantic.fu, port))
        with
        | None -> Some 0
        | Some src -> Some (source_time src))
  (* first-result time of unit [fu] *)
  and ready (fu : Resource.fu_id) : int =
    match Hashtbl.find_opt memo fu with
    | Some t -> t
    | None ->
        if Hashtbl.mem visiting fu then begin
          if not (List.exists (Resource.equal_fu_id fu) !cyclic) then
            cyclic := fu :: !cyclic;
          0
        end
        else begin
          Hashtbl.add visiting fu ();
          let t =
            match find_unit sem fu with
            | None -> 0 (* unengaged unit routed as a source: treated as time 0 *)
            | Some u ->
                let eff port delay =
                  match port_arrival u port with
                  | None -> 0
                  | Some t -> t + delay
                in
                let inputs =
                  match Opcode.arity u.Semantic.op with
                  | 1 -> [ eff Resource.A u.Semantic.delay_a ]
                  | _ ->
                      [ eff Resource.A u.Semantic.delay_a;
                        eff Resource.B u.Semantic.delay_b ]
                in
                List.fold_left max 0 inputs + Opcode.latency lat u.Semantic.op
          in
          Hashtbl.remove visiting fu;
          Hashtbl.replace memo fu t;
          t
        end
  in
  let units =
    List.map
      (fun (u : Semantic.unit_program) ->
        let fu = u.Semantic.fu in
        let r = ready fu in
        let arrival_a = port_arrival u Resource.A in
        let arrival_b = port_arrival u Resource.B in
        let misaligned =
          if Opcode.arity u.Semantic.op < 2 then None
          else
            match (arrival_a, arrival_b) with
            | Some ta, Some tb ->
                let ea = ta + u.Semantic.delay_a and eb = tb + u.Semantic.delay_b in
                if ea = eb then None else Some (ea - eb)
            | _ -> None
        in
        { fu; arrival_a; arrival_b; ready = r; misaligned })
      sem.Semantic.units
  in
  let depth = List.fold_left (fun acc u -> max acc u.ready) 0 units in
  { units; depth; cyclic = List.rev !cyclic }

(** Delay corrections that would balance every misaligned unit: for each,
    the port whose operand arrives early and the extra queue depth needed.
    The compiler applies these; the editor offers them as suggestions. *)
let balancing_corrections (t : t) : (Resource.fu_id * Resource.port * int) list =
  List.filter_map
    (fun u ->
      match u.misaligned with
      | None -> None
      | Some d when d > 0 -> Some (u.fu, Resource.B, d) (* A late: delay B more *)
      | Some d -> Some (u.fu, Resource.A, -d))
    t.units

(** Estimated execution cycles of the pipeline on a vector of [vlen]
    elements: fill to depth, then one element per cycle scaled by the worst
    memory-plane port contention (an initiation interval above 1 when a
    plane serves more reader streams than it has ports). *)
let estimated_cycles (p : Params.t) (sem : Semantic.t) (t : t) ~vlen =
  let readers_per_plane = Hashtbl.create 8 in
  List.iter
    (fun ((src : Resource.source), _) ->
      match src with
      | Resource.Src_memory (plane, _) ->
          let n = Option.value ~default:0 (Hashtbl.find_opt readers_per_plane plane) in
          Hashtbl.replace readers_per_plane plane (n + 1)
      | Resource.Src_fu _ | Resource.Src_cache _ | Resource.Src_shift_delay _ -> ())
    (Semantic.read_streams sem);
  let ii =
    Hashtbl.fold
      (fun _ readers acc ->
        let stall = (readers + p.plane_read_ports - 1) / p.plane_read_ports in
        max acc stall)
      readers_per_plane 1
  in
  t.depth + (max 0 (vlen - 1) * ii)
