(** Pipeline timing analysis.

    Vector operands must arrive at a functional unit in step; the NSC aligns
    them by routing the early stream "into a circular queue in a register
    file".  This module computes, for a semantic pipeline, when each
    operand arrives at each engaged unit, which binary units see misaligned
    operands (and by how much), the fill depth of the whole pipeline, and
    the delay corrections that would balance it — used both to report
    {!Diagnostic.Timing} errors and by the compiler to auto-balance
    generated diagrams. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type arrival = int option
type unit_timing = {
  fu : Nsc_arch.Resource.fu_id;
  arrival_a : arrival;
  arrival_b : arrival;
  ready : int;
  misaligned : int option;
}
type t = {
  units : unit_timing list;
  depth : int;
  cyclic : Nsc_arch.Resource.fu_id list;
}
val find_unit :
  Nsc_diagram.Semantic.t ->
  Nsc_arch.Resource.fu_id -> Nsc_diagram.Semantic.unit_program option
val sd_mode :
  Nsc_diagram.Semantic.t ->
  Nsc_arch.Resource.sd_id -> Nsc_arch.Shift_delay.mode option
(** Total number of {!analyse} calls made by this process so far — used to
    assert that plan compilation analyses each instruction exactly once. *)
val analysis_count : unit -> int

(** Operand-arrival analysis of a semantic pipeline: when each stream
    reaches each engaged unit, which binary units see misaligned
    operands, the fill depth, and any combinational cycles. *)
val analyse : Nsc_arch.Params.t -> Nsc_diagram.Semantic.t -> t
(** Delay corrections that would balance every misaligned unit: the port
    whose operand arrives early and the extra queue depth needed. *)
val balancing_corrections :
  t -> (Nsc_arch.Resource.fu_id * Nsc_arch.Resource.port * int) list
(** Execution-cycle estimate: fill to depth, then one element per cycle
    scaled by the worst memory-plane port contention. *)
val estimated_cycles :
  Nsc_arch.Params.t -> Nsc_diagram.Semantic.t -> t -> vlen:int -> int
