(** The visual debugger sketched in Section 6 of the paper.

    "During execution, each new instruction would display the corresponding
    pipeline diagram, annotated to show data values flowing through the
    pipeline.  This could help to pinpoint timing errors, as well as other
    bugs in the program."

    The stepper executes a compiled program instruction by instruction,
    recording the full per-element trace of every engaged unit; frames can
    then be rendered as annotated diagrams at any vector element, and
    trapped exceptions and condition evaluations are attached to the frame
    that raised them. *)

open Nsc_arch
open Nsc_diagram
open Nsc_sim

(** One executed instruction. *)
type frame = {
  ordinal : int;           (** execution order, from 0 *)
  instruction : int;       (** pipeline number *)
  label : string;
  semantic : Semantic.t;
  result : Engine.result;  (** includes the trace *)
}

type run = {
  frames : frame list;  (** in execution order *)
  outcome : Sequencer.outcome;
  program : Program.t;
}

(** Execute [compiled] with full tracing.  [limit] caps the recorded frames
    (long convergence loops would otherwise hold thousands of traces);
    [engine] selects the simulator path — all three are bit-identical, so
    the annotated frames can confirm it on any suspect instruction. *)
let run (node : Node.t) ?(limit = 256) ?(engine = `Kernel)
    (compiled : Nsc_microcode.Codegen.compiled) (program : Program.t) :
    (run, string) result =
  let frames = ref [] in
  let count = ref 0 in
  let on_instruction (sem : Semantic.t) (r : Engine.result) =
    if !count < limit then begin
      (* microcode carries no labels; recover the diagram's label *)
      let label =
        match Program.find_pipeline program sem.Semantic.index with
        | Some pl when sem.Semantic.label = "" -> pl.Pipeline.label
        | _ -> sem.Semantic.label
      in
      frames :=
        {
          ordinal = !count;
          instruction = sem.Semantic.index;
          label;
          semantic = sem;
          result = r;
        }
        :: !frames;
      incr count
    end
  in
  match Sequencer.run node ~record_trace:true ~engine ~on_instruction compiled with
  | Error e -> Error e
  | Ok outcome -> Ok { frames = List.rev !frames; outcome; program }

let frame run ~ordinal = List.find_opt (fun f -> f.ordinal = ordinal) run.frames

(** Values of every engaged unit at vector element [element] of a frame. *)
let values_at (f : frame) ~element : (Resource.fu_id * float) list =
  match f.result.Engine.trace with
  | None -> []
  | Some tr ->
      List.filter_map
        (fun (u : Semantic.unit_program) ->
          Option.map
            (fun v -> (u.Semantic.fu, v))
            (Engine.trace_value tr ~fu:u.Semantic.fu ~element))
        f.semantic.Semantic.units

(** Render the annotated diagram of a frame at one vector element — the
    debugger display the paper proposes.  The diagram is looked up in the
    source program so display geometry is preserved. *)
let render_frame (p : Params.t) (run : run) (f : frame) ~element : string =
  let header =
    Printf.sprintf
      "frame %d: instruction %d%s | element %d of %d | %d cycles | %d flops\n" f.ordinal
      f.instruction
      (if f.label = "" then "" else " (" ^ f.label ^ ")")
      element f.result.Engine.elements f.result.Engine.cycles f.result.Engine.flops
  in
  let body =
    match Program.find_pipeline run.program f.instruction with
    | Some pl ->
        Nsc_editor.Render_ascii.render_pipeline ~values:(values_at f ~element) p pl
    | None -> "(diagram not available)\n"
  in
  let events =
    match f.result.Engine.events with
    | [] -> ""
    | evs ->
        "events:\n"
        ^ String.concat ""
            (List.map (fun e -> "  " ^ Interrupt.event_to_string e ^ "\n") evs)
  in
  header ^ body ^ events

(** Elements at which a unit's value changes sign or becomes non-finite —
    quick anomaly scan used by the exception-hunting workflow. *)
let anomalies (f : frame) : (Resource.fu_id * int * float) list =
  match f.result.Engine.trace with
  | None -> []
  | Some tr ->
      List.concat_map
        (fun (u : Semantic.unit_program) ->
          let rec scan e acc =
            if e >= f.result.Engine.elements then List.rev acc
            else
              match Engine.trace_value tr ~fu:u.Semantic.fu ~element:e with
              | Some v when Float.is_nan v || Float.abs v = Float.infinity ->
                  scan (e + 1) ((u.Semantic.fu, e, v) :: acc)
              | _ -> scan (e + 1) acc
          in
          scan 0 [])
        f.semantic.Semantic.units
