(** The visual debugger sketched in Section 6 of the paper.

    "During execution, each new instruction would display the corresponding
    pipeline diagram, annotated to show data values flowing through the
    pipeline.  This could help to pinpoint timing errors, as well as other
    bugs in the program."

    The stepper executes a compiled program instruction by instruction,
    recording the full per-element trace of every engaged unit; frames can
    then be rendered as annotated diagrams at any vector element, and
    trapped exceptions and condition evaluations are attached to the frame
    that raised them. *)

(* Interface generated from the implementation; detailed
   documentation lives on the items in the .ml file. *)

type frame = {
  ordinal : int;
  instruction : int;
  label : string;
  semantic : Nsc_diagram.Semantic.t;
  result : Nsc_sim.Engine.result;
}
type run = {
  frames : frame list;
  outcome : Nsc_sim.Sequencer.outcome;
  program : Nsc_diagram.Program.t;
}

(** Execute with full tracing; [limit] caps recorded frames and [engine]
    selects the simulator path (all three are bit-identical). *)
val run :
  Nsc_sim.Node.t ->
  ?limit:int ->
  ?engine:[ `Kernel | `Kernel_v2 | `Plan | `Legacy ] ->
  Nsc_microcode.Codegen.compiled ->
  Nsc_diagram.Program.t -> (run, string) result
val frame : run -> ordinal:int -> frame option

(** Values of every engaged unit at one vector element of a frame. *)
val values_at :
  frame -> element:int -> (Nsc_arch.Resource.fu_id * float) list

(** The annotated diagram display the paper proposes: the frame's
    pipeline drawn with the values flowing through each unit. *)
val render_frame : Nsc_arch.Params.t -> run -> frame -> element:int -> string

(** Elements at which any unit produced a non-finite value. *)
val anomalies : frame -> (Nsc_arch.Resource.fu_id * int * float) list
