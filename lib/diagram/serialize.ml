(** Save and restore visual programs.

    The graphical editor must be able to "save the results"; this module
    defines the on-disk form: a line-oriented, whitespace-tokenised text
    format that round-trips the full program, display data included.  The
    format is deliberately diff-friendly so saved programs can live under
    version control. *)

open Nsc_arch

(* Labels may contain spaces; the format is token-based, so encode them. *)
let encode_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | ' ' -> Buffer.add_string buf "%20"
      | '%' -> Buffer.add_string buf "%25"
      | '\n' -> Buffer.add_string buf "%0A"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_label s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match String.sub s (i + 1) 2 with
        | "20" -> Buffer.add_char buf ' '
        | "25" -> Buffer.add_char buf '%'
        | "0A" -> Buffer.add_char buf '\n'
        | other -> Buffer.add_string buf ("%" ^ other));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let bypass_to_string = function
  | Als.No_bypass -> "none"
  | Als.Keep_head -> "head"
  | Als.Keep_tail -> "tail"

let bypass_of_string = function
  | "none" -> Some Als.No_bypass
  | "head" -> Some Als.Keep_head
  | "tail" -> Some Als.Keep_tail
  | _ -> None

let binding_to_string = function
  | Fu_config.From_switch -> "switch"
  | Fu_config.From_chain -> "chain"
  | Fu_config.From_constant c -> Printf.sprintf "const:%h" c
  | Fu_config.From_feedback n -> Printf.sprintf "fb:%d" n
  | Fu_config.Unbound -> "unbound"

let binding_of_string s =
  match s with
  | "switch" -> Some Fu_config.From_switch
  | "chain" -> Some Fu_config.From_chain
  | "unbound" -> Some Fu_config.Unbound
  | _ ->
      if String.length s > 6 && String.sub s 0 6 = "const:" then
        Option.map
          (fun c -> Fu_config.From_constant c)
          (float_of_string_opt (String.sub s 6 (String.length s - 6)))
      else if String.length s > 3 && String.sub s 0 3 = "fb:" then
        Option.map
          (fun n -> Fu_config.From_feedback n)
          (int_of_string_opt (String.sub s 3 (String.length s - 3)))
      else None

let endpoint_to_string = function
  | Connection.Pad { icon; pad } ->
      Printf.sprintf "icon%d.%s" icon (Icon.pad_to_string pad)
  | Connection.Direct_memory p -> Printf.sprintf "mem%d" p
  | Connection.Direct_cache c -> Printf.sprintf "cache%d" c

let endpoint_of_string s =
  let num prefix =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      int_of_string_opt (String.sub s pl (String.length s - pl))
    else None
  in
  match num "mem" with
  | Some p -> Some (Connection.Direct_memory p)
  | None -> (
      match num "cache" with
      | Some c -> Some (Connection.Direct_cache c)
      | None -> (
          match String.index_opt s '.' with
          | Some dot when String.length s > 4 && String.sub s 0 4 = "icon" -> (
              let id = int_of_string_opt (String.sub s 4 (dot - 4)) in
              let pad =
                Icon.pad_of_string (String.sub s (dot + 1) (String.length s - dot - 1))
              in
              match (id, pad) with
              | Some icon, Some pad -> Some (Connection.Pad { icon; pad })
              | _ -> None)
          | _ -> None))

let spec_to_string (s : Dma_spec.t) =
  let target =
    match s.target with
    | Dma_spec.To_plane p -> Printf.sprintf "plane=%d" p
    | Dma_spec.To_cache c -> Printf.sprintf "cache=%d" c
  in
  let var = match s.variable with Some v -> " var=" ^ v | None -> "" in
  Printf.sprintf "%s%s offset=%d stride=%d count=%d" target var s.offset s.stride s.count

(* key=value token helpers *)
let kv_of_tokens tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let find_int kvs key = Option.bind (List.assoc_opt key kvs) int_of_string_opt
let find_str kvs key = List.assoc_opt key kvs

let spec_of_tokens tokens : Dma_spec.t option =
  let kvs = kv_of_tokens tokens in
  let target =
    match (find_int kvs "plane", find_int kvs "cache") with
    | Some p, None -> Some (Dma_spec.To_plane p)
    | None, Some c -> Some (Dma_spec.To_cache c)
    | _ -> None
  in
  match target with
  | None -> None
  | Some target ->
      Some
        {
          Dma_spec.target;
          variable = find_str kvs "var";
          offset = Option.value ~default:0 (find_int kvs "offset");
          stride = Option.value ~default:1 (find_int kvs "stride");
          count = Option.value ~default:0 (find_int kvs "count");
        }

let fu_ref_to_string (fu : Resource.fu_id) = Resource.fu_to_string fu

let fu_ref_of_string s : Resource.fu_id option =
  (* form: als<N>.u<M> *)
  match String.index_opt s '.' with
  | Some dot
    when dot > 3
         && String.sub s 0 3 = "als"
         && String.length s > dot + 2
         && s.[dot + 1] = 'u' -> (
      match
        ( int_of_string_opt (String.sub s 3 (dot - 3)),
          int_of_string_opt (String.sub s (dot + 2) (String.length s - dot - 2)) )
      with
      | Some als, Some slot -> Some { Resource.als; slot }
      | _ -> None)
  | _ -> None

let relation_of_string = function
  | "<" -> Some Interrupt.Rlt
  | "<=" -> Some Interrupt.Rle
  | "=" -> Some Interrupt.Req
  | "<>" -> Some Interrupt.Rne
  | ">=" -> Some Interrupt.Rge
  | ">" -> Some Interrupt.Rgt
  | _ -> None

(** Render a program to its textual form. *)
let to_string (prog : Program.t) : string =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "program %s" prog.Program.name;
  List.iter
    (fun (d : Program.declaration) ->
      line "declare %s plane=%d base=%d length=%d" d.name d.plane d.base d.length)
    prog.Program.declarations;
  List.iter
    (fun (pl : Pipeline.t) ->
      line "pipeline %d vlen=%d label=%s" pl.Pipeline.index pl.Pipeline.vector_length
        (if pl.Pipeline.label = "" then "-" else encode_label pl.Pipeline.label);
      List.iter
        (fun (i : Icon.t) ->
          let pos = i.Icon.pos in
          (match i.Icon.kind with
          | Icon.Als_icon { als; bypass } ->
              line "icon %d als %d bypass=%s at %d %d" i.Icon.id als
                (bypass_to_string bypass) pos.Geometry.x pos.Geometry.y
          | Icon.Memory_icon p ->
              line "icon %d mem %d at %d %d" i.Icon.id p pos.Geometry.x pos.Geometry.y
          | Icon.Cache_icon c ->
              line "icon %d cache %d at %d %d" i.Icon.id c pos.Geometry.x pos.Geometry.y
          | Icon.Shift_delay_icon { sd; mode } ->
              let m =
                match mode with
                | Shift_delay.Delay d -> Printf.sprintf "delay %d" d
                | Shift_delay.Shift o -> Printf.sprintf "shift %d" o
              in
              line "icon %d sd %d %s at %d %d" i.Icon.id sd m pos.Geometry.x pos.Geometry.y);
          Array.iteri
            (fun slot (cfg : Fu_config.t) ->
              match cfg.Fu_config.op with
              | None -> ()
              | Some op ->
                  line "config %d %d op=%s a=%s b=%s za=%d zb=%d" i.Icon.id slot
                    (Opcode.mnemonic op)
                    (binding_to_string cfg.Fu_config.a)
                    (binding_to_string cfg.Fu_config.b)
                    cfg.Fu_config.delay_a cfg.Fu_config.delay_b)
            i.Icon.configs)
        pl.Pipeline.icons;
      List.iter
        (fun (c : Connection.t) ->
          let spec =
            match c.Connection.spec with
            | None -> ""
            | Some s -> " spec " ^ spec_to_string s
          in
          line "connect %d %s -> %s%s" c.Connection.id
            (endpoint_to_string c.Connection.src)
            (endpoint_to_string c.Connection.dst)
            spec)
        pl.Pipeline.connections)
    prog.Program.pipelines;
  if prog.Program.control <> [] then begin
    line "control";
    let rec emit depth cs =
      let pad = String.make (depth * 2) ' ' in
      List.iter
        (function
          | Program.Exec n -> line "%sexec %d" pad n
          | Program.Halt -> line "%shalt" pad
          | Program.Repeat { count; body } ->
              line "%srepeat %d" pad count;
              emit (depth + 1) body;
              line "%sendrepeat" pad
          | Program.While { condition; max_iterations; body } ->
              line "%swhile %s %s %h max=%d" pad
                (fu_ref_to_string condition.Interrupt.unit_watched)
                (Interrupt.relation_to_string condition.Interrupt.relation)
                condition.Interrupt.threshold max_iterations;
              emit (depth + 1) body;
              line "%sendwhile" pad)
        cs
    in
    emit 1 prog.Program.control;
    line "endcontrol"
  end;
  line "end";
  Buffer.contents buf

type parse_state = {
  mutable prog : Program.t;
  mutable current : Pipeline.t option;
  mutable lineno : int;
}

let fail st msg = Error (Printf.sprintf "line %d: %s" st.lineno msg)

let tokens_of_line l =
  String.split_on_char ' ' l |> List.filter (fun s -> s <> "")

(* Store the current pipeline back into the program. *)
let flush_pipeline st =
  match st.current with
  | None -> ()
  | Some pl ->
      let prog = st.prog in
      let exists = Option.is_some (Program.find_pipeline prog pl.Pipeline.index) in
      st.prog <-
        (if exists then Program.update_pipeline prog pl
         else { prog with Program.pipelines = prog.Program.pipelines @ [ pl ] });
      st.current <- None

(** Parse a program from its textual form. *)
let of_string (p : Params.t) (text : string) : (Program.t, string) result =
  let st = { prog = Program.empty "unnamed"; current = None; lineno = 0 } in
  let lines = String.split_on_char '\n' text in
  let rec parse_control acc = function
    (* returns (control list, remaining lines) or an error *)
    | [] -> Error "unterminated control section"
    | l :: rest -> (
        st.lineno <- st.lineno + 1;
        match tokens_of_line l with
        | [] -> parse_control acc rest
        | [ "endcontrol" ] | [ "endrepeat" ] | [ "endwhile" ] ->
            Ok (List.rev acc, rest)
        | [ "exec"; n ] -> (
            match int_of_string_opt n with
            | Some n -> parse_control (Program.Exec n :: acc) rest
            | None -> Error "bad exec operand")
        | [ "halt" ] -> parse_control (Program.Halt :: acc) rest
        | [ "repeat"; n ] -> (
            match int_of_string_opt n with
            | None -> Error "bad repeat count"
            | Some count -> (
                match parse_control [] rest with
                | Error e -> Error e
                | Ok (body, rest) ->
                    parse_control (Program.Repeat { count; body } :: acc) rest))
        | "while" :: fu :: rel :: thr :: more -> (
            let max_iterations =
              match kv_of_tokens more with
              | kvs -> Option.value ~default:0 (find_int kvs "max")
            in
            match
              (fu_ref_of_string fu, relation_of_string rel, float_of_string_opt thr)
            with
            | Some unit_watched, Some relation, Some threshold -> (
                match parse_control [] rest with
                | Error e -> Error e
                | Ok (body, rest) ->
                    parse_control
                      (Program.While
                         {
                           condition = { Interrupt.unit_watched; relation; threshold };
                           max_iterations;
                           body;
                         }
                      :: acc)
                      rest)
            | _ -> Error "bad while condition")
        | tok :: _ -> Error (Printf.sprintf "unexpected token '%s' in control section" tok))
  in
  let rec go = function
    | [] ->
        flush_pipeline st;
        Ok st.prog
    | l :: rest -> (
        st.lineno <- st.lineno + 1;
        match tokens_of_line l with
        | [] -> go rest
        | [ "end" ] ->
            flush_pipeline st;
            Ok st.prog
        | [ "program"; name ] ->
            st.prog <- { st.prog with Program.name };
            go rest
        | "declare" :: name :: kv -> (
            let kvs = kv_of_tokens kv in
            match (find_int kvs "plane", find_int kvs "base", find_int kvs "length") with
            | Some plane, Some base, Some length -> (
                match Program.declare st.prog { Program.name; plane; base; length } with
                | Ok prog ->
                    st.prog <- prog;
                    go rest
                | Error e -> fail st e)
            | _ -> fail st "declare needs plane=, base=, length=")
        | "pipeline" :: idx :: kv -> (
            flush_pipeline st;
            match int_of_string_opt idx with
            | None -> fail st "bad pipeline number"
            | Some index ->
                let kvs = kv_of_tokens kv in
                let vlen = Option.value ~default:1 (find_int kvs "vlen") in
                let label =
                  match find_str kvs "label" with
                  | Some "-" | None -> ""
                  | Some l -> decode_label l
                in
                st.current <-
                  Some { (Pipeline.empty ~label index) with Pipeline.vector_length = vlen };
                go rest)
        | "icon" :: id :: what :: more -> (
            match (st.current, int_of_string_opt id) with
            | None, _ -> fail st "icon outside a pipeline"
            | _, None -> fail st "bad icon id"
            | Some pl, Some id -> (
                let at_pos tokens =
                  match tokens with
                  | [ "at"; x; y ] -> (
                      match (int_of_string_opt x, int_of_string_opt y) with
                      | Some x, Some y -> Some (Geometry.point x y)
                      | _ -> None)
                  | _ -> None
                in
                let mk kind tokens =
                  match at_pos tokens with
                  | None -> fail st "icon needs 'at x y'"
                  | Some pos ->
                      let icon = Icon.make p ~id ~kind ~pos in
                      st.current <-
                        Some
                          {
                            pl with
                            Pipeline.icons = pl.Pipeline.icons @ [ icon ];
                            next_icon_id = max pl.Pipeline.next_icon_id (id + 1);
                          };
                      go rest
                in
                match (what, more) with
                | "als", als :: kv_and_at -> (
                    match int_of_string_opt als with
                    | None -> fail st "bad ALS number"
                    | Some als when als < 0 || als >= Params.n_als p ->
                        (* range-check here: [Icon.make] sizes the icon via
                           [Resource.als_size], which raises on a bad id *)
                        fail st
                          (Printf.sprintf "ALS %d out of range (machine has %d)" als
                             (Params.n_als p))
                    | Some als ->
                        let kvs = kv_of_tokens kv_and_at in
                        let bypass =
                          Option.bind (find_str kvs "bypass") bypass_of_string
                          |> Option.value ~default:Als.No_bypass
                        in
                        let at = List.filter (fun t -> not (String.contains t '=')) kv_and_at in
                        mk (Icon.Als_icon { als; bypass }) at)
                | "mem", plane :: at -> (
                    match int_of_string_opt plane with
                    | Some plane -> mk (Icon.Memory_icon plane) at
                    | None -> fail st "bad plane number")
                | "cache", c :: at -> (
                    match int_of_string_opt c with
                    | Some c -> mk (Icon.Cache_icon c) at
                    | None -> fail st "bad cache number")
                | "sd", sd :: mode :: arg :: at -> (
                    match (int_of_string_opt sd, int_of_string_opt arg) with
                    | Some sd, Some n -> (
                        match mode with
                        | "delay" ->
                            mk (Icon.Shift_delay_icon { sd; mode = Shift_delay.Delay n }) at
                        | "shift" ->
                            mk (Icon.Shift_delay_icon { sd; mode = Shift_delay.Shift n }) at
                        | _ -> fail st "bad shift/delay mode")
                    | _ -> fail st "bad shift/delay icon")
                | _ -> fail st "unknown icon form"))
        | "config" :: id :: slot :: kv -> (
            match (st.current, int_of_string_opt id, int_of_string_opt slot) with
            | None, _, _ -> fail st "config outside a pipeline"
            | _, None, _ | _, _, None -> fail st "bad config reference"
            | Some pl, Some id, Some slot -> (
                let kvs = kv_of_tokens kv in
                let op = Option.bind (find_str kvs "op") Opcode.of_mnemonic in
                let bind key =
                  Option.bind (find_str kvs key) binding_of_string
                  |> Option.value ~default:Fu_config.Unbound
                in
                match op with
                | None -> fail st "config needs a valid op="
                | Some op -> (
                    let cfg =
                      {
                        Fu_config.op = Some op;
                        a = bind "a";
                        b = bind "b";
                        delay_a = Option.value ~default:0 (find_int kvs "za");
                        delay_b = Option.value ~default:0 (find_int kvs "zb");
                      }
                    in
                    try
                      st.current <- Some (Pipeline.set_config pl ~id ~slot cfg);
                      go rest
                    with Invalid_argument m -> fail st m)))
        | "connect" :: id :: src :: "->" :: dst :: more -> (
            match (st.current, int_of_string_opt id) with
            | None, _ -> fail st "connect outside a pipeline"
            | _, None -> fail st "bad connection id"
            | Some pl, Some id -> (
                match (endpoint_of_string src, endpoint_of_string dst) with
                | Some src, Some dst ->
                    let spec =
                      match more with
                      | "spec" :: spec_tokens -> spec_of_tokens spec_tokens
                      | _ -> None
                    in
                    if more <> [] && spec = None then fail st "bad DMA specification"
                    else begin
                      let c = { Connection.id; src; dst; spec } in
                      st.current <-
                        Some
                          {
                            pl with
                            Pipeline.connections = pl.Pipeline.connections @ [ c ];
                            next_conn_id = max pl.Pipeline.next_conn_id (id + 1);
                          };
                      go rest
                    end
                | _ -> fail st "bad connection endpoint"))
        | [ "control" ] -> (
            flush_pipeline st;
            match parse_control [] rest with
            | Error e -> fail st e
            | Ok (control, rest) ->
                st.prog <- Program.set_control st.prog control;
                go rest)
        | tok :: _ -> fail st (Printf.sprintf "unknown directive '%s'" tok))
  in
  go lines

(** Write a program to [path]. *)
let save (prog : Program.t) ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string prog))

(** Load a program from [path]. *)
let load (p : Params.t) ~path : (Program.t, string) result =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string p text)
