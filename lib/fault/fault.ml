(** The deterministic fault model and its recovery ledger.

    The NSC is a 64-node machine; at that scale transient hardware faults
    are an operating condition, not an anomaly — the paper's own
    "elaborate interrupt scheme" exists to trap runtime exceptions.  This
    module is the single source of faults for the whole simulator: a
    seeded splitmix64 stream ({!Prng}) drives every injection decision, so
    one [--fault-seed] reproduces a whole machine run's fault schedule
    bit-for-bit.

    The model is {e ambient}, mirroring {!Nsc_trace.Trace}: {!install} a
    model and the engine, router, multi-node exchange and checkpointed
    solvers consult it at their injection points; with nothing installed
    every site costs one atomic flag read ([active] returning [None]).

    Accounting is double-entry: every injected fault must end up either
    recovered or unrecovered ({!outstanding} reports the difference, and
    the CLI refuses to let it stay non-zero).  The ledger counts always
    (it is the fault report's data source); the same values are mirrored
    onto [fault.*] trace counters so they appear in trace digests and
    Chrome exports alongside the rest of the machine's counters. *)

module Trace = Nsc_trace.Trace

(* --- the fault specification ------------------------------------------- *)

(** What to inject, with per-event probabilities.  The unit of a "draw"
    differs per kind: transient link faults and DMA stalls are drawn per
    executed transfer (a DMA stream or an inter-node message), FU faults
    once per executed pipeline instruction, and memory corruption once per
    solver sweep attempt. *)
type spec = {
  transient_link_p : float;  (** per-transfer transient link glitch *)
  dead_links : (int * int) list;  (** permanently dead links, as (lo, hi) node pairs *)
  mem_corrupt_p : float;     (** per-sweep memory word corruption *)
  dma_stall_p : float;       (** per-transfer DMA engine stall *)
  dma_stall_cycles : int;    (** cycles lost per stall *)
  fu_fault_p : float;        (** per-instruction FU arithmetic fault *)
  max_retries : int;         (** transient-fault retry budget per transfer *)
  backoff_cycles : int;      (** first retry's backoff; doubles per retry *)
}

let none =
  {
    transient_link_p = 0.0;
    dead_links = [];
    mem_corrupt_p = 0.0;
    dma_stall_p = 0.0;
    dma_stall_cycles = 64;
    fu_fault_p = 0.0;
    max_retries = 4;
    backoff_cycles = 16;
  }

let is_none s =
  s.transient_link_p = 0.0 && s.dead_links = [] && s.mem_corrupt_p = 0.0
  && s.dma_stall_p = 0.0 && s.fu_fault_p = 0.0

let link_key a b = (min a b, max a b)

(* Grammar (documented in docs/FAULTS.md): clauses separated by commas,
   each clause a kind followed by colon-separated parameters —
     transient-link:p=0.01[:retries=4][:backoff=16]
     dead-link:A-B
     mem-corrupt:p=0.001
     dma-stall:p=0.001[:cycles=64]
     fu-fault:p=1e-6                                                     *)
let parse str : (spec, string) result =
  let ( let* ) = Result.bind in
  let kv_of tok =
    match String.index_opt tok '=' with
    | Some i ->
        Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
    | None -> None
  in
  let prob kvs clause =
    match List.assoc_opt "p" kvs with
    | None -> Error (Printf.sprintf "%s needs p=PROB" clause)
    | Some v -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok p
        | _ -> Error (Printf.sprintf "%s: bad probability '%s' (want 0..1)" clause v))
  in
  let pos_int kvs key default clause =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Ok n
        | _ -> Error (Printf.sprintf "%s: bad %s '%s' (want a positive integer)" clause key v))
  in
  let clause acc c =
    let* acc = acc in
    match String.split_on_char ':' (String.trim c) with
    | [] | [ "" ] -> Ok acc
    | kind :: params -> (
        let kvs = List.filter_map kv_of params in
        match kind with
        | "transient-link" ->
            let* p = prob kvs "transient-link" in
            let* retries = pos_int kvs "retries" acc.max_retries "transient-link" in
            let* backoff = pos_int kvs "backoff" acc.backoff_cycles "transient-link" in
            Ok { acc with transient_link_p = p; max_retries = retries; backoff_cycles = backoff }
        | "dead-link" -> (
            match params with
            | [ pair ] -> (
                match String.split_on_char '-' pair with
                | [ a; b ] -> (
                    match (int_of_string_opt a, int_of_string_opt b) with
                    | Some a, Some b when a >= 0 && b >= 0 && a <> b ->
                        Ok { acc with dead_links = link_key a b :: acc.dead_links }
                    | _ -> Error (Printf.sprintf "dead-link: bad node pair '%s'" pair))
                | _ -> Error (Printf.sprintf "dead-link: bad node pair '%s' (want A-B)" pair))
            | _ -> Error "dead-link needs one A-B node pair")
        | "mem-corrupt" ->
            let* p = prob kvs "mem-corrupt" in
            Ok { acc with mem_corrupt_p = p }
        | "dma-stall" ->
            let* p = prob kvs "dma-stall" in
            let* cycles = pos_int kvs "cycles" acc.dma_stall_cycles "dma-stall" in
            Ok { acc with dma_stall_p = p; dma_stall_cycles = cycles }
        | "fu-fault" ->
            let* p = prob kvs "fu-fault" in
            Ok { acc with fu_fault_p = p }
        | other -> Error (Printf.sprintf "unknown fault kind '%s'" other))
  in
  let* s = List.fold_left clause (Ok none) (String.split_on_char ',' str) in
  Ok { s with dead_links = List.sort_uniq compare s.dead_links }

let spec_to_string s =
  let clauses =
    (if s.transient_link_p > 0.0 then
       [ Printf.sprintf "transient-link:p=%g:retries=%d:backoff=%d" s.transient_link_p
           s.max_retries s.backoff_cycles ]
     else [])
    @ List.map (fun (a, b) -> Printf.sprintf "dead-link:%d-%d" a b) s.dead_links
    @ (if s.mem_corrupt_p > 0.0 then [ Printf.sprintf "mem-corrupt:p=%g" s.mem_corrupt_p ] else [])
    @ (if s.dma_stall_p > 0.0 then
         [ Printf.sprintf "dma-stall:p=%g:cycles=%d" s.dma_stall_p s.dma_stall_cycles ]
       else [])
    @ if s.fu_fault_p > 0.0 then [ Printf.sprintf "fu-fault:p=%g" s.fu_fault_p ] else []
  in
  if clauses = [] then "none" else String.concat "," clauses

(* --- the ledger --------------------------------------------------------- *)

(* Each ledger cell is an always-on atomic (the fault report must work
   without tracing) mirrored onto a [fault.*] trace counter so the values
   also appear in trace digests.  [reset_ledger] rewinds the atomics only;
   the trace counters follow the trace instrument's own reset. *)
type cell = { tc : Trace.counter; total : int Atomic.t; cname : string }

let cells : cell list ref = ref []

let cell ~name ~units ~desc =
  let c = { tc = Trace.counter ~name ~units ~desc; total = Atomic.make 0; cname = name } in
  cells := c :: !cells;
  c

let bump c n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add c.total n);
    Trace.add c.tc n
  end

let value c = Atomic.get c.total
let reset_ledger () = List.iter (fun c -> Atomic.set c.total 0) !cells

let c_injected =
  cell ~name:"fault.injected" ~units:"faults"
    ~desc:"faults injected by the seeded fault model"

let c_detected =
  cell ~name:"fault.detected" ~units:"faults"
    ~desc:"injected faults detected (link CRC, parity scrub, FU trap)"

let c_recovered =
  cell ~name:"fault.recovered" ~units:"faults"
    ~desc:"injected faults recovered by retry, reroute or rollback"

let c_unrecovered =
  cell ~name:"fault.unrecovered" ~units:"faults"
    ~desc:"injected faults reported as unrecoverable"

let c_retries =
  cell ~name:"fault.retries" ~units:"attempts"
    ~desc:"transfer retransmissions after transient link faults"

let c_rerouted =
  cell ~name:"fault.rerouted" ~units:"messages"
    ~desc:"messages adaptively detoured around dead links"

let c_rollbacks =
  cell ~name:"fault.rollbacks" ~units:"restores"
    ~desc:"checkpoint restores after detected corruption"

let c_link_transients =
  cell ~name:"fault.link_transients" ~units:"faults"
    ~desc:"transient link glitches injected into transfers"

let c_dead_link_hits =
  cell ~name:"fault.dead_link_hits" ~units:"messages"
    ~desc:"messages whose dimension-ordered route crossed a dead link"

let c_mem_corruptions =
  cell ~name:"fault.mem_corruptions" ~units:"words"
    ~desc:"memory words corrupted (parity marked bad)"

let c_dma_stalls =
  cell ~name:"fault.dma_stalls" ~units:"stalls"
    ~desc:"DMA engine stalls injected into transfers"

let c_fu_faults =
  cell ~name:"fault.fu_faults" ~units:"faults"
    ~desc:"FU arithmetic faults injected (NaN at the output latch)"

let c_backoff_cycles =
  cell ~name:"fault.backoff_cycles" ~units:"cycles"
    ~desc:"cycles spent backing off before retransmissions"

let c_stall_cycles =
  cell ~name:"fault.stall_cycles" ~units:"cycles"
    ~desc:"cycles lost to injected DMA stalls"

let c_detour_hops =
  cell ~name:"fault.detour_hops" ~units:"hops"
    ~desc:"extra hops taken by adaptive detours over e-cube routes"

(** Every ledger cell as (name, value), sorted by name — the fault
    report's data source, live whether or not tracing is enabled. *)
let ledger () =
  List.sort compare (List.map (fun c -> (c.cname, value c)) !cells)

(** Injected faults not yet claimed by recovery or reported unrecoverable.
    The balance invariant is [outstanding () = 0] at the end of a run. *)
let outstanding () = value c_injected - value c_recovered - value c_unrecovered

(** Reconcile the ledger at end of run: any outstanding faults (injected,
    never claimed by a recovery layer) are booked as unrecovered so none
    disappear silently.  Returns the number reconciled. *)
let reconcile () =
  let n = outstanding () in
  if n > 0 then bump c_unrecovered n;
  n

(* --- the installed model ------------------------------------------------ *)

type t = {
  spec : spec;
  seed : int;
  rng : Prng.t;
  dead : (int * int, unit) Hashtbl.t;
      (** configured dead links plus links killed by retry exhaustion *)
}

let make ~seed spec =
  let dead = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace dead l ()) spec.dead_links;
  { spec; seed; rng = Prng.create ~seed; dead }

let installed : t option ref = ref None
let flag = Atomic.make false

(** Install [m] as the ambient fault model and zero the ledger.  The model
    is global mutable state, like the trace instrument: install before the
    run you want faulted, {!clear} after. *)
let install m =
  installed := Some m;
  reset_ledger ();
  Atomic.set flag true

let clear () =
  Atomic.set flag false;
  installed := None

let enabled () = Atomic.get flag

(** The installed model, or [None].  This is the one-branch fast path
    every injection site starts with. *)
let active () = if Atomic.get flag then !installed else None

(* --- draws -------------------------------------------------------------- *)

let seed m = m.seed
let spec m = m.spec
let rand m bound = Prng.int m.rng bound
let link_dead m a b = Hashtbl.mem m.dead (link_key a b)

(** Declare a link permanently dead (retry-exhaustion escalation). *)
let kill_link m a b = Hashtbl.replace m.dead (link_key a b) ()

(** Outcome of the transient-fault draw sequence for one transfer. *)
type link_outcome = {
  failures : int;       (** transient faults drawn, capped at the budget *)
  backoff : int;        (** backoff cycles accumulated by the retries *)
  exhausted : bool;     (** the retry budget was spent without a clean send *)
}

(** Draw consecutive transient link faults for one transfer, up to the
    retry budget, with exponential backoff.  Books the faults as injected,
    detected (link CRC) and retried; the {e resolution} — recovered by the
    retry, by a reroute, or unrecovered — is the caller's entry, since it
    depends on what the recovery layer manages next. *)
let draw_link_failures m =
  let p = m.spec.transient_link_p in
  if p <= 0.0 then { failures = 0; backoff = 0; exhausted = false }
  else begin
    let failures = ref 0 and backoff = ref 0 in
    while !failures < m.spec.max_retries && Prng.float m.rng < p do
      incr failures;
      backoff := !backoff + (m.spec.backoff_cycles * (1 lsl (!failures - 1)))
    done;
    if !failures > 0 then begin
      bump c_injected !failures;
      bump c_link_transients !failures;
      bump c_detected !failures;
      bump c_retries !failures;
      bump c_backoff_cycles !backoff
    end;
    { failures = !failures; backoff = !backoff; exhausted = !failures >= m.spec.max_retries }
  end

(** Extra cycles injected into one intra-node DMA stream execution:
    transient FLONET-link glitches (each retried, recovered by the
    retransmission) and DMA stalls (absorbed in place).  On retry
    exhaustion the stream falls back to a slow retransmit that always
    succeeds, costing one more doubled backoff — intra-node streams have
    no alternative route, but they also never lose data. *)
let stream_overhead m =
  let { failures; backoff; exhausted } = draw_link_failures m in
  let extra = ref backoff in
  if failures > 0 then begin
    bump c_recovered failures;
    if exhausted then extra := !extra + (m.spec.backoff_cycles * (1 lsl m.spec.max_retries))
  end;
  if m.spec.dma_stall_p > 0.0 && Prng.float m.rng < m.spec.dma_stall_p then begin
    bump c_injected 1;
    bump c_dma_stalls 1;
    bump c_detected 1;
    bump c_recovered 1;
    bump c_stall_cycles m.spec.dma_stall_cycles;
    extra := !extra + m.spec.dma_stall_cycles
  end;
  !extra

(** Total stream overhead for [streams] executed transfers of one
    instruction (one draw sequence per stream, in stream order). *)
let streams_overhead m ~streams =
  let extra = ref 0 in
  for _ = 1 to streams do
    extra := !extra + stream_overhead m
  done;
  !extra

(** Draw the per-instruction FU arithmetic fault: [Some (unit, element)]
    when a fault lands (booked as injected; the engine books detection
    when the corrupted value traps). *)
let draw_fu_fault m ~vlen ~units =
  if m.spec.fu_fault_p <= 0.0 || vlen <= 0 || units <= 0 then None
  else if Prng.float m.rng < m.spec.fu_fault_p then begin
    bump c_injected 1;
    bump c_fu_faults 1;
    Some (Prng.int m.rng units, Prng.int m.rng vlen)
  end
  else None

(** Draw the per-sweep memory-corruption event (the caller picks the
    victim word with {!rand} and books it with {!note_mem_corrupt}). *)
let draw_mem_corrupt m =
  m.spec.mem_corrupt_p > 0.0 && Prng.float m.rng < m.spec.mem_corrupt_p

(* --- recovery bookkeeping ----------------------------------------------- *)

let note_recovered n = bump c_recovered n
let note_unrecovered n = bump c_unrecovered n

let note_rerouted ~extra_hops =
  bump c_rerouted 1;
  bump c_detour_hops extra_hops

(** A message's dimension-ordered route crossed a dead link: one injected,
    detected fault (the caller books its resolution). *)
let note_dead_link_hit () =
  bump c_injected 1;
  bump c_dead_link_hits 1;
  bump c_detected 1

let note_rollback () = bump c_rollbacks 1

let note_mem_corrupt n =
  bump c_injected n;
  bump c_mem_corruptions n

let note_mem_detected n = bump c_detected n
let note_fu_detected n = bump c_detected n
