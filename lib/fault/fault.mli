(** The deterministic fault model and its recovery ledger.

    A seeded splitmix64 stream drives every injection decision, so one
    [--fault-seed] reproduces a whole run's fault schedule bit-for-bit.
    The model is ambient, like {!Nsc_trace.Trace}: {!install} one and the
    engine, multi-node exchange and checkpointed solvers consult it at
    their injection points; with nothing installed every site costs one
    atomic flag read.

    Accounting is double-entry: every injected fault must end up either
    recovered or unrecovered; {!outstanding} reports the difference and
    {!reconcile} books the remainder as unrecovered at end of run.  The
    ledger counts always (it backs the CLI fault report); the same values
    are mirrored onto [fault.*] trace counters when tracing is enabled. *)

(** {1 Specification} *)

type spec = {
  transient_link_p : float;  (** per-transfer transient link glitch *)
  dead_links : (int * int) list;  (** permanently dead links, as (lo, hi) node pairs *)
  mem_corrupt_p : float;     (** per-sweep memory word corruption *)
  dma_stall_p : float;       (** per-transfer DMA engine stall *)
  dma_stall_cycles : int;    (** cycles lost per stall *)
  fu_fault_p : float;        (** per-instruction FU arithmetic fault *)
  max_retries : int;         (** transient-fault retry budget per transfer *)
  backoff_cycles : int;      (** first retry's backoff; doubles per retry *)
}

val none : spec
val is_none : spec -> bool

(** Parse a [--faults] specification: comma-separated clauses
    [transient-link:p=F[:retries=N][:backoff=N]], [dead-link:A-B],
    [mem-corrupt:p=F], [dma-stall:p=F[:cycles=N]], [fu-fault:p=F]. *)
val parse : string -> (spec, string) result

val spec_to_string : spec -> string

(** {1 Model lifecycle} *)

type t

val make : seed:int -> spec -> t

(** Install [m] as the ambient fault model and zero the ledger. *)
val install : t -> unit

val clear : unit -> unit
val enabled : unit -> bool

(** The installed model, or [None] — the one-branch fast path every
    injection site starts with. *)
val active : unit -> t option

val seed : t -> int
val spec : t -> spec

(** A uniform draw in [0, bound) from the model's stream. *)
val rand : t -> int -> int

(** {1 Link state} *)

val link_dead : t -> int -> int -> bool

(** Declare a link permanently dead (retry-exhaustion escalation). *)
val kill_link : t -> int -> int -> unit

(** {1 Draws}

    Each draw advances the seeded stream and books what it injects; the
    caller books the resolution (recovered / unrecovered) where noted. *)

type link_outcome = {
  failures : int;       (** transient faults drawn, capped at the budget *)
  backoff : int;        (** backoff cycles accumulated by the retries *)
  exhausted : bool;     (** the retry budget was spent without a clean send *)
}

(** Draw consecutive transient link faults for one transfer (booked as
    injected/detected/retried; resolution is the caller's entry). *)
val draw_link_failures : t -> link_outcome

(** Extra cycles injected into one intra-node DMA stream execution
    (transient glitches and DMA stalls, all recovered in place). *)
val stream_overhead : t -> int

(** Total {!stream_overhead} for [streams] executed transfers. *)
val streams_overhead : t -> streams:int -> int

(** Per-instruction FU arithmetic fault: [Some (unit, element)] when one
    lands (booked as injected; the engine books detection at the trap). *)
val draw_fu_fault : t -> vlen:int -> units:int -> (int * int) option

(** Per-sweep memory-corruption draw (the caller picks the victim word
    with {!rand} and books it with {!note_mem_corrupt}). *)
val draw_mem_corrupt : t -> bool

(** {1 Recovery bookkeeping} *)

val note_recovered : int -> unit
val note_unrecovered : int -> unit
val note_rerouted : extra_hops:int -> unit

(** A dimension-ordered route crossed a dead link: one injected, detected
    fault (the caller books its resolution). *)
val note_dead_link_hit : unit -> unit

val note_rollback : unit -> unit
val note_mem_corrupt : int -> unit
val note_mem_detected : int -> unit
val note_fu_detected : int -> unit

(** {1 Ledger} *)

(** Every ledger cell as (name, value), sorted by name — live whether or
    not tracing is enabled. *)
val ledger : unit -> (string * int) list

(** Injected faults not yet claimed by recovery or reported unrecoverable. *)
val outstanding : unit -> int

(** Book any outstanding faults as unrecovered; returns the number. *)
val reconcile : unit -> int
