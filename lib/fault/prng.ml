(** The fault model's deterministic pseudo-random stream.

    Splitmix64: a tiny, statistically solid generator whose whole state is
    one 64-bit word, so a fault schedule is fully reproducible from a seed
    — the property every fault-injection experiment and every regression
    test of the recovery layer depends on.  Not a cryptographic generator,
    and deliberately independent of [Random] so library clients cannot
    perturb a seeded schedule. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(** An independent generator continuing from the same state (the original
    and the copy then produce identical streams). *)
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** A uniform draw in [0, 1), using the top 53 bits. *)
let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  Stdlib.float_of_int bits53 *. 0x1p-53

(** A uniform draw in [0, bound); [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let bits30 = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34) in
  bits30 mod bound
