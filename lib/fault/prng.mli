(** The fault model's deterministic pseudo-random stream (splitmix64).

    One 64-bit word of state; identical seeds yield identical draw
    sequences, which makes every injected fault schedule reproducible. *)

type t

val create : seed:int -> t
val copy : t -> t
val next_int64 : t -> int64

(** A uniform draw in [0, 1). *)
val float : t -> float

(** A uniform draw in [0, bound); [bound] must be positive. *)
val int : t -> int -> int
