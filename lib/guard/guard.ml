(* Supervision for long-running simulation work: deadlines/cancellation
   (Budget), the retry/escalation ladder (Retry), the crash-safe
   write-ahead journal (Journal) and the overload breaker (Breaker).
   Semantics and the guard.* catalogue: docs/RESILIENCE.md. *)

module Metrics = Nsc_metrics.Metrics
module Json = Nsc_metrics.Json

(* --- budgets ------------------------------------------------------------ *)

module Budget = struct
  type t = {
    deadline_cycles : int;  (* -1: unarmed *)
    deadline_at : float;  (* absolute gettimeofday; nan: unarmed *)
    cancel_flag : bool Atomic.t;
    spent_cycles : int Atomic.t;
    poll_count : int Atomic.t;
  }

  exception
    Deadline_exceeded of { spent_cycles : int; reason : string }

  let create ?(deadline_cycles = -1) ?deadline_ms () =
    if deadline_cycles < -1 then
      invalid_arg "Budget.create: deadline_cycles must be >= 0";
    (match deadline_ms with
    | Some ms when not (ms > 0.0) ->
        invalid_arg "Budget.create: deadline_ms must be > 0"
    | _ -> ());
    {
      deadline_cycles;
      deadline_at =
        (match deadline_ms with
        | None -> Float.nan
        | Some ms -> Unix.gettimeofday () +. (ms /. 1e3));
      cancel_flag = Atomic.make false;
      spent_cycles = Atomic.make 0;
      poll_count = Atomic.make 0;
    }

  let cancel b = Atomic.set b.cancel_flag true
  let cancelled b = Atomic.get b.cancel_flag
  let spent b = Atomic.get b.spent_cycles
  let polls b = Atomic.get b.poll_count
  let charge b c = ignore (Atomic.fetch_and_add b.spent_cycles c)

  let fire b reason =
    raise (Deadline_exceeded { spent_cycles = spent b; reason })

  (* Wall-deadline and cancellation: the checks that are meaningful even
     mid-instruction, where the in-flight cycle cost is unknown.  The
     gettimeofday call happens only when a wall deadline is armed. *)
  let poll b =
    Atomic.incr b.poll_count;
    if Atomic.get b.cancel_flag then fire b "cancelled";
    if (not (Float.is_nan b.deadline_at))
       && Unix.gettimeofday () >= b.deadline_at
    then fire b "deadline-ms"

  (* The full boundary check: cycles spent so far against the cycle
     ceiling, then the wall/cancel poll.  Fires when [spent >= ceiling],
     so a 0-cycle budget fires before the first instruction. *)
  let check b =
    if b.deadline_cycles >= 0 && Atomic.get b.spent_cycles >= b.deadline_cycles
    then begin
      Atomic.incr b.poll_count;
      fire b "deadline-cycles"
    end
    else poll b

  let check_opt = function None -> () | Some b -> check b
  let charge_opt o c = match o with None -> () | Some b -> charge b c
  let poll_opt = function None -> () | Some b -> poll b
end

(* --- the retry ladder --------------------------------------------------- *)

module Retry = struct
  type policy = {
    max_retries : int;
    base_backoff_ms : float;
    jitter : float;
    degraded : bool;
  }

  let default =
    { max_retries = 0; base_backoff_ms = 0.0; jitter = 0.0; degraded = false }

  let backoff_ms p ~prng ~attempt =
    if p.base_backoff_ms <= 0.0 || attempt < 1 then 0.0
    else
      let scale = Float.of_int (1 lsl (min 20 (attempt - 1))) in
      let u = Nsc_fault.Prng.float prng in
      p.base_backoff_ms *. scale *. (1.0 +. (p.jitter *. u))
end

(* --- the write-ahead journal -------------------------------------------- *)

module Journal = struct
  type t = { jpath : string; oc : out_channel }

  let open_ ~path =
    {
      jpath = path;
      oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path;
    }

  let path t = t.jpath

  let append t obj =
    output_string t.oc (Json.to_string obj);
    output_char t.oc '\n';
    flush t.oc

  let append_accept t ~id ~line =
    append t
      (Json.Obj
         [ ("ev", Json.Str "accept"); ("id", Json.Str id); ("line", Json.Str line) ])

  let append_done t ~id =
    append t (Json.Obj [ ("ev", Json.Str "done"); ("id", Json.Str id) ])

  let close t = close_out t.oc

  (* Recovery scan: replay the record stream, keeping the first accept
     line of every id whose done record never arrived.  A torn tail (the
     crash landed mid-write) parses as an error and is skipped, as is
     any foreign line. *)
  let load ~path =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let order = ref [] in
      (* id -> line; an id is re-added on a later accept only if done *)
      let pending : (string, string) Hashtbl.t = Hashtbl.create 64 in
      (try
         while true do
           let raw = input_line ic in
           match Json.parse raw with
           | Error _ -> ()
           | Ok obj -> (
               let str k = Option.bind (Json.member k obj) Json.to_str in
               match (str "ev", str "id") with
               | Some "accept", Some id ->
                   if not (Hashtbl.mem pending id) then begin
                     Hashtbl.replace pending id
                       (Option.value ~default:"" (str "line"));
                     order := id :: !order
                   end
               | Some "done", Some id -> Hashtbl.remove pending id
               | _ -> ())
         done
       with End_of_file -> close_in ic);
      List.rev !order
      |> List.filter_map (fun id ->
             match Hashtbl.find_opt pending id with
             | Some line when line <> "" -> Some (id, line)
             | _ -> None)
    end
end

(* --- the overload breaker ----------------------------------------------- *)

module Breaker = struct
  type t = {
    open_at : int;  (* 0: disabled *)
    close_at : int;
    p99_usec : int;  (* 0: no latency trigger *)
    mutable state_open : bool;
    mutable n_opens : int;
    mutable n_closes : int;
  }

  let create ?(open_at = 0) ?close_at ?(p99_usec = 0) () =
    if open_at < 0 then invalid_arg "Breaker.create: open_at must be >= 0";
    let close_at = Option.value ~default:(open_at / 2) close_at in
    if open_at > 0 && close_at >= open_at then
      invalid_arg "Breaker.create: close_at must be below open_at";
    { open_at; close_at; p99_usec; state_open = false; n_opens = 0; n_closes = 0 }

  let observe t ~depth ~p99_usec =
    if t.open_at > 0 then
      if t.state_open then begin
        (* hysteresis: close only once the queue has genuinely drained *)
        if depth <= t.close_at && (t.p99_usec = 0 || p99_usec < t.p99_usec)
        then begin
          t.state_open <- false;
          t.n_closes <- t.n_closes + 1
        end
      end
      else if depth >= t.open_at || (t.p99_usec > 0 && p99_usec >= t.p99_usec)
      then begin
        t.state_open <- true;
        t.n_opens <- t.n_opens + 1
      end

  let is_open t = t.state_open
  let opens t = t.n_opens
  let closes t = t.n_closes
end

(* --- observability ------------------------------------------------------- *)

let c_deadline_kills =
  Metrics.counter ~name:"guard.deadline_kills" ~units:"attempts"
    ~desc:"job attempts killed by a deadline or cancellation"

let c_retries =
  Metrics.counter ~name:"guard.retries" ~units:"attempts"
    ~desc:"retry-ladder re-runs of failed or deadline-killed jobs"

let c_degraded_runs =
  Metrics.counter ~name:"guard.degraded_runs" ~units:"attempts"
    ~desc:"degraded-mode escalation attempts (reduced budget or kernel-v2)"

let c_permanent_failures =
  Metrics.counter ~name:"guard.permanent_failures" ~units:"jobs"
    ~desc:"jobs failed permanently after the retry ladder was exhausted"

let c_shed_jobs =
  Metrics.counter ~name:"guard.shed_jobs" ~units:"jobs"
    ~desc:"low-priority submissions shed while the overload breaker was open"

let c_breaker_opens =
  Metrics.counter ~name:"guard.breaker_opens" ~units:"events"
    ~desc:"overload-breaker transitions from closed to open"

let c_breaker_closes =
  Metrics.counter ~name:"guard.breaker_closes" ~units:"events"
    ~desc:"overload-breaker transitions from open back to closed"

let c_journal_appends =
  Metrics.counter ~name:"guard.journal_appends" ~units:"records"
    ~desc:"write-ahead journal records appended (accepts and completions)"

let c_journal_replays =
  Metrics.counter ~name:"guard.journal_replays" ~units:"jobs"
    ~desc:"accepted-but-unfinished jobs replayed from the journal on recovery"

let h_backoff_usec =
  Metrics.histogram ~name:"hist.guard_backoff_usec" ~units:"usec"
    ~desc:"retry-ladder backoff slept between job attempts"
