(** Supervision for long-running simulation work: per-job deadlines and
    cooperative cancellation, a retry/escalation ladder, a crash-safe
    write-ahead journal, and an overload breaker.

    The paper's environment assumed a benign lab machine; a service
    front-end ([nscvp serve]) does not.  This layer recovers {e
    host-level} failures — a wedged job, a daemon crash mid-wave, an
    oversized burst — the way [Nsc_fault] recovers {e simulated
    hardware} faults.  Semantics, thresholds and the [guard.*] counter
    catalogue live in [docs/RESILIENCE.md]. *)

(** {1 Budgets: deadlines and cancellation}

    A budget is a token threaded through [Sequencer.run]/[run_batch],
    the kernel engine and [Jacobi.solve*].  The sequencer charges each
    dispatched instruction's cycles to it and checks it at every
    instruction boundary (which includes every sweep boundary); the
    fused-kernel engine additionally polls the wall deadline and the
    cancellation flag at each kernel block boundary.  A run that
    exhausts the budget unwinds with {!Budget.Deadline_exceeded} at the
    next boundary — cooperative, so a pool domain is never killed
    mid-instruction.  The unarmed path (no budget) costs one branch per
    site; the bench's RESILIENCE section holds that projection under
    the same 2 % bar as the trace/fault gates. *)
module Budget : sig
  type t

  exception
    Deadline_exceeded of {
      spent_cycles : int;  (** simulated cycles charged when it fired *)
      reason : string;  (** ["deadline-cycles"], ["deadline-ms"] or ["cancelled"] *)
    }

  val create : ?deadline_cycles:int -> ?deadline_ms:float -> unit -> t
  (** A fresh budget.  [deadline_cycles] is a simulated-cycle ceiling
      (0 fires before the first instruction); [deadline_ms] a host
      wall-clock ceiling relative to creation.  Omitting both yields a
      budget that only ever fires through {!cancel}. *)

  val cancel : t -> unit
  (** Request cooperative cancellation: the next check or poll raises.
      Safe from any domain. *)

  val cancelled : t -> bool
  val spent : t -> int
  (** Simulated cycles charged so far. *)

  val polls : t -> int
  (** Boundary checks crossed so far — the armed-site count the bench
      projection multiplies by the gate cost. *)

  val charge : t -> int -> unit
  (** Charge simulated cycles (the sequencer, after each dispatch). *)

  val check : t -> unit
  (** Raise {!Deadline_exceeded} if the cycle budget is spent, the wall
      deadline has passed, or the budget was cancelled. *)

  val poll : t -> unit
  (** Wall-deadline and cancellation only (kernel block boundaries,
      where the in-flight instruction's cycles are not yet known). *)

  val check_opt : t option -> unit
  (** {!check} when armed; one branch when [None]. *)

  val charge_opt : t option -> int -> unit
  val poll_opt : t option -> unit
end

(** {1 The retry ladder}

    Escalation policy for failed or deadline-killed jobs: up to
    [max_retries] identical re-runs with exponential backoff and
    seed-deterministic jitter, then (when [degraded] is set) one
    degraded-mode attempt — reduced iteration budget or the [kernel-v2]
    engine — and finally a typed permanent failure.  The ladder itself
    is host-policy glue; [Nsc_serve] wires it around job dispatch. *)
module Retry : sig
  type policy = {
    max_retries : int;  (** identical re-runs before escalating (default 0) *)
    base_backoff_ms : float;  (** first backoff; doubles per retry (default 0) *)
    jitter : float;  (** uniform jitter fraction added to each backoff *)
    degraded : bool;  (** escalate to one degraded-mode attempt *)
  }

  val default : policy
  (** No retries, no backoff, no degraded escalation. *)

  val backoff_ms : policy -> prng:Nsc_fault.Prng.t -> attempt:int -> float
  (** Backoff before retry [attempt] (1-based):
      [base * 2^(attempt-1) * (1 + jitter * u)] with [u] drawn from
      [prng] — deterministic for a fixed seed. *)
end

(** {1 The write-ahead journal}

    Crash safety for accepted work: every admitted submission is
    appended (and flushed) {e before} it is acknowledged, completions
    are marked, and {!load} recovers the accepted-but-unfinished
    suffix after a crash.  Records are NDJSON —
    [{"ev":"accept","id":…,"line":…}] / [{"ev":"done","id":…}] — and a
    torn final record (the crash landed mid-write) is ignored. *)
module Journal : sig
  type t

  val open_ : path:string -> t
  (** Open (creating or appending) the journal at [path]. *)

  val path : t -> string
  val append_accept : t -> id:string -> line:string -> unit
  (** Record an accepted submission ([line] is the raw request line),
      flushed to the OS before returning. *)

  val append_done : t -> id:string -> unit
  (** Mark [id] complete (its response was emitted), flushed. *)

  val close : t -> unit

  val load : path:string -> (string * string) list
  (** The accepted-but-unfinished jobs of the journal at [path], as
      [(id, request-line)] in admission order; [[]] when the file does
      not exist.  Unparseable or torn records are skipped. *)
end

(** {1 The overload breaker}

    A circuit with hysteresis over queue depth and tail latency: it
    opens when depth reaches [open_at] (or p99 job latency reaches
    [p99_usec], when set) and closes only once depth falls back to
    [close_at] — so shedding does not flap at the threshold.  While
    open, the daemon sheds low-priority submissions with a [shed]
    rejection instead of queueing them. *)
module Breaker : sig
  type t

  val create : ?open_at:int -> ?close_at:int -> ?p99_usec:int -> unit -> t
  (** [open_at = 0] (the default) disables the breaker entirely;
      [close_at] defaults to [open_at / 2]; [p99_usec = 0] (default)
      disables the latency trigger.  Raises [Invalid_argument] when
      [close_at >= open_at] with the breaker enabled. *)

  val observe : t -> depth:int -> p99_usec:int -> unit
  (** Feed the current queue depth and p99 job latency; transitions
      the circuit (with hysteresis) as thresholds are crossed. *)

  val is_open : t -> bool
  val opens : t -> int
  (** Closed-to-open transitions so far. *)

  val closes : t -> int
end

(** {1 Observability}

    The [guard.*] counters and histograms (catalogued in
    [docs/RESILIENCE.md]); [Nsc_serve] mirrors ladder, shed and journal
    activity onto them in its session context. *)

val c_deadline_kills : Nsc_metrics.Metrics.counter
val c_retries : Nsc_metrics.Metrics.counter
val c_degraded_runs : Nsc_metrics.Metrics.counter
val c_permanent_failures : Nsc_metrics.Metrics.counter
val c_shed_jobs : Nsc_metrics.Metrics.counter
val c_breaker_opens : Nsc_metrics.Metrics.counter
val c_breaker_closes : Nsc_metrics.Metrics.counter
val c_journal_appends : Nsc_metrics.Metrics.counter
val c_journal_replays : Nsc_metrics.Metrics.counter
val h_backoff_usec : Nsc_metrics.Metrics.histogram
