(** A minimal JSON value type with an emitter and a recursive-descent
    parser.

    The container ships no JSON library, and the metrics layer must not
    pull heavyweight dependencies into [nsc_arch]; this module covers
    exactly what the observability surface needs — emitting Chrome
    trace-event documents, metric snapshots and profile reports, and
    parsing them back in tests.  Numbers are represented as
    [float] (as in JavaScript); emission of non-finite numbers falls back
    to [null], which Chrome's trace viewer treats as absent. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_finite f then Buffer.add_string buf (num_to_string f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

(* nesting ceiling for the recursive-descent parser; far beyond any
   protocol message, far below the OS stack limit *)
let max_depth = 512

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* encode the code point as UTF-8 (BMP only, no surrogate
                 pairing — trace content is ASCII in practice) *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "unknown escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  (* recursive descent recurses per nesting level, so hostile input like
     10^6 open brackets would blow the stack ([Stack_overflow] is not a
     [Parse_error] and would escape {!parse}); cap the depth instead *)
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error e -> Error e

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
