(** A minimal JSON value type with an emitter and a parser.

    Exists so the metrics layer can emit Chrome trace-event documents,
    metric snapshots and profile reports — and the test suite can parse
    them back — without adding a JSON dependency beneath [nsc_arch]. *)

(** A JSON document.  Numbers are [float], as in JavaScript; object
    members preserve insertion order. *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders [v] as compact JSON.  Strings are escaped per
    RFC 8259; non-finite numbers render as [null] (Chrome's trace viewer
    treats them as absent). *)
val to_string : t -> string

(** [parse s] parses one JSON document, rejecting trailing input.
    [\u] escapes decode to UTF-8 (basic multilingual plane only).
    Nesting beyond {!max_depth} is an error, never [Stack_overflow] —
    the daemon feeds this untrusted socket bytes. *)
val parse : string -> (t, string) result

(** Nesting ceiling enforced by {!parse} (512). *)
val max_depth : int

(** [member key v] is the value of field [key] when [v] is an object. *)
val member : string -> t -> t option

(** The list payload of an array, if [v] is one. *)
val to_list : t -> t list option

(** The numeric payload, if [v] is a number. *)
val to_num : t -> float option

(** The string payload, if [v] is a string. *)
val to_str : t -> string option
