(** Scoped metric contexts: the registry state behind the trace facade.

    PR 2's instrument kept one process-global registry — fine for a
    one-shot CLI, a blocker for anything multi-tenant (two concurrent
    runs would bleed counters into each other).  This module splits the
    instrument in two:

    - a {e global descriptor catalogue} — counter and histogram names,
      units and descriptions, registered once per process by the module
      that owns each resource and assigned a dense id;
    - {e per-context state} — the counter values, histogram buckets,
      span ring, simulated clock and cycle-attribution tables for one
      run, held in a {!ctx} record.

    The {e ambient} context is domain-local ({!current}/{!with_ctx});
    the process starts in {!default}, which reproduces the old global
    behaviour exactly, so every existing call site keeps working.
    Worker domains spawned by the simulator's pools inherit the
    caller's context (the pool captures it when a job is published).

    On top of the counters this adds the profiling layer: log-bucketed
    latency histograms with percentile estimates, per-instruction and
    per-unit cycle/FLOP attribution, per-node utilization for
    multi-node runs, and snapshot/diff for comparing two contexts.
    Everything is documented in [docs/OBSERVABILITY.md]. *)

(* ====================================================================== *)
(* The global descriptor catalogue                                        *)
(* ====================================================================== *)

type counter = { cid : int; c_name : string; c_units : string; c_desc : string }
type histogram = { hid : int; h_name : string; h_units : string; h_desc : string }

let catalogue_mu = Mutex.create ()
let counters_by_name : (string, counter) Hashtbl.t = Hashtbl.create 64
let counter_order : counter list ref = ref []  (* newest first *)
let n_counters = ref 0
let histograms_by_name : (string, histogram) Hashtbl.t = Hashtbl.create 16
let histogram_order : histogram list ref = ref []
let n_histograms = ref 0

let counter ~name ~units ~desc =
  Mutex.protect catalogue_mu (fun () ->
      match Hashtbl.find_opt counters_by_name name with
      | Some c -> c
      | None ->
          let c = { cid = !n_counters; c_name = name; c_units = units; c_desc = desc } in
          incr n_counters;
          Hashtbl.add counters_by_name name c;
          counter_order := c :: !counter_order;
          c)

let histogram ~name ~units ~desc =
  Mutex.protect catalogue_mu (fun () ->
      match Hashtbl.find_opt histograms_by_name name with
      | Some h -> h
      | None ->
          let h = { hid = !n_histograms; h_name = name; h_units = units; h_desc = desc } in
          incr n_histograms;
          Hashtbl.add histograms_by_name name h;
          histogram_order := h :: !histogram_order;
          h)

let counter_name c = c.c_name
let counter_units c = c.c_units
let counter_desc c = c.c_desc
let histogram_name h = h.h_name
let histogram_units h = h.h_units
let histogram_desc h = h.h_desc

let registered_counters () =
  Mutex.protect catalogue_mu (fun () ->
      List.sort (fun a b -> compare a.c_name b.c_name) !counter_order)

let registered_histograms () =
  Mutex.protect catalogue_mu (fun () ->
      List.sort (fun a b -> compare a.h_name b.h_name) !histogram_order)

let find_counter name =
  Mutex.protect catalogue_mu (fun () -> Hashtbl.find_opt counters_by_name name)

let find_histogram name =
  Mutex.protect catalogue_mu (fun () -> Hashtbl.find_opt histograms_by_name name)

(* ====================================================================== *)
(* Log-bucketed histogram geometry                                        *)
(* ====================================================================== *)

(* Values 0..31 get one exact bucket each; above that, each power-of-two
   octave [2^m, 2^(m+1)) splits into 8 equal sub-buckets of width
   2^(m-3).  A bucket's lower bound therefore underestimates any value
   it holds by less than 1/8 of the value — the percentile error bound
   documented in docs/OBSERVABILITY.md.  With 63-bit OCaml ints the
   octave index m ranges over 5..62. *)
let linear_buckets = 32
let sub_buckets = 8
let max_octave = 62
let n_buckets = linear_buckets + ((max_octave - 5 + 1) * sub_buckets)

let bucket_of_value v =
  if v < linear_buckets then max 0 v
  else begin
    let m = ref 5 in
    while v lsr (!m + 1) <> 0 do
      incr m
    done;
    let sub = (v lsr (!m - 3)) land (sub_buckets - 1) in
    linear_buckets + ((!m - 5) * sub_buckets) + sub
  end

let bucket_lower_bound i =
  if i < linear_buckets then max 0 i
  else begin
    let oct = (i - linear_buckets) / sub_buckets
    and sub = (i - linear_buckets) mod sub_buckets in
    let m = oct + 5 in
    (1 lsl m) + (sub * (1 lsl (m - 3)))
  end

(* ====================================================================== *)
(* Per-context state                                                      *)
(* ====================================================================== *)

type arg = Int of int | Float of float | Str of string

type event = {
  ev_name : string;
  cat : string;
  phase : char;  (** 'X' complete span, 'i' instant, 'C' counter sample *)
  ts : int;      (** simulated cycles *)
  dur : int;     (** simulated cycles; 0 for instants *)
  tid : int;     (** 0 = node engine/sequencer, 1 = multi-node machine *)
  args : (string * arg) list;
}

(* One histogram's state: atomic bucket counts plus running count, sum
   and exact min/max, so concurrent observers (pool worker domains) need
   no lock. *)
type hstate = {
  buckets : int Atomic.t array;
  hs_n : int Atomic.t;
  hs_total : int Atomic.t;
  hs_lo : int Atomic.t;  (* max_int while empty *)
  hs_hi : int Atomic.t;
}

(* Cycle/FLOP attribution for one (instruction, unit) pair.  [share] is
   the instruction's cycles apportioned across its engaged units (the
   shares of one instruction sum exactly to its cycle count, so the
   hotspot table and the folded stacks partition [sim.cycles]); [busy]
   is the full engaged duration (every unit of a systolic pipeline runs
   for the whole instruction), the denominator for the per-unit
   sustained rate. *)
type attr_cell = { mutable share : int; mutable busy : int; mutable aflops : int }

type ctx = {
  ctx_label : string;
  enabled_flag : bool Atomic.t;
  clock : int Atomic.t;
  grow_mu : Mutex.t;
  mutable cvals : int Atomic.t array;   (* by counter id *)
  mutable cbumps : int Atomic.t array;
  mutable hists : hstate option array;  (* by histogram id *)
  observations : int Atomic.t;  (** histogram/attribution sites crossed —
                                    folded into the bench's disabled-path
                                    overhead projection *)
  ring_mu : Mutex.t;
  mutable capacity : int;
  mutable ring : event option array;
  mutable ring_total : int;
  attr_mu : Mutex.t;
  attr : (string * string, attr_cell) Hashtbl.t;  (* (instr, unit) *)
  node_attr : (int, attr_cell) Hashtbl.t;         (* per-node; share unused *)
}

let default_capacity = 65_536

let create ?(label = "ctx") ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Metrics.create: capacity must be positive";
  let n = Mutex.protect catalogue_mu (fun () -> !n_counters) in
  {
    ctx_label = label;
    enabled_flag = Atomic.make false;
    clock = Atomic.make 0;
    grow_mu = Mutex.create ();
    cvals = Array.init n (fun _ -> Atomic.make 0);
    cbumps = Array.init n (fun _ -> Atomic.make 0);
    hists = Array.make (max 1 (Mutex.protect catalogue_mu (fun () -> !n_histograms))) None;
    observations = Atomic.make 0;
    ring_mu = Mutex.create ();
    capacity;
    ring = Array.make capacity None;
    ring_total = 0;
    attr_mu = Mutex.create ();
    attr = Hashtbl.create 32;
    node_attr = Hashtbl.create 8;
  }

let label ctx = ctx.ctx_label

(* --- the ambient context ------------------------------------------------ *)

let default = create ~label:"default" ()
let dls_key : ctx Domain.DLS.key = Domain.DLS.new_key (fun () -> default)
let current () = Domain.DLS.get dls_key

let with_ctx ctx f =
  let prev = Domain.DLS.get dls_key in
  Domain.DLS.set dls_key ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_key prev) f

(* --- the switch and the clock ------------------------------------------- *)

(* How many contexts are currently enabled, process-wide.  The trace
   facade's disabled fast path reads this single atomic instead of doing
   a DLS lookup per instrumentation site: with zero contexts enabled a
   gate costs one load and a branch, same as the pre-context instrument
   (the <2% budget in bench/main.ml depends on it). *)
let n_enabled = Atomic.make 0

let enabled ctx = Atomic.get ctx.enabled_flag

let enable ctx =
  if Atomic.compare_and_set ctx.enabled_flag false true then
    ignore (Atomic.fetch_and_add n_enabled 1)

let disable ctx =
  if Atomic.compare_and_set ctx.enabled_flag true false then
    ignore (Atomic.fetch_and_add n_enabled (-1))

let any_enabled () = Atomic.get n_enabled > 0
let now ctx = Atomic.get ctx.clock
let advance ctx cycles = if cycles > 0 then ignore (Atomic.fetch_and_add ctx.clock cycles)

(* --- counter cells ------------------------------------------------------ *)

(* Contexts created before a counter was registered grow their value
   arrays on first touch.  Growth replaces the arrays but copies the
   atomic cells by reference, so a reader racing the growth still lands
   on the same cell. *)
let grow_counters ctx cid =
  Mutex.protect ctx.grow_mu (fun () ->
      if cid >= Array.length ctx.cvals then begin
        let n = Mutex.protect catalogue_mu (fun () -> !n_counters) in
        let extend (old : int Atomic.t array) =
          Array.init (max n (cid + 1)) (fun i ->
              if i < Array.length old then old.(i) else Atomic.make 0)
        in
        ctx.cvals <- extend ctx.cvals;
        ctx.cbumps <- extend ctx.cbumps
      end)

let value_cell ctx (c : counter) =
  if c.cid >= Array.length ctx.cvals then grow_counters ctx c.cid;
  ctx.cvals.(c.cid)

let bump_cell ctx (c : counter) =
  if c.cid >= Array.length ctx.cbumps then grow_counters ctx c.cid;
  ctx.cbumps.(c.cid)

let add ctx c n =
  if n > 0 && Atomic.get ctx.enabled_flag then begin
    ignore (Atomic.fetch_and_add (value_cell ctx c) n);
    ignore (Atomic.fetch_and_add (bump_cell ctx c) 1)
  end

let value ctx c = Atomic.get (value_cell ctx c)

let total_bumps ctx =
  Mutex.protect ctx.grow_mu (fun () ->
      Array.fold_left (fun acc b -> acc + Atomic.get b) 0 ctx.cbumps)

(* --- histogram cells ---------------------------------------------------- *)

let hstate_create () =
  {
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    hs_n = Atomic.make 0;
    hs_total = Atomic.make 0;
    hs_lo = Atomic.make max_int;
    hs_hi = Atomic.make min_int;
  }

let grow_hists ctx hid =
  Mutex.protect ctx.grow_mu (fun () ->
      if hid >= Array.length ctx.hists then begin
        let n = Mutex.protect catalogue_mu (fun () -> !n_histograms) in
        let old = ctx.hists in
        ctx.hists <-
          Array.init (max n (hid + 1)) (fun i ->
              if i < Array.length old then old.(i) else None)
      end)

let hstate ctx (h : histogram) =
  if h.hid >= Array.length ctx.hists then grow_hists ctx h.hid;
  match ctx.hists.(h.hid) with
  | Some s -> s
  | None ->
      Mutex.protect ctx.grow_mu (fun () ->
          match ctx.hists.(h.hid) with
          | Some s -> s
          | None ->
              let s = hstate_create () in
              ctx.hists.(h.hid) <- Some s;
              s)

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let observe ctx h v =
  if v >= 0 && Atomic.get ctx.enabled_flag then begin
    let s = hstate ctx h in
    ignore (Atomic.fetch_and_add s.buckets.(bucket_of_value v) 1);
    ignore (Atomic.fetch_and_add s.hs_n 1);
    ignore (Atomic.fetch_and_add s.hs_total v);
    atomic_min s.hs_lo v;
    atomic_max s.hs_hi v;
    ignore (Atomic.fetch_and_add ctx.observations 1)
  end

type hist_summary = {
  hcount : int;
  hsum : int;
  hmin : int;   (** 0 when empty *)
  hmax : int;   (** 0 when empty *)
  p50 : int;
  p95 : int;
  p99 : int;
}

let empty_summary =
  { hcount = 0; hsum = 0; hmin = 0; hmax = 0; p50 = 0; p95 = 0; p99 = 0 }

(* Nearest-rank percentile over the bucket counts: the lower bound of
   the bucket holding the ceil(p/100 * n)-th smallest observation —
   exact below 32, within 12.5% above. *)
let percentile_of_buckets counts total p =
  if total <= 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int total)) in
    let rank = max 1 (min total rank) in
    let acc = ref 0 and result = ref 0 and i = ref 0 in
    (try
       while !i < n_buckets do
         acc := !acc + counts.(!i);
         if !acc >= rank then begin
           result := bucket_lower_bound !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    !result
  end

let percentile ctx h p =
  match (if h.hid < Array.length ctx.hists then ctx.hists.(h.hid) else None) with
  | None -> 0
  | Some s ->
      let counts = Array.map Atomic.get s.buckets in
      percentile_of_buckets counts (Atomic.get s.hs_n) p

let hist_summary ctx h =
  match (if h.hid < Array.length ctx.hists then ctx.hists.(h.hid) else None) with
  | None -> empty_summary
  | Some s ->
      let n = Atomic.get s.hs_n in
      if n = 0 then empty_summary
      else begin
        let counts = Array.map Atomic.get s.buckets in
        {
          hcount = n;
          hsum = Atomic.get s.hs_total;
          hmin = Atomic.get s.hs_lo;
          hmax = Atomic.get s.hs_hi;
          p50 = percentile_of_buckets counts n 50.0;
          p95 = percentile_of_buckets counts n 95.0;
          p99 = percentile_of_buckets counts n 99.0;
        }
      end

(* --- attribution -------------------------------------------------------- *)

let attr_bump table mu key ~share ~busy ~flops =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table key with
      | Some cell ->
          cell.share <- cell.share + share;
          cell.busy <- cell.busy + busy;
          cell.aflops <- cell.aflops + flops
      | None -> Hashtbl.add table key { share; busy; aflops = flops })

let attribute ctx ~instr ~unit_label ~share_cycles ~busy_cycles ~flops =
  if Atomic.get ctx.enabled_flag then begin
    attr_bump ctx.attr ctx.attr_mu (instr, unit_label) ~share:share_cycles
      ~busy:busy_cycles ~flops;
    ignore (Atomic.fetch_and_add ctx.observations 1)
  end

let attribute_node ctx ~node ~cycles ~flops =
  if Atomic.get ctx.enabled_flag then begin
    attr_bump ctx.node_attr ctx.attr_mu node ~share:0 ~busy:cycles ~flops;
    ignore (Atomic.fetch_and_add ctx.observations 1)
  end

type attr_row = {
  a_instr : string;
  a_unit : string;
  share_cycles : int;  (** instruction cycles apportioned to this unit *)
  busy_cycles : int;   (** full engaged duration *)
  flops : int;
}

let attribution ctx =
  let rows =
    Mutex.protect ctx.attr_mu (fun () ->
        Hashtbl.fold
          (fun (instr, u) cell acc ->
            {
              a_instr = instr;
              a_unit = u;
              share_cycles = cell.share;
              busy_cycles = cell.busy;
              flops = cell.aflops;
            }
            :: acc)
          ctx.attr [])
  in
  List.sort
    (fun a b ->
      match compare b.share_cycles a.share_cycles with
      | 0 -> compare (a.a_instr, a.a_unit) (b.a_instr, b.a_unit)
      | c -> c)
    rows

let node_attribution ctx =
  let rows =
    Mutex.protect ctx.attr_mu (fun () ->
        Hashtbl.fold (fun n cell acc -> (n, cell.busy, cell.aflops) :: acc)
          ctx.node_attr [])
  in
  List.sort compare rows

let total_observations ctx = Atomic.get ctx.observations

(* --- the span ring ------------------------------------------------------ *)

let set_capacity ctx n =
  if n < 1 then invalid_arg "Metrics.set_capacity";
  Mutex.protect ctx.ring_mu (fun () ->
      ctx.capacity <- n;
      ctx.ring <- Array.make n None;
      ctx.ring_total <- 0)

let record ctx ev =
  Mutex.protect ctx.ring_mu (fun () ->
      ctx.ring.(ctx.ring_total mod ctx.capacity) <- Some ev;
      ctx.ring_total <- ctx.ring_total + 1)

let span ctx ?(tid = 0) ?(args = []) ~cat ~name ~ts ~dur () =
  if Atomic.get ctx.enabled_flag then
    record ctx { ev_name = name; cat; phase = 'X'; ts; dur = max dur 0; tid; args }

let instant ctx ?(tid = 0) ?(args = []) ~cat ~name ~ts () =
  if Atomic.get ctx.enabled_flag then
    record ctx { ev_name = name; cat; phase = 'i'; ts; dur = 0; tid; args }

let events ctx =
  Mutex.protect ctx.ring_mu (fun () ->
      let cap = ctx.capacity and t = ctx.ring_total in
      let n = min t cap in
      List.init n (fun i ->
          match ctx.ring.((t - n + i) mod cap) with
          | Some ev -> ev
          | None -> assert false))

let dropped ctx =
  Mutex.protect ctx.ring_mu (fun () -> max 0 (ctx.ring_total - ctx.capacity))

(* --- reset -------------------------------------------------------------- *)

let reset ctx =
  Mutex.protect ctx.grow_mu (fun () ->
      Array.iter (fun a -> Atomic.set a 0) ctx.cvals;
      Array.iter (fun a -> Atomic.set a 0) ctx.cbumps;
      Array.iter
        (function
          | None -> ()
          | Some s ->
              Array.iter (fun b -> Atomic.set b 0) s.buckets;
              Atomic.set s.hs_n 0;
              Atomic.set s.hs_total 0;
              Atomic.set s.hs_lo max_int;
              Atomic.set s.hs_hi min_int)
        ctx.hists);
  Atomic.set ctx.observations 0;
  Mutex.protect ctx.ring_mu (fun () ->
      Array.fill ctx.ring 0 (Array.length ctx.ring) None;
      ctx.ring_total <- 0);
  Mutex.protect ctx.attr_mu (fun () ->
      Hashtbl.reset ctx.attr;
      Hashtbl.reset ctx.node_attr);
  Atomic.set ctx.clock 0

(* ====================================================================== *)
(* Snapshot and diff                                                      *)
(* ====================================================================== *)

type snapshot = {
  snap_label : string;
  snap_clock : int;
  snap_counters : (string * int) list;           (** non-zero, sorted by name *)
  snap_hists : (string * hist_summary) list;     (** non-empty, sorted by name *)
  snap_attr : attr_row list;
  snap_nodes : (int * int * int) list;           (** (node, cycles, flops) *)
  snap_events : int;
  snap_dropped : int;
}

let snapshot ctx =
  {
    snap_label = ctx.ctx_label;
    snap_clock = now ctx;
    snap_counters =
      List.filter_map
        (fun c ->
          let v = value ctx c in
          if v = 0 then None else Some (c.c_name, v))
        (registered_counters ());
    snap_hists =
      List.filter_map
        (fun h ->
          let s = hist_summary ctx h in
          if s.hcount = 0 then None else Some (h.h_name, s))
        (registered_histograms ());
    snap_attr = attribution ctx;
    snap_nodes = node_attribution ctx;
    snap_events = List.length (events ctx);
    snap_dropped = dropped ctx;
  }

(* Counter-wise difference [b - a] (negative entries kept — a diff is a
   comparison, not a monotonic registry).  Histogram percentiles are not
   subtractive, so a diffed histogram carries [b]'s distribution with
   [a]'s count/sum subtracted; attribution rows subtract pairwise. *)
let diff a b =
  let sub_assoc la lb =
    let names =
      List.sort_uniq compare (List.map fst la @ List.map fst lb)
    in
    List.filter_map
      (fun n ->
        let va = Option.value ~default:0 (List.assoc_opt n la)
        and vb = Option.value ~default:0 (List.assoc_opt n lb) in
        if vb - va = 0 then None else Some (n, vb - va))
      names
  in
  let hists =
    List.filter_map
      (fun (n, sb) ->
        let sa =
          Option.value ~default:empty_summary (List.assoc_opt n a.snap_hists)
        in
        let s = { sb with hcount = sb.hcount - sa.hcount; hsum = sb.hsum - sa.hsum } in
        if s.hcount = 0 && s.hsum = 0 then None else Some (n, s))
      b.snap_hists
  in
  let attr_key r = (r.a_instr, r.a_unit) in
  let attr =
    List.filter_map
      (fun rb ->
        let ra = List.find_opt (fun r -> attr_key r = attr_key rb) a.snap_attr in
        let sub f = f rb - Option.value ~default:0 (Option.map f ra) in
        let row =
          {
            rb with
            share_cycles = sub (fun r -> r.share_cycles);
            busy_cycles = sub (fun r -> r.busy_cycles);
            flops = sub (fun r -> r.flops);
          }
        in
        if row.share_cycles = 0 && row.busy_cycles = 0 && row.flops = 0 then None
        else Some row)
      b.snap_attr
  in
  let nodes =
    List.filter_map
      (fun (n, cb, fb) ->
        let ca, fa =
          match List.find_opt (fun (m, _, _) -> m = n) a.snap_nodes with
          | Some (_, c, f) -> (c, f)
          | None -> (0, 0)
        in
        if cb - ca = 0 && fb - fa = 0 then None else Some (n, cb - ca, fb - fa))
      b.snap_nodes
  in
  {
    snap_label = Printf.sprintf "%s - %s" b.snap_label a.snap_label;
    snap_clock = b.snap_clock - a.snap_clock;
    snap_counters = sub_assoc a.snap_counters b.snap_counters;
    snap_hists = hists;
    snap_attr = attr;
    snap_nodes = nodes;
    snap_events = b.snap_events - a.snap_events;
    snap_dropped = b.snap_dropped - a.snap_dropped;
  }

(* ====================================================================== *)
(* JSON encoding                                                          *)
(* ====================================================================== *)

let num i = Json.Num (float_of_int i)

let hist_summary_to_json s =
  Json.Obj
    [
      ("count", num s.hcount);
      ("sum", num s.hsum);
      ("min", num s.hmin);
      ("max", num s.hmax);
      ("p50", num s.p50);
      ("p95", num s.p95);
      ("p99", num s.p99);
    ]

let snapshot_to_json s =
  Json.Obj
    [
      ("label", Json.Str s.snap_label);
      ("clock_cycles", num s.snap_clock);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, num v)) s.snap_counters));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, hist_summary_to_json h)) s.snap_hists) );
      ( "attribution",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("instr", Json.Str r.a_instr);
                   ("unit", Json.Str r.a_unit);
                   ("cycles", num r.share_cycles);
                   ("busy_cycles", num r.busy_cycles);
                   ("flops", num r.flops);
                 ])
             s.snap_attr) );
      ( "nodes",
        Json.List
          (List.map
             (fun (n, c, f) ->
               Json.Obj [ ("node", num n); ("cycles", num c); ("flops", num f) ])
             s.snap_nodes) );
      ("events", num s.snap_events);
      ("dropped_events", num s.snap_dropped);
    ]

(* ====================================================================== *)
(* Chrome trace-event export and the plain-text summary                   *)
(* ====================================================================== *)

let arg_to_json = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s

let event_to_json ev =
  let base =
    [
      ("name", Json.Str ev.ev_name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (String.make 1 ev.phase));
      ("ts", Json.Num (float_of_int ev.ts));
      ("pid", Json.Num 0.0);
      ("tid", Json.Num (float_of_int ev.tid));
    ]
  in
  let dur = if ev.phase = 'X' then [ ("dur", Json.Num (float_of_int ev.dur)) ] else [] in
  let args =
    if ev.args = [] then []
    else [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) ev.args)) ]
  in
  Json.Obj (base @ dur @ args)

(* One final 'C' sample per non-zero counter, stamped at the clock's end,
   so counter totals are visible inside the trace viewer itself. *)
let counter_samples_json ctx ts =
  List.filter_map
    (fun c ->
      let v = value ctx c in
      if v = 0 then None
      else
        Some
          (Json.Obj
             [
               ("name", Json.Str c.c_name);
               ("cat", Json.Str "counter");
               ("ph", Json.Str "C");
               ("ts", Json.Num (float_of_int ts));
               ("pid", Json.Num 0.0);
               ("args", Json.Obj [ ("value", Json.Num (float_of_int v)) ]);
             ]))
    (registered_counters ())

let to_chrome ctx =
  let evs = events ctx in
  let ts_end = now ctx in
  let doc =
    Json.Obj
      [
        ( "traceEvents",
          Json.List (List.map event_to_json evs @ counter_samples_json ctx ts_end) );
        ("displayTimeUnit", Json.Str "ms");
        ( "otherData",
          Json.Obj
            [
              ("clock", Json.Str "simulated-cycles (1 us = 1 cycle)");
              ("dropped_events", Json.Num (float_of_int (dropped ctx)));
            ] );
        ( "counters",
          Json.Obj
            (List.filter_map
               (fun c ->
                 let v = value ctx c in
                 if v = 0 then None else Some (c.c_name, Json.Num (float_of_int v)))
               (registered_counters ())) );
      ]
  in
  Json.to_string doc

let summary ctx =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let evs = events ctx in
  out "trace summary: %d simulated cycles; %d event(s) recorded, %d dropped\n"
    (now ctx) (List.length evs) (dropped ctx);
  (* spans aggregated per (category, name): the per-phase view *)
  let agg : (string * string, int ref * int ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ev ->
      if ev.phase = 'X' then begin
        let key = (ev.cat, ev.ev_name) in
        match Hashtbl.find_opt agg key with
        | Some (count, cycles) ->
            incr count;
            cycles := !cycles + ev.dur
        | None ->
            Hashtbl.add agg key (ref 1, ref ev.dur);
            order := key :: !order
      end)
    evs;
  if !order <> [] then begin
    out "spans (aggregated by phase):\n";
    out "  %-32s %10s %14s\n" "phase" "count" "cycles";
    List.iter
      (fun (cat, name) ->
        let count, cycles = Hashtbl.find agg (cat, name) in
        out "  %-32s %10d %14d\n" (cat ^ ":" ^ name) !count !cycles)
      (List.rev !order)
  end;
  let live_hists =
    List.filter_map
      (fun h ->
        let s = hist_summary ctx h in
        if s.hcount = 0 then None else Some (h, s))
      (registered_histograms ())
  in
  if live_hists <> [] then begin
    out "latency histograms (log-bucketed %s):\n"
      (match live_hists with (h, _) :: _ -> h.h_units | [] -> "cycles");
    out "  %-28s %10s %10s %10s %10s %10s %10s\n" "histogram" "count" "p50" "p95"
      "p99" "min" "max";
    List.iter
      (fun (h, s) ->
        out "  %-28s %10d %10d %10d %10d %10d %10d\n" h.h_name s.hcount s.p50
          s.p95 s.p99 s.hmin s.hmax)
      live_hists
  end;
  let live =
    List.filter (fun c -> value ctx c > 0) (registered_counters ())
  in
  if live <> [] then begin
    out "counters:\n";
    out "  %-28s %14s  %-10s %s\n" "counter" "value" "unit" "meaning";
    List.iter
      (fun c -> out "  %-28s %14d  %-10s %s\n" c.c_name (value ctx c) c.c_units c.c_desc)
      live
  end;
  Buffer.contents buf
