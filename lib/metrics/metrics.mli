(** Scoped metric contexts: counters, latency histograms, span sinks and
    cycle attribution for one run, isolated from every other run.

    Descriptors (counter/histogram names, units, descriptions) live in a
    process-global catalogue; the {e values} live in a {!ctx}.  The
    ambient context is domain-local: library code reads {!current} and
    the CLI/daemon wraps each run in {!with_ctx}.  The process starts in
    {!default}, which reproduces the old process-global behaviour, so
    call sites that predate contexts keep working unchanged.

    See [docs/OBSERVABILITY.md] for the context API guide, the histogram
    bucketing scheme and its percentile error bound, and the profile
    report schema. *)

(** {1 Contexts} *)

type ctx
(** Metric state for one run: counter values, histogram buckets, the
    span ring, the simulated clock, and attribution tables. *)

val create : ?label:string -> ?capacity:int -> unit -> ctx
(** A fresh, disabled context.  [capacity] bounds the span ring
    (default 65,536 events; newest win).  Raises [Invalid_argument] if
    [capacity < 1]. *)

val default : ctx
(** The process-wide default context — the one ambient until the first
    {!with_ctx}, and the backing store of the [Nsc_trace.Trace]
    facade's global API. *)

val label : ctx -> string

val current : unit -> ctx
(** The ambient context of the calling domain. *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] ambient, restoring the previous
    context afterwards (also on exceptions).  Worker domains in the
    simulator's pools inherit the context ambient at job submission. *)

(** {1 The switch and the simulated clock} *)

val enabled : ctx -> bool
val enable : ctx -> unit
val disable : ctx -> unit

val any_enabled : unit -> bool
(** Whether {e any} context is currently enabled, process-wide — a single
    atomic read.  The trace facade's disabled fast path: when this is
    [false], every instrumentation site can skip the per-domain context
    lookup entirely, because [add]/[observe]/[span] would no-op anyway. *)

val reset : ctx -> unit
(** Zero every counter, histogram and attribution table, clear the span
    ring, and rewind the clock — the catalogue is untouched. *)

val now : ctx -> int
val advance : ctx -> int -> unit

(** {1 Counters}

    Registration is global, idempotent by name, and returns a dense-id
    descriptor; values are per-context.  [add] is a no-op when the
    context is disabled or [n <= 0] (counters are monotonic). *)

type counter

val counter : name:string -> units:string -> desc:string -> counter
val add : ctx -> counter -> int -> unit
val value : ctx -> counter -> int
val counter_name : counter -> string
val counter_units : counter -> string
val counter_desc : counter -> string
val registered_counters : unit -> counter list
(** Every registered counter, sorted by name. *)

val find_counter : string -> counter option

val total_bumps : ctx -> int
(** Total number of successful [add] calls in [ctx] — one term of the
    bench's disabled-overhead projection. *)

(** {1 Histograms}

    Log-bucketed: values 0..31 get exact buckets; above that each
    power-of-two octave splits into 8 sub-buckets, so a reported
    percentile underestimates the true value by less than 12.5 % (and
    is exact below 32).  Observation is lock-free. *)

type histogram

val histogram : name:string -> units:string -> desc:string -> histogram
val observe : ctx -> histogram -> int -> unit
(** Record one sample.  No-op when disabled or the sample is negative. *)

val histogram_name : histogram -> string
val histogram_units : histogram -> string
val histogram_desc : histogram -> string
val registered_histograms : unit -> histogram list
val find_histogram : string -> histogram option

type hist_summary = {
  hcount : int;
  hsum : int;
  hmin : int;  (** 0 when empty *)
  hmax : int;  (** 0 when empty *)
  p50 : int;
  p95 : int;
  p99 : int;
}

val hist_summary : ctx -> histogram -> hist_summary
val percentile : ctx -> histogram -> float -> int
(** Nearest-rank percentile (lower bound of the holding bucket); 0 when
    the histogram is empty. *)

val bucket_of_value : int -> int
val bucket_lower_bound : int -> int
(** The bucket geometry, exposed for property tests:
    [bucket_lower_bound (bucket_of_value v) <= v] and the bound is
    within 12.5 % of [v]. *)

(** {1 Cycle and FLOP attribution}

    The raw material of the hotspot table: each executed instruction
    attributes its cycles to the functional units it engaged.
    [share_cycles] apportions the instruction's cycles across its units
    (shares sum exactly to the instruction's cycle count); [busy_cycles]
    is the full engaged duration per unit — the denominator for the
    unit's sustained MFLOPS. *)

val attribute :
  ctx ->
  instr:string ->
  unit_label:string ->
  share_cycles:int ->
  busy_cycles:int ->
  flops:int ->
  unit

val attribute_node : ctx -> node:int -> cycles:int -> flops:int -> unit
(** Per-node totals for multi-node runs (utilization breakdown). *)

type attr_row = {
  a_instr : string;
  a_unit : string;
  share_cycles : int;
  busy_cycles : int;
  flops : int;
}

val attribution : ctx -> attr_row list
(** All attribution rows, ranked by [share_cycles] descending. *)

val node_attribution : ctx -> (int * int * int) list
(** [(node, cycles, flops)] per node, sorted by node. *)

val total_observations : ctx -> int
(** Histogram observations plus attribution calls — the other term of
    the bench's disabled-overhead projection. *)

(** {1 The span ring}

    A bounded ring of trace events (newest win), exported to Chrome's
    trace-event format by {!to_chrome}. *)

type arg = Int of int | Float of float | Str of string

type event = {
  ev_name : string;
  cat : string;
  phase : char;  (** 'X' complete span, 'i' instant, 'C' counter sample *)
  ts : int;      (** simulated cycles *)
  dur : int;     (** simulated cycles; 0 for instants *)
  tid : int;     (** 0 = node engine/sequencer, 1 = multi-node machine *)
  args : (string * arg) list;
}

val span :
  ctx ->
  ?tid:int ->
  ?args:(string * arg) list ->
  cat:string ->
  name:string ->
  ts:int ->
  dur:int ->
  unit ->
  unit

val instant :
  ctx ->
  ?tid:int ->
  ?args:(string * arg) list ->
  cat:string ->
  name:string ->
  ts:int ->
  unit ->
  unit

val set_capacity : ctx -> int -> unit
(** Resize the ring, clearing it.  Raises [Invalid_argument] on [n < 1]. *)

val events : ctx -> event list
(** Resident events, oldest first. *)

val dropped : ctx -> int

(** {1 Snapshots and diffs} *)

type snapshot = {
  snap_label : string;
  snap_clock : int;
  snap_counters : (string * int) list;        (** non-zero, sorted by name *)
  snap_hists : (string * hist_summary) list;  (** non-empty, sorted by name *)
  snap_attr : attr_row list;
  snap_nodes : (int * int * int) list;        (** (node, cycles, flops) *)
  snap_events : int;
  snap_dropped : int;
}

val snapshot : ctx -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff a b] is [b - a] counter-wise (zero entries elided, negatives
    kept).  Histogram percentiles/min/max are not subtractive: a diffed
    histogram carries [b]'s distribution with [a]'s count and sum
    subtracted. *)

val snapshot_to_json : snapshot -> Json.t
val hist_summary_to_json : hist_summary -> Json.t

(** {1 Export} *)

val to_chrome : ctx -> string
(** The context's events, counters and clock as a Chrome trace-event
    JSON document ([chrome://tracing] / Perfetto). *)

val summary : ctx -> string
(** Human-readable run summary: clock, aggregated spans, non-empty
    histograms with percentiles, and non-zero counters. *)
