(* Wire protocol of the serve daemon: strict parsing of NDJSON request
   lines into validated jobs, and the error/rejection response builders.
   Schema and error-code catalogue: docs/SERVICE.md. *)

module Json = Nsc_metrics.Json
module Fault = Nsc_fault.Fault

type engine = [ `Kernel | `Kernel_v2 | `Plan | `Legacy ]

let engine_of_string = function
  | "kernel" -> Some `Kernel
  | "kernel-v2" -> Some `Kernel_v2
  | "plan" -> Some `Plan
  | "legacy" -> Some `Legacy
  | _ -> None

let engine_to_string = function
  | `Kernel -> "kernel"
  | `Kernel_v2 -> "kernel-v2"
  | `Plan -> "plan"
  | `Legacy -> "legacy"

type workload =
  | Jacobi of { n : int; tol : float; max_iters : int }
  | Source of { text : string }

type priority = High | Normal | Low

let priority_of_string = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

let priority_to_string = function
  | High -> "high"
  | Normal -> "normal"
  | Low -> "low"

type job = {
  id : string;
  workload : workload;
  engine : engine option;
  faults : string option;
  fault_seed : int;
  deadline_ms : float option;
  deadline_cycles : int option;
  priority : priority;
}

type request = Submit of job | Drain | Ping | Shutdown
type reject = { rid : string option; code : string; detail : string }

(* Admission-time bounds: a multi-tenant daemon must refuse a job that
   would monopolise memory or run forever, before it is queued. *)
let max_id_len = 128
let max_source_len = 65536
let min_jacobi_n = 3
let max_jacobi_n = 17
let max_max_iters = 100_000

exception Bad of reject

let bad ?rid code detail = raise (Bad { rid; code; detail })

let str_field ?rid obj name =
  match Json.member name obj with
  | Some v -> (
      match Json.to_str v with
      | Some s -> Some s
      | None -> bad ?rid "bad-request" (Printf.sprintf "%S must be a string" name))
  | None -> None

let num_field ?rid obj name =
  match Json.member name obj with
  | Some v -> (
      match Json.to_num v with
      | Some x -> Some x
      | None -> bad ?rid "bad-request" (Printf.sprintf "%S must be a number" name))
  | None -> None

let int_field ?rid obj name =
  Option.map
    (fun x ->
      if Float.is_integer x then int_of_float x
      else bad ?rid "bad-request" (Printf.sprintf "%S must be an integer" name))
    (num_field ?rid obj name)

let parse_workload ~rid obj =
  match Json.member "workload" obj with
  | None -> bad ~rid "bad-request" "submit needs a \"workload\" object"
  | Some w -> (
      match str_field ~rid w "kind" with
      | None -> bad ~rid "bad-request" "workload needs a \"kind\""
      | Some "jacobi" ->
          let n =
            match int_field ~rid w "n" with
            | Some n -> n
            | None -> bad ~rid "bad-request" "jacobi workload needs \"n\""
          in
          if n < min_jacobi_n || n > max_jacobi_n then
            bad ~rid "bad-request"
              (Printf.sprintf "jacobi n must be in %d..%d" min_jacobi_n max_jacobi_n);
          let tol = Option.value ~default:1e-6 (num_field ~rid w "tol") in
          if not (tol > 0.0) then bad ~rid "bad-request" "tol must be > 0";
          let max_iters = Option.value ~default:1000 (int_field ~rid w "max_iters") in
          if max_iters < 1 || max_iters > max_max_iters then
            bad ~rid "bad-request"
              (Printf.sprintf "max_iters must be in 1..%d" max_max_iters);
          Jacobi { n; tol; max_iters }
      | Some "source" -> (
          match str_field ~rid w "text" with
          | Some text when String.length text > 0 ->
              if String.length text > max_source_len then
                bad ~rid "bad-request"
                  (Printf.sprintf "source text exceeds %d bytes" max_source_len);
              Source { text }
          | _ -> bad ~rid "bad-request" "source workload needs non-empty \"text\"")
      | Some k -> bad ~rid "bad-request" (Printf.sprintf "unknown workload kind %S" k))

let parse_submit obj =
  let rid =
    match str_field obj "id" with
    | Some id when String.length id > 0 && String.length id <= max_id_len -> id
    | Some _ ->
        bad "bad-request" (Printf.sprintf "\"id\" must be 1..%d chars" max_id_len)
    | None -> bad "bad-request" "submit needs a client-supplied \"id\""
  in
  let workload = parse_workload ~rid obj in
  let engine =
    match str_field ~rid obj "engine" with
    | None -> None
    | Some s -> (
        match engine_of_string s with
        | Some e -> Some e
        | None -> bad ~rid "bad-request" (Printf.sprintf "unknown engine %S" s))
  in
  let faults =
    match str_field ~rid obj "faults" with
    | None -> None
    | Some spec -> (
        (* validate the spec at admission, not at dispatch *)
        match Fault.parse spec with
        | Ok _ -> Some spec
        | Error e -> bad ~rid "bad-request" ("bad faults spec: " ^ e))
  in
  let fault_seed = Option.value ~default:1 (int_field ~rid obj "fault_seed") in
  let deadline_ms =
    match num_field ~rid obj "deadline_ms" with
    | Some ms when not (ms > 0.0) ->
        bad ~rid "bad-request" "deadline_ms must be > 0"
    | d -> d
  in
  let deadline_cycles =
    (* 0 is admitted: a zero-cycle budget fires before the first
       instruction, which the deadline edge-case tests rely on *)
    match int_field ~rid obj "deadline_cycles" with
    | Some c when c < 0 -> bad ~rid "bad-request" "deadline_cycles must be >= 0"
    | d -> d
  in
  let priority =
    match str_field ~rid obj "priority" with
    | None -> Normal
    | Some s -> (
        match priority_of_string s with
        | Some p -> p
        | None ->
            bad ~rid "bad-request"
              (Printf.sprintf "priority must be high|normal|low, not %S" s))
  in
  Submit
    {
      id = rid;
      workload;
      engine;
      faults;
      fault_seed;
      deadline_ms;
      deadline_cycles;
      priority;
    }

let parse_request line =
  try
    match Json.parse line with
    | Error e -> Error { rid = None; code = "bad-json"; detail = e }
    | Ok (Json.Obj _ as obj) -> (
        match str_field obj "op" with
        | Some "submit" -> Ok (parse_submit obj)
        | Some "drain" -> Ok Drain
        | Some "ping" -> Ok Ping
        | Some "shutdown" -> Ok Shutdown
        | Some op -> bad ?rid:(str_field obj "id") "bad-request"
                       (Printf.sprintf "unknown op %S" op)
        | None -> bad ?rid:(str_field obj "id") "bad-request"
                    "request needs an \"op\" field")
    | Ok _ -> Error { rid = None; code = "bad-request"; detail = "request must be a JSON object" }
  with Bad r -> Error r

(* --- response builders -------------------------------------------------- *)

let error_response (r : reject) =
  let id = match r.rid with Some id -> [ ("id", Json.Str id) ] | None -> [] in
  Json.to_string
    (Json.Obj
       (id
       @ [ ("status", Json.Str "error");
           ("code", Json.Str r.code);
           ("detail", Json.Str r.detail);
         ]))

let rejected_response ~id ~queued =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Str id);
         ("status", Json.Str "rejected");
         ("code", Json.Str "queue-full");
         ("queued", Json.Num (float_of_int queued));
       ])

let shed_response ~id ~queued =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Str id);
         ("status", Json.Str "rejected");
         ("code", Json.Str "shed");
         ("queued", Json.Num (float_of_int queued));
       ])

let pong_response ~queued =
  Json.to_string
    (Json.Obj
       [ ("op", Json.Str "pong"); ("queued", Json.Num (float_of_int queued)) ])
