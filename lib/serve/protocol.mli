(** The serve daemon's wire protocol: line-delimited JSON requests and
    responses (NDJSON).

    One request per line; the full schema, error codes and worked
    transcripts live in [docs/SERVICE.md].  Parsing is strict: an
    unparseable line is a [bad-json] error, a parseable line with a
    missing or out-of-range field is a [bad-request] error, and neither
    ever raises. *)

(** Simulator path a job runs on (the CLI's [--engine] values). *)
type engine = [ `Kernel | `Kernel_v2 | `Plan | `Legacy ]

val engine_of_string : string -> engine option
(** ["kernel"], ["kernel-v2"], ["plan"] or ["legacy"]. *)

val engine_to_string : engine -> string

(** What a job executes. *)
type workload =
  | Jacobi of { n : int; tol : float; max_iters : int }
      (** The built-in 3-D Jacobi/Poisson solve on an [n]-point grid
          edge (the paper's programming example, manufactured problem).
          [3 <= n <= 17]; [tol] defaults to 1e-6, [max_iters] to 1000. *)
  | Source of { text : string }
      (** Inline pipeline-language source, compiled through [Nsc_lang]
          and executed once.  At most 65536 bytes. *)

(** Admission priority of a submission.  While the overload breaker is
    open, [Low] submissions are shed instead of queued. *)
type priority = High | Normal | Low

val priority_of_string : string -> priority option
(** ["high"], ["normal"] or ["low"]. *)

val priority_to_string : priority -> string

(** One validated job submission. *)
type job = {
  id : string;                (** client-supplied, echoed on the response *)
  workload : workload;
  engine : engine option;     (** [None]: the server's default engine *)
  faults : string option;     (** fault spec ([docs/FAULTS.md] grammar) *)
  fault_seed : int;           (** seed of the deterministic schedule *)
  deadline_ms : float option;
      (** wall-clock ceiling per attempt, from dispatch ([> 0]) *)
  deadline_cycles : int option;
      (** simulated-cycle ceiling per attempt ([>= 0]; 0 fires before
          the first instruction) *)
  priority : priority;        (** defaults to [Normal] *)
}

type request =
  | Submit of job
  | Drain     (** execute every queued job now, stream the results *)
  | Ping
  | Shutdown  (** drain, answer with the session summary, stop *)

(** A request that could not be accepted, or a job that failed: [code]
    is one of [bad-json], [bad-request], [queue-full], [shed],
    [deadline], [permanent-failure] or [run-failed]; [rid] is the job
    id when one was recovered from the line. *)
type reject = { rid : string option; code : string; detail : string }

val parse_request : string -> (request, reject) result

(** {2 Response builders} — each returns one NDJSON line (no newline). *)

val error_response : reject -> string
(** [{"id":…,"status":"error","code":…,"detail":…}] (id omitted when
    unknown). *)

val rejected_response : id:string -> queued:int -> string
(** [{"id":…,"status":"rejected","code":"queue-full","queued":…}]. *)

val shed_response : id:string -> queued:int -> string
(** [{"id":…,"status":"rejected","code":"shed","queued":…}] — a
    low-priority submission refused while the overload breaker is
    open. *)

val pong_response : queued:int -> string
